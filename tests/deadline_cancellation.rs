//! Acceptance pin for prompt cancellation: a 50 ms budget against a
//! 5000-sink pathological instance must come back as a typed
//! `DeadlineExceeded` failure in a small fraction of the uncancelled
//! runtime (seconds per relaxation rung at this scale), with no panic
//! and no malformed report.

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic

use std::time::{Duration, Instant};

use bmst_core::{BmstError, CancelToken};
use bmst_instances::{scaled_net, ScaleStyle};
use bmst_router::{Criticality, NamedNet, Netlist, RouteAlgorithm, RouterConfig};

/// Generous CI bound: far above anything a 50 ms-budgeted run should
/// need (context setup at n=5000 is hundreds of milliseconds at worst),
/// far below the multi-second uncancelled ladder.
const WALL_BOUND: Duration = Duration::from_secs(3);

#[test]
fn pathological_instance_cancels_promptly() {
    let net = scaled_net(5000, 0xdead11e, ScaleStyle::Pathological);
    let netlist = Netlist::new(vec![NamedNet::new("huge", net, Criticality::Critical)]);

    let token = CancelToken::with_budget(Duration::from_millis(50));
    let config = RouterConfig {
        algorithm: RouteAlgorithm::bkrus(),
        cancel: token.clone(),
        ..RouterConfig::default()
    };

    let started = Instant::now();
    let report = netlist.route(&config);
    let elapsed = started.elapsed();

    assert!(
        elapsed < WALL_BOUND,
        "cancellation took {elapsed:?}, expected well under {WALL_BOUND:?}"
    );
    assert!(token.is_cancelled(), "the budget token should have fired");

    assert_eq!(
        report.nets.len(),
        0,
        "no tree should survive a fired deadline"
    );
    assert_eq!(report.failures.len(), 1);
    let failure = &report.failures[0];
    match &failure.error {
        BmstError::DeadlineExceeded { budget_ms, .. } => assert_eq!(*budget_ms, 50),
        other => panic!("expected DeadlineExceeded, got {other}"),
    }
    // The trail must end at the rung where the deadline fired.
    let last = failure
        .attempts
        .last()
        .expect("at least one relaxation step");
    assert!(
        last.error.contains("deadline exceeded"),
        "trail should end with the deadline error, got: {}",
        last.error
    );
}
