//! Integration tests for the I/O layer against real benchmark instances and
//! real routing results.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats

use bmst_core::{bkrus, mst_tree};
use bmst_instances::{random_net, Benchmark};
use bmst_io::{netfile, svg};
use bmst_steiner::bkst;

/// Every special benchmark survives a net-file round trip bit-for-bit.
#[test]
fn benchmarks_round_trip_through_netfile() {
    for b in Benchmark::SPECIAL {
        let net = b.build();
        let text = netfile::to_string(&net);
        let back = netfile::from_str(&text).unwrap();
        assert_eq!(net, back, "{}", b.name());
    }
    // And one of the larger substitutes.
    let net = Benchmark::Pr1.build();
    assert_eq!(netfile::from_str(&netfile::to_string(&net)).unwrap(), net);
}

/// Routing a round-tripped net gives the identical tree (full determinism
/// through serialisation).
#[test]
fn routing_is_stable_across_serialisation() {
    for seed in 0..4 {
        let net = random_net(10, 1300 + seed);
        let back = netfile::from_str(&netfile::to_string(&net)).unwrap();
        let a = bkrus(&net, 0.2).unwrap();
        let b = bkrus(&back, 0.2).unwrap();
        assert_eq!(a.edges().len(), b.edges().len());
        assert!((a.cost() - b.cost()).abs() < 1e-12);
        for (ea, eb) in a.edges().iter().zip(b.edges().iter()) {
            assert_eq!(ea.endpoints(), eb.endpoints());
        }
    }
}

/// SVG rendering works for spanning and Steiner trees of every special
/// benchmark, marking the right node classes.
#[test]
fn svg_renders_benchmark_trees() {
    for b in Benchmark::SPECIAL {
        let net = b.build();

        let spanning = mst_tree(&net);
        let doc = svg::render_tree(net.points(), &spanning, &svg::SvgOptions::default());
        assert_eq!(doc.matches("<line").count(), net.len() - 1, "{}", b.name());
        assert_eq!(doc.matches("<circle").count(), net.num_sinks());

        let st = bkst(&net, 0.3).unwrap();
        let opts = svg::SvgOptions {
            terminals: st.num_terminals,
            ..Default::default()
        };
        let doc = svg::render_tree(&st.points, &st.tree, &opts);
        // All terminals drawn as sinks/source, Steiner nodes hollow.
        assert_eq!(
            doc.matches(r##"fill="#2ca02c""##).count(),
            net.num_sinks(),
            "{}: sink markers",
            b.name()
        );
        assert_eq!(
            doc.matches("steiner ").count(),
            st.steiner_nodes().count(),
            "{}: steiner markers",
            b.name()
        );
    }
}

/// The netfile parser accepts the exact output of `bmst gen` (CLI glue).
#[test]
fn cli_gen_output_parses() {
    let out = bmst_cli_gen(12, 5);
    let net = netfile::from_str(&out).unwrap();
    assert_eq!(net.num_sinks(), 12);
}

fn bmst_cli_gen(sinks: usize, seed: u64) -> String {
    // Use the library entry point rather than spawning a process.
    bmst_io::netfile::to_string(&bmst_instances::uniform_cloud(sinks, 100.0, seed))
}
