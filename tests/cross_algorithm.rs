//! Integration tests spanning all crates: every construction, on shared
//! instances, checked against the paper's structural claims.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats

use bmst_core::{
    bkex, bkh2, bkrus, bprim, brbc, gabow_bmst, lub_bkrus, mst_tree, spt_tree, BkexConfig,
};
use bmst_instances::{clustered_net, random_net, ring_net, row_net, Benchmark};
use bmst_steiner::bkst;

const EPS_SWEEP: [f64; 4] = [0.0, 0.2, 0.5, 1.0];

/// Every bounded construction respects the radius bound on every special
/// benchmark and several random nets.
#[test]
fn all_constructions_respect_the_bound() {
    let mut nets: Vec<(String, bmst_geom::Net)> = Benchmark::SPECIAL
        .iter()
        .map(|b| (b.name().to_owned(), b.build()))
        .collect();
    for seed in 0..4 {
        nets.push((format!("rand{seed}"), random_net(9, seed)));
    }
    // Structured placement styles stress different regimes.
    nets.push(("clustered".into(), clustered_net(3, 4, 100.0, 5)));
    nets.push(("rows".into(), row_net(4, 10, 100.0, 6)));
    nets.push(("ring".into(), ring_net(10, 40.0, 0.2, 7)));

    for (name, net) in &nets {
        for eps in EPS_SWEEP {
            let bound = net.path_bound(eps) + 1e-9;
            for (alg, tree) in [
                ("bkrus", bkrus(net, eps).unwrap()),
                ("bkh2", bkh2(net, eps).unwrap()),
                ("bprim", bprim(net, eps).unwrap()),
                ("brbc", brbc(net, eps).unwrap()),
            ] {
                assert!(tree.is_spanning(), "{name}/{alg}/{eps}: not spanning");
                assert_eq!(tree.root(), net.source());
                assert!(
                    tree.max_dist_from_root(net.sinks()) <= bound,
                    "{name}/{alg}/{eps}: radius {} > bound {bound}",
                    tree.max_dist_from_root(net.sinks()),
                );
            }
            let st = bkst(net, eps).unwrap();
            assert!(
                st.terminal_radius() <= bound,
                "{name}/bkst/{eps}: radius over bound"
            );
            for t in 0..net.len() {
                assert!(
                    st.tree.is_covered(t),
                    "{name}/bkst/{eps}: terminal {t} uncovered"
                );
            }
        }
    }
}

/// The paper's Figure 11 cost ordering holds on average:
/// BKST <= MST <= exact <= BKH2 <= BKRUS <= SPT <= MaxST.
#[test]
fn figure11_cost_ordering_on_average() {
    let eps = 0.2;
    let mut sums = [0.0f64; 7]; // bkst, mst, exact, bkh2, bkrus, spt, maxst
    let cases = 8;
    for seed in 0..cases {
        let net = random_net(8, 100 + seed);
        sums[0] += bkst(&net, eps).unwrap().wirelength();
        sums[1] += mst_tree(&net).cost();
        sums[2] += gabow_bmst(&net, eps).unwrap().cost();
        sums[3] += bkh2(&net, eps).unwrap().cost();
        sums[4] += bkrus(&net, eps).unwrap().cost();
        sums[5] += spt_tree(&net).cost();
        sums[6] += bmst_core::maximal_spanning_tree(&net).cost();
    }
    for w in sums.windows(2) {
        assert!(w[0] <= w[1] + 1e-9, "ordering violated: {sums:?}");
    }
}

/// Exactness: depth-(V-1) BKEX matches the Gabow optimum.
#[test]
fn bkex_exact_depth_matches_gabow() {
    for seed in 0..4 {
        let net = random_net(5, 200 + seed);
        for eps in [0.0, 0.3] {
            let a = gabow_bmst(&net, eps).unwrap().cost();
            let b = bkex(&net, eps, BkexConfig::exact_for(net.len()))
                .unwrap()
                .cost();
            assert!((a - b).abs() < 1e-9, "seed {seed} eps {eps}: {a} vs {b}");
        }
    }
}

/// The special benchmarks reproduce the paper's headline Table 2 behaviour.
#[test]
fn table2_shapes_hold() {
    // p1 at eps = 0: the perf ratio approaches N (paper: 3.88).
    let p1 = Benchmark::P1.build();
    let r0 = bkrus(&p1, 0.0).unwrap().cost() / mst_tree(&p1).cost();
    assert!(r0 > 3.0, "p1@0 perf ratio {r0}");
    // ... and collapses to ~1 by eps = 0.2 (paper: 1.00).
    let r02 = bkrus(&p1, 0.2).unwrap().cost() / mst_tree(&p1).cost();
    assert!(r02 < 1.1, "p1@0.2 perf ratio {r02}");

    // p2 at eps = 0.2: BPRIM pays visibly more than BKRUS (paper: 1.95 vs
    // 1.17).
    let p2 = Benchmark::P2.build();
    let bk = bkrus(&p2, 0.2).unwrap().cost();
    let pb = bprim(&p2, 0.2).unwrap().cost();
    assert!(pb > bk * 1.1, "p2@0.2: bprim {pb} vs bkrus {bk}");
}

/// The empirical headline of the paper's abstract: BKRUS cost stays within
/// ~1.19x of the optimal BMST (we allow 1.30 for our instance family).
#[test]
fn bkrus_close_to_optimum() {
    let mut worst: f64 = 1.0;
    for seed in 0..10 {
        let net = random_net(8, 300 + seed);
        for eps in [0.1, 0.3] {
            let heur = bkrus(&net, eps).unwrap().cost();
            let opt = gabow_bmst(&net, eps).unwrap().cost();
            worst = worst.max(heur / opt);
        }
    }
    // The deterministic in-tree RNG shim (crates/shims/rand) defines this
    // instance family; its worst observed ratio is 1.2840, so the allowance
    // is 1.30 (the paper's table averages ~1.19 on its own random suite).
    assert!(worst <= 1.30, "worst BKRUS/opt ratio {worst}");
}

/// LUB windows that include the plain upper-bound case agree with BKRUS,
/// and infeasible windows error out instead of returning bad trees.
#[test]
fn lub_consistency() {
    for seed in 0..4 {
        let net = random_net(7, 400 + seed);
        let plain = bkrus(&net, 0.5).unwrap();
        let windowed = lub_bkrus(&net, 0.0, 0.5).unwrap();
        assert!((plain.cost() - windowed.cost()).abs() < 1e-9);
        // An impossible window: every path in [2R, 2R] while some sink sits
        // at distance < R; spanning detours can't stretch arbitrarily.
        if let Ok(t) = lub_bkrus(&net, 2.0, 1.0) {
            // If it *did* find one, it must actually satisfy the window.
            let r = net.source_radius();
            for v in net.sinks() {
                assert!(t.dist_from_root(v) >= 2.0 * r - 1e-9);
            }
        }
    }
}

/// Steiner trees never cost more than the BKRUS spanning tree on average
/// and can undercut the MST.
#[test]
fn steiner_beats_spanning_on_average() {
    let eps = 0.3;
    let mut st_total = 0.0;
    let mut bk_total = 0.0;
    let mut undercuts = 0;
    for seed in 0..10 {
        let net = random_net(8, 500 + seed);
        let st = bkst(&net, eps).unwrap().wirelength();
        st_total += st;
        bk_total += bkrus(&net, eps).unwrap().cost();
        if st < mst_tree(&net).cost() - 1e-9 {
            undercuts += 1;
        }
    }
    assert!(st_total < bk_total);
    assert!(
        undercuts >= 3,
        "only {undercuts}/10 Steiner trees beat the MST"
    );
}
