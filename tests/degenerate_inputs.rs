//! Failure-injection and degenerate-input tests across the whole stack:
//! every public construction must either route correctly or fail with a
//! typed error — never panic, never return an out-of-contract tree.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats

use bmst_core::{
    bkex, bkh2, bkrus, bkrus_elmore, bprim, brbc, gabow_bmst, lub_bkrus, mst_tree, prim_dijkstra,
    spt_tree, BkexConfig, BmstError,
};
use bmst_geom::{GeomError, Metric, Net, Point};
use bmst_steiner::bkst;
use bmst_tree::ElmoreParams;

/// Nets every algorithm must digest: single terminal, one sink, coincident
/// sinks, fully collinear, extreme coordinates, and a zero-radius cluster
/// with one outlier.
fn degenerate_nets() -> Vec<(&'static str, Net)> {
    vec![
        (
            "single",
            Net::with_source_first(vec![Point::new(3.0, 3.0)]).unwrap(),
        ),
        (
            "one-sink",
            Net::with_source_first(vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)]).unwrap(),
        ),
        (
            "coincident-sinks",
            Net::with_source_first(vec![
                Point::new(0.0, 0.0),
                Point::new(5.0, 5.0),
                Point::new(5.0, 5.0),
                Point::new(5.0, 5.0),
            ])
            .unwrap(),
        ),
        (
            "collinear",
            Net::with_source_first((0..7).map(|i| Point::new(i as f64 * 2.0, 0.0)).collect())
                .unwrap(),
        ),
        (
            "huge-coordinates",
            Net::with_source_first(vec![
                Point::new(1e12, -1e12),
                Point::new(1e12 + 5.0, -1e12),
                Point::new(1e12, -1e12 + 7.0),
            ])
            .unwrap(),
        ),
        (
            "sink-on-source",
            Net::with_source_first(vec![
                Point::new(2.0, 2.0),
                Point::new(2.0, 2.0),
                Point::new(9.0, 2.0),
            ])
            .unwrap(),
        ),
    ]
}

#[test]
fn every_construction_survives_degenerate_nets() {
    for (name, net) in degenerate_nets() {
        for eps in [0.0, 0.5, f64::INFINITY] {
            let bound = net.path_bound(eps) + 1e-6;
            let check = |alg: &str, tree: &bmst_tree::RoutingTree| {
                assert!(tree.is_spanning(), "{name}/{alg}/{eps}");
                assert!(
                    tree.max_dist_from_root(net.sinks()) <= bound,
                    "{name}/{alg}/{eps}"
                );
            };
            check("bkrus", &bkrus(&net, eps).unwrap());
            check("bkh2", &bkh2(&net, eps).unwrap());
            check("bprim", &bprim(&net, eps).unwrap());
            check("brbc", &brbc(&net, eps).unwrap());
            check("bkex", &bkex(&net, eps, BkexConfig::default()).unwrap());
            if net.len() <= 7 {
                check("gabow", &gabow_bmst(&net, eps).unwrap());
            }
            check("pd", &prim_dijkstra(&net, 0.5).unwrap());
            check("mst", &mst_tree(&net));
            check("spt", &spt_tree(&net));

            let st = bkst(&net, eps).unwrap();
            assert!(st.terminal_radius() <= bound, "{name}/bkst/{eps}");
            for t in 0..net.len() {
                assert!(st.tree.is_covered(t), "{name}/bkst/{eps}: terminal {t}");
            }
        }
    }
}

#[test]
fn elmore_constructions_survive_degenerate_nets() {
    for (name, net) in degenerate_nets() {
        let params = ElmoreParams::uniform_loads(net.len(), net.source(), 0.1, 0.1, 50.0, 1.0, 1.0);
        // A strong driver makes even eps = 0.5 widely feasible; where the
        // scan dead-ends the error must be typed, not a panic.
        match bkrus_elmore(&net, 0.5, &params) {
            Ok(t) => assert!(t.is_spanning(), "{name}"),
            Err(BmstError::Infeasible { .. }) => {}
            Err(e) => panic!("{name}: unexpected error {e}"),
        }
    }
}

#[test]
fn invalid_parameters_fail_typed() {
    let net = Net::with_source_first(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]).unwrap();
    for bad in [-0.5, f64::NAN, f64::NEG_INFINITY] {
        assert!(
            matches!(bkrus(&net, bad), Err(BmstError::InvalidEpsilon { .. })),
            "{bad}"
        );
        assert!(
            matches!(bkst(&net, bad), Err(BmstError::InvalidEpsilon { .. })),
            "{bad}"
        );
        assert!(
            matches!(bprim(&net, bad), Err(BmstError::InvalidEpsilon { .. })),
            "{bad}"
        );
    }
    // LUB with inverted window.
    assert!(matches!(
        lub_bkrus(&net, 5.0, 0.0),
        Err(BmstError::EmptyBoundWindow { .. })
    ));
    // Steiner on Euclidean nets.
    let l2 = Net::new(
        vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)],
        0,
        Metric::L2,
    )
    .unwrap();
    assert!(matches!(
        bkst(&l2, 0.5),
        Err(BmstError::UnsupportedMetric { .. })
    ));
}

#[test]
fn geometry_validation_is_airtight() {
    assert_eq!(Net::with_source_first(vec![]), Err(GeomError::EmptyNet));
    assert!(matches!(
        Net::with_source_first(vec![Point::new(f64::INFINITY, 0.0)]),
        Err(GeomError::NonFinitePoint { index: 0 })
    ));
    assert!(matches!(
        Net::new(vec![Point::ORIGIN], 7, Metric::L1),
        Err(GeomError::SourceOutOfBounds { .. })
    ));
}

/// L2 nets route through every spanning construction (the paper formulates
/// BMST for both metrics; only the Steiner grid is L1-specific).
#[test]
fn euclidean_metric_supported_by_spanning_algorithms() {
    let net = Net::new(
        vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 4.0),
            Point::new(-4.0, 3.0),
            Point::new(5.0, -1.0),
        ],
        0,
        Metric::L2,
    )
    .unwrap();
    for eps in [0.0, 0.3] {
        let bound = net.path_bound(eps) + 1e-9;
        for tree in [
            bkrus(&net, eps).unwrap(),
            bkh2(&net, eps).unwrap(),
            bprim(&net, eps).unwrap(),
            brbc(&net, eps).unwrap(),
            gabow_bmst(&net, eps).unwrap(),
        ] {
            assert!(tree.is_spanning());
            assert!(tree.max_dist_from_root(net.sinks()) <= bound);
        }
    }
}
