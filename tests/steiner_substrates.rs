//! Cross-validation of the two §3.3 Steiner substrates: the direct Hanan
//! L-path construction and the general routing-graph construction must
//! agree qualitatively on unobstructed instances.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats

use bmst_instances::random_net;
use bmst_steiner::{bkst, bkst_on_graph, RoutingGraph};

#[test]
fn graph_and_hanan_bkst_agree_on_open_ground() {
    for seed in 0..5 {
        let net = random_net(7, 3100 + seed);
        let eps = 0.4;

        let hanan = bkst(&net, eps).unwrap();

        let graph = RoutingGraph::grid(net.points());
        let source = graph.locate(net.point(net.source())).unwrap();
        let sinks: Vec<usize> = net
            .sinks()
            .map(|v| graph.locate(net.point(v)).unwrap())
            .collect();
        let on_graph = bkst_on_graph(&graph, source, &sinks, eps).unwrap();

        // Same bound semantics (graph distance == Manhattan on open ground).
        let bound = net.path_bound(eps) + 1e-9;
        assert!(hanan.terminal_radius() <= bound, "seed {seed}: hanan");
        assert!(
            on_graph.tree.max_dist_from_root(1..=sinks.len()) <= bound,
            "seed {seed}: graph"
        );

        // Construction order differs (graph routes may stair-step), so the
        // costs need not be identical — but both are Steiner trees of the
        // same terminals under the same bound, and must be within a modest
        // factor of each other.
        let a = hanan.wirelength();
        let b = on_graph.wirelength();
        assert!(
            (a - b).abs() <= 0.35 * a.max(b),
            "seed {seed}: hanan {a} vs graph {b}"
        );
    }
}

#[test]
fn graph_bkst_never_beats_graph_shortest_paths() {
    // Sanity floor: no tree can connect a sink shorter than its shortest
    // path in the routing graph.
    for seed in 0..5 {
        let net = random_net(6, 3200 + seed);
        let graph = RoutingGraph::grid(net.points());
        let source = graph.locate(net.point(net.source())).unwrap();
        let sinks: Vec<usize> = net
            .sinks()
            .map(|v| graph.locate(net.point(v)).unwrap())
            .collect();
        let st = bkst_on_graph(&graph, source, &sinks, 1.0).unwrap();
        let sp = graph.shortest_paths(source);
        for (i, &t) in sinks.iter().enumerate() {
            assert!(
                st.tree.dist_from_root(i + 1) + 1e-9 >= sp.dist[t],
                "seed {seed} sink {i}"
            );
        }
    }
}
