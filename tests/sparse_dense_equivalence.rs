//! Sparse/dense edge-supply equivalence: the lazy neighbor-index supply
//! must be an *exact* drop-in for the dense matrix — identical distances,
//! identical edge stream order, identical trees from every registered
//! builder. Property-tested over random lattice nets (lots of ties, the
//! hardest case for a total order).

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats

use bmst_core::{registry, EdgeSupply, ProblemContext};
use bmst_geom::{Net, Point};
use bmst_tree::RoutingTree;
use proptest::prelude::*;

/// Same strategy shape as `proptest_invariants`: small integer lattice
/// scaled by 0.5 hits many exactly-equal distances, stressing tie-breaks.
fn arb_net() -> impl Strategy<Value = Net> {
    proptest::collection::vec((0i32..40, 0i32..40), 2..=12).prop_filter_map(
        "needs >= 2 distinct points",
        |coords| {
            let pts: Vec<Point> = coords
                .iter()
                .map(|&(x, y)| Point::new(f64::from(x) * 0.5, f64::from(y) * 0.5))
                .collect();
            let net = Net::with_source_first(pts).ok()?;
            (net.source_radius() > 0.0).then_some(net)
        },
    )
}

fn arb_eps() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0),
        Just(0.1),
        Just(0.5),
        Just(1.0),
        Just(f64::INFINITY)
    ]
}

fn trees_bit_identical(a: &RoutingTree, b: &RoutingTree) -> Result<(), String> {
    if a.universe() != b.universe() || a.root() != b.root() {
        return Err("shape differs".into());
    }
    for v in 0..a.universe() {
        if a.parent(v) != b.parent(v) {
            return Err(format!("parent of {v} differs"));
        }
        let (da, db) = (a.dist_from_root(v), b.dist_from_root(v));
        if da.to_bits() != db.to_bits() && !(da.is_infinite() && db.is_infinite()) {
            return Err(format!("dist_from_root({v}) differs: {da} vs {db}"));
        }
    }
    if a.cost().to_bits() != b.cost().to_bits() {
        return Err(format!("cost differs: {} vs {}", a.cost(), b.cost()));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On-demand `dist(i, j)` returns the same bits as the dense matrix
    /// for every pair, in both supply modes.
    #[test]
    fn on_demand_distance_matches_matrix(net in arb_net()) {
        let sparse = ProblemContext::new(&net, 0.5)
            .unwrap()
            .with_edge_supply(EdgeSupply::Sparse);
        let dense = ProblemContext::new(&net, 0.5)
            .unwrap()
            .with_edge_supply(EdgeSupply::Dense);
        let matrix = dense.matrix();
        for i in 0..net.len() {
            for (j, &expected) in matrix.row(i).iter().enumerate() {
                prop_assert_eq!(
                    sparse.dist(i, j).to_bits(),
                    expected.to_bits(),
                    "dist({}, {}) differs from the matrix", i, j
                );
                prop_assert_eq!(dense.dist(i, j).to_bits(), expected.to_bits());
            }
        }
    }

    /// The lazy expanding-window stream yields exactly the dense sorted
    /// edge list: same edges, same canonical order, same weight bits.
    #[test]
    fn edge_stream_order_matches_sorted_edges(net in arb_net()) {
        let sparse = ProblemContext::new(&net, 0.5)
            .unwrap()
            .with_edge_supply(EdgeSupply::Sparse);
        let dense = ProblemContext::new(&net, 0.5)
            .unwrap()
            .with_edge_supply(EdgeSupply::Dense);
        let streamed: Vec<_> = sparse.edge_stream().collect();
        let sorted = dense.sorted_edges();
        prop_assert_eq!(streamed.len(), sorted.len(), "edge count differs");
        for (k, (s, d)) in streamed.iter().zip(sorted).enumerate() {
            prop_assert_eq!((s.u, s.v), (d.u, d.v), "edge {} endpoints differ", k);
            prop_assert_eq!(
                s.weight.to_bits(),
                d.weight.to_bits(),
                "edge {} weight differs", k
            );
        }
    }

    /// Every registered builder produces a bit-identical tree whichever
    /// supply feeds it. Builders that reject the instance (e.g. an
    /// infeasible Elmore bound at this eps) must reject under both.
    #[test]
    fn registry_builders_agree_across_supplies(net in arb_net(), eps in arb_eps()) {
        let dense_cx = ProblemContext::new(&net, eps)
            .unwrap()
            .with_edge_supply(EdgeSupply::Dense);
        let sparse_cx = ProblemContext::new(&net, eps)
            .unwrap()
            .with_edge_supply(EdgeSupply::Sparse);
        for builder in registry() {
            let name = builder.descriptor().name;
            let dense = builder.build(&dense_cx);
            let sparse = builder.build(&sparse_cx);
            match (dense, sparse) {
                (Ok(d), Ok(s)) => {
                    let outcome = trees_bit_identical(&d, &s);
                    prop_assert!(
                        outcome.is_ok(),
                        "{}: {}", name, outcome.unwrap_err()
                    );
                }
                (Err(_), Err(_)) => {}
                (d, s) => {
                    prop_assert!(
                        false,
                        "{}: feasibility diverged (dense ok={}, sparse ok={})",
                        name, d.is_ok(), s.is_ok()
                    );
                }
            }
        }
    }
}
