//! Adversarial-input fuzz harness (fixed-seed, CI-bounded): throws
//! degenerate geometry — coincident points, collinear clusters, extreme
//! aspect ratios and coordinates — combined with tiny/huge eps at every
//! builder in the full registry through the fault-isolated
//! `TreeBuilder::try_build` path.
//!
//! The contract under fuzz: **no panic, ever**. Each attempt either
//! returns a tree that passes the structural auditor and sits inside the
//! geometric window, or a typed, recoverable error — never
//! `BmstError::Internal`, which is reserved for caught panics and
//! invariant violations (i.e. real bugs).

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats

use bmst_core::{audit_construction, BmstError, CostClass, ProblemContext};
use bmst_geom::{Net, Point};
use proptest::prelude::*;

/// Degenerate point clouds by family. Coordinates come off integer
/// lattices (ties and exact coincidences everywhere), then each family
/// warps them into its own pathology.
fn arb_degenerate_net() -> impl Strategy<Value = Net> {
    let lattice = proptest::collection::vec((0i32..6, 0i32..6), 1..=9);
    (0usize..5, lattice).prop_map(|(family, coords)| {
        let pts: Vec<Point> = coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| {
                let (x, y) = (f64::from(x), f64::from(y));
                match family {
                    // Everything piled on (almost) one spot.
                    0 => Point::new(3.0 + if i % 3 == 0 { 0.0 } else { x * 1e-9 }, 3.0),
                    // Collinear cluster on the x axis.
                    1 => Point::new(x * 2.0 + y * 12.0, 0.0),
                    // Extreme aspect ratio: a wire-shaped net.
                    2 => Point::new(x * 1e6, y * 1e-6),
                    // Huge offset far from the origin.
                    3 => Point::new(1e12 + x, -1e12 + y),
                    // The raw lattice: dense ties and duplicates.
                    _ => Point::new(x, y),
                }
            })
            .collect();
        Net::with_source_first(pts).expect("lattice coordinates are finite")
    })
}

/// Tiny, huge, zero, and unbounded eps — the window extremes.
fn arb_eps() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0),
        Just(1e-12),
        Just(0.07),
        Just(0.5),
        Just(1e9),
        Just(f64::INFINITY),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The registry-wide no-panic / typed-error / audit-clean contract.
    #[test]
    fn registry_survives_degenerate_geometry(net in arb_degenerate_net(), eps in arb_eps()) {
        let cx = match ProblemContext::new(&net, eps) {
            Ok(cx) => cx,
            Err(e) => {
                // Only an eps problem may reject context construction.
                prop_assert!(matches!(e, BmstError::InvalidEpsilon { .. }), "{e:?}");
                return Ok(());
            }
        };
        for &builder in bmst_steiner::full_registry() {
            let d = builder.descriptor();
            if d.cost_class == CostClass::Exact && net.len() > 7 {
                continue; // exponential enumeration: keep the sweep bounded
            }
            match builder.try_build(&cx) {
                Ok(tree) => {
                    // A returned tree must be structurally sound. The
                    // window itself was already enforced by try_build's
                    // post-check; the auditor re-verifies structure,
                    // path tables, and merge bookkeeping.
                    if let Err(v) = audit_construction(&net, &tree, None) {
                        prop_assert!(false, "{}: audit violation {v}", d.name);
                    }
                }
                Err(BmstError::Internal { detail }) => {
                    prop_assert!(false, "{}: internal error (panic or invariant): {detail}", d.name);
                }
                Err(_) => {} // typed rejection: exactly what the contract asks
            }
        }
    }
}
