//! The profiling layer must be a pure observer: installing a
//! [`SpanTreeRecorder`] (and, under `--features alloc-profile`, the counting
//! global allocator) must leave every routing output bit-for-bit identical,
//! and the span-tree profile itself must be deterministic across `--jobs N`
//! thanks to record-time worker-path normalization.
#![allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic

use std::sync::Arc;

use bmst_instances::{scaled_net, ScaleStyle};
use bmst_obs::SpanTreeRecorder;
use bmst_router::{Criticality, NamedNet, Netlist, RouterConfig};

// When the workspace is tested with `--features alloc-profile`, this test
// binary itself runs under the counting allocator, so the bit-parity
// assertions below also prove the allocator hook changes nothing.
#[cfg(feature = "alloc-profile")]
#[global_allocator]
static ALLOC: bmst_obs::alloc::CountingAlloc = bmst_obs::alloc::CountingAlloc;

/// A netlist big enough that `route_parallel` actually spawns workers
/// (default `parallel_min_terminals` is 64; this is 6 nets x 41 terminals).
fn test_netlist() -> Netlist {
    let nets = (0..6usize)
        .map(|i| {
            let seed = 0xBEEF + u64::try_from(i).unwrap();
            let net = scaled_net(40, seed, ScaleStyle::ALL[i % 3]);
            NamedNet::new(format!("net{i}"), net, Criticality::Normal)
        })
        .collect();
    Netlist::new(nets)
}

#[test]
fn span_tree_recorder_leaves_routing_bit_identical() {
    let netlist = test_netlist();
    let config = RouterConfig::default();

    let baseline = netlist.route(&config).to_json().to_string();

    let rec = Arc::new(SpanTreeRecorder::new());
    let profiled = {
        let _guard = bmst_obs::scoped(rec.clone());
        netlist.route(&config).to_json().to_string()
    };

    assert_eq!(baseline, profiled, "profiling must not perturb routing");
    // ... and the profile must have actually observed the run.
    let node = rec.node("router.net").expect("per-net span recorded");
    assert_eq!(node.count, 6);
    assert!(rec.summary().counter("bkrus.edges_scanned") > 0);
}

#[test]
fn profile_path_counts_identical_serial_vs_parallel() {
    let netlist = test_netlist();
    let config = RouterConfig::default();

    let serial_rec = Arc::new(SpanTreeRecorder::new());
    let serial = {
        let _guard = bmst_obs::scoped(serial_rec.clone());
        netlist.route(&config).to_json().to_string()
    };

    for jobs in [2, 4, 8] {
        let par_rec = Arc::new(SpanTreeRecorder::new());
        let parallel = {
            let _guard = bmst_obs::scoped(par_rec.clone());
            netlist.route_parallel(&config, jobs).to_json().to_string()
        };
        assert_eq!(serial, parallel, "jobs={jobs} output differs from serial");
        assert_eq!(
            serial_rec.path_counts(),
            par_rec.path_counts(),
            "jobs={jobs} span-tree paths differ from serial"
        );
        // Normalization must have erased every worker suffix.
        assert!(
            par_rec.nodes().iter().all(|(p, _)| !p.contains(".w")),
            "worker suffixes leaked into the profile"
        );
    }
}

#[test]
fn folded_profile_covers_the_routing_stack() {
    let netlist = test_netlist();
    let rec = Arc::new(SpanTreeRecorder::new());
    {
        let _guard = bmst_obs::scoped(rec.clone());
        let _ = netlist.route(&RouterConfig::default());
    }
    let folded = rec.render_folded();
    // Every line is `path;seg;...;seg <micros>`.
    for line in folded.lines() {
        let (stack, micros) = line.rsplit_once(' ').expect("folded line shape");
        assert!(!stack.is_empty());
        micros.parse::<u64>().expect("numeric self-micros");
    }
    assert!(
        folded
            .lines()
            .any(|l| l.starts_with("router.net;") || l.starts_with("router.net ")),
        "router.net missing from folded output: {folded}"
    );
}
