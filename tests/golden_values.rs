//! Golden regression values: fixed seeds, exact expected costs.
//!
//! Every algorithm in the workspace is deterministic, so any change to
//! these numbers means the *algorithm* changed — deliberately or not. The
//! values were recorded from the initial release build; update them only
//! with an explanation of what changed and why that is correct.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats

use bmst_core::{bkh2, bkrus, bprim, brbc, mst_tree, spt_tree};
use bmst_instances::random_net;
use bmst_steiner::bkst;

/// (seed, mst, spt, bkrus@0.2, bkh2@0.2, bprim@0.2, brbc@0.2, bkst@0.2)
type GoldenRow = (u64, f64, f64, f64, f64, f64, f64, f64);

// Recorded against the deterministic in-tree RNG shim (crates/shims/rand,
// xoshiro256++): the offline build resolves `rand` to that shim, so the
// seeded instances — and therefore these costs — changed from the original
// crates.io-rand recording. Regenerated 2026-08 from a fresh run; the
// cross-algorithm orderings the paper reports (mst <= bkh2 <= bkrus,
// brbc <= spt, bkst below mst) still hold on every row.
const GOLDEN: [GoldenRow; 3] = [
    (
        11,
        258.7525128263,
        679.7426557960,
        287.4702165082,
        287.4702165082,
        373.2825582613,
        610.6731904725,
        275.7575859815,
    ),
    (
        22,
        198.5227927460,
        389.7772895531,
        260.1175798830,
        251.5621561693,
        291.5056272397,
        389.7772895531,
        208.8884978168,
    ),
    (
        33,
        236.1455694374,
        547.8691613617,
        236.1455694374,
        236.1455694374,
        252.1670010392,
        547.8691613617,
        227.1043575584,
    ),
];

const TOL: f64 = 1e-6;

#[test]
fn algorithm_outputs_are_stable() {
    for &(seed, mst, spt, bk, h2, bp, br, st) in &GOLDEN {
        let net = random_net(9, seed);
        let eps = 0.2;
        assert!((mst_tree(&net).cost() - mst).abs() < TOL, "mst seed {seed}");
        assert!((spt_tree(&net).cost() - spt).abs() < TOL, "spt seed {seed}");
        assert!(
            (bkrus(&net, eps).unwrap().cost() - bk).abs() < TOL,
            "bkrus seed {seed}"
        );
        assert!(
            (bkh2(&net, eps).unwrap().cost() - h2).abs() < TOL,
            "bkh2 seed {seed}"
        );
        assert!(
            (bprim(&net, eps).unwrap().cost() - bp).abs() < TOL,
            "bprim seed {seed}"
        );
        assert!(
            (brbc(&net, eps).unwrap().cost() - br).abs() < TOL,
            "brbc seed {seed}"
        );
        assert!(
            (bkst(&net, eps).unwrap().wirelength() - st).abs() < TOL,
            "bkst seed {seed}"
        );
    }
}

#[test]
fn benchmark_builders_are_stable() {
    use bmst_instances::Benchmark;
    // Characteristic values of the rebuilt special benchmarks; these anchor
    // the Table 1 reproduction.
    let p1 = Benchmark::P1.build();
    assert!((p1.source_radius() - 20.4).abs() < 1e-9);
    assert!((p1.source_nearest() - 20.0).abs() < 1e-9);
    let p4 = Benchmark::P4.build();
    assert!((p4.source_radius() - 10.4).abs() < 1e-9);
    assert!((p4.source_nearest() - 5.8).abs() < 1e-9);
}
