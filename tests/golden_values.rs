//! Golden regression values: fixed seeds, exact expected costs.
//!
//! Every algorithm in the workspace is deterministic, so any change to
//! these numbers means the *algorithm* changed — deliberately or not. The
//! values were recorded from the initial release build; update them only
//! with an explanation of what changed and why that is correct.

use bmst_core::{bkh2, bkrus, bprim, brbc, mst_tree, spt_tree};
use bmst_instances::random_net;
use bmst_steiner::bkst;

/// (seed, mst, spt, bkrus@0.2, bkh2@0.2, bprim@0.2, brbc@0.2, bkst@0.2)
type GoldenRow = (u64, f64, f64, f64, f64, f64, f64, f64);

const GOLDEN: [GoldenRow; 3] = [
    (
        11,
        219.9189246550,
        543.2251846240,
        278.0062618983,
        240.3616694532,
        265.6726828739,
        543.2251846240,
        227.9909703320,
    ),
    (
        22,
        281.9641349640,
        537.3212453640,
        287.4950841042,
        287.4950841042,
        292.9498338109,
        537.3212453640,
        281.7886308552,
    ),
    (
        33,
        239.2197346246,
        502.0298269443,
        239.2197346246,
        239.2197346246,
        279.5326326004,
        418.7266583535,
        225.2440984053,
    ),
];

const TOL: f64 = 1e-6;

#[test]
fn algorithm_outputs_are_stable() {
    for &(seed, mst, spt, bk, h2, bp, br, st) in &GOLDEN {
        let net = random_net(9, seed);
        let eps = 0.2;
        assert!((mst_tree(&net).cost() - mst).abs() < TOL, "mst seed {seed}");
        assert!((spt_tree(&net).cost() - spt).abs() < TOL, "spt seed {seed}");
        assert!((bkrus(&net, eps).unwrap().cost() - bk).abs() < TOL, "bkrus seed {seed}");
        assert!((bkh2(&net, eps).unwrap().cost() - h2).abs() < TOL, "bkh2 seed {seed}");
        assert!((bprim(&net, eps).unwrap().cost() - bp).abs() < TOL, "bprim seed {seed}");
        assert!((brbc(&net, eps).unwrap().cost() - br).abs() < TOL, "brbc seed {seed}");
        assert!(
            (bkst(&net, eps).unwrap().wirelength() - st).abs() < TOL,
            "bkst seed {seed}"
        );
    }
}

#[test]
fn benchmark_builders_are_stable() {
    use bmst_instances::Benchmark;
    // Characteristic values of the rebuilt special benchmarks; these anchor
    // the Table 1 reproduction.
    let p1 = Benchmark::P1.build();
    assert!((p1.source_radius() - 20.4).abs() < 1e-9);
    assert!((p1.source_nearest() - 20.0).abs() < 1e-9);
    let p4 = Benchmark::P4.build();
    assert!((p4.source_radius() - 10.4).abs() < 1e-9);
    assert!((p4.source_nearest() - 5.8).abs() < 1e-9);
}
