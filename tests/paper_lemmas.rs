//! Tests for the paper's formal claims (lemmas and worked examples).

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats

use bmst_core::forest::KruskalForest;
use bmst_core::{bkrus, bkrus_trace, preprocess_edges, EdgeDecision, PathConstraint};
use bmst_geom::{le_tol, Net, Point};
use bmst_graph::Edge;
use bmst_instances::random_net;

/// Lemma 3.1: once BKRUS rejects an edge for the bound, that edge can never
/// become feasible later. We verify it operationally: replay the
/// construction, and at every later step re-test each bound-rejected edge
/// against the current forest — it must still be infeasible.
#[test]
fn lemma_3_1_rejected_edges_stay_rejected() {
    for seed in 0..6 {
        let net = random_net(9, 900 + seed);
        for eps in [0.0, 0.1, 0.3] {
            let (_, trace) = bkrus_trace(&net, eps).unwrap();
            let bound = net.path_bound(eps);
            let d = net.distance_matrix();
            let dist_s: Vec<f64> = (0..net.len()).map(|v| d[(net.source(), v)]).collect();

            // Replay: maintain the forest; after each accepted merge, every
            // previously bound-rejected edge must still fail the test
            // (unless its endpoints have meanwhile merged — then it is a
            // cycle edge, also unusable).
            let mut forest = KruskalForest::new(net.len(), net.source());
            let mut rejected: Vec<Edge> = Vec::new();
            for ev in &trace {
                match ev.decision {
                    EdgeDecision::RejectedBound => rejected.push(ev.edge),
                    EdgeDecision::RejectedCycle => {}
                    EdgeDecision::Accepted => {
                        forest.merge(ev.edge.u, ev.edge.v, ev.edge.weight);
                        for e in &rejected {
                            if forest.same_component(e.u, e.v) {
                                continue; // now a cycle edge
                            }
                            assert!(
                                !forest.is_feasible_merge(e.u, e.v, e.weight, &dist_s, bound),
                                "seed {seed} eps {eps}: rejected edge {e} became feasible"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// The paper (§5): "BKT is a local optimum with respect to a single
/// T-exchange" — no single feasible exchange lowers its cost.
#[test]
fn bkt_is_single_exchange_local_optimum() {
    for seed in 0..6 {
        let net = random_net(8, 950 + seed);
        for eps in [0.1, 0.4] {
            let tree = bkrus(&net, eps).unwrap();
            let bound = net.path_bound(eps);
            let d = net.distance_matrix();
            let n = net.len();
            for x in 0..n {
                for y in (x + 1)..n {
                    if tree.contains_edge(x, y) {
                        continue;
                    }
                    // Every cycle edge that could be removed:
                    for w in tree.path_nodes(x, y) {
                        if tree.parent(w).is_none() {
                            continue;
                        }
                        let Ok(t2) = tree.apply_exchange(w, Edge::new(x, y, d[(x, y)])) else {
                            continue;
                        };
                        if t2.satisfies_upper_bound(bound, net.sinks()) {
                            assert!(
                                t2.cost() >= tree.cost() - 1e-9,
                                "seed {seed} eps {eps}: feasible exchange improved BKT \
                                 ({} -> {})",
                                tree.cost(),
                                t2.cost()
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Lemma 4.1/4.2 soundness: preprocessing never removes *all* optimal
/// solutions — the optimum over the kept edge set equals the optimum over
/// the full edge set (checked by brute force on tiny nets).
#[test]
fn preprocessing_preserves_the_optimum() {
    use bmst_tree::RoutingTree;

    fn brute_opt(net: &Net, edges: &[Edge], bound: f64) -> Option<f64> {
        let n = net.len();
        let m = edges.len();
        let mut best: Option<f64> = None;
        for mask in 0u32..(1 << m) {
            if mask.count_ones() as usize != n - 1 {
                continue;
            }
            let chosen: Vec<Edge> = (0..m)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| edges[i])
                .collect();
            if let Ok(t) = RoutingTree::from_edges(n, net.source(), chosen) {
                if t.is_spanning() && t.satisfies_upper_bound(bound, net.sinks()) {
                    best = Some(best.map_or(t.cost(), |b: f64| b.min(t.cost())));
                }
            }
        }
        best
    }

    for seed in 0..6 {
        let net = random_net(4, 980 + seed);
        for eps in [0.0, 0.2, 0.6] {
            let constraint = PathConstraint::from_eps(&net, eps).unwrap();
            let all = bmst_graph::complete_edges(&net.distance_matrix());
            let (kept, forced) = preprocess_edges(&net, constraint);
            let full = brute_opt(&net, &all, constraint.upper);
            let pruned = brute_opt(&net, &kept, constraint.upper);
            assert_eq!(
                full.is_some(),
                pruned.is_some(),
                "seed {seed} eps {eps}: feasibility changed"
            );
            if let (Some(f), Some(p)) = (full, pruned) {
                assert!(
                    (f - p).abs() < 1e-9,
                    "seed {seed} eps {eps}: optimum changed {f} -> {p}"
                );
            }
            // Forced edges (Lemma 4.3) appear in every feasible tree: verify
            // the optimum is achievable using them.
            for e in &forced {
                assert!(kept.iter().any(|k| k.endpoints() == e.endpoints()));
            }
        }
    }
}

/// Lemma 6.1: a direct source edge shorter than the lower bound never
/// appears in a lower-bounded BKRUS tree.
#[test]
fn lemma_6_1_short_source_edges_excluded() {
    for seed in 0..6 {
        let net = random_net(8, 1100 + seed);
        let r = net.source_radius();
        let lower = 0.5 * r;
        if let Ok(tree) = bmst_core::lub_bkrus(&net, 0.5, 1.0) {
            let s = net.source();
            for e in tree.edges() {
                if e.connects(s) {
                    assert!(
                        le_tol(lower, e.weight),
                        "seed {seed}: source edge of length {} below lower bound {lower}",
                        e.weight
                    );
                }
            }
        }
    }
}

/// The paper's Figure 2 feasibility conditions, directly:
/// (3-a) with the source in one partial tree, (3-b) with the source in
/// neither. Constructed so both branches are exercised with exact numbers.
#[test]
fn feasibility_conditions_exact_values() {
    // Line: S(0) - a(1) at 4 - b(2) at 5 - c(3) at 9 (coordinates on x axis).
    let net = Net::with_source_first(vec![
        Point::new(0.0, 0.0),
        Point::new(4.0, 0.0),
        Point::new(5.0, 0.0),
        Point::new(9.0, 0.0),
    ])
    .unwrap();
    let d = net.distance_matrix();
    let dist_s: Vec<f64> = (0..4).map(|v| d[(0, v)]).collect();

    // (3-b): merge b and c away from the source: candidate x = b gives
    // dist(S,b) + (0 + 4 + 0) = 9; feasible iff bound >= 9.
    let mut f = KruskalForest::new(4, 0);
    assert!(f.is_feasible_merge(2, 3, 4.0, &dist_s, 9.0));
    assert!(!f.is_feasible_merge(2, 3, 4.0, &dist_s, 8.9));
    f.merge(2, 3, 4.0);

    // (3-a): source tree = {S, a} after merging edge (S, a); attach the
    // {b, c} tree via (a, b): path(S,a) + d(a,b) + radius(b) = 4 + 1 + 4 = 9.
    f.merge(0, 1, 4.0);
    assert!(f.is_feasible_merge(1, 2, 1.0, &dist_s, 9.0));
    assert!(!f.is_feasible_merge(1, 2, 1.0, &dist_s, 8.9));
}
