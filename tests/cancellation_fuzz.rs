//! Cancellation fuzz harness (fixed-seed, CI-bounded), mirroring
//! `tests/adversarial_fuzz.rs`: every builder in the full registry is run
//! against a `CancelToken` that fires after a random number of checks —
//! from "immediately" to "never during this run".
//!
//! The contract under cancellation: **no panic, no `Internal`, no bad
//! tree**. Each attempt either returns a tree that passes the structural
//! auditor (the token simply never fired, or the builder does not poll),
//! or a typed error — `DeadlineExceeded` when the token fired, any other
//! recoverable rejection otherwise.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats

use bmst_core::{audit_construction, BmstError, CancelToken, CostClass, ProblemContext};
use bmst_geom::{Net, Point};
use proptest::prelude::*;

/// Small stretched-lattice nets with plenty of equal-length ties — the
/// geometry that drives BKRUS/BPRIM through the most iterations (and
/// therefore the most token checks) relative to net size.
fn arb_net() -> impl Strategy<Value = Net> {
    let lattice = proptest::collection::vec((0i32..8, 0i32..8), 2..=9);
    lattice.prop_map(|coords| {
        let pts: Vec<Point> = coords
            .iter()
            .map(|&(x, y)| Point::new(f64::from(x) * 3.0, f64::from(y)))
            .collect();
        Net::with_source_first(pts).expect("lattice coordinates are finite")
    })
}

/// Token check budgets from "fires on the very first poll" to "outlives
/// any small run".
fn arb_check_budget() -> impl Strategy<Value = u64> {
    prop_oneof![Just(0u64), Just(1), Just(2), Just(5), Just(17), Just(1000)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The registry-wide contract under random-point cancellation.
    #[test]
    fn registry_survives_cancellation(
        net in arb_net(),
        eps in prop_oneof![Just(0.1), Just(0.5), Just(f64::INFINITY)],
        checks in arb_check_budget(),
    ) {
        for &builder in bmst_steiner::full_registry() {
            let d = builder.descriptor();
            if d.cost_class == CostClass::Exact && net.len() > 7 {
                continue; // exponential enumeration: keep the sweep bounded
            }
            let token = CancelToken::expire_after_checks(checks);
            let cx = ProblemContext::new(&net, eps)
                .expect("finite non-negative eps")
                .with_cancel(token.clone());
            match builder.try_build(&cx) {
                Ok(tree) => {
                    if let Err(v) = audit_construction(&net, &tree, None) {
                        prop_assert!(false, "{}: audit violation {v}", d.name);
                    }
                }
                Err(BmstError::Internal { detail }) => {
                    prop_assert!(
                        false,
                        "{}: internal error under cancellation (checks={checks}): {detail}",
                        d.name
                    );
                }
                Err(BmstError::DeadlineExceeded { .. }) => {
                    // The token fired mid-construction: exactly the typed
                    // outcome cancellation promises. It must have fired.
                    prop_assert!(token.is_cancelled(), "{}: deadline without a fired token", d.name);
                }
                Err(_) => {} // any other typed rejection is business as usual
            }
        }
    }
}
