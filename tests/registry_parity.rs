//! Golden parity tests for the builder-registry refactor.
//!
//! The bit patterns below were captured from the free-function entry points
//! *before* the constructions were refactored onto [`bmst_core::TreeBuilder`]
//! / [`bmst_core::ProblemContext`]. Both the free functions (now thin shims)
//! and the registry builders must keep reproducing them exactly — any f64
//! drift, reordering, or tie-break change fails these tests.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats

use bmst_core::{
    bkex, bkh2, bkrus, bkrus_elmore, bkrus_trace, bprim, brbc, gabow_bmst, mst_tree, prim_dijkstra,
    spt_tree, BkexConfig, ProblemContext,
};
use bmst_geom::{Net, Point};
use bmst_steiner::bkst;
use bmst_tree::{ElmoreParams, RoutingTree};

/// The paper's Figure 4 net: source at the origin, four sinks on a line/jog.
fn figure4_net() -> Net {
    Net::with_source_first(vec![
        Point::new(0.0, 0.0),
        Point::new(8.0, 0.0),
        Point::new(5.0, 0.0),
        Point::new(6.0, 1.0),
        Point::new(7.0, 1.0),
    ])
    .unwrap()
}

fn net_by_label(label: &str) -> Net {
    match label {
        "figure4" => figure4_net(),
        "cloud10" => bmst_instances::uniform_cloud(10, 100.0, 7),
        other => panic!("unknown net label {other:?}"),
    }
}

/// `eps` stand-in for the rows whose construction ignores eps entirely
/// (Prim-Dijkstra blend, MST, SPT).
const NO_EPS: f64 = f64::INFINITY;

/// `(net, eps, registry name, cost bits, radius bits)`.
/// Radius is `tree.source_radius()`; both are exact `f64::to_bits` values.
const GOLDENS: &[(&str, f64, &str, u64, u64)] = &[
    // figure4, eps = 0.0
    (
        "figure4",
        0.0,
        "bkrus",
        0x4026000000000000,
        0x4020000000000000,
    ),
    (
        "figure4",
        0.0,
        "bkh2",
        0x4026000000000000,
        0x4020000000000000,
    ),
    (
        "figure4",
        0.0,
        "bkex",
        0x4026000000000000,
        0x4020000000000000,
    ),
    (
        "figure4",
        0.0,
        "gabow",
        0x4026000000000000,
        0x4020000000000000,
    ),
    (
        "figure4",
        0.0,
        "bprim",
        0x4026000000000000,
        0x4020000000000000,
    ),
    (
        "figure4",
        0.0,
        "steiner",
        0x4026000000000000,
        0x4020000000000000,
    ),
    (
        "figure4",
        0.0,
        "brbc",
        0x403c000000000000,
        0x4020000000000000,
    ),
    (
        "figure4",
        0.0,
        "elmore-bkrus",
        0x4024000000000000,
        0x4024000000000000,
    ),
    // figure4, eps = 0.2
    (
        "figure4",
        0.2,
        "bkrus",
        0x4026000000000000,
        0x4020000000000000,
    ),
    (
        "figure4",
        0.2,
        "bkh2",
        0x4026000000000000,
        0x4020000000000000,
    ),
    (
        "figure4",
        0.2,
        "bkex",
        0x4026000000000000,
        0x4020000000000000,
    ),
    (
        "figure4",
        0.2,
        "gabow",
        0x4026000000000000,
        0x4020000000000000,
    ),
    (
        "figure4",
        0.2,
        "bprim",
        0x4026000000000000,
        0x4020000000000000,
    ),
    (
        "figure4",
        0.2,
        "steiner",
        0x4026000000000000,
        0x4020000000000000,
    ),
    (
        "figure4",
        0.2,
        "brbc",
        0x4035000000000000,
        0x4020000000000000,
    ),
    (
        "figure4",
        0.2,
        "elmore-bkrus",
        0x4024000000000000,
        0x4024000000000000,
    ),
    // figure4, eps = 0.5
    (
        "figure4",
        0.5,
        "bkrus",
        0x4024000000000000,
        0x4024000000000000,
    ),
    (
        "figure4",
        0.5,
        "bkh2",
        0x4024000000000000,
        0x4024000000000000,
    ),
    (
        "figure4",
        0.5,
        "bkex",
        0x4024000000000000,
        0x4024000000000000,
    ),
    (
        "figure4",
        0.5,
        "gabow",
        0x4024000000000000,
        0x4024000000000000,
    ),
    (
        "figure4",
        0.5,
        "bprim",
        0x4024000000000000,
        0x4024000000000000,
    ),
    (
        "figure4",
        0.5,
        "steiner",
        0x4024000000000000,
        0x4024000000000000,
    ),
    (
        "figure4",
        0.5,
        "elmore-bkrus",
        0x4024000000000000,
        0x4024000000000000,
    ),
    (
        "figure4",
        0.5,
        "brbc",
        0x4030000000000000,
        0x4020000000000000,
    ),
    // figure4, eps-independent rows
    (
        "figure4",
        NO_EPS,
        "prim-dijkstra",
        0x4026000000000000,
        0x4020000000000000,
    ),
    (
        "figure4",
        NO_EPS,
        "mst",
        0x4024000000000000,
        0x4024000000000000,
    ),
    (
        "figure4",
        NO_EPS,
        "spt",
        0x403c000000000000,
        0x4020000000000000,
    ),
    // cloud10, eps = 0.0
    (
        "cloud10",
        0.0,
        "bkrus",
        0x40748f01516d617a,
        0x405e0c1387a67b7d,
    ),
    (
        "cloud10",
        0.0,
        "bkh2",
        0x40726ea7df5dcdd4,
        0x405e0c1387a67b7d,
    ),
    (
        "cloud10",
        0.0,
        "bkex",
        0x40726ea7df5dcdd4,
        0x405e0c1387a67b7d,
    ),
    (
        "cloud10",
        0.0,
        "gabow",
        0x40726ea7df5dcdd4,
        0x405e0c1387a67b7d,
    ),
    (
        "cloud10",
        0.0,
        "bprim",
        0x407b59beee144bc5,
        0x405e0c1387a67b7d,
    ),
    (
        "cloud10",
        0.0,
        "brbc",
        0x4085af162e201758,
        0x405e0c1387a67b7d,
    ),
    (
        "cloud10",
        0.0,
        "steiner",
        0x4070d07ce25bb4ac,
        0x405e0c1387a67b7e,
    ),
    // cloud10, eps = 0.2
    (
        "cloud10",
        0.2,
        "bkrus",
        0x406da69e90bb9846,
        0x40619cbd732ad4b8,
    ),
    (
        "cloud10",
        0.2,
        "bkh2",
        0x406da69e90bb9846,
        0x40619cbd732ad4b8,
    ),
    (
        "cloud10",
        0.2,
        "bkex",
        0x406da69e90bb9846,
        0x40619cbd732ad4b8,
    ),
    (
        "cloud10",
        0.2,
        "gabow",
        0x406da69e90bb9846,
        0x40619cbd732ad4b8,
    ),
    (
        "cloud10",
        0.2,
        "bprim",
        0x407525dac1c887ab,
        0x406134c1661c99d2,
    ),
    (
        "cloud10",
        0.2,
        "brbc",
        0x40809a6086169830,
        0x405e0c1387a67b7d,
    ),
    (
        "cloud10",
        0.2,
        "steiner",
        0x406d2c6c7f527e93,
        0x4060f817bb42fb02,
    ),
    // cloud10, eps = 0.5
    (
        "cloud10",
        0.5,
        "bkrus",
        0x406da69e90bb9846,
        0x40619cbd732ad4b8,
    ),
    (
        "cloud10",
        0.5,
        "bkh2",
        0x406da69e90bb9846,
        0x40619cbd732ad4b8,
    ),
    (
        "cloud10",
        0.5,
        "bkex",
        0x406da69e90bb9846,
        0x40619cbd732ad4b8,
    ),
    (
        "cloud10",
        0.5,
        "gabow",
        0x406da69e90bb9846,
        0x40619cbd732ad4b8,
    ),
    (
        "cloud10",
        0.5,
        "bprim",
        0x406da69e90bb9846,
        0x40619cbd732ad4b8,
    ),
    (
        "cloud10",
        0.5,
        "elmore-bkrus",
        0x406da69e90bb9846,
        0x40619cbd732ad4b8,
    ),
    (
        "cloud10",
        0.5,
        "brbc",
        0x40787510f148e198,
        0x405e5d1cd7971bff,
    ),
    (
        "cloud10",
        0.5,
        "steiner",
        0x406d2c6c7f527e93,
        0x4060f817bb42fb02,
    ),
    // cloud10, eps-independent rows
    (
        "cloud10",
        NO_EPS,
        "prim-dijkstra",
        0x406da69e90bb9846,
        0x40619cbd732ad4b8,
    ),
    (
        "cloud10",
        NO_EPS,
        "mst",
        0x406da69e90bb9846,
        0x40619cbd732ad4b8,
    ),
    (
        "cloud10",
        NO_EPS,
        "spt",
        0x4085af162e201758,
        0x405e0c1387a67b7d,
    ),
];

/// Rows where the construction must *fail*: the Elmore delay window is
/// infeasible on cloud10 below eps = 0.5.
const GOLDEN_ERRS: &[(&str, f64, &str)] = &[
    ("cloud10", 0.0, "elmore-bkrus"),
    ("cloud10", 0.2, "elmore-bkrus"),
];

fn elmore_params(net: &Net) -> ElmoreParams {
    // Must match `ProblemContext::default_elmore_params`.
    ElmoreParams::uniform_loads(net.len(), net.source(), 0.1, 0.2, 1.0, 0.5, 1.0)
}

/// Runs the pre-refactor free-function entry point for a registry name.
fn free_fn(name: &str, net: &Net, eps: f64) -> Option<RoutingTree> {
    match name {
        "bkrus" => bkrus(net, eps).ok(),
        "bkh2" => bkh2(net, eps).ok(),
        "bkex" => bkex(net, eps, BkexConfig::default()).ok(),
        "gabow" => gabow_bmst(net, eps).ok(),
        "bprim" => bprim(net, eps).ok(),
        "brbc" => brbc(net, eps).ok(),
        "steiner" => bkst(net, eps).ok().map(|s| s.tree),
        "elmore-bkrus" => bkrus_elmore(net, eps, &elmore_params(net)).ok(),
        "prim-dijkstra" => prim_dijkstra(net, 0.5).ok(),
        "mst" => Some(mst_tree(net)),
        "spt" => Some(spt_tree(net)),
        other => panic!("no free function mapped for {other:?}"),
    }
}

/// Runs the registry builder for the same name on an equivalent context.
fn registry_builder(name: &str, net: &Net, eps: f64) -> Option<RoutingTree> {
    let builder =
        bmst_steiner::find_builder(name).unwrap_or_else(|| panic!("{name:?} not in the registry"));
    let cx = if eps.is_infinite() {
        ProblemContext::unbounded(net)
    } else {
        ProblemContext::new(net, eps).ok()?
    };
    builder.build(&cx).ok()
}

#[test]
fn registry_builders_reproduce_pre_refactor_bits() {
    for &(label, eps, name, cost, radius) in GOLDENS {
        let net = net_by_label(label);
        for (kind, tree) in [
            ("free fn", free_fn(name, &net, eps)),
            ("builder", registry_builder(name, &net, eps)),
        ] {
            let tree = tree.unwrap_or_else(|| panic!("{label} eps={eps} {name} ({kind}): ERR"));
            assert_eq!(
                tree.cost().to_bits(),
                cost,
                "{label} eps={eps} {name} ({kind}): cost {:016x} != {cost:016x}",
                tree.cost().to_bits()
            );
            assert_eq!(
                tree.source_radius().to_bits(),
                radius,
                "{label} eps={eps} {name} ({kind}): radius {:016x} != {radius:016x}",
                tree.source_radius().to_bits()
            );
        }
    }
}

#[test]
fn infeasible_rows_stay_infeasible() {
    for &(label, eps, name) in GOLDEN_ERRS {
        let net = net_by_label(label);
        assert!(
            free_fn(name, &net, eps).is_none(),
            "{label} eps={eps} {name} (free fn): expected ERR"
        );
        assert!(
            registry_builder(name, &net, eps).is_none(),
            "{label} eps={eps} {name} (builder): expected ERR"
        );
    }
}

/// `(u, v, weight bits, decision)` — the Figure 4 BKRUS decision sequences.
const TRACE_EPS0: &[(usize, usize, u64, &str)] = &[
    (3, 4, 0x3ff0000000000000, "Accepted"),
    (1, 4, 0x4000000000000000, "RejectedBound"),
    (2, 3, 0x4000000000000000, "Accepted"),
    (1, 2, 0x4008000000000000, "Accepted"),
    (1, 3, 0x4008000000000000, "RejectedCycle"),
    (2, 4, 0x4008000000000000, "RejectedCycle"),
    (0, 2, 0x4014000000000000, "Accepted"),
];

const TRACE_EPS05: &[(usize, usize, u64, &str)] = &[
    (3, 4, 0x3ff0000000000000, "Accepted"),
    (1, 4, 0x4000000000000000, "Accepted"),
    (2, 3, 0x4000000000000000, "Accepted"),
    (1, 2, 0x4008000000000000, "RejectedCycle"),
    (1, 3, 0x4008000000000000, "RejectedCycle"),
    (2, 4, 0x4008000000000000, "RejectedCycle"),
    (0, 2, 0x4014000000000000, "Accepted"),
];

#[test]
fn figure4_trace_sequences_are_stable() {
    let net = figure4_net();
    for (eps, cost, expected) in [
        (0.0, 0x4026000000000000u64, TRACE_EPS0),
        (0.5, 0x4024000000000000u64, TRACE_EPS05),
    ] {
        let (tree, trace) = bkrus_trace(&net, eps).unwrap();
        assert_eq!(tree.cost().to_bits(), cost, "eps={eps}");
        let got: Vec<(usize, usize, u64, String)> = trace
            .iter()
            .map(|ev| {
                (
                    ev.edge.u,
                    ev.edge.v,
                    ev.edge.weight.to_bits(),
                    format!("{:?}", ev.decision),
                )
            })
            .collect();
        let want: Vec<(usize, usize, u64, String)> = expected
            .iter()
            .map(|&(u, v, w, d)| (u, v, w, d.to_owned()))
            .collect();
        assert_eq!(got, want, "eps={eps} trace diverged");
    }
}
