//! End-to-end fault isolation (the ISSUE's acceptance scenario): a netlist
//! carrying a NaN-coordinate net, a duplicate-sink net, and an
//! infeasible-window net routes to completion — the recoverable nets
//! succeed (one via the degradation ladder, marked degraded, with its
//! relaxation trail in the obs trace), the NaN net fails with a typed
//! diagnostic, and serial vs parallel reports stay byte-identical.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats

use std::sync::Arc;

use bmst_core::{BmstError, PathConstraint, ProblemContext};
use bmst_geom::{Net, Point};
use bmst_obs::JsonLinesRecorder;
use bmst_router::{NetStatus, Netlist, RouteAlgorithm, RouterConfig};

/// The checked-in adversarial fixture (also driven by the CI smoke job
/// through the `bmst netlist` CLI).
fn adversarial_netlist() -> Netlist {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/netlists/adversarial.net"
    ))
    .unwrap();
    Netlist::from_str_block(&text).unwrap()
}

/// The plain MST pass: the one construction that actually produces an
/// infeasible first attempt on the `detour` net (the bound-aware
/// constructions would route it within the window directly).
fn mst_config() -> RouterConfig {
    RouterConfig {
        algorithm: RouteAlgorithm::from_name("mst").unwrap(),
        ..RouterConfig::default()
    }
}

#[test]
fn adversarial_netlist_routes_to_completion() {
    let nl = adversarial_netlist();
    assert_eq!(nl.nets.len(), 3);
    assert_eq!(nl.rejected.len(), 1);

    let report = nl.route(&mst_config());
    assert_eq!(report.nets.len(), 3);
    let by_name = |n: &str| report.nets.iter().find(|r| r.name == n).unwrap();

    // The infeasible-window net recovers through the ladder, not the SPT.
    let detour = by_name("detour");
    assert_eq!(detour.status(), NetStatus::Degraded);
    assert!(!detour.fallback_spt);
    assert_eq!(detour.relaxations.len(), 1);
    assert!(detour.eps > detour.requested_eps);
    assert!(detour.slack() >= -1e-9);

    // Duplicate sinks are a diagnostic, not a failure.
    assert_eq!(by_name("twin").status(), NetStatus::Ok);
    assert_eq!(by_name("good").status(), NetStatus::Ok);

    // The NaN net is a typed failure carrying its header line.
    assert_eq!(report.failures.len(), 1);
    let fail = &report.failures[0];
    assert_eq!(fail.name, "broken");
    assert_eq!(fail.index, None);
    match &fail.error {
        BmstError::DegenerateInput { detail } => {
            assert!(detail.contains("line 22"), "{detail}");
            assert!(detail.contains("non-finite"), "{detail}");
        }
        other => panic!("expected DegenerateInput, got {other:?}"),
    }
    assert!(!report.is_clean());
    assert_eq!(report.degraded_count(), 1);
}

#[test]
fn serial_and_parallel_reports_are_byte_identical() {
    let nl = adversarial_netlist();
    let cfg = mst_config();
    let serial = nl.route(&cfg);
    for jobs in [2, 4] {
        let par = nl.route_parallel(&cfg, jobs);
        assert_eq!(
            serial.to_json().to_string(),
            par.to_json().to_string(),
            "jobs={jobs}"
        );
        assert_eq!(serial.to_string(), par.to_string(), "jobs={jobs}");
    }
}

#[test]
fn relaxation_trail_lands_in_obs_trace() {
    let dir = std::env::temp_dir().join("bmst_fault_isolation");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.jsonl");
    let recorder = Arc::new(JsonLinesRecorder::create(&path).unwrap());
    {
        let _guard = bmst_obs::scoped(recorder.clone());
        let report = adversarial_netlist().route_parallel(&mst_config(), 4);
        assert_eq!(report.failures.len(), 1);
    }
    recorder.finish().unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    let has = |name: &str, net: &str| text.lines().any(|l| l.contains(name) && l.contains(net));
    assert!(has("router.relax", "detour"), "{text}");
    assert!(has("router.input_diagnostic", "twin"), "{text}");
    assert!(has("router.net_rejected", "broken"), "{text}");
}

/// Satellite conformance sweep: on a window no tree can reach, every
/// builder in the full registry — the Steiner construction included —
/// must return a typed `Infeasible`, not panic and not hand back a
/// silently out-of-window tree.
#[test]
fn every_registry_builder_reports_infeasible_on_unreachable_window() {
    // The longest possible source-sink path over these collinear points is
    // 10.2, so the explicit [15, 16] window is unreachable for any tree.
    let net = Net::with_source_first(vec![
        Point::new(0.0, 0.0),
        Point::new(10.0, 0.0),
        Point::new(10.1, 0.0),
    ])
    .unwrap();
    let constraint = PathConstraint::explicit(15.0, 16.0).unwrap();
    let cx = ProblemContext::with_constraint(&net, constraint);
    let mut checked = 0;
    for &builder in bmst_steiner::full_registry() {
        let res = builder.try_build(&cx);
        assert!(
            matches!(res, Err(BmstError::Infeasible { .. })),
            "{}: {res:?}",
            builder.descriptor().name
        );
        checked += 1;
    }
    assert!(checked >= 12, "registry unexpectedly small: {checked}");
}
