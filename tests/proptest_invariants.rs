//! Property-based tests over random geometry: structural invariants that
//! must hold for *every* input, not just the benchmarks.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats

use bmst_core::{
    audit_construction, bkh2, bkrus, bprim, brbc, gabow_bmst, lub_bkrus, mst_tree, spt_tree,
    PathConstraint,
};
use bmst_geom::{DistanceMatrix, Metric, Net, Point};
use bmst_graph::{complete_edges, kruskal_mst, prim_mst, tree_cost};
use bmst_steiner::bkst;
use proptest::prelude::*;

/// Strategy: a net of 2..=10 terminals with coordinates on a small integer
/// lattice scaled by 0.5 (keeps arithmetic well-conditioned and hits lots
/// of ties, the hardest case for deterministic orderings).
fn arb_net() -> impl Strategy<Value = Net> {
    proptest::collection::vec((0i32..40, 0i32..40), 2..=10).prop_filter_map(
        "needs >= 2 distinct points",
        |coords| {
            let pts: Vec<Point> = coords
                .iter()
                .map(|&(x, y)| Point::new(x as f64 * 0.5, y as f64 * 0.5))
                .collect();
            // Reject nets where every sink coincides with the source
            // (degenerate R = 0 makes eps meaningless).
            let net = Net::with_source_first(pts).ok()?;
            (net.source_radius() > 0.0).then_some(net)
        },
    )
}

fn arb_eps() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0),
        Just(0.1),
        Just(0.5),
        Just(1.0),
        Just(f64::INFINITY)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Prim and Kruskal agree on MST cost for any point set.
    #[test]
    fn mst_algorithms_agree(net in arb_net()) {
        let d = net.distance_matrix();
        let prim = prim_mst(&d, net.source());
        let kruskal = kruskal_mst(net.len(), &complete_edges(&d)).unwrap();
        prop_assert!((tree_cost(&prim) - tree_cost(&kruskal)).abs() < 1e-9);
    }

    /// Every heuristic spans, respects its bound, and costs at least the
    /// MST and at most the SPT... except BRBC, whose worst case exceeds the
    /// SPT (it keeps MST edges alongside shortcuts).
    #[test]
    fn heuristics_bound_and_cost_sandwich(net in arb_net(), eps in arb_eps()) {
        let bound = net.path_bound(eps) + 1e-9;
        let mst = mst_tree(&net).cost();
        let spt = spt_tree(&net).cost();
        for (name, tree) in [
            ("bkrus", bkrus(&net, eps).unwrap()),
            ("bkh2", bkh2(&net, eps).unwrap()),
            ("bprim", bprim(&net, eps).unwrap()),
            ("brbc", brbc(&net, eps).unwrap()),
        ] {
            prop_assert!(tree.is_spanning(), "{name} not spanning");
            prop_assert!(
                tree.max_dist_from_root(net.sinks()) <= bound,
                "{name} violates bound"
            );
            prop_assert!(tree.cost() >= mst - 1e-9, "{name} under MST");
            if name != "brbc" {
                prop_assert!(tree.cost() <= spt + 1e-9, "{name} over SPT: {} vs {spt}", tree.cost());
            }
        }
    }

    /// BKH2 never loses to BKRUS; the exact optimum never loses to BKH2.
    #[test]
    fn refinement_chain(net in arb_net(), eps in arb_eps()) {
        // Keep the exact method off the largest instances for speed.
        if net.len() <= 7 {
            let bk = bkrus(&net, eps).unwrap().cost();
            let h2 = bkh2(&net, eps).unwrap().cost();
            let opt = gabow_bmst(&net, eps).unwrap().cost();
            prop_assert!(h2 <= bk + 1e-9);
            prop_assert!(opt <= h2 + 1e-9);
        }
    }

    /// The Steiner tree covers all terminals within the bound and never
    /// costs more than the BKRUS spanning tree by more than rounding.
    #[test]
    fn steiner_invariants(net in arb_net(), eps in arb_eps()) {
        let st = bkst(&net, eps).unwrap();
        let bound = net.path_bound(eps) + 1e-9;
        prop_assert!(st.terminal_radius() <= bound);
        for t in 0..net.len() {
            prop_assert!(st.tree.is_covered(t));
        }
        // Terminal coordinates are preserved verbatim.
        for (i, &p) in net.points().iter().enumerate() {
            prop_assert_eq!(st.points[i], p);
        }
    }

    /// RoutingTree path queries are consistent: symmetric, zero on the
    /// diagonal, and satisfying the tree identity
    /// `path(u, v) = dist(root, u) + dist(root, v) - 2 dist(root, lca)`.
    #[test]
    fn tree_path_queries_consistent(net in arb_net()) {
        let tree = mst_tree(&net);
        let n = net.len();
        for u in 0..n {
            prop_assert!(tree.path_length(u, u).abs() < 1e-12);
            for v in (u + 1)..n {
                let a = tree.path_length(u, v);
                let b = tree.path_length(v, u);
                prop_assert!((a - b).abs() < 1e-9);
                // Path length is at least the metric distance.
                prop_assert!(a >= net.dist(u, v) - 1e-9);
                // And matches a fresh distance scan.
                let d = tree.dists_from(u);
                prop_assert!((d[v] - a).abs() < 1e-9);
            }
        }
    }

    /// Distance matrices are symmetric with zero diagonal and satisfy the
    /// triangle inequality in both metrics.
    #[test]
    fn distance_matrix_is_metric(
        coords in proptest::collection::vec((0i32..100, 0i32..100), 1..=8),
        l2 in proptest::bool::ANY,
    ) {
        let pts: Vec<Point> =
            coords.iter().map(|&(x, y)| Point::new(x as f64, y as f64)).collect();
        let metric = if l2 { Metric::L2 } else { Metric::L1 };
        let d = DistanceMatrix::from_points(&pts, metric);
        let n = pts.len();
        for i in 0..n {
            prop_assert_eq!(d[(i, i)], 0.0);
            for j in 0..n {
                prop_assert_eq!(d[(i, j)], d[(j, i)]);
                for k in 0..n {
                    prop_assert!(d[(i, j)] <= d[(i, k)] + d[(k, j)] + 1e-9);
                }
            }
        }
    }

    /// Every bounded construction produces a tree the invariant auditor
    /// accepts with the full path-length window attached: structure, path
    /// tables, §3.1 merge consistency, and the `(1+eps)*R` bound.
    #[test]
    fn constructions_pass_audit(net in arb_net(), eps in arb_eps()) {
        let constraint = PathConstraint::from_eps(&net, eps).unwrap();
        for (name, tree) in [
            ("bkrus", bkrus(&net, eps).unwrap()),
            ("bkh2", bkh2(&net, eps).unwrap()),
            ("bprim", bprim(&net, eps).unwrap()),
            ("brbc", brbc(&net, eps).unwrap()),
        ] {
            prop_assert!(
                audit_construction(&net, &tree, Some(&constraint)).is_ok(),
                "{name} failed audit: {:?}",
                audit_construction(&net, &tree, Some(&constraint))
            );
        }
        // The unbounded baselines must still pass the structural audit.
        for (name, tree) in [("mst", mst_tree(&net)), ("spt", spt_tree(&net))] {
            prop_assert!(
                audit_construction(&net, &tree, None).is_ok(),
                "{name} failed audit"
            );
        }
        // LUB-BKRUS, when feasible, honours the two-sided window.
        if eps.is_finite() {
            let window = PathConstraint::from_eps_window(&net, 0.1, eps).unwrap();
            if let Ok(tree) = lub_bkrus(&net, 0.1, eps) {
                prop_assert!(audit_construction(&net, &tree, Some(&window)).is_ok());
            }
        }
    }

    /// A T-exchange never changes the node universe or disconnects the
    /// tree, and changes the cost by exactly the weight difference.
    #[test]
    fn exchange_preserves_structure(net in arb_net()) {
        let tree = mst_tree(&net);
        let n = net.len();
        if n < 3 {
            return Ok(());
        }
        let d = net.distance_matrix();
        // Try every non-tree edge against every removable cycle edge.
        for x in 0..n {
            for y in (x + 1)..n {
                if tree.contains_edge(x, y) {
                    continue;
                }
                let path = tree.path_nodes(x, y);
                // Remove the first father edge along the cycle.
                for w in &path {
                    let Some(p) = tree.parent(*w) else { continue };
                    if !path.contains(&p) {
                        continue;
                    }
                    let swapped = tree.apply_exchange(
                        *w,
                        bmst_graph::Edge::new(x, y, d[(x, y)]),
                    );
                    if let Ok(t2) = swapped {
                        prop_assert!(t2.is_spanning());
                        let expect =
                            tree.cost() - tree.parent_edge_weight(*w) + d[(x, y)];
                        prop_assert!((t2.cost() - expect).abs() < 1e-9);
                    }
                }
            }
        }
    }
}
