//! Cross-crate test of the paper's §6 positioning: the spanning LUB
//! construction is a fast, reliable *upper bound* estimator for the
//! Steiner-branching zero-skew constructions.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats

use bmst_clock::zero_skew_tree;
use bmst_core::{lub_bkrus, mst_tree};
use bmst_instances::{figure13_family, random_net};

#[test]
fn dme_zero_skew_never_above_lub_zero_skew() {
    // On the equidistant family both approaches achieve exactly zero skew;
    // Steiner branching must be no more expensive.
    for n in [4usize, 8, 16] {
        let net = figure13_family(n);
        let zst = zero_skew_tree(&net);
        assert!(zst.skew() < 1e-9);
        let lub = lub_bkrus(&net, 1.0, 0.0).expect("equidistant family is feasible");
        assert!(
            zst.wirelength() <= lub.cost() + 1e-9,
            "n = {n}: DME {} vs LUB {}",
            zst.wirelength(),
            lub.cost()
        );
    }
}

#[test]
fn dme_zero_skew_works_where_spanning_cannot() {
    // Random nets: node branching almost never admits exact zero skew, the
    // Steiner embedding always does.
    let mut spanning_feasible = 0;
    for seed in 0..6 {
        let net = random_net(9, 2200 + seed);
        let zst = zero_skew_tree(&net);
        assert!(zst.skew() < 1e-9, "seed {seed}");
        assert!(zst.wirelength() + 1e-9 >= mst_tree(&net).cost() * 0.5);
        if lub_bkrus(&net, 1.0, 0.0).is_ok() {
            spanning_feasible += 1;
        }
    }
    // (No assertion on the exact count — the point is the contrast: the
    // Steiner construction succeeded 6/6 above regardless.)
    assert!(spanning_feasible <= 6);
}

#[test]
fn dme_respects_source_radius_lower_bound() {
    for seed in 0..6 {
        let net = random_net(10, 2300 + seed);
        let zst = zero_skew_tree(&net);
        let common = zst.sink_path_length(net.sinks().next().unwrap());
        assert!(common + 1e-9 >= net.source_radius(), "seed {seed}");
    }
}
