//! Umbrella crate for the BMST reproduction workspace.
//!
//! Re-exports the public API of every member crate so the examples and
//! integration tests can use a single import root. Library users should
//! depend on the individual crates (`bmst-core`, `bmst-steiner`, ...)
//! directly.

pub use bmst_clock as clock;
pub use bmst_core as core;
pub use bmst_geom as geom;
pub use bmst_graph as graph;
pub use bmst_instances as instances;
pub use bmst_io as io;
pub use bmst_router as router;
pub use bmst_steiner as steiner;
pub use bmst_tree as tree;
