//! Property tests for the geometric primitives.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats

use bmst_geom::{BoundingBox, DistanceMatrix, Metric, Net, Point};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-1e6..1e6, -1e6..1e6).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Both metrics are genuine metrics: non-negative, symmetric, zero on
    /// identical points, triangle inequality.
    #[test]
    fn metric_axioms(a in arb_point(), b in arb_point(), c in arb_point()) {
        for m in [Metric::L1, Metric::L2] {
            prop_assert!(m.dist(a, b) >= 0.0);
            prop_assert!((m.dist(a, b) - m.dist(b, a)).abs() < 1e-9);
            prop_assert_eq!(m.dist(a, a), 0.0);
            prop_assert!(m.dist(a, c) <= m.dist(a, b) + m.dist(b, c) + 1e-6);
        }
        // L1 dominates L2.
        prop_assert!(Metric::L1.dist(a, b) + 1e-9 >= Metric::L2.dist(a, b));
    }

    /// Bounding boxes contain their generators and the HPWL lower-bounds
    /// the pairwise diameter.
    #[test]
    fn bounding_box_contains_points(pts in proptest::collection::vec(arb_point(), 1..12)) {
        let bb = BoundingBox::of(pts.iter().copied()).expect("non-empty");
        for &p in &pts {
            prop_assert!(bb.contains(p));
        }
        let diameter = pts
            .iter()
            .flat_map(|&a| pts.iter().map(move |&b| a.manhattan(b)))
            .fold(0.0f64, f64::max);
        prop_assert!(bb.half_perimeter() + 1e-6 >= diameter);
    }

    /// Net invariants: R and r bracket every direct sink distance; the
    /// distance matrix agrees with Net::dist; path_bound scales correctly.
    #[test]
    fn net_radius_brackets(pts in proptest::collection::vec(arb_point(), 2..10)) {
        let net = Net::with_source_first(pts).expect("finite");
        let r_far = net.source_radius();
        let r_near = net.source_nearest();
        for v in net.sinks() {
            let d = net.dist(net.source(), v);
            prop_assert!(d <= r_far + 1e-9);
            prop_assert!(d + 1e-9 >= r_near);
        }
        let m = net.distance_matrix();
        for i in 0..net.len() {
            for j in 0..net.len() {
                prop_assert_eq!(m[(i, j)], net.dist(i, j));
            }
        }
        prop_assert!((net.path_bound(0.25) - 1.25 * r_far).abs() < 1e-9);
    }

    /// Growing a matrix preserves existing entries.
    #[test]
    fn matrix_grow_preserves(
        pts in proptest::collection::vec(arb_point(), 1..8),
        extra in 0usize..5,
    ) {
        let d = DistanceMatrix::from_points(&pts, Metric::L1);
        let mut grown = d.clone();
        grown.grow(pts.len() + extra);
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                prop_assert_eq!(grown[(i, j)], d[(i, j)]);
            }
            for j in pts.len()..pts.len() + extra {
                prop_assert_eq!(grown[(i, j)], 0.0);
            }
        }
    }
}
