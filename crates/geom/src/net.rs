//! Signal nets: a source terminal plus its sinks.

use std::error::Error;
use std::fmt;

use crate::{BoundingBox, DistanceMatrix, Metric, Point};

/// Errors produced when constructing or validating geometric inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GeomError {
    /// The terminal list was empty.
    EmptyNet,
    /// The source index is out of bounds for the terminal list.
    SourceOutOfBounds {
        /// The offending index.
        source: usize,
        /// Number of terminals in the net.
        len: usize,
    },
    /// A terminal has a NaN or infinite coordinate.
    NonFinitePoint {
        /// Index of the offending terminal.
        index: usize,
    },
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::EmptyNet => f.write_str("net has no terminals"),
            GeomError::SourceOutOfBounds { source, len } => {
                write!(f, "source index {source} out of bounds for {len} terminals")
            }
            GeomError::NonFinitePoint { index } => {
                write!(f, "terminal {index} has a non-finite coordinate")
            }
        }
    }
}

impl Error for GeomError {}

/// A signal net: a set of terminals in the plane with one distinguished
/// *source* (the driver) and a metric.
///
/// Node indices `0..len()` identify terminals everywhere in the workspace;
/// the source is `source()` and every other index is a sink. The paper's two
/// characteristic lengths are exposed directly:
///
/// * `R` = [`Net::source_radius`] — direct distance from the source to the
///   *farthest* sink; the path-length bound is `(1 + eps) * R`.
/// * `r` = [`Net::source_nearest`] — direct distance from the source to the
///   *nearest* sink (reported in the paper's Table 1).
///
/// # Examples
///
/// ```
/// use bmst_geom::{Metric, Net, Point};
///
/// let net = Net::new(
///     vec![Point::new(0.0, 0.0), Point::new(5.0, 0.0), Point::new(0.0, 2.0)],
///     0,
///     Metric::L1,
/// )?;
/// assert_eq!(net.len(), 3);
/// assert_eq!(net.num_sinks(), 2);
/// assert_eq!(net.source_radius(), 5.0);
/// assert_eq!(net.source_nearest(), 2.0);
/// assert_eq!(net.path_bound(0.2), 6.0);
/// # Ok::<(), bmst_geom::GeomError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Net {
    points: Vec<Point>,
    source: usize,
    metric: Metric,
}

impl Net {
    /// Creates a net from terminal coordinates, the index of the source
    /// terminal, and the wirelength metric.
    ///
    /// # Errors
    ///
    /// * [`GeomError::EmptyNet`] if `points` is empty.
    /// * [`GeomError::SourceOutOfBounds`] if `source >= points.len()`.
    /// * [`GeomError::NonFinitePoint`] if any coordinate is NaN/infinite.
    pub fn new(points: Vec<Point>, source: usize, metric: Metric) -> Result<Self, GeomError> {
        if points.is_empty() {
            return Err(GeomError::EmptyNet);
        }
        if source >= points.len() {
            return Err(GeomError::SourceOutOfBounds {
                source,
                len: points.len(),
            });
        }
        if let Some(index) = points.iter().position(|p| !p.is_finite()) {
            return Err(GeomError::NonFinitePoint { index });
        }
        Ok(Net {
            points,
            source,
            metric,
        })
    }

    /// Convenience constructor: terminal 0 is the source, Manhattan metric.
    ///
    /// This matches the layout of every benchmark in the reproduction.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Net::new`].
    pub fn with_source_first(points: Vec<Point>) -> Result<Self, GeomError> {
        Net::new(points, 0, Metric::L1)
    }

    /// All terminals, source included, indexed by node id.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Coordinates of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn point(&self, i: usize) -> Point {
        self.points[i]
    }

    /// Index of the source terminal.
    #[inline]
    pub fn source(&self) -> usize {
        self.source
    }

    /// The wirelength metric.
    #[inline]
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Total number of terminals (source + sinks).
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the net has no terminals. Always `false` for a
    /// constructed `Net` (construction rejects empty nets), provided for
    /// clippy-idiomatic pairing with [`Net::len`].
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of sinks (terminals excluding the source).
    #[inline]
    pub fn num_sinks(&self) -> usize {
        self.points.len() - 1
    }

    /// Iterator over sink indices (all node ids except the source).
    pub fn sinks(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.points.len()).filter(move |&i| i != self.source)
    }

    /// Distance between nodes `i` and `j` under the net's metric.
    #[inline]
    pub fn dist(&self, i: usize, j: usize) -> f64 {
        self.metric.dist(self.points[i], self.points[j])
    }

    /// `R`: direct distance from the source to the farthest sink
    /// (0 for a net with no sinks).
    ///
    /// This is the paper's `R`, the radius of the shortest path tree and the
    /// reference length for the bound `(1 + eps) * R`.
    pub fn source_radius(&self) -> f64 {
        self.sinks()
            .map(|i| self.dist(self.source, i))
            .fold(0.0, f64::max)
    }

    /// `r`: direct distance from the source to the nearest sink
    /// (0 for a net with no sinks).
    pub fn source_nearest(&self) -> f64 {
        self.sinks()
            .map(|i| self.dist(self.source, i))
            .fold(f64::INFINITY, f64::min)
            .min(if self.num_sinks() == 0 {
                0.0
            } else {
                f64::INFINITY
            })
    }

    /// The upper path-length bound `(1 + eps) * R`.
    ///
    /// `eps = f64::INFINITY` yields an infinite bound, i.e. the unconstrained
    /// MST case written as `eps = inf` in the paper's tables.
    #[inline]
    pub fn path_bound(&self, eps: f64) -> f64 {
        if eps.is_infinite() {
            f64::INFINITY
        } else {
            (1.0 + eps) * self.source_radius()
        }
    }

    /// Pairwise distance matrix of all terminals (the paper's `D`).
    pub fn distance_matrix(&self) -> DistanceMatrix {
        DistanceMatrix::from_points(&self.points, self.metric)
    }

    /// Bounding box of all terminals.
    ///
    /// # Panics
    ///
    /// Never panics for a constructed `Net` (nets are non-empty).
    #[allow(clippy::expect_used)] // non-emptiness invariant, justified inline
    pub fn bounding_box(&self) -> BoundingBox {
        // lint: allow(no-panic) — Net constructors reject empty point sets
        BoundingBox::of(self.points.iter().copied()).expect("nets are non-empty")
    }

    /// Number of edges in the complete graph on the terminals,
    /// `V * (V - 1) / 2` (the paper's Table 1 "# of edges" column).
    #[inline]
    pub fn complete_edge_count(&self) -> usize {
        self.points.len() * (self.points.len() - 1) / 2
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    fn tri_net() -> Net {
        Net::with_source_first(vec![
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(0.0, 2.0),
        ])
        .unwrap()
    }

    #[test]
    fn empty_net_rejected() {
        assert_eq!(Net::with_source_first(vec![]), Err(GeomError::EmptyNet));
    }

    #[test]
    fn bad_source_rejected() {
        let err = Net::new(vec![Point::ORIGIN], 1, Metric::L1).unwrap_err();
        assert_eq!(err, GeomError::SourceOutOfBounds { source: 1, len: 1 });
    }

    #[test]
    fn non_finite_point_rejected() {
        let err =
            Net::with_source_first(vec![Point::ORIGIN, Point::new(f64::NAN, 0.0)]).unwrap_err();
        assert_eq!(err, GeomError::NonFinitePoint { index: 1 });
    }

    #[test]
    fn radius_and_nearest() {
        let net = tri_net();
        assert_eq!(net.source_radius(), 5.0);
        assert_eq!(net.source_nearest(), 2.0);
    }

    #[test]
    fn single_terminal_net_has_zero_radius() {
        let net = Net::with_source_first(vec![Point::ORIGIN]).unwrap();
        assert_eq!(net.num_sinks(), 0);
        assert_eq!(net.source_radius(), 0.0);
        assert_eq!(net.source_nearest(), 0.0);
    }

    #[test]
    fn path_bound_scales_radius() {
        let net = tri_net();
        assert_eq!(net.path_bound(0.0), 5.0);
        assert_eq!(net.path_bound(1.0), 10.0);
        assert_eq!(net.path_bound(f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn sinks_iterator_skips_source() {
        let net = Net::new(
            vec![Point::ORIGIN, Point::new(1.0, 0.0), Point::new(2.0, 0.0)],
            1,
            Metric::L1,
        )
        .unwrap();
        let sinks: Vec<usize> = net.sinks().collect();
        assert_eq!(sinks, vec![0, 2]);
    }

    #[test]
    fn distance_matrix_matches_dist() {
        let net = tri_net();
        let d = net.distance_matrix();
        for i in 0..net.len() {
            for j in 0..net.len() {
                assert_eq!(d[(i, j)], net.dist(i, j));
            }
        }
    }

    #[test]
    fn complete_edge_count_formula() {
        assert_eq!(tri_net().complete_edge_count(), 3);
        let net6 =
            Net::with_source_first((0..6).map(|i| Point::new(i as f64, 0.0)).collect()).unwrap();
        assert_eq!(net6.complete_edge_count(), 15); // matches paper's p1 row
    }

    #[test]
    fn errors_display() {
        assert!(GeomError::EmptyNet.to_string().contains("no terminals"));
        assert!(GeomError::SourceOutOfBounds { source: 3, len: 2 }
            .to_string()
            .contains("out of bounds"));
        assert!(GeomError::NonFinitePoint { index: 0 }
            .to_string()
            .contains("non-finite"));
    }
}
