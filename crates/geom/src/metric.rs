//! Distance metrics on the plane.

use std::fmt;

use crate::Point;

/// The distance metric used for wirelength.
///
/// The paper formulates the BMST problem on either a Manhattan (L1) or a
/// Euclidean (L2) plane; all of its experimental results are computed in the
/// Manhattan metric (routing on a rectilinear grid), so [`Metric::L1`] is the
/// default.
///
/// A key property exploited by Lemma 3.1 of the paper is the triangle
/// inequality, which both metrics satisfy (non-strictly in L1, strictly in L2
/// for non-collinear points).
///
/// # Examples
///
/// ```
/// use bmst_geom::{Metric, Point};
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(Metric::L1.dist(a, b), 7.0);
/// assert_eq!(Metric::L2.dist(a, b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Metric {
    /// Manhattan / rectilinear metric: `|dx| + |dy|`.
    #[default]
    L1,
    /// Euclidean metric: `sqrt(dx^2 + dy^2)`.
    L2,
}

impl Metric {
    /// Distance between two points under this metric.
    #[inline]
    pub fn dist(self, a: Point, b: Point) -> f64 {
        match self {
            Metric::L1 => a.manhattan(b),
            Metric::L2 => a.euclidean(b),
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Metric::L1 => f.write_str("L1"),
            Metric::L2 => f.write_str("L2"),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    #[test]
    fn default_is_manhattan() {
        assert_eq!(Metric::default(), Metric::L1);
    }

    #[test]
    fn l1_dominates_l2() {
        // For any pair of points, the Manhattan distance is at least the
        // Euclidean distance.
        let pairs = [
            (Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
            (Point::new(-2.0, 3.0), Point::new(4.0, -1.0)),
            (Point::new(5.0, 5.0), Point::new(5.0, 5.0)),
        ];
        for (a, b) in pairs {
            assert!(Metric::L1.dist(a, b) >= Metric::L2.dist(a, b) - 1e-12);
        }
    }

    #[test]
    fn triangle_inequality_holds() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 7.0);
        let c = Point::new(-4.0, 3.0);
        for m in [Metric::L1, Metric::L2] {
            assert!(m.dist(a, c) <= m.dist(a, b) + m.dist(b, c) + 1e-12);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Metric::L1.to_string(), "L1");
        assert_eq!(Metric::L2.to_string(), "L2");
    }
}
