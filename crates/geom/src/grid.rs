//! Grid-bucket neighbor index: the geometric sparsification substrate.
//!
//! Every sub-quadratic construction path in the workspace (the lazy
//! increasing-weight edge stream, BPRIM's nearest-neighbor candidate pull,
//! the duplicate-sink diagnostic scan) answers the same primitive query:
//! *which points lie within distance `r` of point `i`?* A uniform
//! grid-bucket index answers it in output-sensitive time. Cells are sized
//! for constant expected occupancy on the constant-density `scaled_net`
//! die (one point per cell on average), so a radius-`r` query touches
//! `O(r² / cell²)` cells and pays for exactly the points it reports.
//!
//! The index is immutable after construction, borrows the point slice it
//! was built over, and is fully deterministic: buckets hold point ids in
//! ascending order, and queries scan the covering cell rectangle in
//! row-major order.

use crate::{BoundingBox, Metric, Point};

/// Soft cap on total grid cells, as a multiple of the point count, so
/// degenerate aspect ratios cannot allocate an oversized (mostly empty)
/// grid.
const MAX_CELLS_PER_POINT: usize = 4;

/// A uniform grid over a point set answering range queries in
/// output-sensitive time.
///
/// Both supported metrics dominate the Chebyshev (L∞) distance, so every
/// point within metric distance `r` of a query point lies inside the
/// axis-aligned square of half-side `r` around it; a query therefore
/// scans only the grid cells covering that square and filters by exact
/// metric distance.
///
/// # Examples
///
/// ```
/// use bmst_geom::{Metric, NeighborIndex, Point};
///
/// let pts = vec![
///     Point::new(0.0, 0.0),
///     Point::new(1.0, 0.0),
///     Point::new(10.0, 10.0),
/// ];
/// let index = NeighborIndex::new(&pts, Metric::L1);
/// let mut found = Vec::new();
/// index.neighbors_in_annulus(0, -1.0, 2.0, &mut found);
/// assert_eq!(found, vec![(1.0, 1)]); // only the adjacent point
/// ```
#[derive(Debug, Clone)]
pub struct NeighborIndex<'a> {
    points: &'a [Point],
    metric: Metric,
    origin: Point,
    cell: f64,
    cols: usize,
    rows: usize,
    /// CSR bucket layout: `ids[starts[c]..starts[c + 1]]` are the point
    /// ids (ascending) whose coordinates fall in cell `c`.
    starts: Vec<usize>,
    ids: Vec<usize>,
    diameter: f64,
}

impl<'a> NeighborIndex<'a> {
    /// Builds the index over `points` in `O(n)` time and space.
    ///
    /// Cell side is chosen for roughly one point per cell: the square
    /// root of die area per point, with a linear fallback so collinear
    /// layouts (zero-area bounding boxes) still get `~n` cells along
    /// their extent instead of one degenerate bucket.
    pub fn new(points: &'a [Point], metric: Metric) -> Self {
        let bb = BoundingBox::of(points.iter().copied()).unwrap_or(BoundingBox {
            lo: Point::ORIGIN,
            hi: Point::ORIGIN,
        });
        let (w, h) = (bb.width(), bb.height());
        #[allow(clippy::cast_precision_loss)]
        let count = points.len().max(1) as f64;
        let area_cell = (w * h / count).sqrt();
        let line_cell = w.max(h) / count;
        let mut cell = area_cell.max(line_cell);
        if !cell.is_finite() || cell <= 0.0 {
            cell = 1.0;
        }
        let (mut cols, mut rows) = Self::grid_dims(w, h, cell);
        // Degenerate aspect ratios can still overshoot the cell cap
        // (e.g. a thin-but-not-flat strip); coarsen once to respect it.
        let cap = points.len().saturating_mul(MAX_CELLS_PER_POINT).max(16);
        if cols.saturating_mul(rows) > cap {
            #[allow(clippy::cast_precision_loss)]
            let ratio = (cols * rows) as f64 / cap as f64;
            cell *= ratio.sqrt().max(1.0);
            (cols, rows) = Self::grid_dims(w, h, cell);
        }

        let mut starts = vec![0usize; cols * rows + 1];
        let mut index = NeighborIndex {
            points,
            metric,
            origin: bb.lo,
            cell,
            cols,
            rows,
            starts: Vec::new(),
            ids: Vec::new(),
            diameter: metric.dist(bb.lo, bb.hi),
        };
        for p in points {
            starts[index.cell_id(*p) + 1] += 1;
        }
        for c in 1..starts.len() {
            starts[c] += starts[c - 1];
        }
        let mut cursor = starts.clone();
        let mut ids = vec![0usize; points.len()];
        for (id, p) in points.iter().enumerate() {
            let c = index.cell_id(*p);
            ids[cursor[c]] = id;
            cursor[c] += 1;
        }
        index.starts = starts;
        index.ids = ids;
        index
    }

    fn grid_dims(w: f64, h: f64, cell: f64) -> (usize, usize) {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let dim = |extent: f64| ((extent / cell).floor() as usize).saturating_add(1);
        (dim(w), dim(h))
    }

    /// Column/row of a point, clamped into the grid.
    fn cell_coords(&self, p: Point) -> (usize, usize) {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let clamp = |delta: f64, limit: usize| {
            let raw = (delta / self.cell).floor().max(0.0) as usize;
            raw.min(limit - 1)
        };
        (
            clamp(p.x - self.origin.x, self.cols),
            clamp(p.y - self.origin.y, self.rows),
        )
    }

    fn cell_id(&self, p: Point) -> usize {
        let (col, row) = self.cell_coords(p);
        row * self.cols + col
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the index covers no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The chosen cell side (the expected nearest-neighbor length scale;
    /// useful as the first threshold of an expanding-radius search).
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// An upper bound on the distance between any two indexed points
    /// (corner-to-corner distance of the bounding box, valid for both
    /// metrics). An expanding search that has reached this radius has
    /// seen every point.
    #[inline]
    pub fn diameter_bound(&self) -> f64 {
        self.diameter
    }

    /// Pushes `(dist, j)` for every point `j != i` with
    /// `lo < dist(i, j) <= hi` onto `out` (which is *not* cleared).
    ///
    /// The half-open weight window is what makes expanding-threshold
    /// searches exact: successive calls with `(t0, t1], (t1, t2], …`
    /// partition the neighbor set with no duplicates and no gaps, and
    /// ties sit wholly inside one window. Pass `lo < 0.0` to include
    /// zero-length (coincident) pairs. Output order is deterministic
    /// (row-major cell scan, ascending ids per cell) but not sorted by
    /// distance; callers sort as needed.
    // analyze: complexity(n log n)
    pub fn neighbors_in_annulus(&self, i: usize, lo: f64, hi: f64, out: &mut Vec<(f64, usize)>) {
        let Some(&p) = self.points.get(i) else {
            return;
        };
        if hi < 0.0 || hi <= lo {
            return;
        }
        let r = hi.max(0.0);
        let (c0, r0) = self.cell_coords(Point::new(p.x - r, p.y - r));
        let (c1, r1) = self.cell_coords(Point::new(p.x + r, p.y + r));
        for row in r0..=r1 {
            for col in c0..=c1 {
                let c = row * self.cols + col;
                for &other in &self.ids[self.starts[c]..self.starts[c + 1]] {
                    if other == i {
                        continue;
                    }
                    let w = self.metric.dist(p, self.points[other]);
                    if w > lo && w <= hi {
                        out.push((w, other));
                    }
                }
            }
        }
    }

    /// Pushes every point id (ascending) whose coordinates exactly equal
    /// point `i`'s onto `out` (which is *not* cleared), excluding `i`
    /// itself. Exact coincidence is a zero metric distance, so this is a
    /// single-bucket probe.
    pub fn coincident(&self, i: usize, out: &mut Vec<usize>) {
        let Some(&p) = self.points.get(i) else {
            return;
        };
        let c = self.cell_id(p);
        for &other in &self.ids[self.starts[c]..self.starts[c + 1]] {
            if other != i && self.points[other] == p {
                out.push(other);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    fn annulus_sorted(index: &NeighborIndex<'_>, i: usize, lo: f64, hi: f64) -> Vec<(f64, usize)> {
        let mut out = Vec::new();
        index.neighbors_in_annulus(i, lo, hi, &mut out);
        out.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        out
    }

    fn brute_sorted(pts: &[Point], m: Metric, i: usize, lo: f64, hi: f64) -> Vec<(f64, usize)> {
        let mut out: Vec<(f64, usize)> = (0..pts.len())
            .filter(|&j| j != i)
            .map(|j| (m.dist(pts[i], pts[j]), j))
            .filter(|&(w, _)| w > lo && w <= hi)
            .collect();
        out.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        out
    }

    /// Deterministic pseudo-random points (no RNG dep in geom).
    fn scatter(n: usize, span: f64) -> Vec<Point> {
        let mut state = 0x9E37_79B9_7F4A_7C15_u64;
        (0..n)
            .map(|_| {
                let mut next = || {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    #[allow(clippy::cast_precision_loss)]
                    let unit = (state >> 11) as f64 / (1u64 << 53) as f64;
                    unit * span
                };
                Point::new(next(), next())
            })
            .collect()
    }

    #[test]
    fn annulus_matches_brute_force_on_scatter() {
        for metric in [Metric::L1, Metric::L2] {
            let pts = scatter(120, 50.0);
            let index = NeighborIndex::new(&pts, metric);
            for i in [0, 7, 59, 119] {
                for (lo, hi) in [(-1.0, 3.0), (3.0, 10.0), (-1.0, 1e9), (10.0, 10.0)] {
                    assert_eq!(
                        annulus_sorted(&index, i, lo, hi),
                        brute_sorted(&pts, metric, i, lo, hi),
                        "{metric} i={i} window=({lo}, {hi}]"
                    );
                }
            }
        }
    }

    #[test]
    fn expanding_windows_partition_the_neighbor_set() {
        let pts = scatter(80, 30.0);
        let index = NeighborIndex::new(&pts, Metric::L1);
        let all = brute_sorted(&pts, Metric::L1, 5, -1.0, f64::MAX);
        let mut collected = Vec::new();
        let mut lo = -1.0;
        let mut hi = index.cell_size();
        loop {
            let mut batch = Vec::new();
            index.neighbors_in_annulus(5, lo, hi, &mut batch);
            collected.extend(batch);
            if hi >= index.diameter_bound() {
                break;
            }
            lo = hi;
            hi = (hi * 2.0).min(index.diameter_bound());
        }
        collected.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        assert_eq!(collected, all);
    }

    #[test]
    fn collinear_points_stay_output_sensitive() {
        // A purely horizontal layout has a zero-area bounding box; the
        // linear fallback must still spread it over ~n cells.
        let pts: Vec<Point> = (0..200)
            .map(|i| {
                #[allow(clippy::cast_precision_loss)]
                Point::new(i as f64, 7.0)
            })
            .collect();
        let index = NeighborIndex::new(&pts, Metric::L1);
        assert!(index.cols >= 100, "cols = {}", index.cols);
        assert_eq!(
            annulus_sorted(&index, 100, -1.0, 2.0),
            vec![(1.0, 99), (1.0, 101), (2.0, 98), (2.0, 102)]
        );
    }

    #[test]
    fn coincident_probe_finds_exact_duplicates_in_order() {
        let pts = vec![
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0 + 1e-12, 1.0),
        ];
        let index = NeighborIndex::new(&pts, Metric::L1);
        let mut out = Vec::new();
        index.coincident(0, &mut out);
        assert_eq!(out, vec![2, 3]); // near-duplicate at 1e-12 excluded
        out.clear();
        index.coincident(1, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        let empty: Vec<Point> = Vec::new();
        let index = NeighborIndex::new(&empty, Metric::L1);
        assert!(index.is_empty());
        let mut out = Vec::new();
        index.neighbors_in_annulus(0, -1.0, 10.0, &mut out);
        assert!(out.is_empty());

        let same = vec![Point::new(3.0, 3.0); 50];
        let index = NeighborIndex::new(&same, Metric::L2);
        assert_eq!(index.diameter_bound(), 0.0);
        index.neighbors_in_annulus(10, -1.0, 0.0, &mut out);
        assert_eq!(out.len(), 49); // every other copy, at distance zero
    }

    #[test]
    fn cell_cap_bounds_grid_size() {
        // A thin strip: without the cap the grid would be enormously wide.
        let pts: Vec<Point> = (0..64)
            .map(|i| {
                #[allow(clippy::cast_precision_loss)]
                Point::new(1e6 * i as f64, (i % 2) as f64)
            })
            .collect();
        let index = NeighborIndex::new(&pts, Metric::L1);
        assert!(index.cols * index.rows <= 64 * MAX_CELLS_PER_POINT + 16);
        assert_eq!(
            annulus_sorted(&index, 3, -1.0, 2e6),
            brute_sorted(&pts, Metric::L1, 3, -1.0, 2e6)
        );
    }
}
