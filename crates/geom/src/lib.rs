//! Planar geometry substrate for bounded path length routing trees.
//!
//! This crate provides the geometric primitives used by every algorithm in
//! the BMST reproduction: [`Point`]s in the plane, the Manhattan ([`Metric::L1`])
//! and Euclidean ([`Metric::L2`]) metrics, dense [`DistanceMatrix`]es, and the
//! [`Net`] type that bundles a source terminal with its sinks.
//!
//! The paper ("Constructing Minimal Spanning/Steiner Trees with Bounded Path
//! Length", ED&TC 1996) formulates everything on a set of terminals in L1 or
//! L2 space; all published results use the Manhattan metric.
//!
//! # Examples
//!
//! ```
//! use bmst_geom::{Metric, Net, Point};
//!
//! // A source at the origin driving three sinks.
//! let net = Net::new(
//!     vec![
//!         Point::new(0.0, 0.0),
//!         Point::new(4.0, 0.0),
//!         Point::new(0.0, 3.0),
//!         Point::new(4.0, 3.0),
//!     ],
//!     0,
//!     Metric::L1,
//! )?;
//! // R: direct distance from the source to the farthest sink.
//! assert_eq!(net.source_radius(), 7.0);
//! // r: direct distance from the source to the nearest sink.
//! assert_eq!(net.source_nearest(), 3.0);
//! # Ok::<(), bmst_geom::GeomError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod grid;
mod matrix;
mod metric;
mod net;
mod point;

pub use grid::NeighborIndex;
pub use matrix::DistanceMatrix;
pub use metric::Metric;
pub use net::{GeomError, Net};
pub use point::{BoundingBox, Point};

/// Tolerance used throughout the workspace when comparing accumulated
/// floating-point lengths.
///
/// Path lengths are sums of O(V) coordinate differences; `1e-9` absolute
/// slack (relative to typical benchmark coordinates of magnitude `1e0..1e5`)
/// comfortably absorbs rounding while never confusing genuinely distinct
/// candidate edges in the published benchmarks.
pub const EPS_TOL: f64 = 1e-9;

/// Returns `true` when `a <= b` up to [`EPS_TOL`] absolute tolerance.
///
/// Every feasibility test in the BKRUS/BPRIM/BRBC family compares an
/// accumulated path length against the bound `(1 + eps) * R`; using a shared
/// tolerant comparison keeps all algorithms consistent with one another.
///
/// ```
/// assert!(bmst_geom::le_tol(1.0 + 1e-12, 1.0));
/// assert!(!bmst_geom::le_tol(1.0 + 1e-6, 1.0));
/// ```
#[inline]
pub fn le_tol(a: f64, b: f64) -> bool {
    a <= b + EPS_TOL
}

/// Returns `true` when `a` and `b` are equal up to [`EPS_TOL`] absolute
/// tolerance.
///
/// ```
/// assert!(bmst_geom::approx_eq(0.1 + 0.2, 0.3));
/// ```
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS_TOL
}
