//! Points in the plane and axis-aligned bounding boxes.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A point in the plane with `f64` coordinates.
///
/// Coordinates are finite by convention; [`crate::Net::new`] validates this
/// for whole terminal sets so individual `Point` construction stays cheap.
///
/// # Examples
///
/// ```
/// use bmst_geom::Point;
///
/// let p = Point::new(3.0, 4.0);
/// let q = Point::new(0.0, 0.0);
/// assert_eq!(p.manhattan(q), 7.0);
/// assert_eq!(p.euclidean(q), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Manhattan (L1) distance to `other`.
    #[inline]
    pub fn manhattan(self, other: Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Euclidean (L2) distance to `other`.
    #[inline]
    pub fn euclidean(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Returns `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Componentwise minimum of two points (lower-left corner of their box).
    #[inline]
    pub fn min(self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Componentwise maximum of two points (upper-right corner of their box).
    #[inline]
    pub fn max(self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    #[inline]
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

/// An axis-aligned bounding box.
///
/// # Examples
///
/// ```
/// use bmst_geom::{BoundingBox, Point};
///
/// let bb = BoundingBox::of([Point::new(1.0, 5.0), Point::new(3.0, 2.0)]).unwrap();
/// assert_eq!(bb.lo, Point::new(1.0, 2.0));
/// assert_eq!(bb.hi, Point::new(3.0, 5.0));
/// assert_eq!(bb.half_perimeter(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    /// Lower-left corner.
    pub lo: Point,
    /// Upper-right corner.
    pub hi: Point,
}

impl BoundingBox {
    /// Computes the bounding box of a non-empty point collection, or `None`
    /// when the iterator is empty.
    pub fn of<I: IntoIterator<Item = Point>>(points: I) -> Option<BoundingBox> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut bb = BoundingBox {
            lo: first,
            hi: first,
        };
        for p in it {
            bb.lo = bb.lo.min(p);
            bb.hi = bb.hi.max(p);
        }
        Some(bb)
    }

    /// Box width (`hi.x - lo.x`).
    #[inline]
    pub fn width(&self) -> f64 {
        self.hi.x - self.lo.x
    }

    /// Box height (`hi.y - lo.y`).
    #[inline]
    pub fn height(&self) -> f64 {
        self.hi.y - self.lo.y
    }

    /// Half-perimeter wirelength (HPWL), the classical net-length lower
    /// bound used in VLSI placement.
    #[inline]
    pub fn half_perimeter(&self) -> f64 {
        self.width() + self.height()
    }

    /// Returns `true` when `p` lies inside or on the boundary of the box.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.lo.x && p.x <= self.hi.x && p.y >= self.lo.y && p.y <= self.hi.y
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    #[test]
    fn manhattan_distance_is_symmetric_and_zero_on_self() {
        let p = Point::new(1.5, -2.0);
        let q = Point::new(-3.0, 4.0);
        assert_eq!(p.manhattan(q), q.manhattan(p));
        assert_eq!(p.manhattan(p), 0.0);
        assert_eq!(p.manhattan(q), 4.5 + 6.0);
    }

    #[test]
    fn euclidean_345_triangle() {
        assert_eq!(Point::new(0.0, 0.0).euclidean(Point::new(3.0, 4.0)), 5.0);
    }

    #[test]
    fn arithmetic_ops() {
        let p = Point::new(1.0, 2.0);
        let q = Point::new(3.0, 5.0);
        assert_eq!(p + q, Point::new(4.0, 7.0));
        assert_eq!(q - p, Point::new(2.0, 3.0));
        assert_eq!(p * 2.0, Point::new(2.0, 4.0));
    }

    #[test]
    fn conversions_round_trip() {
        let p: Point = (7.0, 8.0).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (7.0, 8.0));
    }

    #[test]
    fn display_formats_coordinates() {
        assert_eq!(Point::new(1.0, 2.5).to_string(), "(1, 2.5)");
    }

    #[test]
    fn non_finite_points_detected() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn bounding_box_of_empty_is_none() {
        assert!(BoundingBox::of(std::iter::empty()).is_none());
    }

    #[test]
    fn bounding_box_single_point_is_degenerate() {
        let bb = BoundingBox::of([Point::new(2.0, 3.0)]).unwrap();
        assert_eq!(bb.width(), 0.0);
        assert_eq!(bb.height(), 0.0);
        assert!(bb.contains(Point::new(2.0, 3.0)));
        assert!(!bb.contains(Point::new(2.0, 3.1)));
    }

    #[test]
    fn bounding_box_contains_interior_and_boundary() {
        let bb = BoundingBox::of([Point::ORIGIN, Point::new(4.0, 4.0)]).unwrap();
        assert!(bb.contains(Point::new(2.0, 2.0)));
        assert!(bb.contains(Point::new(0.0, 4.0)));
        assert!(!bb.contains(Point::new(-0.1, 2.0)));
        assert_eq!(bb.half_perimeter(), 8.0);
    }
}
