//! Dense square matrices of pairwise distances / path lengths.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::{Metric, Point};

/// A dense square matrix of `f64` values indexed by node pairs.
///
/// The paper's BKRUS algorithm maintains two such matrices: the geometric
/// distance matrix `D[V][V]` (fixed, computed from coordinates) and the
/// in-tree path length matrix `P[V][V]` (updated incrementally by the
/// `Merge` routine). This type backs both.
///
/// Storage is a flat row-major `Vec<f64>`; indexing is `matrix[(i, j)]`.
///
/// # Examples
///
/// ```
/// use bmst_geom::{DistanceMatrix, Metric, Point};
///
/// let pts = [Point::new(0.0, 0.0), Point::new(1.0, 2.0)];
/// let d = DistanceMatrix::from_points(&pts, Metric::L1);
/// assert_eq!(d[(0, 1)], 3.0);
/// assert_eq!(d[(1, 0)], 3.0);
/// assert_eq!(d[(0, 0)], 0.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Creates an `n x n` matrix filled with zeros.
    ///
    /// This is the initial state of the paper's `P` path-length matrix
    /// (BKRUS line 5-7).
    pub fn zeros(n: usize) -> Self {
        DistanceMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Computes the full pairwise distance matrix of `points` under `metric`.
    ///
    /// This is the paper's `D[V][V]` matrix, "computed from the coordinates
    /// of nodes".
    pub fn from_points(points: &[Point], metric: Metric) -> Self {
        let n = points.len();
        let mut m = DistanceMatrix::zeros(n);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = metric.dist(points[i], points[j]);
                m[(i, j)] = d;
                m[(j, i)] = d;
            }
        }
        m
    }

    /// Number of rows (= columns).
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` when the matrix is `0 x 0`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Grows the matrix to `new_n x new_n`, filling new entries with zero and
    /// preserving existing entries.
    ///
    /// Used by the Steiner construction (BKST), where Hanan-grid nodes on a
    /// newly routed path "are treated as new sinks" and must join the `P`
    /// matrix.
    ///
    /// # Panics
    ///
    /// Panics if `new_n < self.len()`; the matrix never shrinks.
    pub fn grow(&mut self, new_n: usize) {
        assert!(
            new_n >= self.n,
            "DistanceMatrix::grow cannot shrink: {} -> {}",
            self.n,
            new_n
        );
        if new_n == self.n {
            return;
        }
        let mut data = vec![0.0; new_n * new_n];
        for i in 0..self.n {
            data[i * new_n..i * new_n + self.n]
                .copy_from_slice(&self.data[i * self.n..(i + 1) * self.n]);
        }
        self.n = new_n;
        self.data = data;
    }

    /// Row `i` as a slice (entries `(i, 0..n)`).
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Maximum entry in row `i`, or `0.0` for an empty matrix.
    ///
    /// In BKRUS the radius vector `r` entries are "the maximum of each row of
    /// `P`" restricted to the same partial tree; this helper computes the
    /// unrestricted row maximum for validation.
    pub fn row_max(&self, i: usize) -> f64 {
        self.row(i).iter().fold(0.0_f64, |a, &b| a.max(b))
    }

    /// Checks symmetry up to `tol` (useful as a debug assertion on `P`).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl Index<(usize, usize)> for DistanceMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.n + j]
    }
}

impl IndexMut<(usize, usize)> for DistanceMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.n + j]
    }
}

impl fmt::Debug for DistanceMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DistanceMatrix({}x{})", self.n, self.n)?;
        for i in 0..self.n {
            for j in 0..self.n {
                write!(f, "{:8.3} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    fn square_corners() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ]
    }

    #[test]
    fn zeros_matrix_is_all_zero() {
        let m = DistanceMatrix::zeros(3);
        assert_eq!(m.len(), 3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn from_points_is_symmetric_with_zero_diagonal() {
        let m = DistanceMatrix::from_points(&square_corners(), Metric::L1);
        assert!(m.is_symmetric(0.0));
        for i in 0..4 {
            assert_eq!(m[(i, i)], 0.0);
        }
        assert_eq!(m[(0, 2)], 2.0); // opposite corners, Manhattan
        assert_eq!(m[(0, 1)], 1.0);
    }

    #[test]
    fn euclidean_matrix_diagonal_pair() {
        let m = DistanceMatrix::from_points(&square_corners(), Metric::L2);
        assert!((m[(0, 2)] - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn grow_preserves_entries_and_zero_fills() {
        let mut m = DistanceMatrix::from_points(&square_corners(), Metric::L1);
        m.grow(6);
        assert_eq!(m.len(), 6);
        assert_eq!(m[(0, 2)], 2.0);
        assert_eq!(m[(0, 5)], 0.0);
        assert_eq!(m[(5, 5)], 0.0);
    }

    #[test]
    fn grow_same_size_is_noop() {
        let mut m = DistanceMatrix::from_points(&square_corners(), Metric::L1);
        let before = m.clone();
        m.grow(4);
        assert_eq!(m, before);
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn grow_smaller_panics() {
        DistanceMatrix::zeros(4).grow(3);
    }

    #[test]
    fn row_max_finds_largest() {
        let mut m = DistanceMatrix::zeros(3);
        m[(1, 0)] = 2.0;
        m[(1, 2)] = 5.0;
        assert_eq!(m.row_max(1), 5.0);
        assert_eq!(m.row_max(0), 0.0);
    }

    #[test]
    fn empty_matrix() {
        let m = DistanceMatrix::zeros(0);
        assert!(m.is_empty());
        assert!(m.is_symmetric(0.0));
    }

    #[test]
    fn debug_render_contains_dimensions() {
        let m = DistanceMatrix::zeros(2);
        assert!(format!("{m:?}").contains("2x2"));
    }
}
