//! The Hanan grid: the canonical Steiner candidate grid.

use bmst_geom::Point;

/// The Hanan grid of a terminal set: the intersections of the horizontal
/// and vertical lines through every terminal.
///
/// Hanan's theorem (1966) guarantees an optimal rectilinear Steiner tree
/// exists whose Steiner points all lie on this grid, which is why the
/// paper's BKST restricts its paths to it.
///
/// Grid nodes are addressed by index pairs `(xi, yi)` into the sorted,
/// deduplicated coordinate ladders.
///
/// # Examples
///
/// ```
/// use bmst_geom::Point;
/// use bmst_steiner::HananGrid;
///
/// let grid = HananGrid::new(&[
///     Point::new(0.0, 0.0),
///     Point::new(2.0, 1.0),
///     Point::new(1.0, 3.0),
/// ]);
/// assert_eq!(grid.width(), 3);   // x in {0, 1, 2}
/// assert_eq!(grid.height(), 3);  // y in {0, 1, 3}
/// assert_eq!(grid.node_count(), 9);
/// assert_eq!(grid.coordinate(1, 2), Point::new(1.0, 3.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HananGrid {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl HananGrid {
    /// Builds the grid from a terminal set.
    ///
    /// Coordinates are deduplicated by exact equality (benchmark terminals
    /// are generated, not measured, so exact comparison is appropriate).
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or contains non-finite coordinates.
    pub fn new(points: &[Point]) -> Self {
        assert!(!points.is_empty(), "Hanan grid of an empty point set");
        assert!(
            points.iter().all(|p| p.is_finite()),
            "non-finite terminal coordinate"
        );
        let mut xs: Vec<f64> = points.iter().map(|p| p.x).collect();
        let mut ys: Vec<f64> = points.iter().map(|p| p.y).collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup();
        ys.sort_by(f64::total_cmp);
        ys.dedup();
        HananGrid { xs, ys }
    }

    /// Number of distinct x coordinates.
    #[inline]
    pub fn width(&self) -> usize {
        self.xs.len()
    }

    /// Number of distinct y coordinates.
    #[inline]
    pub fn height(&self) -> usize {
        self.ys.len()
    }

    /// Total number of grid nodes (`width * height`).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.xs.len() * self.ys.len()
    }

    /// The x coordinate ladder, ascending.
    #[inline]
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The y coordinate ladder, ascending.
    #[inline]
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Coordinates of grid node `(xi, yi)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    pub fn coordinate(&self, xi: usize, yi: usize) -> Point {
        Point::new(self.xs[xi], self.ys[yi])
    }

    /// Grid indices of a terminal (terminals always lie on the grid).
    ///
    /// Returns `None` for a point off the grid.
    pub fn locate(&self, p: Point) -> Option<(usize, usize)> {
        // Ladder entries are finite by construction; a NaN query compares
        // as "off the grid" instead of panicking.
        use std::cmp::Ordering;
        let xi = self
            .xs
            .binary_search_by(|x| x.partial_cmp(&p.x).unwrap_or(Ordering::Greater))
            .ok()?;
        let yi = self
            .ys
            .binary_search_by(|y| y.partial_cmp(&p.y).unwrap_or(Ordering::Greater))
            .ok()?;
        Some((xi, yi))
    }

    /// Grid nodes on the L-shaped path from `a` to `b` through `corner`,
    /// in walk order starting *after* `a` and ending at `b` (inclusive).
    ///
    /// `corner` must share one coordinate with `a` and the other with `b`
    /// (degenerate Ls — collinear points — are handled naturally).
    ///
    /// # Panics
    ///
    /// Panics if any of the three points is off the grid or the corner does
    /// not join the two legs.
    #[allow(clippy::expect_used)] // documented `# Panics` contract
    pub fn l_path(&self, a: Point, corner: Point, b: Point) -> Vec<(usize, usize)> {
        // lint: allow(no-panic) — off-grid inputs are a documented `# Panics` contract violation
        let (axi, ayi) = self.locate(a).expect("a on grid");
        // lint: allow(no-panic) — off-grid inputs are a documented `# Panics` contract violation
        let (cxi, cyi) = self.locate(corner).expect("corner on grid");
        // lint: allow(no-panic) — off-grid inputs are a documented `# Panics` contract violation
        let (bxi, byi) = self.locate(b).expect("b on grid");
        assert!(
            (axi == cxi || ayi == cyi) && (bxi == cxi || byi == cyi),
            "corner does not join the legs"
        );

        let mut path = Vec::new();
        // Leg 1: a -> corner.
        append_straight(&mut path, (axi, ayi), (cxi, cyi));
        // Leg 2: corner -> b.
        append_straight(&mut path, (cxi, cyi), (bxi, byi));
        path
    }
}

/// Appends the grid nodes strictly after `from` through `to` along an
/// axis-aligned segment.
fn append_straight(path: &mut Vec<(usize, usize)>, from: (usize, usize), to: (usize, usize)) {
    let (fx, fy) = from;
    let (tx, ty) = to;
    debug_assert!(fx == tx || fy == ty, "segment is not axis-aligned");
    if fx == tx {
        let mut y = fy;
        while y != ty {
            y = if ty > y { y + 1 } else { y - 1 };
            path.push((fx, y));
        }
    } else {
        let mut x = fx;
        while x != tx {
            x = if tx > x { x + 1 } else { x - 1 };
            path.push((x, fy));
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    fn sample_grid() -> HananGrid {
        HananGrid::new(&[
            Point::new(0.0, 0.0),
            Point::new(2.0, 1.0),
            Point::new(1.0, 3.0),
        ])
    }

    #[test]
    fn ladders_sorted_and_deduped() {
        let g = HananGrid::new(&[
            Point::new(1.0, 5.0),
            Point::new(1.0, 2.0),
            Point::new(0.0, 5.0),
        ]);
        assert_eq!(g.xs(), &[0.0, 1.0]);
        assert_eq!(g.ys(), &[2.0, 5.0]);
        assert_eq!(g.node_count(), 4);
    }

    #[test]
    fn locate_terminals() {
        let g = sample_grid();
        assert_eq!(g.locate(Point::new(2.0, 1.0)), Some((2, 1)));
        assert_eq!(g.locate(Point::new(1.0, 1.0)), Some((1, 1))); // Hanan point
        assert_eq!(g.locate(Point::new(0.5, 1.0)), None);
    }

    #[test]
    fn l_path_walks_both_legs() {
        let g = sample_grid();
        // From (0,0) to (2.0, 1.0) via corner (2.0, 0.0):
        // x-leg through (1,0),(2,0) then y-leg to (2,1).
        let p = g.l_path(
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 1.0),
        );
        assert_eq!(p, vec![(1, 0), (2, 0), (2, 1)]);
    }

    #[test]
    fn l_path_other_corner() {
        let g = sample_grid();
        let p = g.l_path(
            Point::new(0.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(2.0, 1.0),
        );
        assert_eq!(p, vec![(0, 1), (1, 1), (2, 1)]);
    }

    #[test]
    fn degenerate_l_is_straight() {
        let g = sample_grid();
        // Collinear in x: corner coincides with b.
        let p = g.l_path(
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 0.0),
        );
        assert_eq!(p, vec![(1, 0)]);
    }

    #[test]
    fn l_path_downward_and_leftward() {
        let g = sample_grid();
        let p = g.l_path(
            Point::new(2.0, 3.0),
            Point::new(2.0, 0.0),
            Point::new(0.0, 0.0),
        );
        assert_eq!(p, vec![(2, 1), (2, 0), (1, 0), (0, 0)]);
    }

    #[test]
    #[should_panic(expected = "corner does not join")]
    fn disjoint_corner_panics() {
        let g = sample_grid();
        g.l_path(
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 3.0),
        );
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_point_set_panics() {
        HananGrid::new(&[]);
    }

    #[test]
    fn single_point_grid() {
        let g = HananGrid::new(&[Point::new(3.0, 4.0)]);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.coordinate(0, 0), Point::new(3.0, 4.0));
    }
}
