//! Bounded path length Steiner trees on the Hanan grid (paper §3.3).
//!
//! A spanning tree on the Hanan grid that covers all terminals is a
//! rectilinear Steiner tree. BKST adapts BKRUS to that setting: candidate
//! terminal pairs are kept in a heap ordered by rectilinear distance; a
//! feasible pair is connected by an L-shaped grid path (corner nearest the
//! source), and the grid nodes on the added path become *new sinks* that
//! immediately offer new, shorter candidate connections.
//!
//! # Examples
//!
//! ```
//! use bmst_geom::{Net, Point};
//! use bmst_steiner::bkst;
//!
//! // Two sinks sharing an x-span with the source: the Steiner tree reuses
//! // the common trunk and beats every spanning tree.
//! let net = Net::with_source_first(vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(10.0, 2.0),
//!     Point::new(10.0, -2.0),
//! ])?;
//! let st = bkst(&net, 1.0)?;
//! assert!(st.tree.cost() <= 14.0 + 1e-9); // trunk 10 + two stubs of 2
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bkst;
mod builder;
mod graph_bkst;
mod hanan;
mod routing_graph;

pub use bkst::{bkst, bkst_with, SteinerTree};
pub use builder::{find_builder, full_registry, BkstBuilder};
pub use graph_bkst::{bkst_on_graph, bkst_on_graph_with};
pub use hanan::HananGrid;
pub use routing_graph::RoutingGraph;
