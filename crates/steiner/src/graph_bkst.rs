//! BKST on an arbitrary rectilinear routing graph (paper §3.3, the
//! "channel intersection graph" form).
//!
//! The construction is the same candidate-pair heap as [`crate::bkst`], but
//! distances and routes come from the graph: candidate pair distances are
//! graph shortest-path lengths, a feasible pair is connected by an actual
//! shortest path (instead of an L), and the nodes on that path become new
//! sinks. Because subpaths of shortest paths are shortest, the completion
//! argument of the Hanan-grid case carries over verbatim with graph
//! distances in place of Manhattan ones.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

use bmst_core::forest::KruskalForest;
use bmst_core::{BmstError, PathConstraint};
use bmst_graph::Edge;
use bmst_tree::RoutingTree;

use crate::{RoutingGraph, SteinerTree};

#[derive(Debug, PartialEq)]
struct Cand {
    dist: f64,
    a: usize, // forest ids
    b: usize,
}

impl Eq for Cand {}
impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Cand {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .total_cmp(&self.dist)
            .then(other.a.cmp(&self.a))
            .then(other.b.cmp(&self.b))
    }
}

/// Bounded path length Steiner tree on a routing graph, with the bound
/// `(1 + eps) * R` where `R` is the largest *graph* shortest-path distance
/// from the source to a sink (in obstructed routing that, not the Manhattan
/// distance, is the attainable minimum).
///
/// Returns a [`SteinerTree`] whose node ids are: `0` = source,
/// `1..=sinks.len()` = the sinks in the given order, higher ids = routing
/// nodes materialised along the way.
///
/// # Errors
///
/// * [`BmstError::InvalidEpsilon`] for negative/NaN `eps`;
/// * [`BmstError::Infeasible`] when a sink is unreachable in the graph or
///   the construction dead-ends.
///
/// # Panics
///
/// Panics if `source` or a sink id is out of bounds of the graph, or if
/// `sinks` contains the source.
///
/// # Examples
///
/// ```
/// use bmst_geom::{BoundingBox, Point};
/// use bmst_steiner::{bkst_on_graph, RoutingGraph};
///
/// let terminals = [Point::new(0.0, 0.0), Point::new(4.0, 0.0)];
/// let wall = BoundingBox { lo: Point::new(1.0, -3.0), hi: Point::new(3.0, 1.0) };
/// let g = RoutingGraph::with_obstacles(&terminals, &[wall]);
/// let s = g.locate(terminals[0]).unwrap();
/// let t = g.locate(terminals[1]).unwrap();
/// let st = bkst_on_graph(&g, s, &[t], 0.2)?;
/// // The route detours around the wall: 6 instead of the blocked 4.
/// assert!((st.wirelength() - 6.0).abs() < 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn bkst_on_graph(
    graph: &RoutingGraph,
    source: usize,
    sinks: &[usize],
    eps: f64,
) -> Result<SteinerTree, BmstError> {
    if eps.is_nan() || eps < 0.0 {
        return Err(BmstError::InvalidEpsilon { eps });
    }
    let sp = graph.shortest_paths(source);
    let mut r = 0.0f64;
    for &t in sinks {
        if !sp.dist[t].is_finite() {
            return Err(BmstError::Infeasible {
                connected: 1,
                total: sinks.len() + 1,
                min_feasible_eps: None,
            });
        }
        r = r.max(sp.dist[t]);
    }
    let upper = if eps.is_infinite() {
        f64::INFINITY
    } else {
        (1.0 + eps) * r
    };
    let constraint = PathConstraint::explicit(0.0, upper)?;
    bkst_on_graph_with(graph, source, sinks, constraint)
}

/// [`bkst_on_graph`] with an explicit constraint (including two-sided
/// windows; the lower bound applies to the sinks only).
///
/// # Errors
///
/// Same conditions as [`bkst_on_graph`].
///
/// # Panics
///
/// Same conditions as [`bkst_on_graph`].
pub fn bkst_on_graph_with(
    graph: &RoutingGraph,
    source: usize,
    sinks: &[usize],
    constraint: PathConstraint,
) -> Result<SteinerTree, BmstError> {
    let m = graph.len();
    assert!(source < m, "source {source} out of bounds");
    for &t in sinks {
        assert!(t < m, "sink {t} out of bounds");
        assert!(t != source, "sink {t} equals the source");
    }
    let nt = sinks.len() + 1;
    if sinks.is_empty() {
        return Ok(SteinerTree {
            tree: RoutingTree::from_edges(1, 0, [])?,
            points: vec![graph.point(source)],
            num_terminals: 1,
        });
    }

    // Forest over *touched* graph nodes: terminals first, path nodes lazily.
    let mut forest = KruskalForest::new(nt, 0);
    let mut graph_of: Vec<usize> = Vec::with_capacity(nt);
    graph_of.push(source);
    graph_of.extend_from_slice(sinks);
    let mut forest_of: BTreeMap<usize, usize> =
        graph_of.iter().enumerate().map(|(f, &g)| (g, f)).collect();
    let mut points: Vec<_> = graph_of.iter().map(|&g| graph.point(g)).collect();

    // dist_s[forest id] = graph shortest-path distance from the source
    // (this is what the feasibility condition (3-b) needs: the best
    // possible future direct connection).
    let sp_source = graph.shortest_paths(source);
    let mut dist_s: Vec<f64> = graph_of.iter().map(|&g| sp_source.dist[g]).collect();
    if dist_s.iter().any(|d| !d.is_finite()) {
        return Err(BmstError::Infeasible {
            connected: 1,
            total: nt,
            min_feasible_eps: None,
        });
    }

    // Initial candidates: all terminal pairs at graph distance.
    let mut heap: BinaryHeap<Cand> = BinaryHeap::new();
    for fa in 0..nt {
        let spa = graph.shortest_paths(graph_of[fa]);
        for (fb, &gb) in graph_of.iter().enumerate().skip(fa + 1) {
            let d = spa.dist[gb];
            if d.is_finite() {
                heap.push(Cand {
                    dist: d,
                    a: fa,
                    b: fb,
                });
            }
        }
    }

    let lower = constraint.lower;
    let lower_ok = |forest: &mut KruskalForest, u: usize, v: usize, w: f64| -> bool {
        if lower <= 0.0 {
            return true;
        }
        let s = forest.source();
        let (join, other) = if forest.contains_source(u) {
            (u, v)
        } else if forest.contains_source(v) {
            (v, u)
        } else {
            return true;
        };
        let base = forest.path(s, join) + w;
        let members: Vec<usize> = forest.component(other).to_vec();
        members
            .into_iter()
            .filter(|&t| t < nt)
            .all(|t| bmst_geom::le_tol(lower, base + forest.path(other, t)))
    };

    let mut edges: Vec<Edge> = Vec::new();
    let terminals_connected = |forest: &mut KruskalForest| -> usize {
        (0..nt).filter(|&t| forest.contains_source(t)).count()
    };
    let mut edges_at_last_fallback = usize::MAX;

    while terminals_connected(&mut forest) < nt {
        let Some(Cand { dist, a, b }) = heap.pop() else {
            // Exhaustion fallback, as in the Hanan-grid construction: every
            // live component keeps a feasible node; its direct shortest
            // route from the source is segment-wise feasible.
            if edges_at_last_fallback == edges.len() {
                let connected = terminals_connected(&mut forest);
                return Err(BmstError::Infeasible {
                    connected,
                    total: nt,
                    min_feasible_eps: None,
                });
            }
            edges_at_last_fallback = edges.len();
            let mut offered = false;
            for (x, &dsx) in dist_s.iter().enumerate() {
                if !forest.contains_source(x)
                    && bmst_geom::le_tol(dsx + forest.radius(x), constraint.upper)
                {
                    heap.push(Cand {
                        dist: dsx,
                        a: 0,
                        b: x,
                    });
                    offered = true;
                }
            }
            if !offered {
                let connected = terminals_connected(&mut forest);
                return Err(BmstError::Infeasible {
                    connected,
                    total: nt,
                    min_feasible_eps: None,
                });
            }
            continue;
        };
        if forest.same_component(a, b) {
            continue;
        }
        if !forest.is_feasible_merge(a, b, dist, &dist_s, constraint.upper)
            || !lower_ok(&mut forest, a, b, dist)
        {
            continue;
        }

        // Route: actual shortest path on the graph from a to b.
        let spa = graph.shortest_paths(graph_of[a]);
        let Some(route) = spa.path_to(graph_of[b]) else {
            continue; // components mutually unreachable in the graph
        };

        let mut merged_any = false;
        let mut cur = a; // forest id
        let mut pending = 0.0f64; // accumulated pass-through length
        let mut prev_graph = graph_of[a];
        let mut new_on_path: Vec<usize> = vec![a];
        for &gw in route.iter().skip(1) {
            let seg = graph.point(prev_graph).manhattan(graph.point(gw));
            prev_graph = gw;
            let fid = match forest_of.get(&gw).copied() {
                Some(fid) => fid,
                None => {
                    let fid = forest.add_node();
                    forest_of.insert(gw, fid);
                    graph_of.push(gw);
                    points.push(graph.point(gw));
                    dist_s.push(sp_source.dist[gw]);
                    fid
                }
            };
            let w = pending + seg;
            if forest.same_component(cur, fid) {
                if forest.path(cur, fid) <= w + bmst_geom::EPS_TOL {
                    // Reuse the existing wire.
                    new_on_path.push(fid);
                    cur = fid;
                    pending = 0.0;
                } else {
                    pending = w; // cross over without adopting
                }
            } else if forest.is_feasible_merge(cur, fid, w, &dist_s, constraint.upper)
                && lower_ok(&mut forest, cur, fid, w)
            {
                forest.merge(cur, fid, w);
                edges.push(Edge::new(cur, fid, w));
                merged_any = true;
                new_on_path.push(fid);
                cur = fid;
                pending = 0.0;
            } else if forest_of.len() > nt && forest.component(fid).len() == 1 {
                // Fresh singleton we cannot afford to attach: abandon the
                // rest of the route.
                break;
            } else {
                pending = w; // cross over a foreign wire
            }
        }

        if merged_any {
            for &p in &new_on_path {
                for q in 0..points.len() {
                    if q != p && !forest.same_component(p, q) {
                        let d = points[p].manhattan(points[q]);
                        // Manhattan is a lower bound on the graph distance;
                        // using it as the heap key only reorders candidates,
                        // feasibility is re-checked on the actual route.
                        heap.push(Cand {
                            dist: d,
                            a: p,
                            b: q,
                        });
                    }
                }
            }
        }
    }

    let tree = RoutingTree::from_edges(points.len(), 0, edges)?;
    if !constraint.is_satisfied_by(&tree, 1..nt) {
        return Err(BmstError::Infeasible {
            connected: nt,
            total: nt,
            min_feasible_eps: None,
        });
    }
    Ok(SteinerTree {
        tree,
        points,
        num_terminals: nt,
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use bmst_geom::{BoundingBox, Point};

    fn wall_case() -> (RoutingGraph, usize, Vec<usize>) {
        let terminals = [
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 2.0),
        ];
        let wall = BoundingBox {
            lo: Point::new(1.0, -3.0),
            hi: Point::new(3.0, 1.0),
        };
        let g = RoutingGraph::with_obstacles(&terminals, &[wall]);
        let s = g.locate(terminals[0]).unwrap();
        let t1 = g.locate(terminals[1]).unwrap();
        let t2 = g.locate(terminals[2]).unwrap();
        (g, s, vec![t1, t2])
    }

    #[test]
    fn routes_around_obstacles() {
        let (g, s, sinks) = wall_case();
        let st = bkst_on_graph(&g, s, &sinks, 0.5).unwrap();
        // All terminals covered, and no tree edge uses a blocked segment —
        // guaranteed because edges follow graph routes, but verify lengths:
        // the detour makes every sink path at least its graph distance.
        let sp = g.shortest_paths(s);
        for (i, &t) in sinks.iter().enumerate() {
            let fid = i + 1;
            assert!(st.tree.is_covered(fid));
            assert!(st.tree.dist_from_root(fid) + 1e-9 >= sp.dist[t]);
        }
    }

    #[test]
    fn bound_uses_graph_radius() {
        let (g, s, sinks) = wall_case();
        let sp = g.shortest_paths(s);
        let r = sinks.iter().map(|&t| sp.dist[t]).fold(0.0f64, f64::max);
        for eps in [0.0, 0.3, 1.0] {
            let st = bkst_on_graph(&g, s, &sinks, eps).unwrap();
            let radius = st.tree.max_dist_from_root(1..=sinks.len());
            assert!(
                radius <= (1.0 + eps) * r + 1e-9,
                "eps {eps}: {radius} > {}",
                (1.0 + eps) * r
            );
        }
    }

    #[test]
    fn unobstructed_grid_matches_manhattan_star() {
        // Single sink: tree is the shortest route.
        let pts = [Point::new(0.0, 0.0), Point::new(3.0, 4.0)];
        let g = RoutingGraph::grid(&pts);
        let s = g.locate(pts[0]).unwrap();
        let t = g.locate(pts[1]).unwrap();
        let st = bkst_on_graph(&g, s, &[t], 0.0).unwrap();
        assert!((st.wirelength() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn shares_trunks_like_hanan_bkst() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(10.0, 2.0),
            Point::new(10.0, -2.0),
        ];
        let g = RoutingGraph::grid(&pts);
        let s = g.locate(pts[0]).unwrap();
        let sinks: Vec<usize> = pts[1..].iter().map(|&p| g.locate(p).unwrap()).collect();
        let st = bkst_on_graph(&g, s, &sinks, 1.0).unwrap();
        assert!(
            st.wirelength() <= 14.0 + 1e-9,
            "wirelength {}",
            st.wirelength()
        );
    }

    #[test]
    fn unreachable_sink_is_infeasible() {
        let terminals = [Point::new(0.0, 0.0), Point::new(10.0, 10.0)];
        let ring = [
            BoundingBox {
                lo: Point::new(8.0, 8.0),
                hi: Point::new(12.0, 9.0),
            },
            BoundingBox {
                lo: Point::new(8.0, 11.0),
                hi: Point::new(12.0, 12.0),
            },
            BoundingBox {
                lo: Point::new(8.0, 8.5),
                hi: Point::new(9.0, 11.5),
            },
            BoundingBox {
                lo: Point::new(11.0, 8.5),
                hi: Point::new(12.0, 11.5),
            },
        ];
        let g = RoutingGraph::with_obstacles(&terminals, &ring);
        let s = g.locate(terminals[0]).unwrap();
        let t = g.locate(terminals[1]).unwrap();
        let sp = g.shortest_paths(s);
        if sp.dist[t].is_infinite() {
            assert!(matches!(
                bkst_on_graph(&g, s, &[t], 1.0),
                Err(BmstError::Infeasible { .. })
            ));
        }
    }

    #[test]
    fn no_sinks_trivial() {
        let g = RoutingGraph::grid(&[Point::new(1.0, 1.0)]);
        let st = bkst_on_graph(&g, 0, &[], 0.0).unwrap();
        assert_eq!(st.wirelength(), 0.0);
        assert_eq!(st.num_terminals, 1);
    }

    #[test]
    fn negative_eps_rejected() {
        let g = RoutingGraph::grid(&[Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
        assert!(matches!(
            bkst_on_graph(&g, 0, &[1], -1.0),
            Err(BmstError::InvalidEpsilon { .. })
        ));
    }

    #[test]
    fn tighter_eps_not_cheaper_on_average() {
        // Several sinks around an obstacle: loose bound allows more sharing.
        let terminals = [
            Point::new(0.0, 0.0),
            Point::new(6.0, 3.0),
            Point::new(6.0, -3.0),
            Point::new(8.0, 0.0),
        ];
        let wall = BoundingBox {
            lo: Point::new(2.0, -1.0),
            hi: Point::new(4.0, 1.0),
        };
        let g = RoutingGraph::with_obstacles(&terminals, &[wall]);
        let s = g.locate(terminals[0]).unwrap();
        let sinks: Vec<usize> = terminals[1..]
            .iter()
            .map(|&p| g.locate(p).unwrap())
            .collect();
        let tight = bkst_on_graph(&g, s, &sinks, 0.0).unwrap().wirelength();
        let loose = bkst_on_graph(&g, s, &sinks, 2.0).unwrap().wirelength();
        assert!(loose <= tight + 1e-9, "loose {loose} > tight {tight}");
    }
}
