//! Sparse rectilinear routing graphs: the Hanan grid as a graph, and the
//! obstacle-aware escape/channel-intersection graph.
//!
//! §3.3 of the paper: "Bounded Path Length Steiner Trees can be constructed
//! on a channel intersection graph or on a Hanan's grid graph". The
//! [`crate::bkst`] construction specialises to the unobstructed Hanan grid
//! (where shortest paths are L-shapes); [`RoutingGraph`] is the general
//! substrate — any rectilinear node/edge graph, in particular one with
//! routing blockages — driven by [`crate::bkst_on_graph`].

use std::collections::BTreeMap;

use bmst_geom::{BoundingBox, Point};
use bmst_graph::{dijkstra, AdjacencyList, ShortestPaths};

use crate::HananGrid;

/// A rectilinear routing graph: nodes with coordinates, axis-aligned
/// unit-segment edges weighted by length.
///
/// # Examples
///
/// ```
/// use bmst_geom::{BoundingBox, Point};
/// use bmst_steiner::RoutingGraph;
///
/// let terminals = [Point::new(0.0, 0.0), Point::new(4.0, 0.0)];
/// // A wall between them forces a detour.
/// let wall = BoundingBox { lo: Point::new(1.0, -3.0), hi: Point::new(3.0, 1.0) };
/// let g = RoutingGraph::with_obstacles(&terminals, &[wall]);
/// let s = g.locate(terminals[0]).unwrap();
/// let t = g.locate(terminals[1]).unwrap();
/// let sp = g.shortest_paths(s);
/// assert!(sp.dist[t] > 4.0); // longer than the blocked straight line
/// ```
#[derive(Debug, Clone)]
pub struct RoutingGraph {
    points: Vec<Point>,
    adj: AdjacencyList,
    index: BTreeMap<(u64, u64), usize>,
}

fn key(p: Point) -> (u64, u64) {
    (p.x.to_bits(), p.y.to_bits())
}

impl RoutingGraph {
    /// The full Hanan grid graph of a terminal set: one node per grid
    /// intersection, edges between grid-adjacent nodes.
    pub fn grid(terminals: &[Point]) -> Self {
        Self::build(terminals, &[], &[])
    }

    /// The obstacle-aware escape graph: the Hanan grid of the terminals
    /// *and* all obstacle corners, with nodes strictly inside an obstacle
    /// removed and edges crossing an obstacle interior removed.
    ///
    /// This is the standard constructive stand-in for the channel
    /// intersection graph: every maximal free channel between blockages is
    /// represented, and shortest rectilinear obstacle-avoiding routes exist
    /// on it.
    ///
    /// # Panics
    ///
    /// Panics if `terminals` is empty, any coordinate is non-finite, or a
    /// terminal lies strictly inside an obstacle (it could never be routed).
    pub fn with_obstacles(terminals: &[Point], obstacles: &[BoundingBox]) -> Self {
        for (i, t) in terminals.iter().enumerate() {
            assert!(
                !obstacles.iter().any(|o| strictly_inside(*t, o)),
                "terminal {i} at {t} lies inside an obstacle"
            );
        }
        let corners: Vec<Point> = obstacles
            .iter()
            .flat_map(|o| {
                [
                    o.lo,
                    o.hi,
                    Point::new(o.lo.x, o.hi.y),
                    Point::new(o.hi.x, o.lo.y),
                ]
            })
            .collect();
        Self::build(terminals, &corners, obstacles)
    }

    fn build(terminals: &[Point], extra: &[Point], obstacles: &[BoundingBox]) -> Self {
        let mut all: Vec<Point> = terminals.to_vec();
        all.extend_from_slice(extra);
        let grid = HananGrid::new(&all);

        let mut points = Vec::new();
        let mut index = BTreeMap::new();
        let mut id_of = vec![vec![usize::MAX; grid.height()]; grid.width()];
        for (xi, column) in id_of.iter_mut().enumerate() {
            for (yi, slot) in column.iter_mut().enumerate() {
                let p = grid.coordinate(xi, yi);
                if obstacles.iter().any(|o| strictly_inside(p, o)) {
                    continue;
                }
                let id = points.len();
                points.push(p);
                index.insert(key(p), id);
                *slot = id;
            }
        }

        let mut adj = AdjacencyList::new(points.len());
        // Horizontal and vertical grid segments whose interiors are free.
        for xi in 0..grid.width() {
            for yi in 0..grid.height() {
                let a = id_of[xi][yi];
                if a == usize::MAX {
                    continue;
                }
                if xi + 1 < grid.width() {
                    let b = id_of[xi + 1][yi];
                    if b != usize::MAX && segment_free(points[a], points[b], obstacles) {
                        adj.add_edge(a, b, points[a].manhattan(points[b]));
                    }
                }
                if yi + 1 < grid.height() {
                    let b = id_of[xi][yi + 1];
                    if b != usize::MAX && segment_free(points[a], points[b], obstacles) {
                        adj.add_edge(a, b, points[a].manhattan(points[b]));
                    }
                }
            }
        }

        RoutingGraph { points, adj, index }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Coordinates of node `v`.
    #[inline]
    pub fn point(&self, v: usize) -> Point {
        self.points[v]
    }

    /// All node coordinates, indexed by node id.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Node id at exactly these coordinates, if present.
    pub fn locate(&self, p: Point) -> Option<usize> {
        self.index.get(&key(p)).copied()
    }

    /// Neighbors of `v` as `(node, length)` pairs.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.adj.neighbors(v)
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.edge_count()
    }

    /// Single-source shortest paths over the graph.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of bounds.
    pub fn shortest_paths(&self, from: usize) -> ShortestPaths {
        dijkstra(&self.adj, from)
    }
}

/// Strictly inside: in the open interior (boundary does not block).
fn strictly_inside(p: Point, o: &BoundingBox) -> bool {
    p.x > o.lo.x && p.x < o.hi.x && p.y > o.lo.y && p.y < o.hi.y
}

/// A grid segment is routable when its midpoint is not strictly inside any
/// obstacle (obstacle boundaries lie on grid lines by construction, so the
/// midpoint test is exact).
fn segment_free(a: Point, b: Point, obstacles: &[BoundingBox]) -> bool {
    let mid = Point::new((a.x + b.x) / 2.0, (a.y + b.y) / 2.0);
    !obstacles.iter().any(|o| strictly_inside(mid, o))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    #[test]
    fn grid_graph_counts() {
        let g = RoutingGraph::grid(&[
            Point::new(0.0, 0.0),
            Point::new(2.0, 1.0),
            Point::new(1.0, 3.0),
        ]);
        // 3x3 grid: 9 nodes, 12 edges.
        assert_eq!(g.len(), 9);
        assert_eq!(g.edge_count(), 12);
    }

    #[test]
    fn grid_shortest_path_is_manhattan() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(2.0, 4.0),
        ];
        let g = RoutingGraph::grid(&pts);
        let s = g.locate(pts[0]).unwrap();
        let sp = g.shortest_paths(s);
        for &p in &pts {
            let v = g.locate(p).unwrap();
            assert!((sp.dist[v] - pts[0].manhattan(p)).abs() < 1e-9);
        }
    }

    #[test]
    fn obstacle_blocks_straight_route() {
        let terminals = [Point::new(0.0, 0.0), Point::new(4.0, 0.0)];
        let wall = BoundingBox {
            lo: Point::new(1.0, -3.0),
            hi: Point::new(3.0, 1.0),
        };
        let g = RoutingGraph::with_obstacles(&terminals, &[wall]);
        let s = g.locate(terminals[0]).unwrap();
        let t = g.locate(terminals[1]).unwrap();
        let sp = g.shortest_paths(s);
        // Must go over the top (y = 1) or under the bottom (y = -3):
        // over: 0,0 -> 0,1 -> 4,1 -> 4,0 = 1 + 4 + 1 = 6.
        assert!((sp.dist[t] - 6.0).abs() < 1e-9, "got {}", sp.dist[t]);
    }

    #[test]
    fn nodes_inside_obstacles_removed() {
        let terminals = [
            Point::new(0.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(2.0, 2.0),
        ];
        // Note: (2, 2) is a terminal, so it must NOT be inside the obstacle.
        let o = BoundingBox {
            lo: Point::new(2.5, 2.5),
            hi: Point::new(3.5, 3.5),
        };
        let g = RoutingGraph::with_obstacles(&terminals, &[o]);
        // The obstacle centre (3, 3) exists as a grid coordinate? The grid
        // includes 2.5 and 3.5 ladders; any node strictly between them is
        // absent.
        assert!(g.locate(Point::new(3.0, 3.0)).is_none());
        // Boundary corners remain routable.
        assert!(g.locate(Point::new(2.5, 2.5)).is_some());
    }

    #[test]
    #[should_panic(expected = "inside an obstacle")]
    fn terminal_inside_obstacle_panics() {
        let o = BoundingBox {
            lo: Point::new(-1.0, -1.0),
            hi: Point::new(1.0, 1.0),
        };
        RoutingGraph::with_obstacles(&[Point::new(0.0, 0.0)], &[o]);
    }

    #[test]
    fn fully_walled_terminal_is_unreachable() {
        // A ring of four obstacles around the second terminal; boundary
        // paths still exist along obstacle edges... so use overlapping walls
        // forming a solid ring with no gap.
        let terminals = [Point::new(0.0, 0.0), Point::new(10.0, 10.0)];
        let ring = [
            BoundingBox {
                lo: Point::new(8.0, 8.0),
                hi: Point::new(12.0, 9.0),
            },
            BoundingBox {
                lo: Point::new(8.0, 11.0),
                hi: Point::new(12.0, 12.0),
            },
            BoundingBox {
                lo: Point::new(8.0, 8.5),
                hi: Point::new(9.0, 11.5),
            },
            BoundingBox {
                lo: Point::new(11.0, 8.5),
                hi: Point::new(12.0, 11.5),
            },
        ];
        let g = RoutingGraph::with_obstacles(&terminals, &ring);
        let s = g.locate(terminals[0]).unwrap();
        let t = g.locate(terminals[1]).unwrap();
        let sp = g.shortest_paths(s);
        // Either unreachable or forced through a boundary seam; the point
        // of the test is that the straight distance (20) is impossible.
        assert!(sp.dist[t].is_infinite() || sp.dist[t] > 20.0 + 1e-9);
    }

    #[test]
    fn locate_misses_off_grid_points() {
        let g = RoutingGraph::grid(&[Point::new(0.0, 0.0), Point::new(1.0, 1.0)]);
        assert!(g.locate(Point::new(0.5, 0.5)).is_none());
    }
}
