//! The Steiner entry in the construction registry.
//!
//! `bmst-core` cannot depend on this crate, so its [`bmst_core::registry`]
//! only knows the spanning constructions; [`full_registry`] appends the
//! BKST Steiner builder and is what the router and CLI resolve names
//! against.

use std::sync::OnceLock;

use bmst_core::{
    BmstError, BoundKind, BuilderDescriptor, BuiltGeometry, CostClass, ProblemContext, TreeBuilder,
};
use bmst_tree::RoutingTree;

use crate::bkst::bkst_with;

/// BKST (§3.3): the bounded-Kruskal Steiner construction on the Hanan grid.
///
/// Registered as `steiner` (alias `bkst`); rectilinear-only. Its
/// [`TreeBuilder::build_geometry`] exposes the materialised Steiner points
/// after the net's terminals.
#[derive(Debug, Clone, Copy, Default)]
pub struct BkstBuilder;

impl TreeBuilder for BkstBuilder {
    fn descriptor(&self) -> &BuilderDescriptor {
        &BuilderDescriptor {
            name: "steiner",
            aliases: &["bkst"],
            summary: "bounded-Kruskal Steiner tree on the Hanan grid (§3.3)",
            cost_class: CostClass::Heuristic,
            bound: BoundKind::Window,
            metric: false,
            elmore: false,
            steiner: true,
            variant_of: None,
        }
    }

    // analyze: allow(panic-reach) — raw trait API; registry consumers go through try_build, which catch_unwinds into BmstError::Internal
    fn build(&self, cx: &ProblemContext<'_>) -> Result<RoutingTree, BmstError> {
        bkst_with(cx.net(), *cx.constraint()).map(|st| st.tree)
    }

    // analyze: allow(panic-reach) — raw trait API; registry consumers go through try_build, which catch_unwinds into BmstError::Internal
    fn build_geometry(&self, cx: &ProblemContext<'_>) -> Result<BuiltGeometry, BmstError> {
        let st = bkst_with(cx.net(), *cx.constraint())?;
        Ok(BuiltGeometry {
            tree: st.tree,
            points: st.points,
            num_terminals: st.num_terminals,
        })
    }
}

static BKST_BUILDER: BkstBuilder = BkstBuilder;

static FULL: OnceLock<Vec<&'static dyn TreeBuilder>> = OnceLock::new();

/// Every registered construction: [`bmst_core::registry`] plus the BKST
/// Steiner builder.
pub fn full_registry() -> &'static [&'static dyn TreeBuilder] {
    FULL.get_or_init(|| {
        let mut all: Vec<&'static dyn TreeBuilder> = bmst_core::registry().to_vec();
        all.push(&BKST_BUILDER);
        all
    })
}

/// Resolves `name` against [`full_registry`] descriptor names and aliases.
pub fn find_builder(name: &str) -> Option<&'static dyn TreeBuilder> {
    full_registry().iter().copied().find(|b| {
        let d = b.descriptor();
        d.name == name || d.aliases.contains(&name)
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use bmst_geom::{Net, Point};

    #[test]
    fn full_registry_appends_steiner() {
        let full = full_registry();
        assert_eq!(full.len(), bmst_core::registry().len() + 1);
        assert_eq!(full.last().unwrap().descriptor().name, "steiner");
    }

    #[test]
    fn find_builder_sees_core_and_steiner() {
        assert_eq!(find_builder("bkst").unwrap().descriptor().name, "steiner");
        assert_eq!(find_builder("bkrus").unwrap().descriptor().name, "bkrus");
        assert!(find_builder("missing").is_none());
    }

    #[test]
    fn builder_matches_free_function_and_exposes_points() {
        let net = Net::with_source_first(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 2.0),
            Point::new(10.0, -2.0),
        ])
        .unwrap();
        let cx = ProblemContext::new(&net, 0.5).unwrap();
        let st = crate::bkst(&net, 0.5).unwrap();
        let tree = BkstBuilder.build(&cx).unwrap();
        assert_eq!(tree.cost().to_bits(), st.tree.cost().to_bits());
        let g = BkstBuilder.build_geometry(&cx).unwrap();
        assert_eq!(g.points, st.points);
        assert_eq!(g.num_terminals, net.len());
        assert!(g.points.len() >= net.len());
    }
}
