//! BKST: bounded path length Kruskal Steiner trees (paper §3.3).

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

use bmst_core::forest::KruskalForest;
use bmst_core::{BmstError, PathConstraint};
use bmst_geom::{Metric, Net, Point};
use bmst_graph::Edge;
use bmst_tree::RoutingTree;

use crate::HananGrid;

/// A rectilinear Steiner tree produced by [`bkst`].
///
/// The node universe is the set of *materialised* Hanan-grid nodes: ids
/// `0..num_terminals` are the net's terminals (same order and indices as the
/// net), higher ids are Steiner points created while routing L-shaped paths.
#[derive(Debug, Clone)]
pub struct SteinerTree {
    /// The routing tree over all materialised nodes, rooted at the source.
    pub tree: RoutingTree,
    /// Coordinates of every materialised node, indexed by node id.
    pub points: Vec<Point>,
    /// Number of original terminals (`points[..num_terminals]` equals the
    /// net's terminal list).
    pub num_terminals: usize,
}

impl SteinerTree {
    /// Total wirelength of the Steiner tree.
    #[inline]
    pub fn wirelength(&self) -> f64 {
        self.tree.cost()
    }

    /// Ids of the Steiner (non-terminal) nodes used by the tree.
    pub fn steiner_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        (self.num_terminals..self.points.len()).filter(move |&v| self.tree.is_covered(v))
    }

    /// The longest source-to-terminal path length.
    pub fn terminal_radius(&self) -> f64 {
        self.tree
            .max_dist_from_root((0..self.num_terminals).filter(|&v| v != self.tree.root()))
    }
}

/// A candidate connection between two materialised nodes, ordered by
/// rectilinear distance (the paper's distance heap).
#[derive(Debug, PartialEq)]
struct Cand {
    dist: f64,
    a: usize,
    b: usize,
}

impl Eq for Cand {}
impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Cand {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed (min-heap) with deterministic index tie-breaks;
        // `total_cmp` keeps the order total without unwrapping.
        other
            .dist
            .total_cmp(&self.dist)
            .then(other.a.cmp(&self.a))
            .then(other.b.cmp(&self.b))
    }
}

/// Constructs a bounded path length rectilinear Steiner tree (BKST).
///
/// The construction follows the paper's §3.3:
///
/// 1. all terminal-pair rectilinear distances seed a min-heap;
/// 2. the smallest distance whose endpoints lie in different partial trees
///    and whose merge passes the BKRUS feasibility conditions is routed as
///    an **L-shaped path** on the Hanan grid — of the two Ls, the one whose
///    corner is closer to the source is chosen;
/// 3. every grid node on the routed path is materialised and *treated as a
///    new sink*: its distances to all nodes outside the merged tree are
///    pushed onto the heap;
/// 4. repeat until every terminal is connected to the source.
///
/// When a routed path runs into nodes already in the same partial tree the
/// overlapping segments are simply reused (that sharing is where Steiner
/// savings come from), and the final tree is re-validated against the bound.
///
/// # Errors
///
/// * [`BmstError::UnsupportedMetric`] unless the net uses [`Metric::L1`]
///   (Hanan grids are rectilinear);
/// * [`BmstError::InvalidEpsilon`] for negative/NaN `eps`;
/// * [`BmstError::Infeasible`] if the heap empties before all terminals
///   connect, or path sharing pushed a terminal over the bound (rare).
///
/// # Examples
///
/// ```
/// use bmst_geom::{Net, Point};
/// use bmst_steiner::bkst;
///
/// let net = Net::with_source_first(vec![
///     Point::new(0.0, 0.0),
///     Point::new(6.0, 3.0),
///     Point::new(6.0, -3.0),
/// ])?;
/// let st = bkst(&net, 0.5)?;
/// assert!(st.terminal_radius() <= 1.5 * net.source_radius() + 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn bkst(net: &Net, eps: f64) -> Result<SteinerTree, BmstError> {
    let constraint = PathConstraint::from_eps(net, eps)?;
    bkst_with(net, constraint)
}

/// Bounded path length Steiner tree under an arbitrary
/// [`PathConstraint`] — including two-sided windows
/// `eps1 * R <= path(S, sink) <= (1 + eps2) * R`.
///
/// This implements the *lower and upper bounded Steiner trees* the paper
/// lists as future work (§8): the Steiner topology's path-branching gives
/// the lower bound far more freedom than the spanning construction's node
/// branching, so windows that are infeasible for [`lub_bkrus`] often route
/// here.
///
/// The lower bound is enforced where it becomes binding: a merge that
/// connects a component to the source's tree fixes `path(S, t)` for every
/// terminal `t` in that component, and the merge is rejected when any of
/// those paths would fall short. Steiner points carry no lower-bound
/// obligation.
///
/// [`lub_bkrus`]: bmst_core::lub_bkrus
///
/// # Errors
///
/// Same conditions as [`bkst`].
///
/// # Examples
///
/// ```
/// use bmst_core::PathConstraint;
/// use bmst_geom::{Net, Point};
/// use bmst_steiner::bkst_with;
///
/// let net = Net::with_source_first(vec![
///     Point::new(0.0, 0.0),
///     Point::new(7.0, 0.0),
///     Point::new(10.0, 0.0),
/// ])?;
/// // Window [8, 15]: the near sink (distance 7) must route indirectly.
/// let c = PathConstraint::explicit(8.0, 15.0)?;
/// let st = bkst_with(&net, c)?;
/// for v in net.sinks() {
///     let p = st.tree.dist_from_root(v);
///     assert!(p >= 8.0 - 1e-9 && p <= 15.0 + 1e-9);
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[allow(clippy::expect_used)] // Hanan-grid invariant, justified inline
                              // analyze: allow(cancel-liveness) — public signature carries no CancelToken; work is Hanan-grid bounded
pub fn bkst_with(net: &Net, constraint: PathConstraint) -> Result<SteinerTree, BmstError> {
    if net.metric() != Metric::L1 {
        return Err(BmstError::UnsupportedMetric {
            metric: net.metric(),
        });
    }
    let nt = net.len();
    let source = net.source();
    if nt == 1 {
        return Ok(SteinerTree {
            tree: RoutingTree::from_edges(1, source, [])?,
            points: net.points().to_vec(),
            num_terminals: 1,
        });
    }

    let grid = HananGrid::new(net.points());
    let src_pt = net.point(source);

    let mut points: Vec<Point> = net.points().to_vec();
    let mut dist_s: Vec<f64> = points.iter().map(|p| p.manhattan(src_pt)).collect();
    let mut node_of: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for (id, &p) in points.iter().enumerate() {
        let key = grid
            .locate(p)
            // lint: allow(no-panic) — the grid's ladders contain every terminal coordinate by construction
            .expect("terminals lie on their own Hanan grid");
        // Coincident terminals map to the same grid node; keep the first id,
        // the duplicates connect through a zero-length candidate.
        node_of.entry(key).or_insert(id);
    }

    let mut forest = KruskalForest::new(nt, source);
    let mut heap: BinaryHeap<Cand> = BinaryHeap::new();
    for a in 0..nt {
        for b in (a + 1)..nt {
            heap.push(Cand {
                dist: points[a].manhattan(points[b]),
                a,
                b,
            });
        }
    }

    let mut edges: Vec<Edge> = Vec::new();
    let terminals_connected = |forest: &mut KruskalForest| -> usize {
        (0..nt).filter(|&t| forest.contains_source(t)).count()
    };

    // §6-style lower bound for Steiner merges: joining component X to the
    // source's tree via edge (join, other) of length w fixes
    // path(S, t) = path(S, join) + w + path_X(other, t) for every terminal
    // t in X; all of those must clear the lower bound. Steiner points are
    // exempt.
    let lower = constraint.lower;
    let lower_ok = |forest: &mut KruskalForest, u: usize, v: usize, w: f64| -> bool {
        if lower <= 0.0 {
            return true;
        }
        let s = forest.source();
        let (join, other) = if forest.contains_source(u) {
            (u, v)
        } else if forest.contains_source(v) {
            (v, u)
        } else {
            return true; // no source path is fixed by this merge
        };
        let base = forest.path(s, join) + w;
        let members: Vec<usize> = forest.component(other).to_vec();
        members
            .into_iter()
            .filter(|&t| t < nt)
            .all(|t| bmst_geom::le_tol(lower, base + forest.path(other, t)))
    };

    // Progress guard for the exhaustion fallback below: a fallback round
    // that adds no edge means the instance is genuinely stuck.
    let mut edges_at_last_fallback = usize::MAX;

    while terminals_connected(&mut forest) < nt {
        let Some(Cand { dist, a, b }) = heap.pop() else {
            // Heap exhausted. By the (3-b) invariant every live component
            // still holds a *feasible node* x with
            // dist(S, x) + radius(x) <= bound, and the direct L-route from
            // the source to x is segment-wise feasible — but the pair may
            // have been consumed while the components looked different.
            // Re-offer exactly those pairs.
            if edges_at_last_fallback == edges.len() {
                let connected = terminals_connected(&mut forest);
                return Err(BmstError::Infeasible {
                    connected,
                    total: nt,
                    min_feasible_eps: None,
                });
            }
            edges_at_last_fallback = edges.len();
            let mut offered = false;
            for (x, &dsx) in dist_s.iter().enumerate() {
                if !forest.contains_source(x)
                    && bmst_geom::le_tol(dsx + forest.radius(x), constraint.upper)
                {
                    heap.push(Cand {
                        dist: dsx,
                        a: source,
                        b: x,
                    });
                    offered = true;
                }
            }
            if !offered {
                let connected = terminals_connected(&mut forest);
                return Err(BmstError::Infeasible {
                    connected,
                    total: nt,
                    min_feasible_eps: None,
                });
            }
            continue;
        };
        if forest.same_component(a, b) {
            continue;
        }
        if !forest.is_feasible_merge(a, b, dist, &dist_s, constraint.upper) {
            continue;
        }
        if !lower_ok(&mut forest, a, b, dist) {
            continue;
        }

        // Route the L whose corner is nearer the source (the paper's rule).
        let (pa, pb) = (points[a], points[b]);
        let c1 = Point::new(pa.x, pb.y);
        let c2 = Point::new(pb.x, pa.y);
        let corner = if c1.manhattan(src_pt) <= c2.manhattan(src_pt) {
            c1
        } else {
            c2
        };
        let walk = grid.l_path(pa, corner, pb);

        let mut new_on_path: Vec<usize> = vec![a];
        let mut merged_any = false;

        if walk.is_empty()
            && forest.is_feasible_merge(a, b, 0.0, &dist_s, constraint.upper)
            && lower_ok(&mut forest, a, b, 0.0)
        {
            // Coincident endpoints (duplicate terminals): a zero-length
            // connection.
            forest.merge(a, b, 0.0);
            edges.push(Edge::new(a, b, 0.0));
            merged_any = true;
        }

        // Attach path nodes one segment at a time. Each individual segment
        // merge is re-checked against the bound — path sharing can make the
        // realised a-b route longer than the heap distance, so the
        // pair-level test above is only a filter; the per-segment checks
        // are what actually preserve the BKRUS invariant that every
        // performed merge is feasible.
        //
        // Grid nodes already owned by some tree are handled as wires are on
        // a chip: a node of *our* component is reused (wire sharing) only
        // when its in-tree path is no longer than the direct route; a node
        // of a *foreign* component is joined when the merge is feasible;
        // otherwise the new wire simply crosses over without connecting and
        // the pending segment keeps accumulating (an L-route is monotone,
        // so the skipped length is exactly the Manhattan distance between
        // the eventual edge endpoints).
        let mut cur = a;
        for (xi, yi) in walk {
            match node_of.get(&(xi, yi)).copied() {
                None => {
                    let id = forest.add_node();
                    let p = grid.coordinate(xi, yi);
                    points.push(p);
                    dist_s.push(p.manhattan(src_pt));
                    node_of.insert((xi, yi), id);
                    let w = points[cur].manhattan(points[id]);
                    if !forest.is_feasible_merge(cur, id, w, &dist_s, constraint.upper)
                        || !lower_ok(&mut forest, cur, id, w)
                    {
                        // Abandon the rest of the route; the fresh node
                        // stays an isolated grid point.
                        break;
                    }
                    forest.merge(cur, id, w);
                    edges.push(Edge::new(cur, id, w));
                    merged_any = true;
                    new_on_path.push(id);
                    cur = id;
                }
                Some(id) if forest.same_component(cur, id) => {
                    let w = points[cur].manhattan(points[id]);
                    if forest.path(cur, id) <= w + bmst_geom::EPS_TOL {
                        // Reuse the existing wire: the in-tree connection is
                        // at least as short as routing afresh.
                        new_on_path.push(id);
                        cur = id;
                    }
                    // Otherwise cross over without adopting the node.
                }
                Some(id) => {
                    let w = points[cur].manhattan(points[id]);
                    if forest.is_feasible_merge(cur, id, w, &dist_s, constraint.upper)
                        && lower_ok(&mut forest, cur, id, w)
                    {
                        forest.merge(cur, id, w);
                        edges.push(Edge::new(cur, id, w));
                        merged_any = true;
                        new_on_path.push(id);
                        cur = id;
                    }
                    // Otherwise cross over the foreign wire without
                    // connecting to it.
                }
            }
        }

        // Every node on the (actually routed) path is a new sink: offer its
        // connections to all nodes outside the merged tree. Only when a
        // merge happened — otherwise re-pushing the same pair would loop.
        if merged_any {
            for &p in &new_on_path {
                for q in 0..points.len() {
                    if q != p && !forest.same_component(p, q) {
                        heap.push(Cand {
                            dist: points[p].manhattan(points[q]),
                            a: p,
                            b: q,
                        });
                    }
                }
            }
        }
    }

    let tree = RoutingTree::from_edges(points.len(), source, edges)?;
    // Path sharing can lengthen a routed connection beyond its heap
    // distance; re-validate the full window over the terminals.
    if !constraint.is_satisfied_by(&tree, net.sinks()) {
        return Err(BmstError::Infeasible {
            connected: nt,
            total: nt,
            min_feasible_eps: None,
        });
    }
    Ok(SteinerTree {
        tree,
        points,
        num_terminals: nt,
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use bmst_core::{bkrus, mst_tree};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_net(seed: u64, n: usize) -> Net {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect();
        Net::with_source_first(pts).unwrap()
    }

    #[test]
    fn shares_trunk_on_symmetric_net() {
        // Source left, two sinks sharing the x-span: Steiner trunk + stubs
        // beats any spanning tree (14 vs 15).
        let net = Net::with_source_first(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 2.0),
            Point::new(10.0, -2.0),
        ])
        .unwrap();
        let st = bkst(&net, 1.0).unwrap();
        assert!(
            st.wirelength() <= 14.0 + 1e-9,
            "wirelength {}",
            st.wirelength()
        );
        assert!(st.wirelength() < mst_tree(&net).cost() - 1e-9);
        assert!(st.steiner_nodes().count() >= 1);
    }

    #[test]
    fn terminal_bound_respected() {
        for seed in 0..6 {
            let net = random_net(seed, 9);
            for eps in [0.0, 0.2, 0.5, 1.0] {
                let st = bkst(&net, eps).unwrap();
                let bound = (1.0 + eps) * net.source_radius();
                assert!(
                    st.terminal_radius() <= bound + 1e-9,
                    "seed {seed} eps {eps}: {} > {bound}",
                    st.terminal_radius()
                );
                // Every terminal is covered.
                for t in 0..net.len() {
                    assert!(st.tree.is_covered(t), "terminal {t} uncovered");
                }
            }
        }
    }

    #[test]
    fn beats_spanning_heuristics_on_average() {
        // Paper's Table 4: BKST cost is 5-30% below the spanning heuristics.
        let mut st_total = 0.0;
        let mut bk_total = 0.0;
        for seed in 0..10 {
            let net = random_net(seed + 100, 8);
            st_total += bkst(&net, 0.2).unwrap().wirelength();
            bk_total += bkrus(&net, 0.2).unwrap().cost();
        }
        assert!(
            st_total < bk_total,
            "Steiner total {st_total} should beat spanning total {bk_total}"
        );
    }

    #[test]
    fn can_beat_the_mst() {
        // The hallmark of a Steiner construction: ratios below 1.0 relative
        // to the MST (paper's Table 4 min column ~0.80).
        let mut below = 0;
        for seed in 0..10 {
            let net = random_net(seed + 500, 8);
            let st = bkst(&net, 1.0).unwrap().wirelength();
            if st < mst_tree(&net).cost() - 1e-9 {
                below += 1;
            }
        }
        assert!(below >= 5, "only {below}/10 instances below MST cost");
    }

    #[test]
    fn l2_metric_rejected() {
        let net = Net::new(
            vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)],
            0,
            Metric::L2,
        )
        .unwrap();
        assert!(matches!(
            bkst(&net, 0.5),
            Err(BmstError::UnsupportedMetric { metric: Metric::L2 })
        ));
    }

    #[test]
    fn negative_eps_rejected() {
        let net = random_net(0, 4);
        assert!(matches!(
            bkst(&net, -0.1),
            Err(BmstError::InvalidEpsilon { .. })
        ));
    }

    #[test]
    fn trivial_nets() {
        let net = Net::with_source_first(vec![Point::new(1.0, 1.0)]).unwrap();
        let st = bkst(&net, 0.0).unwrap();
        assert_eq!(st.wirelength(), 0.0);

        let net = Net::with_source_first(vec![Point::new(0.0, 0.0), Point::new(3.0, 4.0)]).unwrap();
        let st = bkst(&net, 0.0).unwrap();
        assert!((st.wirelength() - 7.0).abs() < 1e-9);
        assert!((st.terminal_radius() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn collinear_terminals_no_steiner_points() {
        let net = Net::with_source_first(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(5.0, 0.0),
        ])
        .unwrap();
        let st = bkst(&net, 1.0).unwrap();
        assert!((st.wirelength() - 5.0).abs() < 1e-9);
        assert_eq!(st.steiner_nodes().count(), 0);
    }

    #[test]
    fn coincident_terminals_handled() {
        let net = Net::with_source_first(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(4.0, 4.0),
        ])
        .unwrap();
        let st = bkst(&net, 0.5).unwrap();
        assert!((st.wirelength() - 8.0).abs() < 1e-9);
        for t in 0..3 {
            assert!(st.tree.is_covered(t));
        }
    }

    #[test]
    fn window_steiner_routes_near_sink_indirectly() {
        // Window [8, 15] on sinks at 7 and 10: the near sink cannot use its
        // direct route; the Steiner construction must stretch it.
        let net = Net::with_source_first(vec![
            Point::new(0.0, 0.0),
            Point::new(7.0, 0.0),
            Point::new(10.0, 0.0),
        ])
        .unwrap();
        let c = PathConstraint::explicit(8.0, 15.0).unwrap();
        let st = bkst_with(&net, c).unwrap();
        for v in net.sinks() {
            let p = st.tree.dist_from_root(v);
            assert!((8.0 - 1e-9..=15.0 + 1e-9).contains(&p), "sink {v}: {p}");
        }
    }

    #[test]
    fn window_steiner_matches_plain_when_lower_is_zero() {
        for seed in 0..4 {
            let net = random_net(seed + 700, 7);
            let plain = bkst(&net, 0.4).unwrap();
            let c = PathConstraint::from_eps(&net, 0.4).unwrap();
            let windowed = bkst_with(&net, c).unwrap();
            assert!((plain.wirelength() - windowed.wirelength()).abs() < 1e-9);
        }
    }

    #[test]
    fn window_steiner_infeasible_reported() {
        // Impossible window: all paths in [2R, 2R + tiny] while upper bound
        // caps detours.
        let net = Net::with_source_first(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(10.0, 0.0),
        ])
        .unwrap();
        let c = PathConstraint::explicit(19.0, 20.0).unwrap();
        assert!(matches!(
            bkst_with(&net, c),
            Err(BmstError::Infeasible { .. })
        ));
    }

    #[test]
    fn window_feasible_for_steiner_where_spanning_fails() {
        // The paper's §8 motivation: path branching beats node branching.
        // Sinks at 6 and 10 with window [9, 12]: spanning trees must route
        // the near sink through the far one (path 14 > 12, infeasible), but
        // a Steiner detour of the right length exists on the Hanan grid of
        // a helper terminal.
        let net = Net::with_source_first(vec![
            Point::new(0.0, 0.0),
            Point::new(6.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(6.0, 3.0),
        ])
        .unwrap();
        let c = PathConstraint::explicit(9.0, 12.0).unwrap();
        let spanning = bmst_core::lub_bkrus(&net, 9.0 / net.source_radius(), 0.2);
        let steiner = bkst_with(&net, c);
        // At minimum, whenever the Steiner variant claims success the
        // window must really hold; and it should not be *less* capable than
        // the spanning variant.
        match (&spanning, &steiner) {
            (Ok(_), Err(_)) => panic!("steiner strictly weaker than spanning"),
            (_, Ok(st)) => {
                for v in net.sinks() {
                    let p = st.tree.dist_from_root(v);
                    assert!((9.0 - 1e-9..=12.0 + 1e-9).contains(&p), "sink {v}: {p}");
                }
            }
            (Err(_), Err(_)) => {} // both infeasible is acceptable
        }
    }

    #[test]
    fn tight_bound_costs_no_less_than_loose_on_average() {
        // Greedy route choices make per-instance monotonicity impossible to
        // guarantee, but across seeds the loose bound must be cheaper
        // (paper's Table 4 trend).
        let mut tight_total = 0.0;
        let mut loose_total = 0.0;
        for seed in 0..8 {
            let net = random_net(seed + 300, 8);
            tight_total += bkst(&net, 0.0).unwrap().wirelength();
            loose_total += bkst(&net, 2.0).unwrap().wirelength();
        }
        assert!(
            loose_total <= tight_total + 1e-9,
            "loose {loose_total} > tight {tight_total}"
        );
    }
}
