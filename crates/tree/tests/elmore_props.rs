//! Property-based tests of the Elmore delay evaluator against first
//! principles.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats

use bmst_graph::Edge;
use bmst_tree::{elmore, ElmoreDelays, ElmoreParams, RoutingTree};
use proptest::prelude::*;

/// Strategy: a random tree over n nodes (random parent for each node > 0)
/// with positive integer-ish edge lengths.
fn arb_tree() -> impl Strategy<Value = RoutingTree> {
    (2usize..10)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec((0usize..1000, 1u32..20), n - 1),
            )
        })
        .prop_map(|(n, raw)| {
            let edges: Vec<Edge> = raw
                .into_iter()
                .enumerate()
                .map(|(i, (p, w))| {
                    let child = i + 1;
                    Edge::new(p % child, child, w as f64 * 0.5)
                })
                .collect();
            RoutingTree::from_edges(n, 0, edges).expect("parent pointers form a tree")
        })
}

/// Raw electrical parameters, instantiated per-tree inside each property.
type RawParams = (u32, u32, u32, u32, u32);

fn arb_raw_params() -> impl Strategy<Value = RawParams> {
    (1u32..10, 1u32..10, 0u32..20, 0u32..5, 0u32..10)
}

fn mk_params(n: usize, (ur, uc, dr, dc, load): RawParams) -> ElmoreParams {
    ElmoreParams::uniform_loads(
        n,
        0,
        ur as f64 * 0.1,
        uc as f64 * 0.1,
        dr as f64,
        dc as f64,
        load as f64,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Delays from the source are non-negative and monotone along every
    /// root-to-node path (each wire segment only adds delay).
    #[test]
    fn source_delay_monotone_along_paths(tree in arb_tree(), raw in arb_raw_params()) {
        let params = mk_params(tree.universe(), raw);
        let d = ElmoreDelays::from_source(&tree, &params);
        for v in tree.covered_nodes() {
            prop_assert!(d.delay[v].is_finite());
            if let Some(p) = tree.parent(v) {
                prop_assert!(
                    d.delay[v] >= d.delay[p] - 1e-12,
                    "delay decreased from {p} to {v}"
                );
            }
        }
    }

    /// The driver term shifts every node's delay by the same constant:
    /// from_source(v) - from_node(v) = r_d * (c_d + C_total at the root).
    #[test]
    fn driver_term_is_a_constant_shift(tree in arb_tree(), raw in arb_raw_params()) {
        let params = mk_params(tree.universe(), raw);
        let with = ElmoreDelays::from_source(&tree, &params);
        let without = ElmoreDelays::from_node(&tree, tree.root(), &params).unwrap();
        let shift = with.delay[tree.root()];
        for v in tree.covered_nodes() {
            prop_assert!(
                (with.delay[v] - without.delay[v] - shift).abs() < 1e-9,
                "node {v}: shift not constant"
            );
        }
    }

    /// Adding load capacitance anywhere never speeds anything up.
    #[test]
    fn extra_load_never_helps(tree in arb_tree(), extra in 1u32..50) {
        let n = tree.universe();
        let base = ElmoreParams::uniform_loads(n, 0, 0.3, 0.2, 5.0, 1.0, 2.0);
        let mut heavier = base.clone();
        // Load up the deepest covered node.
        let deepest = tree
            .covered_nodes()
            .max_by_key(|&v| tree.depth(v))
            .expect("non-empty");
        heavier.load_cap[deepest] += extra as f64;

        let d0 = ElmoreDelays::from_source(&tree, &base);
        let d1 = ElmoreDelays::from_source(&tree, &heavier);
        for v in tree.covered_nodes() {
            prop_assert!(d1.delay[v] >= d0.delay[v] - 1e-12, "node {v} sped up");
        }
    }

    /// The radius vector dominates per-pair delays:
    /// r[u] >= delay(u, v) for every pair.
    #[test]
    fn radii_dominate_pairwise_delays(tree in arb_tree()) {
        let n = tree.universe();
        let params = ElmoreParams::uniform_loads(n, 0, 0.2, 0.2, 3.0, 1.0, 1.5);
        let radii = elmore::elmore_radii(&tree, &params);
        for u in tree.covered_nodes() {
            let d = ElmoreDelays::from_node(&tree, u, &params).unwrap();
            for v in tree.covered_nodes() {
                prop_assert!(radii[u] >= d.delay[v] - 1e-9, "r[{u}] < delay({u},{v})");
            }
        }
    }

    /// Total capacitance equals the root's downstream capacitance plus the
    /// root load — checked via the delay of a zero-resistance driver probe.
    #[test]
    fn total_capacitance_consistent(tree in arb_tree()) {
        let n = tree.universe();
        let params = ElmoreParams::uniform_loads(n, 0, 0.2, 0.3, 1.0, 0.0, 2.0);
        // from_source root delay = r_d * (c_d + C_root) with c_d = 0 =>
        // C_root = root delay / r_d; and C_root + load(root) == total.
        let d = ElmoreDelays::from_source(&tree, &params);
        let c_root = d.delay[tree.root()] / params.driver_res;
        let total = elmore::total_capacitance(&tree, &params);
        prop_assert!((c_root + params.load_cap[tree.root()] - total).abs() < 1e-9);
    }
}

#[test]
fn public_types_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<RoutingTree>();
    assert_send_sync::<ElmoreParams>();
    assert_send_sync::<ElmoreDelays>();
    assert_send_sync::<bmst_tree::TreeError>();
}
