//! Error type for routing-tree construction and mutation.

use std::error::Error;
use std::fmt;

/// Errors produced when building or mutating a [`crate::RoutingTree`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TreeError {
    /// The root index is outside the node universe.
    RootOutOfBounds {
        /// Offending root index.
        root: usize,
        /// Size of the node universe.
        n: usize,
    },
    /// An edge references a node outside the node universe.
    NodeOutOfBounds {
        /// Offending node index.
        node: usize,
        /// Size of the node universe.
        n: usize,
    },
    /// The edge set contains a cycle (two edges reach the same node).
    Cycle {
        /// A node reached twice.
        node: usize,
    },
    /// Some edges are not reachable from the root.
    Disconnected {
        /// Number of edges that could not be attached to the root component.
        unattached_edges: usize,
    },
    /// A queried node is not covered by this (Steiner) tree.
    NodeNotCovered {
        /// The uncovered node.
        node: usize,
    },
    /// A T-exchange referenced an edge that is not in the tree.
    NotATreeEdge {
        /// Child endpoint of the requested tree edge.
        u: usize,
        /// Other endpoint of the requested tree edge.
        v: usize,
    },
    /// A T-exchange would disconnect the tree (the added edge does not
    /// reconnect the two components created by the removal).
    InvalidExchange,
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::RootOutOfBounds { root, n } => {
                write!(f, "root {root} out of bounds for {n} nodes")
            }
            TreeError::NodeOutOfBounds { node, n } => {
                write!(f, "edge endpoint {node} out of bounds for {n} nodes")
            }
            TreeError::Cycle { node } => {
                write!(f, "edge set contains a cycle through node {node}")
            }
            TreeError::Disconnected { unattached_edges } => {
                write!(
                    f,
                    "{unattached_edges} edges are not reachable from the root"
                )
            }
            TreeError::NodeNotCovered { node } => {
                write!(f, "node {node} is not covered by the tree")
            }
            TreeError::NotATreeEdge { u, v } => {
                write!(f, "({u}, {v}) is not a tree edge")
            }
            TreeError::InvalidExchange => {
                f.write_str("exchange edge does not reconnect the split components")
            }
        }
    }
}

impl Error for TreeError {}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(TreeError::RootOutOfBounds { root: 9, n: 3 }
            .to_string()
            .contains("root 9"));
        assert!(TreeError::Cycle { node: 2 }.to_string().contains("cycle"));
        assert!(TreeError::Disconnected {
            unattached_edges: 4
        }
        .to_string()
        .contains('4'));
        assert!(TreeError::NodeNotCovered { node: 1 }
            .to_string()
            .contains("not covered"));
        assert!(TreeError::NotATreeEdge { u: 0, v: 1 }
            .to_string()
            .contains("not a tree edge"));
        assert!(TreeError::InvalidExchange.to_string().contains("reconnect"));
        assert!(TreeError::NodeOutOfBounds { node: 5, n: 2 }
            .to_string()
            .contains('5'));
    }
}
