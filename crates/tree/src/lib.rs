//! Routing-tree substrate for the BMST reproduction.
//!
//! A [`RoutingTree`] is a rooted tree over a node universe `0..n` whose root
//! is the net's source. Spanning trees cover every node; Steiner trees cover
//! a subset (terminals plus materialised grid nodes). The type answers all
//! the queries the paper's algorithms and evaluations need:
//!
//! * `cost(T)` — total wirelength;
//! * `path_T(u, v)` — in-tree path length between any two covered nodes;
//! * `radius_T(v)` — the largest in-tree path length from `v`;
//! * the *father array* `FA` and depth levels used by the negative-sum
//!   T-exchange search (BKEX / BKH2);
//! * feasibility checks against an upper (and optionally lower) path-length
//!   bound;
//! * [Elmore delay](elmore) evaluation for the RC-delay extension of BKRUS.
//!
//! # Examples
//!
//! ```
//! use bmst_graph::Edge;
//! use bmst_tree::RoutingTree;
//!
//! // A path 0 - 1 - 2 rooted at 0.
//! let t = RoutingTree::from_edges(3, 0, vec![Edge::new(0, 1, 2.0), Edge::new(1, 2, 3.0)])?;
//! assert_eq!(t.cost(), 5.0);
//! assert_eq!(t.dist_from_root(2), 5.0);
//! assert_eq!(t.path_length(0, 2), 5.0);
//! assert_eq!(t.radius_of(2), 5.0);
//! # Ok::<(), bmst_tree::TreeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
/// Elmore (RC) delay evaluation over routing trees (§6 of the paper).
pub mod elmore;
mod error;
mod routing_tree;

pub use audit::{AuditContext, AuditViolation};
pub use elmore::{ElmoreDelays, ElmoreParams};
pub use error::TreeError;
pub use routing_tree::RoutingTree;
