//! The rooted routing-tree representation.

use bmst_geom::le_tol;
use bmst_graph::Edge;

use crate::TreeError;

const NO_PARENT: usize = usize::MAX;

/// A rooted routing tree over the node universe `0..n`.
///
/// The root is the net's source. The tree may cover all nodes (spanning
/// trees) or a subset containing the root (Steiner trees over a routing
/// grid); uncovered nodes simply have no parent and answer
/// [`RoutingTree::is_covered`] with `false`.
///
/// All structural queries the paper's algorithms need are provided:
/// source-to-node path lengths, in-tree path lengths between arbitrary
/// covered nodes (`path_T(u, v)`), per-node radii (`radius_T(v)`), the father
/// array / depth levels used by the T-exchange search, and feasibility checks
/// against path-length bounds.
///
/// The structure is immutable; the T-exchange operation
/// ([`RoutingTree::apply_exchange`]) returns a new tree, which keeps the
/// backtracking search in BKEX trivially correct.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingTree {
    // Fields are crate-visible so the auditor (and its corruption tests)
    // can inspect and fake every piece of derived state.
    pub(crate) n: usize,
    pub(crate) root: usize,
    pub(crate) parent: Vec<usize>,
    pub(crate) parent_weight: Vec<f64>,
    pub(crate) depth: Vec<usize>,
    pub(crate) dist_root: Vec<f64>,
    pub(crate) children: Vec<Vec<usize>>,
    pub(crate) covered: Vec<bool>,
    pub(crate) covered_count: usize,
    pub(crate) cost: f64,
}

impl RoutingTree {
    /// Builds a routing tree from an edge list, rooted at `root`.
    ///
    /// The edges must form a tree containing `root`; nodes not touched by any
    /// edge are left uncovered (Steiner case). For a spanning tree over all
    /// `n` nodes pass exactly `n - 1` edges covering every node.
    ///
    /// # Errors
    ///
    /// * [`TreeError::RootOutOfBounds`] / [`TreeError::NodeOutOfBounds`] on
    ///   bad indices;
    /// * [`TreeError::Cycle`] if the edge set contains a cycle;
    /// * [`TreeError::Disconnected`] if some edges cannot be reached from the
    ///   root.
    // analyze: allow(cancel-liveness) — one pass over the edge list; bmst-tree has no CancelToken dependency
    pub fn from_edges(
        n: usize,
        root: usize,
        edges: impl IntoIterator<Item = Edge>,
    ) -> Result<Self, TreeError> {
        if root >= n {
            return Err(TreeError::RootOutOfBounds { root, n });
        }
        let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut edge_count = 0usize;
        for e in edges {
            if e.u >= n || e.v >= n {
                let node = if e.u >= n { e.u } else { e.v };
                return Err(TreeError::NodeOutOfBounds { node, n });
            }
            adj[e.u].push((e.v, e.weight));
            adj[e.v].push((e.u, e.weight));
            edge_count += 1;
        }

        let mut tree = RoutingTree {
            n,
            root,
            parent: vec![NO_PARENT; n],
            parent_weight: vec![0.0; n],
            depth: vec![0; n],
            dist_root: vec![f64::INFINITY; n],
            children: vec![Vec::new(); n],
            covered: vec![false; n],
            covered_count: 0,
            cost: 0.0,
        };

        // Iterative DFS from the root; children are visited in insertion
        // order so traversal order is deterministic.
        let mut stack = vec![root];
        tree.covered[root] = true;
        tree.covered_count = 1;
        tree.dist_root[root] = 0.0;
        while let Some(u) = stack.pop() {
            for &(v, w) in &adj[u] {
                if v == tree.parent[u] {
                    continue;
                }
                if tree.covered[v] {
                    return Err(TreeError::Cycle { node: v });
                }
                tree.covered[v] = true;
                tree.covered_count += 1;
                tree.parent[v] = u;
                tree.parent_weight[v] = w;
                tree.depth[v] = tree.depth[u] + 1;
                tree.dist_root[v] = tree.dist_root[u] + w;
                tree.children[u].push(v);
                tree.cost += w;
                stack.push(v);
            }
        }

        let attached = tree.covered_count - 1;
        if attached != edge_count {
            return Err(TreeError::Disconnected {
                unattached_edges: edge_count - attached,
            });
        }
        Ok(tree)
    }

    /// Size of the node universe (covered or not).
    #[inline]
    pub fn universe(&self) -> usize {
        self.n
    }

    /// The root (source) node.
    #[inline]
    pub fn root(&self) -> usize {
        self.root
    }

    /// Number of nodes covered by the tree.
    #[inline]
    pub fn covered_count(&self) -> usize {
        self.covered_count
    }

    /// Returns `true` if `v` is covered by the tree.
    #[inline]
    pub fn is_covered(&self, v: usize) -> bool {
        self.covered[v]
    }

    /// Returns `true` when the tree covers every node of the universe.
    #[inline]
    pub fn is_spanning(&self) -> bool {
        self.covered_count == self.n
    }

    /// Iterator over covered node indices, ascending.
    pub fn covered_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.n).filter(move |&v| self.covered[v])
    }

    /// Total wirelength `cost(T)`.
    #[inline]
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// The tree's edges as `(parent, child, weight)` triples encoded as
    /// [`Edge`]s, in ascending child order.
    pub fn edges(&self) -> Vec<Edge> {
        (0..self.n)
            .filter(|&v| self.covered[v] && v != self.root)
            .map(|v| Edge::new(self.parent[v], v, self.parent_weight[v]))
            .collect()
    }

    /// Parent of `v` in the rooted tree (the paper's father array `FA[v]`),
    /// `None` at the root or for uncovered nodes.
    #[inline]
    pub fn parent(&self, v: usize) -> Option<usize> {
        if self.covered[v] && v != self.root {
            Some(self.parent[v])
        } else {
            None
        }
    }

    /// Weight of the edge from `v` to its parent.
    ///
    /// # Panics
    ///
    /// Panics if `v` is the root or uncovered.
    #[inline]
    pub fn parent_edge_weight(&self, v: usize) -> f64 {
        assert!(
            self.covered[v] && v != self.root,
            "node {v} has no parent edge"
        );
        self.parent_weight[v]
    }

    /// Depth level of `v` (number of ancestors; `depth(root) = 0`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is uncovered.
    #[inline]
    pub fn depth(&self, v: usize) -> usize {
        assert!(self.covered[v], "node {v} is not covered");
        self.depth[v]
    }

    /// Children of `v` in traversal order.
    #[inline]
    pub fn children(&self, v: usize) -> &[usize] {
        &self.children[v]
    }

    /// Path length from the root (source) to `v`: the paper's
    /// `path_T(S, v)`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is uncovered.
    #[inline]
    pub fn dist_from_root(&self, v: usize) -> f64 {
        assert!(self.covered[v], "node {v} is not covered");
        self.dist_root[v]
    }

    /// The radius of the tree as seen from the root: `max_v path_T(S, v)`.
    /// This is the quantity bounded by `(1 + eps) * R`.
    pub fn source_radius(&self) -> f64 {
        self.covered_nodes()
            .map(|v| self.dist_root[v])
            .fold(0.0, f64::max)
    }

    /// The shortest source-to-node path length over a node subset (used for
    /// the lower bound of the LUB construction). Returns `f64::INFINITY`
    /// when the subset is empty.
    pub fn min_dist_from_root(&self, nodes: impl IntoIterator<Item = usize>) -> f64 {
        nodes
            .into_iter()
            .map(|v| self.dist_from_root(v))
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximum source-to-node path length over a node subset (e.g. sinks
    /// only, excluding Steiner points). Returns `0.0` when the subset is
    /// empty.
    pub fn max_dist_from_root(&self, nodes: impl IntoIterator<Item = usize>) -> f64 {
        nodes
            .into_iter()
            .map(|v| self.dist_from_root(v))
            .fold(0.0, f64::max)
    }

    /// Lowest common ancestor of two covered nodes.
    ///
    /// # Panics
    ///
    /// Panics if either node is uncovered.
    pub fn lca(&self, mut u: usize, mut v: usize) -> usize {
        assert!(self.covered[u], "node {u} is not covered");
        assert!(self.covered[v], "node {v} is not covered");
        while self.depth[u] > self.depth[v] {
            u = self.parent[u];
        }
        while self.depth[v] > self.depth[u] {
            v = self.parent[v];
        }
        while u != v {
            u = self.parent[u];
            v = self.parent[v];
        }
        u
    }

    /// In-tree path length between two covered nodes: the paper's
    /// `path_T(u, v)`.
    ///
    /// # Panics
    ///
    /// Panics if either node is uncovered.
    pub fn path_length(&self, u: usize, v: usize) -> f64 {
        let a = self.lca(u, v);
        self.dist_root[u] + self.dist_root[v] - 2.0 * self.dist_root[a]
    }

    /// Nodes on the unique in-tree path from `u` to `v`, inclusive
    /// (the paper's `path_nodes(u, v)`).
    ///
    /// # Panics
    ///
    /// Panics if either node is uncovered.
    pub fn path_nodes(&self, u: usize, v: usize) -> Vec<usize> {
        let a = self.lca(u, v);
        let mut up = Vec::new();
        let mut cur = u;
        while cur != a {
            up.push(cur);
            cur = self.parent[cur];
        }
        up.push(a);
        let mut down = Vec::new();
        cur = v;
        while cur != a {
            down.push(cur);
            cur = self.parent[cur];
        }
        up.extend(down.into_iter().rev());
        up
    }

    /// In-tree distances from `v` to every node (`f64::INFINITY` for
    /// uncovered nodes). `O(V)` by tree traversal.
    ///
    /// # Panics
    ///
    /// Panics if `v` is uncovered.
    pub fn dists_from(&self, v: usize) -> Vec<f64> {
        assert!(self.covered[v], "node {v} is not covered");
        let mut dist = vec![f64::INFINITY; self.n];
        dist[v] = 0.0;
        // Traverse the tree as an undirected graph from v.
        let mut stack = vec![(v, NO_PARENT)];
        while let Some((u, from)) = stack.pop() {
            // Neighbors: parent + children.
            if u != self.root {
                let p = self.parent[u];
                if p != from {
                    dist[p] = dist[u] + self.parent_weight[u];
                    stack.push((p, u));
                }
            }
            for &c in &self.children[u] {
                if c != from {
                    dist[c] = dist[u] + self.parent_weight[c];
                    stack.push((c, u));
                }
            }
        }
        dist
    }

    /// The radius of node `v`: `max_u path_T(v, u)` over covered nodes
    /// (the paper's `radius_T(v)`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is uncovered.
    pub fn radius_of(&self, v: usize) -> f64 {
        self.dists_from(v)
            .into_iter()
            .filter(|d| d.is_finite())
            .fold(0.0, f64::max)
    }

    /// All covered nodes in the subtree rooted at `v` (including `v`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is uncovered.
    pub fn subtree_nodes(&self, v: usize) -> Vec<usize> {
        assert!(self.covered[v], "node {v} is not covered");
        let mut out = Vec::new();
        let mut stack = vec![v];
        while let Some(u) = stack.pop() {
            out.push(u);
            stack.extend_from_slice(&self.children[u]);
        }
        out
    }

    /// Returns `true` if `(u, v)` (in either order) is a tree edge.
    pub fn contains_edge(&self, u: usize, v: usize) -> bool {
        if !self.covered[u] || !self.covered[v] {
            return false;
        }
        (u != self.root && self.parent[u] == v) || (v != self.root && self.parent[v] == u)
    }

    /// Checks that every node in `nodes` satisfies
    /// `path_T(S, node) <= bound` (tolerantly).
    pub fn satisfies_upper_bound(
        &self,
        bound: f64,
        nodes: impl IntoIterator<Item = usize>,
    ) -> bool {
        nodes
            .into_iter()
            .all(|v| le_tol(self.dist_from_root(v), bound))
    }

    /// Checks that every node in `nodes` satisfies
    /// `path_T(S, node) >= bound` (tolerantly) — the LUB lower bound.
    pub fn satisfies_lower_bound(
        &self,
        bound: f64,
        nodes: impl IntoIterator<Item = usize>,
    ) -> bool {
        nodes
            .into_iter()
            .all(|v| le_tol(bound, self.dist_from_root(v)))
    }

    /// Applies a T-exchange: removes the tree edge from `remove_child` to its
    /// father and adds `add`, returning the resulting tree.
    ///
    /// A *T-exchange* (Gabow) is a pair `(e, f)` with `e` in the tree and `f`
    /// outside such that `T - e + f` is again a spanning tree; its weight is
    /// `weight(f) - weight(e)`. The caller identifies `e` by its child
    /// endpoint, exactly like the `(v, FA[v])` pairs in the paper's
    /// `DFS_EXCHANGE`.
    ///
    /// # Errors
    ///
    /// * [`TreeError::NotATreeEdge`] if `remove_child` is the root or
    ///   uncovered (it then has no father edge);
    /// * [`TreeError::InvalidExchange`] if `add` does not reconnect the two
    ///   components (both endpoints on the same side of the cut), including
    ///   the degenerate case where `add` *is* the removed edge.
    pub fn apply_exchange(&self, remove_child: usize, add: Edge) -> Result<Self, TreeError> {
        if !self.covered[remove_child] || remove_child == self.root {
            return Err(TreeError::NotATreeEdge {
                u: remove_child,
                v: self.parent.get(remove_child).copied().unwrap_or(NO_PARENT),
            });
        }
        if add.u >= self.n || add.v >= self.n {
            let node = if add.u >= self.n { add.u } else { add.v };
            return Err(TreeError::NodeOutOfBounds { node, n: self.n });
        }
        if !self.covered[add.u] || !self.covered[add.v] {
            let node = if !self.covered[add.u] { add.u } else { add.v };
            return Err(TreeError::NodeNotCovered { node });
        }
        let removed_pair = {
            let p = self.parent[remove_child];
            (p.min(remove_child), p.max(remove_child))
        };
        if add.endpoints() == removed_pair {
            // f must come from G - T: swapping an edge with itself is not a
            // T-exchange.
            return Err(TreeError::InvalidExchange);
        }
        // The cut: subtree(remove_child) vs the rest. `add` must cross it.
        let mut in_subtree = vec![false; self.n];
        for v in self.subtree_nodes(remove_child) {
            in_subtree[v] = true;
        }
        if in_subtree[add.u] == in_subtree[add.v] {
            return Err(TreeError::InvalidExchange);
        }
        let mut edges: Vec<Edge> = self
            .edges()
            .into_iter()
            .filter(|e| e.endpoints() != removed_pair)
            .collect();
        edges.push(add);
        RoutingTree::from_edges(self.n, self.root, edges)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    /// A small fixed tree:
    ///
    /// ```text
    ///        0 (root)
    ///      /   \
    ///    1(2)   2(1)
    ///    |
    ///    3(4)
    /// ```
    fn sample() -> RoutingTree {
        RoutingTree::from_edges(
            4,
            0,
            vec![
                Edge::new(0, 1, 2.0),
                Edge::new(0, 2, 1.0),
                Edge::new(1, 3, 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_basic_properties() {
        let t = sample();
        assert_eq!(t.universe(), 4);
        assert_eq!(t.root(), 0);
        assert!(t.is_spanning());
        assert_eq!(t.cost(), 7.0);
        assert_eq!(t.parent(3), Some(1));
        assert_eq!(t.parent(0), None);
        assert_eq!(t.depth(3), 2);
        assert_eq!(t.parent_edge_weight(3), 4.0);
    }

    #[test]
    fn dist_from_root_accumulates() {
        let t = sample();
        assert_eq!(t.dist_from_root(0), 0.0);
        assert_eq!(t.dist_from_root(1), 2.0);
        assert_eq!(t.dist_from_root(2), 1.0);
        assert_eq!(t.dist_from_root(3), 6.0);
        assert_eq!(t.source_radius(), 6.0);
    }

    #[test]
    fn path_length_via_lca() {
        let t = sample();
        assert_eq!(t.lca(3, 2), 0);
        assert_eq!(t.lca(3, 1), 1);
        assert_eq!(t.path_length(3, 2), 7.0);
        assert_eq!(t.path_length(1, 3), 4.0);
        assert_eq!(t.path_length(2, 2), 0.0);
    }

    #[test]
    fn path_nodes_lists_route() {
        let t = sample();
        assert_eq!(t.path_nodes(3, 2), vec![3, 1, 0, 2]);
        assert_eq!(t.path_nodes(2, 3), vec![2, 0, 1, 3]);
        assert_eq!(t.path_nodes(1, 1), vec![1]);
    }

    #[test]
    fn radius_of_matches_brute_force() {
        let t = sample();
        for v in 0..4 {
            let brute = (0..4).map(|u| t.path_length(v, u)).fold(0.0_f64, f64::max);
            assert_eq!(t.radius_of(v), brute);
        }
        assert_eq!(t.radius_of(2), 7.0); // 2 -> 0 -> 1 -> 3
    }

    #[test]
    fn dists_from_interior_node() {
        let t = sample();
        let d = t.dists_from(1);
        assert_eq!(d, vec![2.0, 0.0, 3.0, 4.0]);
    }

    #[test]
    fn subtree_nodes_collects_descendants() {
        let t = sample();
        let mut s = t.subtree_nodes(1);
        s.sort_unstable();
        assert_eq!(s, vec![1, 3]);
        let mut all = t.subtree_nodes(0);
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn contains_edge_checks_both_orders() {
        let t = sample();
        assert!(t.contains_edge(0, 1));
        assert!(t.contains_edge(1, 0));
        assert!(t.contains_edge(3, 1));
        assert!(!t.contains_edge(2, 3));
    }

    #[test]
    fn edges_round_trip() {
        let t = sample();
        let rebuilt = RoutingTree::from_edges(4, 0, t.edges()).unwrap();
        assert_eq!(rebuilt.cost(), t.cost());
        for v in 0..4 {
            assert_eq!(rebuilt.dist_from_root(v), t.dist_from_root(v));
        }
    }

    #[test]
    fn cycle_detected() {
        let err = RoutingTree::from_edges(
            3,
            0,
            vec![
                Edge::new(0, 1, 1.0),
                Edge::new(1, 2, 1.0),
                Edge::new(0, 2, 1.0),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, TreeError::Cycle { .. }));
    }

    #[test]
    fn disconnected_edge_detected() {
        let err = RoutingTree::from_edges(4, 0, vec![Edge::new(0, 1, 1.0), Edge::new(2, 3, 1.0)])
            .unwrap_err();
        assert_eq!(
            err,
            TreeError::Disconnected {
                unattached_edges: 1
            }
        );
    }

    #[test]
    fn bad_root_and_bad_node() {
        assert_eq!(
            RoutingTree::from_edges(2, 5, vec![]).unwrap_err(),
            TreeError::RootOutOfBounds { root: 5, n: 2 }
        );
        assert_eq!(
            RoutingTree::from_edges(2, 0, vec![Edge::new(0, 9, 1.0)]).unwrap_err(),
            TreeError::NodeOutOfBounds { node: 9, n: 2 }
        );
    }

    #[test]
    fn steiner_tree_covers_subset() {
        // Universe of 5 nodes, tree only covers {0, 1, 2}.
        let t = RoutingTree::from_edges(5, 0, vec![Edge::new(0, 1, 1.0), Edge::new(1, 2, 1.0)])
            .unwrap();
        assert!(!t.is_spanning());
        assert_eq!(t.covered_count(), 3);
        assert!(t.is_covered(2));
        assert!(!t.is_covered(4));
        assert_eq!(t.covered_nodes().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "not covered")]
    fn query_uncovered_node_panics() {
        let t = RoutingTree::from_edges(3, 0, vec![Edge::new(0, 1, 1.0)]).unwrap();
        t.dist_from_root(2);
    }

    #[test]
    fn bounds_checks() {
        let t = sample();
        assert!(t.satisfies_upper_bound(6.0, 0..4));
        assert!(!t.satisfies_upper_bound(5.9, 0..4));
        assert!(t.satisfies_lower_bound(1.0, [1, 2, 3]));
        assert!(!t.satisfies_lower_bound(1.5, [1, 2, 3]));
        // Tolerance: a bound short by less than EPS_TOL still passes.
        assert!(t.satisfies_upper_bound(6.0 - 1e-12, 0..4));
    }

    #[test]
    fn min_max_dist_from_root() {
        let t = sample();
        assert_eq!(t.min_dist_from_root([1, 2, 3]), 1.0);
        assert_eq!(t.max_dist_from_root([1, 2]), 2.0);
        assert_eq!(t.min_dist_from_root(std::iter::empty()), f64::INFINITY);
        assert_eq!(t.max_dist_from_root(std::iter::empty()), 0.0);
    }

    #[test]
    fn exchange_swaps_edges() {
        let t = sample();
        // Remove (1, 3), reattach 3 under 2.
        let t2 = t.apply_exchange(3, Edge::new(2, 3, 1.5)).unwrap();
        assert_eq!(t2.cost(), 7.0 - 4.0 + 1.5);
        assert_eq!(t2.parent(3), Some(2));
        assert!(t2.is_spanning());
        // Original is untouched (persistent structure).
        assert_eq!(t.cost(), 7.0);
    }

    #[test]
    fn exchange_rejects_non_crossing_edge() {
        let t = sample();
        // Removing (0,1) splits {1,3} from {0,2}; edge (0,2) doesn't cross.
        let err = t.apply_exchange(1, Edge::new(0, 2, 1.0)).unwrap_err();
        assert_eq!(err, TreeError::InvalidExchange);
    }

    #[test]
    fn exchange_rejects_root_removal() {
        let t = sample();
        assert!(matches!(
            t.apply_exchange(0, Edge::new(2, 3, 1.0)).unwrap_err(),
            TreeError::NotATreeEdge { .. }
        ));
    }

    #[test]
    fn exchange_same_edge_rejected() {
        let t = sample();
        // Re-adding the removed edge is not an exchange.
        let err = t.apply_exchange(3, Edge::new(1, 3, 4.0)).unwrap_err();
        assert_eq!(err, TreeError::InvalidExchange);
    }

    #[test]
    fn single_node_tree() {
        let t = RoutingTree::from_edges(1, 0, vec![]).unwrap();
        assert!(t.is_spanning());
        assert_eq!(t.cost(), 0.0);
        assert_eq!(t.source_radius(), 0.0);
        assert_eq!(t.radius_of(0), 0.0);
        assert!(t.edges().is_empty());
    }

    #[test]
    fn deep_chain_no_stack_overflow() {
        // Iterative traversals must handle path graphs of large depth.
        let n = 50_000;
        let edges: Vec<Edge> = (1..n).map(|v| Edge::new(v - 1, v, 1.0)).collect();
        let t = RoutingTree::from_edges(n, 0, edges).unwrap();
        assert_eq!(t.dist_from_root(n - 1), (n - 1) as f64);
        assert_eq!(t.radius_of(n - 1), (n - 1) as f64);
        assert_eq!(t.path_length(0, n - 1), (n - 1) as f64);
    }
}
