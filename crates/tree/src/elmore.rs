//! Elmore delay evaluation on routing trees.
//!
//! Section 3.2 of the paper extends BKRUS from geometric path length to the
//! Elmore RC delay model: the "radius" of a node becomes its worst-case
//! Elmore delay to any node of its tree, and the bound `(1 + eps) * R` is a
//! delay bound, with `R` the worst source-sink Elmore delay of the shortest
//! path tree.
//!
//! For a tree `T` re-rooted at the signal origin `u`, with `T_k` the subtree
//! hanging at `k` and `p(k)` the parent of `k`:
//!
//! ```text
//! C_k        = sum over x in T_k, x != k of c_s * dist(x, p(x))   (wire cap)
//!            + sum over x in T_k of C_L(x)                        (load cap)
//! delay(u,y) = sum over k on path u->y, k != u of
//!                r_s * dist(k, p(k)) * (c_s/2 * dist(k, p(k)) + C_k)
//! ```
//!
//! and when the origin is the driving source, the driver contributes
//! `r_d * (c_d + C_S)` where `C_S` is the total capacitance hanging off the
//! source.

use crate::{RoutingTree, TreeError};

/// Electrical parameters of the Elmore delay model.
///
/// # Examples
///
/// ```
/// use bmst_tree::ElmoreParams;
///
/// // 0.1 ohm and 0.2 fF per unit length, a strong driver, 1.0 fF sink loads
/// // on a 4-terminal net whose source is terminal 0.
/// let params = ElmoreParams::uniform_loads(4, 0, 0.1, 0.2, 25.0, 2.0, 1.0);
/// assert_eq!(params.load_cap[0], 0.0); // the source carries no sink load
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ElmoreParams {
    /// Wire resistance per unit length (`r_s`).
    pub unit_res: f64,
    /// Wire capacitance per unit length (`c_s`).
    pub unit_cap: f64,
    /// Driver output resistance (`r_d`).
    pub driver_res: f64,
    /// Driver intrinsic capacitance (`c_d`).
    pub driver_cap: f64,
    /// Load capacitance per node (`C_L`); Steiner points and the source
    /// should carry `0.0`.
    pub load_cap: Vec<f64>,
}

impl ElmoreParams {
    /// Creates parameters with the same load on every node except `source`
    /// (which gets zero — the driver's capacitance is modelled separately by
    /// `driver_cap`).
    ///
    /// # Panics
    ///
    /// Panics if any electrical value is negative or non-finite, or if
    /// `source >= n`.
    pub fn uniform_loads(
        n: usize,
        source: usize,
        unit_res: f64,
        unit_cap: f64,
        driver_res: f64,
        driver_cap: f64,
        sink_load: f64,
    ) -> Self {
        assert!(source < n, "source {source} out of bounds for {n} nodes");
        for (name, v) in [
            ("unit_res", unit_res),
            ("unit_cap", unit_cap),
            ("driver_res", driver_res),
            ("driver_cap", driver_cap),
            ("sink_load", sink_load),
        ] {
            assert!(
                v.is_finite() && v >= 0.0,
                "{name} must be finite and non-negative, got {v}"
            );
        }
        let mut load_cap = vec![sink_load; n];
        load_cap[source] = 0.0;
        ElmoreParams {
            unit_res,
            unit_cap,
            driver_res,
            driver_cap,
            load_cap,
        }
    }

    /// Grows the load vector to cover `n` nodes, new nodes getting zero load
    /// (used when Steiner points are materialised).
    pub fn grow_loads(&mut self, n: usize) {
        if n > self.load_cap.len() {
            self.load_cap.resize(n, 0.0);
        }
    }
}

/// Elmore delays from a fixed origin node to every covered node of a tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ElmoreDelays {
    /// The origin the delays are measured from.
    pub from: usize,
    /// `delay[v]` = Elmore delay from `from` to `v`
    /// (`f64::INFINITY` for uncovered nodes).
    pub delay: Vec<f64>,
}

impl ElmoreDelays {
    /// Computes delays from an arbitrary origin `from` (no driver term).
    ///
    /// This is the paper's `delay(u, v)`: the tree is conceptually re-rooted
    /// at `u` and subtree capacitances are taken with respect to that
    /// orientation. `O(V)`.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::NodeNotCovered`] if `from` is not covered, and
    /// propagates a mismatch between the parameter vector and the node
    /// universe as a panic (see Panics).
    ///
    /// # Panics
    ///
    /// Panics if `params.load_cap.len() < tree.universe()`.
    pub fn from_node(
        tree: &RoutingTree,
        from: usize,
        params: &ElmoreParams,
    ) -> Result<Self, TreeError> {
        Self::compute(tree, from, params, false)
    }

    /// Computes delays from the tree's root including the driver term
    /// `r_d * (c_d + C_S)`; this is the paper's `delay(S, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `params.load_cap.len() < tree.universe()`.
    #[allow(clippy::expect_used)] // coverage invariant, justified inline
    pub fn from_source(tree: &RoutingTree, params: &ElmoreParams) -> Self {
        Self::compute(tree, tree.root(), params, true)
            // lint: allow(no-panic) — the root is covered in every RoutingTree
            .expect("tree root is always covered")
    }

    // analyze: allow(cancel-liveness) — single tree traversal; bmst-tree has no CancelToken dependency
    fn compute(
        tree: &RoutingTree,
        from: usize,
        params: &ElmoreParams,
        driver: bool,
    ) -> Result<Self, TreeError> {
        bmst_obs::counter("elmore.evaluations", 1);
        let n = tree.universe();
        assert!(
            params.load_cap.len() >= n,
            "load_cap has {} entries for {} nodes",
            params.load_cap.len(),
            n
        );
        if from >= n || !tree.is_covered(from) {
            return Err(TreeError::NodeNotCovered { node: from });
        }

        // Orientation from `from`: undirected preorder traversal.
        const NONE: usize = usize::MAX;
        let mut parent = vec![NONE; n];
        let mut edge_len = vec![0.0; n];
        let mut order = Vec::with_capacity(tree.covered_count());
        let mut stack = vec![from];
        let mut seen = vec![false; n];
        seen[from] = true;
        while let Some(u) = stack.pop() {
            order.push(u);
            let push = |v: usize,
                        w: f64,
                        parent_arr: &mut Vec<usize>,
                        len_arr: &mut Vec<f64>,
                        seen: &mut Vec<bool>,
                        stack: &mut Vec<usize>| {
                if !seen[v] {
                    seen[v] = true;
                    parent_arr[v] = u;
                    len_arr[v] = w;
                    stack.push(v);
                }
            };
            if let Some(p) = tree.parent(u) {
                push(
                    p,
                    tree.parent_edge_weight(u),
                    &mut parent,
                    &mut edge_len,
                    &mut seen,
                    &mut stack,
                );
            }
            for &c in tree.children(u) {
                push(
                    c,
                    tree.parent_edge_weight(c),
                    &mut parent,
                    &mut edge_len,
                    &mut seen,
                    &mut stack,
                );
            }
        }

        // Downstream capacitance C_k in reverse preorder.
        let mut cap = vec![0.0; n];
        for &k in order.iter().rev() {
            cap[k] += params.load_cap[k];
            if let Some(&p) = parent.get(k).filter(|&&p| p != NONE) {
                cap[p] += cap[k] + params.unit_cap * edge_len[k];
            }
        }

        // Delay accumulation in preorder.
        let mut delay = vec![f64::INFINITY; n];
        delay[from] = if driver {
            params.driver_res * (params.driver_cap + cap[from])
        } else {
            0.0
        };
        for &k in &order {
            if k == from {
                continue;
            }
            let p = parent[k];
            let len = edge_len[k];
            delay[k] = delay[p] + params.unit_res * len * (params.unit_cap / 2.0 * len + cap[k]);
        }

        Ok(ElmoreDelays { from, delay })
    }

    /// Largest finite delay (the Elmore radius of `from`).
    pub fn max_delay(&self) -> f64 {
        self.delay
            .iter()
            .copied()
            .filter(|d| d.is_finite())
            .fold(0.0, f64::max)
    }

    /// Largest delay over a node subset.
    ///
    /// # Panics
    ///
    /// Panics if a subset node is uncovered (infinite delay).
    pub fn max_delay_over(&self, nodes: impl IntoIterator<Item = usize>) -> f64 {
        nodes
            .into_iter()
            .map(|v| {
                let d = self.delay[v];
                assert!(d.is_finite(), "node {v} is not covered by the delay query");
                d
            })
            .fold(0.0, f64::max)
    }
}

/// Elmore radius of every covered node: `r[u] = max_v delay(u, v)`.
///
/// `O(V^2)`; this is the quantity the Elmore-extended BKRUS recomputes after
/// each tentative merger (the paper notes the geometric incremental update no
/// longer applies under the Elmore model).
///
/// Uncovered nodes get `f64::INFINITY`.
///
/// # Panics
///
/// Panics if `params.load_cap.len() < tree.universe()`.
#[allow(clippy::expect_used)] // coverage invariant, justified inline
pub fn elmore_radii(tree: &RoutingTree, params: &ElmoreParams) -> Vec<f64> {
    let n = tree.universe();
    let mut radii = vec![f64::INFINITY; n];
    for u in tree.covered_nodes() {
        let d = ElmoreDelays::from_node(tree, u, params)
            // lint: allow(no-panic) — from_node accepts exactly the covered nodes being iterated
            .expect("covered nodes are valid origins");
        radii[u] = d.max_delay();
    }
    radii
}

/// Total capacitance of the tree: all wire capacitance plus all node loads.
///
/// Used by the Elmore feasibility condition (3-b), where a candidate direct
/// source connection must drive the entire merged component.
pub fn total_capacitance(tree: &RoutingTree, params: &ElmoreParams) -> f64 {
    let wire: f64 = tree
        .edges()
        .iter()
        .map(|e| params.unit_cap * e.weight)
        .sum();
    let loads: f64 = tree.covered_nodes().map(|v| params.load_cap[v]).sum();
    wire + loads
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use bmst_graph::Edge;

    fn params(n: usize) -> ElmoreParams {
        ElmoreParams::uniform_loads(n, 0, 0.5, 0.2, 10.0, 1.0, 2.0)
    }

    /// Two-node net: source 0, sink 1 at wire length L.
    #[test]
    fn two_node_delay_matches_hand_computation() {
        let l = 4.0;
        let t = RoutingTree::from_edges(2, 0, vec![Edge::new(0, 1, l)]).unwrap();
        let p = params(2);
        // C_1 = load = 2.0; C_S = wire + load = 0.2*4 + 2 = 2.8
        // delay(S,1) = r_d*(c_d + C_S) + r_s*L*(c_s/2*L + C_1)
        //            = 10*(1 + 2.8) + 0.5*4*(0.1*4 + 2) = 38 + 2*(2.4) = 42.8
        let d = ElmoreDelays::from_source(&t, &p);
        assert!((d.delay[1] - 42.8).abs() < 1e-9);
        assert!((d.delay[0] - 38.0).abs() < 1e-9);
    }

    #[test]
    fn from_node_has_no_driver_term() {
        let t = RoutingTree::from_edges(2, 0, vec![Edge::new(0, 1, 4.0)]).unwrap();
        let p = params(2);
        let d = ElmoreDelays::from_node(&t, 0, &p).unwrap();
        assert_eq!(d.delay[0], 0.0);
        // Only the wire term: 0.5*4*(0.1*4 + 2) = 4.8
        assert!((d.delay[1] - 4.8).abs() < 1e-9);
    }

    #[test]
    fn delay_is_topology_dependent_not_just_length() {
        // Path 0-1-2 vs star 0-{1,2}: sink 1 at same path length, but in the
        // path topology sink 1's wire also drives sink 2's subtree.
        let path = RoutingTree::from_edges(3, 0, vec![Edge::new(0, 1, 2.0), Edge::new(1, 2, 2.0)])
            .unwrap();
        let star = RoutingTree::from_edges(3, 0, vec![Edge::new(0, 1, 2.0), Edge::new(0, 2, 2.0)])
            .unwrap();
        let p = params(3);
        let dp = ElmoreDelays::from_node(&path, 0, &p).unwrap();
        let ds = ElmoreDelays::from_node(&star, 0, &p).unwrap();
        assert!(dp.delay[1] > ds.delay[1]);
    }

    #[test]
    fn reverse_delay_differs_from_forward() {
        // delay(u,v) != delay(v,u) in general: subtree caps differ.
        let t = RoutingTree::from_edges(3, 0, vec![Edge::new(0, 1, 2.0), Edge::new(1, 2, 5.0)])
            .unwrap();
        let p = params(3);
        let fwd = ElmoreDelays::from_node(&t, 0, &p).unwrap().delay[2];
        let rev = ElmoreDelays::from_node(&t, 2, &p).unwrap().delay[0];
        assert!((fwd - rev).abs() > 1e-9);
    }

    #[test]
    fn monotone_along_path() {
        let t = RoutingTree::from_edges(
            4,
            0,
            vec![
                Edge::new(0, 1, 1.0),
                Edge::new(1, 2, 1.0),
                Edge::new(2, 3, 1.0),
            ],
        )
        .unwrap();
        let d = ElmoreDelays::from_source(&t, &params(4));
        assert!(d.delay[0] < d.delay[1]);
        assert!(d.delay[1] < d.delay[2]);
        assert!(d.delay[2] < d.delay[3]);
        assert_eq!(d.max_delay(), d.delay[3]);
    }

    #[test]
    fn radii_symmetric_tree() {
        // Symmetric star: both sinks equidistant; radii of sinks equal.
        let t = RoutingTree::from_edges(3, 0, vec![Edge::new(0, 1, 3.0), Edge::new(0, 2, 3.0)])
            .unwrap();
        let mut p = params(3);
        p.load_cap = vec![0.0, 2.0, 2.0];
        let r = elmore_radii(&t, &p);
        assert!((r[1] - r[2]).abs() < 1e-12);
        assert!(r[0] < r[1]); // center sees less worst-case delay
    }

    #[test]
    fn uncovered_nodes_have_infinite_radius() {
        let t = RoutingTree::from_edges(3, 0, vec![Edge::new(0, 1, 1.0)]).unwrap();
        let r = elmore_radii(&t, &params(3));
        assert!(r[2].is_infinite());
        assert!(r[0].is_finite());
    }

    #[test]
    fn from_node_uncovered_origin_errors() {
        let t = RoutingTree::from_edges(3, 0, vec![Edge::new(0, 1, 1.0)]).unwrap();
        assert_eq!(
            ElmoreDelays::from_node(&t, 2, &params(3)).unwrap_err(),
            TreeError::NodeNotCovered { node: 2 }
        );
    }

    #[test]
    fn total_capacitance_sums_wires_and_loads() {
        let t = RoutingTree::from_edges(3, 0, vec![Edge::new(0, 1, 2.0), Edge::new(1, 2, 3.0)])
            .unwrap();
        let p = params(3);
        // wires: 0.2*(2+3) = 1.0; loads: 0 + 2 + 2 = 4.0
        assert!((total_capacitance(&t, &p) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn zero_rc_gives_zero_delay() {
        let t = RoutingTree::from_edges(2, 0, vec![Edge::new(0, 1, 7.0)]).unwrap();
        let p = ElmoreParams::uniform_loads(2, 0, 0.0, 0.0, 0.0, 0.0, 0.0);
        let d = ElmoreDelays::from_source(&t, &p);
        assert_eq!(d.delay, vec![0.0, 0.0]);
    }

    #[test]
    fn grow_loads_extends_with_zero() {
        let mut p = params(2);
        p.grow_loads(4);
        assert_eq!(p.load_cap.len(), 4);
        assert_eq!(p.load_cap[3], 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_resistance_rejected() {
        ElmoreParams::uniform_loads(2, 0, -1.0, 0.2, 1.0, 1.0, 1.0);
    }

    #[test]
    fn max_delay_over_subset() {
        let t = RoutingTree::from_edges(3, 0, vec![Edge::new(0, 1, 1.0), Edge::new(1, 2, 1.0)])
            .unwrap();
        let d = ElmoreDelays::from_source(&t, &params(3));
        assert_eq!(d.max_delay_over([1]), d.delay[1]);
        assert_eq!(d.max_delay_over([1, 2]), d.delay[2]);
    }
}
