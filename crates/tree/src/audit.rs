//! Structural and semantic invariant auditing for [`RoutingTree`].
//!
//! Every construction algorithm in this workspace maintains derived state
//! (the parent array, the source-distance table, the cached cost) alongside
//! bound bookkeeping. [`RoutingTree::audit`] recomputes all of it from first
//! principles and cross-checks:
//!
//! 1. **Structure** — the parent/children arrays describe one rooted,
//!    acyclic tree covering exactly the nodes marked covered;
//! 2. **Path table** — the stored `dist_from_root` values match a fresh
//!    root-to-node accumulation of the parent edge weights;
//! 3. **Cost and radius** — the cached cost and the reported source radius
//!    match recomputation;
//! 4. **Merge consistency** (paper §3.1) — every tree edge's weight equals
//!    the metric distance between its endpoints, so the tree really is a
//!    subgraph of the complete metric graph the merges drew from;
//! 5. **Path bounds** — `path(S, x) <= (1 + eps) * R` for every bounded
//!    node, and the §6 LUB lower bound `path(S, x) >= eps1 * R` when a
//!    window is in force.
//!
//! The checks are `O(V^2)` at worst (dominated by nothing — each pass is
//! linear; the matrix lookup is constant), cheap enough to run after every
//! construction in debug builds and behind an explicit `--audit` flag in
//! release binaries.

use std::error::Error;
use std::fmt;

use bmst_geom::{DistanceMatrix, EPS_TOL};

use crate::RoutingTree;

/// A violated [`RoutingTree`] invariant found by [`RoutingTree::audit`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AuditViolation {
    /// Following parent pointers from `node` never reaches the root
    /// (the parent array contains a cycle).
    ParentCycle {
        /// A node whose ancestor chain loops.
        node: usize,
    },
    /// A covered non-root node's parent is not covered, or an uncovered
    /// node carries tree state.
    BrokenCoverage {
        /// The offending node.
        node: usize,
    },
    /// `children[parent(v)]` does not list `v`, or lists a node whose
    /// parent pointer disagrees.
    BrokenChildLink {
        /// The parent side of the broken link.
        parent: usize,
        /// The child side of the broken link.
        child: usize,
    },
    /// The stored source-distance of `node` disagrees with the distance
    /// recomputed from the parent edge weights.
    StalePathTable {
        /// The node with the stale entry.
        node: usize,
        /// The value in the table.
        stored: f64,
        /// The freshly recomputed value.
        recomputed: f64,
    },
    /// The stored depth of `node` disagrees with recomputation.
    StaleDepth {
        /// The node with the stale entry.
        node: usize,
        /// The value in the table.
        stored: usize,
        /// The freshly recomputed value.
        recomputed: usize,
    },
    /// The cached total cost disagrees with the sum of parent edge weights.
    StaleCost {
        /// The cached cost.
        stored: f64,
        /// The freshly recomputed cost.
        recomputed: f64,
    },
    /// The cached covered-node count disagrees with the coverage flags.
    StaleCoveredCount {
        /// The cached count.
        stored: usize,
        /// The number of nodes actually flagged covered.
        recomputed: usize,
    },
    /// A tree edge has a negative or non-finite weight.
    BadEdgeWeight {
        /// Child endpoint of the edge.
        node: usize,
        /// The offending weight.
        weight: f64,
    },
    /// §3.1 merge consistency: a tree edge's weight differs from the metric
    /// distance between its endpoints, so the edge cannot have come from
    /// the complete metric graph the merges select from.
    MergeInconsistent {
        /// Parent endpoint of the edge.
        u: usize,
        /// Child endpoint of the edge.
        v: usize,
        /// The edge weight stored in the tree.
        weight: f64,
        /// The metric distance between the endpoints.
        distance: f64,
    },
    /// The paper's bound is violated: `path(S, node)` exceeds the
    /// admissible maximum `(1 + eps) * R`.
    UpperBoundViolated {
        /// The out-of-bound node.
        node: usize,
        /// Its source-to-node path length.
        path: f64,
        /// The bound it had to satisfy.
        bound: f64,
    },
    /// The §6 LUB lower bound is violated: `path(S, node)` falls short of
    /// the admissible minimum `eps1 * R`.
    LowerBoundViolated {
        /// The out-of-bound node.
        node: usize,
        /// Its source-to-node path length.
        path: f64,
        /// The bound it had to satisfy.
        bound: f64,
    },
}

impl AuditViolation {
    /// Stable machine-readable name of the violated invariant, used as the
    /// `kind` field of the `audit.violation` observability event.
    pub fn kind(&self) -> &'static str {
        match self {
            AuditViolation::ParentCycle { .. } => "ParentCycle",
            AuditViolation::BrokenCoverage { .. } => "BrokenCoverage",
            AuditViolation::BrokenChildLink { .. } => "BrokenChildLink",
            AuditViolation::StalePathTable { .. } => "StalePathTable",
            AuditViolation::StaleDepth { .. } => "StaleDepth",
            AuditViolation::StaleCost { .. } => "StaleCost",
            AuditViolation::StaleCoveredCount { .. } => "StaleCoveredCount",
            AuditViolation::BadEdgeWeight { .. } => "BadEdgeWeight",
            AuditViolation::MergeInconsistent { .. } => "MergeInconsistent",
            AuditViolation::UpperBoundViolated { .. } => "UpperBoundViolated",
            AuditViolation::LowerBoundViolated { .. } => "LowerBoundViolated",
        }
    }
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditViolation::ParentCycle { node } => {
                write!(f, "parent array cycles through node {node}")
            }
            AuditViolation::BrokenCoverage { node } => {
                write!(f, "coverage flags inconsistent at node {node}")
            }
            AuditViolation::BrokenChildLink { parent, child } => {
                write!(
                    f,
                    "parent/children arrays disagree on edge ({parent}, {child})"
                )
            }
            AuditViolation::StalePathTable {
                node,
                stored,
                recomputed,
            } => write!(
                f,
                "path table stale at node {node}: stored {stored}, recomputed {recomputed}"
            ),
            AuditViolation::StaleDepth {
                node,
                stored,
                recomputed,
            } => write!(
                f,
                "depth table stale at node {node}: stored {stored}, recomputed {recomputed}"
            ),
            AuditViolation::StaleCost { stored, recomputed } => {
                write!(
                    f,
                    "cached cost {stored} disagrees with recomputed {recomputed}"
                )
            }
            AuditViolation::StaleCoveredCount { stored, recomputed } => write!(
                f,
                "cached covered count {stored} disagrees with recomputed {recomputed}"
            ),
            AuditViolation::BadEdgeWeight { node, weight } => {
                write!(f, "edge into node {node} has invalid weight {weight}")
            }
            AuditViolation::MergeInconsistent {
                u,
                v,
                weight,
                distance,
            } => write!(
                f,
                "edge ({u}, {v}) weight {weight} differs from metric distance {distance}"
            ),
            AuditViolation::UpperBoundViolated { node, path, bound } => {
                write!(f, "path(S, {node}) = {path} exceeds the bound {bound}")
            }
            AuditViolation::LowerBoundViolated { node, path, bound } => {
                write!(
                    f,
                    "path(S, {node}) = {path} falls short of the lower bound {bound}"
                )
            }
        }
    }
}

impl Error for AuditViolation {}

/// Optional semantic context for [`RoutingTree::audit`].
///
/// With the default (empty) context only the structural invariants are
/// checked. Supplying a distance matrix enables the §3.1 merge-consistency
/// check; supplying bounds enables the path-window checks.
///
/// # Examples
///
/// ```
/// use bmst_graph::Edge;
/// use bmst_tree::{AuditContext, RoutingTree};
///
/// let tree = RoutingTree::from_edges(3, 0, vec![
///     Edge::new(0, 1, 5.0),
///     Edge::new(1, 2, 5.0),
/// ])?;
/// // A structural audit needs no context at all:
/// assert!(tree.audit(&AuditContext::default()).is_ok());
/// // Bound checks kick in once the context carries them:
/// let ctx = AuditContext::default().with_upper_bound(6.0);
/// assert!(tree.audit(&ctx).is_err()); // path(S, 2) = 10 > 6
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Default, Clone, Copy)]
pub struct AuditContext<'a> {
    distances: Option<&'a DistanceMatrix>,
    upper_bound: Option<f64>,
    lower_bound: Option<f64>,
    bounded_nodes: Option<&'a [usize]>,
}

impl<'a> AuditContext<'a> {
    /// Enables the §3.1 merge-consistency check: every tree edge between
    /// nodes the matrix covers must have the metric distance as its weight.
    #[must_use]
    pub fn with_distances(mut self, d: &'a DistanceMatrix) -> Self {
        self.distances = Some(d);
        self
    }

    /// Enables the upper path bound check `path(S, x) <= bound`.
    #[must_use]
    pub fn with_upper_bound(mut self, bound: f64) -> Self {
        self.upper_bound = Some(bound);
        self
    }

    /// Enables the §6 LUB lower bound check `path(S, x) >= bound`.
    #[must_use]
    pub fn with_lower_bound(mut self, bound: f64) -> Self {
        self.lower_bound = Some(bound);
        self
    }

    /// Restricts the bound checks to the given nodes (e.g. the net's sinks,
    /// exempting Steiner points). Without this, bounds apply to every
    /// covered node except the root.
    #[must_use]
    pub fn with_bounded_nodes(mut self, nodes: &'a [usize]) -> Self {
        self.bounded_nodes = Some(nodes);
        self
    }
}

impl fmt::Debug for AuditContext<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AuditContext")
            .field("has_distances", &self.distances.is_some())
            .field("upper_bound", &self.upper_bound)
            .field("lower_bound", &self.lower_bound)
            .field("bounded_nodes", &self.bounded_nodes)
            .finish()
    }
}

impl RoutingTree {
    /// Recomputes every derived invariant of this tree from first
    /// principles and cross-checks it against the stored state, plus the
    /// semantic checks enabled by `ctx` (see the [module docs](self)).
    ///
    /// Returns the first violation found; checks run cheapest-first so a
    /// structural corruption is reported before any semantic noise it may
    /// cause downstream.
    ///
    /// # Errors
    ///
    /// An [`AuditViolation`] describing the first broken invariant.
    pub fn audit(&self, ctx: &AuditContext<'_>) -> Result<(), AuditViolation> {
        let result = self.audit_inner(ctx);
        if let Err(ref violation) = result {
            bmst_obs::event(
                "audit.violation",
                &[
                    ("kind", bmst_obs::Field::from(violation.kind())),
                    ("detail", bmst_obs::Field::from(violation.to_string())),
                ],
            );
        }
        result
    }

    fn audit_inner(&self, ctx: &AuditContext<'_>) -> Result<(), AuditViolation> {
        self.audit_structure()?;
        self.audit_tables()?;
        if let Some(d) = ctx.distances {
            self.audit_merge_consistency(d)?;
        }
        if ctx.upper_bound.is_some() || ctx.lower_bound.is_some() {
            self.audit_bounds(ctx)?;
        }
        Ok(())
    }

    /// Coverage flags, parent/children cross-links, and acyclicity.
    // analyze: complexity(n^2) analyze: allow(cancel-liveness) — debug-assertions audit path; bmst-tree has no CancelToken dependency
    fn audit_structure(&self) -> Result<(), AuditViolation> {
        let n = self.universe();
        let root = self.root();
        if !self.is_covered(root) || self.parent(root).is_some() {
            return Err(AuditViolation::BrokenCoverage { node: root });
        }
        let recomputed = (0..n).filter(|&v| self.is_covered(v)).count();
        if recomputed != self.covered_count() {
            return Err(AuditViolation::StaleCoveredCount {
                stored: self.covered_count(),
                recomputed,
            });
        }
        for v in 0..n {
            if self.is_covered(v) {
                if v != root {
                    match self.parent(v) {
                        None => return Err(AuditViolation::BrokenCoverage { node: v }),
                        Some(p) if !self.is_covered(p) => {
                            return Err(AuditViolation::BrokenCoverage { node: v })
                        }
                        Some(p) if !self.children(p).contains(&v) => {
                            return Err(AuditViolation::BrokenChildLink {
                                parent: p,
                                child: v,
                            })
                        }
                        Some(_) => {}
                    }
                }
            } else if self.parent(v).is_some() || !self.children(v).is_empty() {
                return Err(AuditViolation::BrokenCoverage { node: v });
            }
            for &c in self.children(v) {
                if self.parent(c) != Some(v) {
                    return Err(AuditViolation::BrokenChildLink {
                        parent: v,
                        child: c,
                    });
                }
            }
        }
        // Acyclicity: every covered node's ancestor chain must terminate at
        // the root within `n` steps.
        for v in 0..n {
            if !self.is_covered(v) {
                continue;
            }
            let mut cur = v;
            let mut steps = 0usize;
            while let Some(p) = self.parent(cur) {
                cur = p;
                steps += 1;
                if steps > n {
                    return Err(AuditViolation::ParentCycle { node: v });
                }
            }
            if cur != root {
                return Err(AuditViolation::ParentCycle { node: v });
            }
        }
        Ok(())
    }

    /// Path table, depth table, and cached cost versus recomputation.
    fn audit_tables(&self) -> Result<(), AuditViolation> {
        let n = self.universe();
        let root = self.root();
        let mut recomputed_cost = 0.0;
        // Children-order traversal from the root: by the structural checks
        // above this visits every covered node exactly once.
        let mut stack = vec![root];
        while let Some(u) = stack.pop() {
            let (expect_dist, expect_depth) = match self.parent(u) {
                Some(p) => {
                    let w = self.parent_edge_weight(u);
                    if !w.is_finite() || w < 0.0 {
                        return Err(AuditViolation::BadEdgeWeight { node: u, weight: w });
                    }
                    recomputed_cost += w;
                    (self.dist_from_root(p) + w, self.depth(p) + 1)
                }
                None => (0.0, 0),
            };
            if (self.dist_from_root(u) - expect_dist).abs() > EPS_TOL {
                return Err(AuditViolation::StalePathTable {
                    node: u,
                    stored: self.dist_from_root(u),
                    recomputed: expect_dist,
                });
            }
            if self.depth(u) != expect_depth {
                return Err(AuditViolation::StaleDepth {
                    node: u,
                    stored: self.depth(u),
                    recomputed: expect_depth,
                });
            }
            stack.extend(self.children(u).iter().copied());
        }
        // lint: allow(no-as-cast) — node count scales a tolerance; precision loss above 2^53 nodes is irrelevant
        if (self.cost() - recomputed_cost).abs() > EPS_TOL * (n.max(1)) as f64 {
            return Err(AuditViolation::StaleCost {
                stored: self.cost(),
                recomputed: recomputed_cost,
            });
        }
        Ok(())
    }

    /// §3.1 merge consistency: tree edges are edges of the metric graph.
    fn audit_merge_consistency(&self, d: &DistanceMatrix) -> Result<(), AuditViolation> {
        for v in self.covered_nodes() {
            let Some(p) = self.parent(v) else { continue };
            if v >= d.len() || p >= d.len() {
                continue; // materialised Steiner points are outside the matrix
            }
            let w = self.parent_edge_weight(v);
            let dist = d[(p, v)];
            if (w - dist).abs() > EPS_TOL {
                return Err(AuditViolation::MergeInconsistent {
                    u: p,
                    v,
                    weight: w,
                    distance: dist,
                });
            }
        }
        Ok(())
    }

    /// Path-window checks against the context's bounds.
    fn audit_bounds(&self, ctx: &AuditContext<'_>) -> Result<(), AuditViolation> {
        let root = self.root();
        let check = |v: usize| -> Result<(), AuditViolation> {
            if v == root || !self.is_covered(v) {
                return Ok(());
            }
            let path = self.dist_from_root(v);
            if let Some(bound) = ctx.upper_bound {
                if path > bound + EPS_TOL {
                    return Err(AuditViolation::UpperBoundViolated {
                        node: v,
                        path,
                        bound,
                    });
                }
            }
            if let Some(bound) = ctx.lower_bound {
                if path < bound - EPS_TOL {
                    return Err(AuditViolation::LowerBoundViolated {
                        node: v,
                        path,
                        bound,
                    });
                }
            }
            Ok(())
        };
        match ctx.bounded_nodes {
            Some(nodes) => nodes.iter().try_for_each(|&v| check(v)),
            None => (0..self.universe()).try_for_each(check),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use bmst_geom::{Metric, Point};
    use bmst_graph::Edge;

    fn chain() -> RoutingTree {
        RoutingTree::from_edges(
            4,
            0,
            vec![
                Edge::new(0, 1, 1.0),
                Edge::new(1, 2, 2.0),
                Edge::new(2, 3, 3.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn healthy_tree_passes_plain_audit() {
        assert_eq!(chain().audit(&AuditContext::default()), Ok(()));
    }

    #[test]
    fn corrupted_parent_cycle_is_detected() {
        let mut t = chain();
        // Corrupt the parent array directly: 1 -> 3 closes 1-2-3-1.
        t.parent[1] = 3;
        t.children[0].retain(|&c| c != 1);
        t.children[3].push(1);
        let err = t.audit(&AuditContext::default()).unwrap_err();
        assert!(
            matches!(err, AuditViolation::ParentCycle { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn stale_path_table_is_detected() {
        let mut t = chain();
        t.dist_root[3] = 1.0; // truth is 6.0
        let err = t.audit(&AuditContext::default()).unwrap_err();
        assert_eq!(
            err,
            AuditViolation::StalePathTable {
                node: 3,
                stored: 1.0,
                recomputed: 6.0
            }
        );
    }

    #[test]
    fn stale_depth_is_detected() {
        let mut t = chain();
        t.depth[2] = 7;
        let err = t.audit(&AuditContext::default()).unwrap_err();
        assert!(
            matches!(err, AuditViolation::StaleDepth { node: 2, .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn stale_cost_is_detected() {
        let mut t = chain();
        t.cost = 100.0;
        let err = t.audit(&AuditContext::default()).unwrap_err();
        assert!(
            matches!(err, AuditViolation::StaleCost { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn stale_covered_count_is_detected() {
        let mut t = chain();
        t.covered_count = 2;
        let err = t.audit(&AuditContext::default()).unwrap_err();
        assert!(
            matches!(err, AuditViolation::StaleCoveredCount { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn broken_child_link_is_detected() {
        let mut t = chain();
        t.children[1].clear(); // parent[2] still says 1
        let err = t.audit(&AuditContext::default()).unwrap_err();
        assert_eq!(
            err,
            AuditViolation::BrokenChildLink {
                parent: 1,
                child: 2
            }
        );
    }

    #[test]
    fn uncovered_node_with_state_is_detected() {
        let mut t = RoutingTree::from_edges(3, 0, vec![Edge::new(0, 1, 1.0)]).unwrap();
        t.children[2].push(1);
        let err = t.audit(&AuditContext::default()).unwrap_err();
        assert_eq!(err, AuditViolation::BrokenCoverage { node: 2 });
    }

    #[test]
    fn negative_edge_weight_is_detected() {
        let mut t = chain();
        t.parent_weight[1] = -1.0;
        t.dist_root[1] = -1.0;
        t.dist_root[2] = 1.0;
        t.dist_root[3] = 4.0;
        t.cost = 4.0;
        let err = t.audit(&AuditContext::default()).unwrap_err();
        assert!(
            matches!(err, AuditViolation::BadEdgeWeight { node: 1, .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn epsilon_radius_violation_is_detected() {
        // Chain of length 6; bound from eps = 0.2 on a radius-5 net is 6,
        // so tightening the bound below the true radius must be rejected.
        let t = chain();
        let ctx = AuditContext::default().with_upper_bound(5.0);
        let err = t.audit(&ctx).unwrap_err();
        assert_eq!(
            err,
            AuditViolation::UpperBoundViolated {
                node: 3,
                path: 6.0,
                bound: 5.0
            }
        );
        // The true radius passes.
        let ctx = AuditContext::default().with_upper_bound(6.0);
        assert_eq!(t.audit(&ctx), Ok(()));
    }

    #[test]
    fn lub_lower_bound_violation_is_detected() {
        let t = chain();
        let ctx = AuditContext::default().with_lower_bound(2.0);
        let err = t.audit(&ctx).unwrap_err();
        assert_eq!(
            err,
            AuditViolation::LowerBoundViolated {
                node: 1,
                path: 1.0,
                bound: 2.0
            }
        );
    }

    #[test]
    fn bounded_nodes_restrict_the_window_checks() {
        let t = chain();
        // Only node 3 is checked, and it satisfies the window [5, 7].
        let ctx = AuditContext::default()
            .with_lower_bound(5.0)
            .with_upper_bound(7.0)
            .with_bounded_nodes(&[3]);
        assert_eq!(t.audit(&ctx), Ok(()));
    }

    #[test]
    fn merge_consistency_checks_metric_distances() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(3.0, 0.0),
        ];
        let d = DistanceMatrix::from_points(&pts, Metric::L1);
        let good = RoutingTree::from_edges(3, 0, vec![Edge::new(0, 1, 1.0), Edge::new(1, 2, 2.0)])
            .unwrap();
        assert_eq!(
            good.audit(&AuditContext::default().with_distances(&d)),
            Ok(())
        );

        // An edge whose weight is not the metric distance fails.
        let bad = RoutingTree::from_edges(3, 0, vec![Edge::new(0, 1, 1.0), Edge::new(1, 2, 5.0)])
            .unwrap();
        let err = bad
            .audit(&AuditContext::default().with_distances(&d))
            .unwrap_err();
        assert_eq!(
            err,
            AuditViolation::MergeInconsistent {
                u: 1,
                v: 2,
                weight: 5.0,
                distance: 2.0
            }
        );
    }

    #[test]
    fn steiner_nodes_outside_the_matrix_are_exempt() {
        let pts = [Point::new(0.0, 0.0), Point::new(2.0, 0.0)];
        let d = DistanceMatrix::from_points(&pts, Metric::L1);
        // Node 2 is a materialised Steiner point beyond the matrix.
        let t = RoutingTree::from_edges(3, 0, vec![Edge::new(0, 2, 1.0), Edge::new(2, 1, 1.0)])
            .unwrap();
        assert_eq!(t.audit(&AuditContext::default().with_distances(&d)), Ok(()));
    }

    #[test]
    fn violations_display_cleanly() {
        let texts = [
            AuditViolation::ParentCycle { node: 3 }.to_string(),
            AuditViolation::StalePathTable {
                node: 1,
                stored: 2.0,
                recomputed: 3.0,
            }
            .to_string(),
            AuditViolation::UpperBoundViolated {
                node: 4,
                path: 9.0,
                bound: 6.0,
            }
            .to_string(),
            AuditViolation::MergeInconsistent {
                u: 0,
                v: 1,
                weight: 2.0,
                distance: 1.0,
            }
            .to_string(),
        ];
        assert!(texts[0].contains("cycle"));
        assert!(texts[1].contains("stale"));
        assert!(texts[2].contains("exceeds"));
        assert!(texts[3].contains("differs"));
    }
}
