//! Satellite pin: the report cache is bit-parity with cold routing.
//!
//! A capacity-1 server routes the same net three ways — cold, as a warm
//! LRU hit, and rebuilt after an eviction — and the three `"report"`
//! payloads must be byte-identical. The `cached` flag is the only thing
//! allowed to differ.

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

use bmst_serve::{ServeConfig, Server};

/// Sends one request line and reads its single response line.
fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    assert!(!response.is_empty(), "server closed before responding");
    response.trim().to_owned()
}

/// Extracts the spliced `"report":{...}` payload from a route response
/// (the response object always ends `...,"report":<payload>}`).
fn report_payload(response: &str) -> &str {
    let start = response
        .find("\"report\":")
        .unwrap_or_else(|| panic!("no report in {response}"));
    &response[start + "\"report\":".len()..response.len() - 1]
}

#[test]
fn lru_hits_are_bit_identical_to_cold_routing() {
    let server = Server::bind(ServeConfig {
        workers: 1,
        cache_entries: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let handle = server.handle();
    let run = thread::spawn(move || server.run().unwrap());

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    let net_a = r#"{"id":1,"op":"route","netlist":"net a critical\n0 0\n10 0\n9 5\nend\n"}"#;
    let net_b = r#"{"id":2,"op":"route","netlist":"net b normal\n0 0\n3 4\n8 1\nend\n"}"#;

    // Cold: computed by the router, stored in the LRU.
    let cold = roundtrip(&mut stream, &mut reader, net_a);
    assert!(cold.contains("\"cached\":false"), "{cold}");
    // Warm: served from the LRU.
    let warm = roundtrip(&mut stream, &mut reader, net_a);
    assert!(warm.contains("\"cached\":true"), "{warm}");
    // A different net evicts `a` from the capacity-1 cache...
    let other = roundtrip(&mut stream, &mut reader, net_b);
    assert!(other.contains("\"cached\":false"), "{other}");
    // ...so `a` is rebuilt from scratch.
    let rebuilt = roundtrip(&mut stream, &mut reader, net_a);
    assert!(rebuilt.contains("\"cached\":false"), "{rebuilt}");

    let reference = report_payload(&cold);
    assert!(
        !reference.is_empty() && reference.starts_with('{'),
        "{cold}"
    );
    assert_eq!(reference, report_payload(&warm), "warm hit diverged");
    assert_eq!(reference, report_payload(&rebuilt), "rebuild diverged");

    let shutdown = roundtrip(&mut stream, &mut reader, r#"{"id":9,"op":"shutdown"}"#);
    assert!(shutdown.contains("\"ok\":true"), "{shutdown}");
    drop(stream);

    let summary = run.join().unwrap();
    assert_eq!(summary.accepted, 4);
    assert_eq!(summary.completed, 4);
    assert_eq!(summary.cache_hits, 1);
    assert_eq!(summary.cache_misses, 3);
    assert_eq!(summary.shed, 0);
    let live = handle.summary();
    assert_eq!(live, summary);
}
