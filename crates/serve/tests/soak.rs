//! Fault-injection soak: ~200 requests from 4 concurrent clients against
//! a 4-worker server with seeded builder panics, forced internal errors,
//! delays shorter and longer than the request deadlines, malformed lines,
//! a pipelined burst that overruns the admission queue, and a mid-run
//! termination signal.
//!
//! What must hold: the process survives, `run()` returns a clean summary,
//! every admitted request is answered exactly once
//! (`completed == accepted`), response ids are unique and correlate to
//! requests we actually sent, and each fault class shows up in the
//! counters — panics as contained internals, long delays as deadline
//! expiries, the burst as sheds.

#![cfg(feature = "fault-inject")]
#![allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic

use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use bmst_serve::{signal, ServeConfig, Server};

/// Requests per lockstep client.
const PER_CLIENT: usize = 50;
/// Lockstep client threads.
const CLIENTS: usize = 4;
/// Pipelined burst size (client 0 only) — far beyond workers + queue, so
/// admission control must shed.
const BURST: usize = 30;
/// Responses to collect before firing the mid-run termination signal.
const TRIGGER_AFTER: u64 = 100;

/// What one client saw: every response line, in arrival order.
struct ClientLog {
    sent_ids: Vec<u64>,
    responses: Vec<String>,
    hit_eof: bool,
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

fn send_line(stream: &mut TcpStream, line: &str) -> bool {
    let mut payload = line.as_bytes().to_vec();
    payload.push(b'\n');
    stream
        .write_all(&payload)
        .and_then(|()| stream.flush())
        .is_ok()
}

/// Reads one response line; `None` on EOF (server closed the connection
/// during shutdown, which is a legal outcome for unadmitted requests).
fn read_line(reader: &mut BufReader<TcpStream>) -> Option<String> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => None,
        Ok(_) => Some(line.trim().to_owned()),
        Err(e) => panic!("client read failed (server hung or died): {e}"),
    }
}

/// A small rotation of netlists so the cache sees both hits and misses.
fn netlist_json(i: usize) -> &'static str {
    match i % 3 {
        0 => r"net a critical\n0 0\n10 0\n9 5\nend\n",
        1 => r"net b normal\n0 0\n3 4\n8 1\n2 7\nend\n",
        _ => r"net c relaxed\n0 0\n5 5\n1 6\nend\n",
    }
}

/// One lockstep client: unique ids, a 25 ms budget (so the injected 40 ms
/// delays always blow the deadline), every 13th line malformed, every
/// 11th a status probe, odd ids uncached (so seeded panics reach the
/// router instead of being absorbed by cache hits).
fn lockstep_client(addr: SocketAddr, client: usize, answered: &AtomicU64) -> ClientLog {
    let (mut stream, mut reader) = connect(addr);
    let mut log = ClientLog {
        sent_ids: Vec::new(),
        responses: Vec::new(),
        hit_eof: false,
    };
    for i in 0..PER_CLIENT {
        let id = (client as u64) * 1_000 + (i as u64);
        let line = if i % 13 == 7 {
            "this line is not json".to_owned()
        } else if i % 11 == 5 {
            format!(r#"{{"id":{id},"op":"status"}}"#)
        } else {
            format!(
                r#"{{"id":{id},"op":"route","netlist":"{}","budget_ms":25,"cache":{}}}"#,
                netlist_json(i),
                id % 2 == 0,
            )
        };
        if !send_line(&mut stream, &line) {
            log.hit_eof = true;
            break;
        }
        if i % 13 != 7 {
            log.sent_ids.push(id);
        }
        match read_line(&mut reader) {
            Some(resp) => {
                log.responses.push(resp);
                answered.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                log.hit_eof = true;
                break;
            }
        }
    }
    log
}

/// The pipelined burst: `BURST` requests written back-to-back before any
/// response is read, overrunning workers + queue so some must shed.
fn burst_client(addr: SocketAddr, answered: &AtomicU64) -> ClientLog {
    let (mut stream, mut reader) = connect(addr);
    let mut log = ClientLog {
        sent_ids: Vec::new(),
        responses: Vec::new(),
        hit_eof: false,
    };
    for i in 0..BURST {
        let id = 9_000 + i as u64;
        let line = format!(
            r#"{{"id":{id},"op":"route","netlist":"{}","budget_ms":1000,"cache":false}}"#,
            netlist_json(i),
        );
        assert!(send_line(&mut stream, &line), "burst write failed");
        log.sent_ids.push(id);
    }
    for _ in 0..BURST {
        match read_line(&mut reader) {
            Some(resp) => {
                log.responses.push(resp);
                answered.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                log.hit_eof = true;
                break;
            }
        }
    }
    log
}

/// Pulls the numeric `"id":<n>` out of a response line.
fn response_id(resp: &str) -> Option<u64> {
    let rest = resp.strip_prefix("{\"id\":")?;
    let end = rest.find([',', '}'])?;
    rest[..end].parse().ok()
}

#[test]
fn soak_survives_faults_and_midrun_sigterm() {
    let server = Server::bind(ServeConfig {
        workers: 4,
        queue_capacity: 4,
        drain_ms: 5_000,
        cache_entries: 16,
        default_budget_ms: None,
        // Seed pinned by `fault::tests`: all five fault classes occur
        // within the first 200 draws.
        fault_seed: Some(0xb1157),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let run = thread::spawn(move || server.run().unwrap());

    let answered = Arc::new(AtomicU64::new(0));

    // The burst runs first so shedding happens before the signal fires.
    let burst_log = burst_client(addr, &answered);

    let clients: Vec<thread::JoinHandle<ClientLog>> = (0..CLIENTS)
        .map(|c| {
            let answered = Arc::clone(&answered);
            thread::spawn(move || lockstep_client(addr, c, &answered))
        })
        .collect();

    // Mid-run termination: once enough requests have been answered, fire
    // the same flag the real SIGTERM handler sets.
    while answered.load(Ordering::Relaxed) < TRIGGER_AFTER {
        thread::sleep(Duration::from_millis(2));
        assert!(
            !run.is_finished(),
            "server exited before the signal was sent"
        );
    }
    signal::trigger();

    let mut logs = vec![burst_log];
    for c in clients {
        logs.push(c.join().unwrap());
    }
    let summary = run.join().unwrap();

    // Exactly one response per accepted request, none lost in the drain.
    assert_eq!(
        summary.completed, summary.accepted,
        "accepted requests must each get exactly one response: {summary:?}"
    );

    // No duplicate ids across every response any client received, and
    // every correlated id is one we actually sent.
    let mut seen = HashSet::new();
    let sent: HashSet<u64> = logs
        .iter()
        .flat_map(|l| l.sent_ids.iter().copied())
        .collect();
    let mut ok_responses = 0u64;
    let mut typed_errors = 0u64;
    for resp in logs.iter().flat_map(|l| l.responses.iter()) {
        assert!(
            resp.starts_with("{\"id\":") && resp.ends_with('}'),
            "unparseable response: {resp}"
        );
        if resp.contains("\"ok\":true") {
            ok_responses += 1;
        } else {
            assert!(resp.contains("\"error\":{\"kind\":"), "{resp}");
            typed_errors += 1;
        }
        if let Some(id) = response_id(resp) {
            assert!(sent.contains(&id), "response for an id never sent: {resp}");
            assert!(seen.insert(id), "duplicate response for id {id}");
        }
    }

    // Every fault class left its fingerprint.
    assert!(ok_responses > 0, "no request ever succeeded");
    assert!(typed_errors > 0, "faults produced no typed errors");
    assert!(
        summary.internal_errors > 0,
        "seeded panics/internals never surfaced: {summary:?}"
    );
    assert!(
        summary.deadline_exceeded > 0,
        "40 ms delays against 25 ms budgets never expired: {summary:?}"
    );
    assert!(
        summary.shed > 0,
        "the burst never overran admission: {summary:?}"
    );
    assert!(
        summary.malformed > 0,
        "malformed lines went uncounted: {summary:?}"
    );
    assert!(
        summary.cache_hits > 0,
        "the rotation never hit the cache: {summary:?}"
    );
}
