//! Fingerprint-keyed bounded LRU cache of rendered `RouteReport`s.
//!
//! Routing is deterministic — same netlist, same knobs, same bytes out —
//! so the cache stores the *rendered report JSON* keyed by a fingerprint
//! of every input that affects it. A hit is bit-identical to a cold
//! route, which `tests/cache_parity.rs` pins. Reports that contain a
//! deadline failure are never stored: they reflect that request's time
//! budget, not the problem.
//!
//! The LRU bound is a simple two-map scheme (key → entry, use-stamp →
//! key) over `BTreeMap`s: deterministic iteration, O(log n) touch/evict,
//! no dependencies.

use std::collections::BTreeMap;
use std::sync::Arc;

/// 64-bit FNV-1a, the workspace's standard cheap fingerprint.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        Fingerprint(0xcbf2_9ce4_8422_2325)
    }

    /// Folds raw bytes into the fingerprint.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds a length-prefixed field, so `("ab","c")` and `("a","bc")`
    /// fingerprint differently.
    pub fn field(&mut self, bytes: &[u8]) {
        self.write(&(bytes.len() as u64).to_le_bytes());
        self.write(bytes);
    }

    /// The final key.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Debug)]
struct Entry {
    stamp: u64,
    report: Arc<str>,
}

/// A bounded least-recently-used map from request fingerprint to rendered
/// report JSON. Capacity 0 disables caching entirely.
#[derive(Debug)]
pub struct ReportCache {
    capacity: usize,
    clock: u64,
    entries: BTreeMap<u64, Entry>,
    by_stamp: BTreeMap<u64, u64>,
}

impl ReportCache {
    /// An empty cache holding at most `capacity` reports.
    pub fn new(capacity: usize) -> Self {
        ReportCache {
            capacity,
            clock: 0,
            entries: BTreeMap::new(),
            by_stamp: BTreeMap::new(),
        }
    }

    /// Current resident report count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: u64) -> Option<Arc<str>> {
        self.clock += 1;
        let clock = self.clock;
        let entry = self.entries.get_mut(&key)?;
        self.by_stamp.remove(&entry.stamp);
        entry.stamp = clock;
        self.by_stamp.insert(clock, key);
        Some(Arc::clone(&entry.report))
    }

    /// Stores a rendered report, evicting the least-recently-used entry
    /// when full. A no-op at capacity 0.
    pub fn insert(&mut self, key: u64, report: Arc<str>) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        if let Some(old) = self.entries.remove(&key) {
            self.by_stamp.remove(&old.stamp);
        } else if self.entries.len() >= self.capacity {
            // Evict the stalest stamp (the BTreeMap's first key).
            if let Some((&stale_stamp, &stale_key)) = self.by_stamp.iter().next() {
                self.by_stamp.remove(&stale_stamp);
                self.entries.remove(&stale_key);
            }
        }
        self.entries.insert(
            key,
            Entry {
                stamp: self.clock,
                report,
            },
        );
        self.by_stamp.insert(self.clock, key);
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic
    use super::*;

    fn rep(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn fingerprint_separates_field_boundaries() {
        let mut a = Fingerprint::new();
        a.field(b"ab");
        a.field(b"c");
        let mut b = Fingerprint::new();
        b.field(b"a");
        b.field(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ReportCache::new(2);
        c.insert(1, rep("one"));
        c.insert(2, rep("two"));
        assert!(c.get(1).is_some()); // 1 is now fresher than 2
        c.insert(3, rep("three")); // evicts 2
        assert!(c.get(2).is_none());
        assert_eq!(c.get(1).as_deref(), Some("one"));
        assert_eq!(c.get(3).as_deref(), Some("three"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut c = ReportCache::new(2);
        c.insert(1, rep("v1"));
        c.insert(1, rep("v2"));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(1).as_deref(), Some("v2"));
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = ReportCache::new(0);
        c.insert(1, rep("x"));
        assert!(c.is_empty());
        assert!(c.get(1).is_none());
    }
}
