//! `bmst-serve`: a hardened, long-running routing service.
//!
//! Wraps the registry + `RouteReport` pipeline (the paper's §1
//! global-routing consumer) behind a zero-dependency JSON-lines-over-TCP
//! protocol: a bounded worker pool routes admitted requests, a bounded
//! admission queue sheds load with typed `overloaded` responses, every
//! request runs under a [`bmst_core::CancelToken`] deadline, repeated
//! requests hit a fingerprint-keyed LRU report cache with bit-parity
//! against cold routing, and graceful shutdown drains in-flight work
//! before cancelling stragglers through their tokens.
//!
//! The invariant everything here defends: **every accepted request gets
//! exactly one JSON response line, and no single request — however
//! pathological, slow, or (under `fault-inject`) actively sabotaged —
//! can take the process down.** See DESIGN §5i for the architecture and
//! the fault-injection matrix.
//!
//! # Quick start
//!
//! ```no_run
//! use bmst_serve::{ServeConfig, Server};
//!
//! let server = Server::bind(ServeConfig::default())?;
//! println!("listening on {}", server.local_addr());
//! let summary = server.run()?; // blocks until shutdown
//! println!("served {} requests", summary.completed);
//! # Ok::<(), bmst_serve::ServeError>(())
//! ```

pub mod cache;
pub mod fault;
pub mod protocol;
mod server;
pub mod signal;

pub use server::{ServeConfig, ServeError, ServeSummary, Server, ServerHandle};

/// Fires the request's assigned fault at a named site.
///
/// With the `fault-inject` feature the site calls
/// [`fault::fire`](crate::fault::fire) — which may sleep, return a typed
/// `BmstError`, or panic, per the request's seeded
/// [`fault::Fault`](crate::fault::Fault) — so it must appear in a
/// function returning `Result<_, BmstError>`. Without the feature the
/// macro expands to nothing: release builds carry no failpoints.
#[macro_export]
macro_rules! failpoint {
    ($fault:expr, $site:expr) => {
        #[cfg(feature = "fault-inject")]
        $crate::fault::fire($fault, $site)?;
        #[cfg(not(feature = "fault-inject"))]
        let _ = (&$fault, $site);
    };
}
