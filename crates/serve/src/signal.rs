//! Zero-dependency SIGTERM/SIGINT handling.
//!
//! The workspace carries no `libc`/`signal-hook` dependency, so this
//! module declares the single C symbol it needs (`signal(2)`, already
//! linked through `std`) and installs an async-signal-safe handler that
//! does exactly one thing: store into a static `AtomicBool`. The accept
//! loop polls [`triggered`] and runs the ordinary graceful-shutdown path
//! — identical to the path the soak test drives in-process, so the
//! signal wiring adds no untested behavior.

use std::sync::atomic::{AtomicBool, Ordering};

/// Latched by the first delivered SIGTERM/SIGINT.
static TRIGGERED: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal has been delivered since [`install`].
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::Acquire)
}

/// Test/driver hook: latch the flag as if a signal had arrived.
pub fn trigger() {
    TRIGGERED.store(true, Ordering::Release);
}

#[cfg(unix)]
mod imp {
    use super::TRIGGERED;
    use std::sync::atomic::Ordering;

    /// SIGINT on every Unix this workspace targets.
    const SIGINT: i32 = 2;
    /// SIGTERM on every Unix this workspace targets.
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_sig: i32) {
        // Async-signal-safe: a relaxed-or-stronger atomic store and
        // nothing else (no allocation, no locks, no formatting).
        TRIGGERED.store(true, Ordering::Release);
    }

    extern "C" {
        /// `signal(2)`. The previous-handler return value is unused.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        // SAFETY: `signal` is the libc function of that name; the handler
        // is a valid `extern "C" fn(i32)` for the process lifetime and
        // only performs an async-signal-safe atomic store.
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

/// Installs the SIGTERM/SIGINT handler (a no-op on non-Unix targets,
/// where only [`trigger`] and the `shutdown` request end the server).
pub fn install() {
    #[cfg(unix)]
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_latches() {
        install();
        trigger();
        assert!(triggered());
    }
}
