//! The server: listener, admission queue, bounded worker pool, drain.
//!
//! Request lifecycle (DESIGN §5i):
//!
//! ```text
//! conn thread: read line → parse → admission (try_send, bounded)
//!                 │ full → typed `overloaded` response (shed)
//!                 ▼
//! queue (sync_channel, capacity = queue_capacity)
//!                 ▼
//! worker pool (N threads): cache lookup → route under CancelToken →
//!                          exactly one response line per accepted request
//! ```
//!
//! Shutdown (signal, `shutdown` request, or [`ServerHandle::shutdown`]):
//! stop accepting, answer new requests `shutting_down`, drain in-flight
//! work under the drain deadline, then cancel stragglers through their
//! tokens — they fail fast at the next ladder-rung check and still
//! produce their one response line.

use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use bmst_core::{BmstError, CancelToken};
use bmst_obs::json::Json;
use bmst_obs::Field;
use bmst_router::{Netlist, RouteAlgorithm, RouterConfig};

use crate::cache::{Fingerprint, ReportCache};
use crate::fault::Fault;
use crate::protocol::{self, Request, RouteRequest, MAX_LINE_BYTES};
use crate::signal;

/// How long blocking reads wait before re-checking the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(25);
/// Accept-loop sleep when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// The retry hint attached to `overloaded` responses.
const RETRY_AFTER_MS: u64 = 50;

/// Server construction/configuration knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7463` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads routing admitted requests.
    pub workers: usize,
    /// Bounded admission-queue capacity; requests beyond it are shed.
    pub queue_capacity: usize,
    /// How long graceful shutdown waits for in-flight work before
    /// cancelling stragglers through their tokens.
    pub drain_ms: u64,
    /// LRU report-cache capacity in entries (0 disables caching).
    pub cache_entries: usize,
    /// Budget applied to requests that do not carry their own
    /// `budget_ms` (None = unbounded).
    pub default_budget_ms: Option<u64>,
    /// Seed for the deterministic fault-injection harness. Rejected at
    /// bind time unless the crate was built with `fault-inject`.
    pub fault_seed: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_capacity: 64,
            drain_ms: 2000,
            cache_entries: 128,
            default_budget_ms: None,
            fault_seed: None,
        }
    }
}

/// Errors from server construction and the run loop.
#[derive(Debug)]
pub enum ServeError {
    /// Binding the listener failed.
    Bind {
        /// The requested address.
        addr: String,
        /// The OS error.
        source: std::io::Error,
    },
    /// The configuration is unusable as given.
    Config {
        /// What is wrong.
        detail: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind { addr, source } => write!(f, "cannot bind {addr}: {source}"),
            ServeError::Config { detail } => write!(f, "invalid serve configuration: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Totals reported after a clean shutdown (also the `status` payload).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests admitted into the queue.
    pub accepted: u64,
    /// Requests shed by admission control (`overloaded`).
    pub shed: u64,
    /// Admitted requests answered (every accepted request ends here).
    pub completed: u64,
    /// Lines that failed to parse as requests.
    pub malformed: u64,
    /// Requests whose report contains a `DeadlineExceeded` failure.
    pub deadline_exceeded: u64,
    /// Route responses served from the LRU report cache.
    pub cache_hits: u64,
    /// Route computations that went to the router.
    pub cache_misses: u64,
    /// Worker panics mapped to `internal` responses (fault injection or
    /// genuine builder bugs — either way the process survived).
    pub internal_errors: u64,
    /// In-flight requests cancelled at the drain deadline.
    pub cancelled_stragglers: u64,
}

#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    shed: AtomicU64,
    completed: AtomicU64,
    malformed: AtomicU64,
    deadline_exceeded: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    internal_errors: AtomicU64,
    cancelled_stragglers: AtomicU64,
    queue_depth: AtomicU64,
}

/// Recovers from a poisoned lock: a worker panic (fault injection) must
/// not wedge the shared state it happened to hold.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct State {
    cfg: ServeConfig,
    shutdown: AtomicBool,
    counters: Counters,
    cache: Mutex<ReportCache>,
    inflight: Mutex<BTreeMap<u64, CancelToken>>,
    seq: AtomicU64,
}

impl State {
    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::AcqRel) && bmst_obs::enabled() {
            bmst_obs::event("serve.shutdown", &[("reason", Field::from("requested"))]);
        }
    }

    fn summary(&self) -> ServeSummary {
        let c = &self.counters;
        ServeSummary {
            accepted: c.accepted.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            malformed: c.malformed.load(Ordering::Relaxed),
            deadline_exceeded: c.deadline_exceeded.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            cache_misses: c.cache_misses.load(Ordering::Relaxed),
            internal_errors: c.internal_errors.load(Ordering::Relaxed),
            cancelled_stragglers: c.cancelled_stragglers.load(Ordering::Relaxed),
        }
    }

    fn status_json(&self) -> Json {
        let s = self.summary();
        Json::Obj(vec![
            ("accepted".to_owned(), Json::from_u64(s.accepted)),
            ("shed".to_owned(), Json::from_u64(s.shed)),
            ("completed".to_owned(), Json::from_u64(s.completed)),
            ("malformed".to_owned(), Json::from_u64(s.malformed)),
            (
                "deadline_exceeded".to_owned(),
                Json::from_u64(s.deadline_exceeded),
            ),
            ("cache_hits".to_owned(), Json::from_u64(s.cache_hits)),
            ("cache_misses".to_owned(), Json::from_u64(s.cache_misses)),
            (
                "internal_errors".to_owned(),
                Json::from_u64(s.internal_errors),
            ),
            (
                "queue_depth".to_owned(),
                Json::from_u64(self.counters.queue_depth.load(Ordering::Relaxed)),
            ),
            (
                "cache_entries".to_owned(),
                Json::from_u64(lock_recover(&self.cache).len() as u64),
            ),
            (
                "workers".to_owned(),
                Json::from_u64(self.cfg.workers as u64),
            ),
            (
                "queue_capacity".to_owned(),
                Json::from_u64(self.cfg.queue_capacity as u64),
            ),
            ("draining".to_owned(), Json::Bool(self.is_shutdown())),
        ])
    }
}

/// One admitted request, queued for the worker pool.
struct Job {
    seq: u64,
    id: Json,
    req: Box<RouteRequest>,
    token: CancelToken,
    fault: Fault,
    out: ConnOut,
}

/// The write half of a connection, shared between its reader thread and
/// every worker holding one of its jobs. Response lines are written
/// whole under the lock, so pipelined responses never interleave.
#[derive(Clone)]
struct ConnOut {
    stream: Arc<Mutex<TcpStream>>,
}

impl ConnOut {
    fn write_line(&self, line: &str) {
        let mut guard = lock_recover(&self.stream);
        // A dead peer is not a server error: the response is simply lost
        // with its connection.
        let _ = guard.write_all(line.as_bytes()); // analyze: allow(blocking-discipline) — line atomicity: the response and its terminator are written whole under the lock so pipelined responses never interleave
        let _ = guard.write_all(b"\n");
        let _ = guard.flush(); // analyze: allow(blocking-discipline) — line atomicity: flush before release so the peer sees a complete line
    }
}

/// A handle for driving a bound server from another thread (tests, the
/// CLI's signal wiring).
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<State>,
}

impl ServerHandle {
    /// Begins graceful shutdown, exactly as a SIGTERM would.
    pub fn shutdown(&self) {
        self.state.begin_shutdown();
    }

    /// A point-in-time snapshot of the server's counters.
    pub fn summary(&self) -> ServeSummary {
        self.state.summary()
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    state: Arc<State>,
}

impl Server {
    /// Binds the listener and validates the configuration. The server
    /// does not accept connections until [`Server::run`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for unusable knobs (zero workers/queue, or
    /// a fault seed without the `fault-inject` feature);
    /// [`ServeError::Bind`] when the OS refuses the address.
    pub fn bind(cfg: ServeConfig) -> Result<Server, ServeError> {
        if cfg.workers == 0 {
            return Err(ServeError::Config {
                detail: "workers must be at least 1".to_owned(),
            });
        }
        if cfg.queue_capacity == 0 {
            return Err(ServeError::Config {
                detail: "queue capacity must be at least 1".to_owned(),
            });
        }
        if cfg.fault_seed.is_some() && !cfg!(feature = "fault-inject") {
            return Err(ServeError::Config {
                detail: "fault_seed requires a server built with the fault-inject feature"
                    .to_owned(),
            });
        }
        let listener = TcpListener::bind(&cfg.addr).map_err(|source| ServeError::Bind {
            addr: cfg.addr.clone(),
            source,
        })?;
        let local_addr = listener.local_addr().map_err(|source| ServeError::Bind {
            addr: cfg.addr.clone(),
            source,
        })?;
        let cache = ReportCache::new(cfg.cache_entries);
        Ok(Server {
            listener,
            local_addr,
            state: Arc::new(State {
                cfg,
                shutdown: AtomicBool::new(false),
                counters: Counters::default(),
                cache: Mutex::new(cache),
                inflight: Mutex::new(BTreeMap::new()),
                seq: AtomicU64::new(0),
            }),
        })
    }

    /// The address the listener actually bound (resolves `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A cloneable control handle.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Serves until shutdown is requested (signal, `shutdown` op, or
    /// [`ServerHandle::shutdown`]), then drains and returns the final
    /// counters.
    ///
    /// # Errors
    ///
    /// [`ServeError`] is reserved for future run-loop failures; the
    /// current loop treats per-connection errors as connection-local.
    pub fn run(self) -> Result<ServeSummary, ServeError> {
        let state = self.state;
        let (tx, rx) = mpsc::sync_channel::<Job>(state.cfg.queue_capacity);
        let rx = Arc::new(Mutex::new(rx));

        let workers: Vec<thread::JoinHandle<()>> = (0..state.cfg.workers)
            .map(|_| {
                let state = Arc::clone(&state);
                let rx = Arc::clone(&rx);
                thread::spawn(move || worker_loop(&state, &rx))
            })
            .collect();

        // Non-blocking accept so the loop can poll the shutdown sources.
        let _ = self.listener.set_nonblocking(true);
        let mut conns: Vec<thread::JoinHandle<()>> = Vec::new();
        loop {
            if signal::triggered() {
                state.begin_shutdown();
            }
            if state.is_shutdown() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let state = Arc::clone(&state);
                    let tx = tx.clone();
                    conns.push(thread::spawn(move || conn_loop(&state, &tx, stream)));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
                Err(_) => thread::sleep(ACCEPT_POLL),
            }
            // Reap finished connection threads so a long-lived server
            // does not accumulate handles.
            conns.retain(|h| !h.is_finished());
        }

        // Drain: connection readers notice the flag within one read poll
        // and exit, dropping their queue senders.
        drop(tx);
        for c in conns {
            let _ = c.join();
        }
        let deadline = Instant::now() + Duration::from_millis(state.cfg.drain_ms);
        while Instant::now() < deadline {
            if lock_recover(&state.inflight).is_empty() {
                break;
            }
            thread::sleep(ACCEPT_POLL);
        }
        // Cancel stragglers: queued-but-unstarted and still-running jobs
        // alike fail fast at their next token check, each still emitting
        // its one response line.
        {
            let inflight = lock_recover(&state.inflight);
            for token in inflight.values() {
                token.cancel();
            }
            state
                .counters
                .cancelled_stragglers
                .fetch_add(inflight.len() as u64, Ordering::Relaxed);
        }
        for w in workers {
            let _ = w.join();
        }
        Ok(state.summary())
    }
}

fn worker_loop(state: &Arc<State>, rx: &Mutex<Receiver<Job>>) {
    loop {
        // analyze: allow(blocking-discipline) — the locked receiver is the shared handoff point; a worker takes the lock only to block on the next job
        let job = lock_recover(rx).recv();
        let Ok(job) = job else {
            return; // all senders dropped and the queue is drained
        };
        state.counters.queue_depth.fetch_sub(1, Ordering::Relaxed);
        handle_job(state, &job);
    }
}

/// Extracts a panic payload's message, mirroring `try_build`'s policy.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Routes one job and writes its single response line. Panics inside the
/// routing path (injected or genuine) are caught here and mapped into
/// [`BmstError::Internal`], so one poisoned request can never take down
/// the worker or the process.
fn handle_job(state: &Arc<State>, job: &Job) {
    let span = bmst_obs::span("serve.request");
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| route_job(state, job)));
    let line = match outcome {
        Ok(Ok((report_json, cached))) => protocol::render_route_ok(&job.id, cached, &report_json),
        Ok(Err(err)) => {
            let kind = match &err {
                BmstError::DegenerateInput { .. } => "bad_request",
                BmstError::DeadlineExceeded { .. } => "deadline_exceeded",
                _ => "internal",
            };
            if matches!(err, BmstError::Internal { .. }) {
                state
                    .counters
                    .internal_errors
                    .fetch_add(1, Ordering::Relaxed);
            }
            protocol::render_error(&job.id, kind, &err.to_string(), None)
        }
        Err(payload) => {
            let err = BmstError::internal(format!(
                "worker panic contained: {}",
                panic_message(payload)
            ));
            state
                .counters
                .internal_errors
                .fetch_add(1, Ordering::Relaxed);
            protocol::render_error(&job.id, "internal", &err.to_string(), None)
        }
    };
    job.out.write_line(&line);
    lock_recover(&state.inflight).remove(&job.seq);
    state.counters.completed.fetch_add(1, Ordering::Relaxed);
    drop(span);
}

/// The fallible routing path: failpoints, cache lookup, route, cache
/// fill. Returns the rendered report plus whether it came from cache.
fn route_job(state: &Arc<State>, job: &Job) -> Result<(String, bool), BmstError> {
    // Injected delays land here — before the cache, like a slow builder.
    crate::failpoint!(job.fault, "worker.admitted");

    let config = request_config(&job.req, job.token.clone());
    let key = request_key(&job.req.netlist, &config);
    if job.req.use_cache {
        if let Some(hit) = lock_recover(&state.cache).get(key) {
            state.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            if bmst_obs::enabled() {
                bmst_obs::counter("serve.cache_hit", 1);
            }
            return Ok((hit.to_string(), true));
        }
    }
    state.counters.cache_misses.fetch_add(1, Ordering::Relaxed);

    // Injected builder panics / forced internals land here.
    crate::failpoint!(job.fault, "worker.route");

    let netlist =
        Netlist::from_str_block(&job.req.netlist).map_err(|e| BmstError::DegenerateInput {
            detail: format!("netlist parse failed: {e}"),
        })?;
    let report = netlist.route(&config);
    let rendered = report.to_json().to_string();

    let deadline_failures = report
        .failures
        .iter()
        .any(|f| matches!(f.error, BmstError::DeadlineExceeded { .. }));
    if deadline_failures {
        state
            .counters
            .deadline_exceeded
            .fetch_add(1, Ordering::Relaxed);
        if bmst_obs::enabled() {
            bmst_obs::counter("serve.deadline_exceeded", 1);
        }
    }
    // A deadline-shaped report reflects this request's budget, not the
    // problem — never cache it.
    if job.req.use_cache && !deadline_failures {
        lock_recover(&state.cache).insert(key, Arc::from(rendered.as_str()));
    }
    Ok((rendered, false))
}

/// Maps per-request knobs onto a `RouterConfig` (absent knobs keep the
/// router defaults; the server-level default budget is applied at
/// admission, where the token is armed).
fn request_config(req: &RouteRequest, token: CancelToken) -> RouterConfig {
    let mut config = RouterConfig {
        cancel: token,
        ..RouterConfig::default()
    };
    if let Some(name) = &req.algorithm {
        if let Some(algorithm) = RouteAlgorithm::from_name(name) {
            config.algorithm = algorithm;
        }
    }
    if let Some(e) = req.eps_critical {
        config.eps_critical = e;
    }
    if let Some(e) = req.eps_normal {
        config.eps_normal = e;
    }
    if let Some(e) = req.eps_relaxed {
        config.eps_relaxed = e;
    }
    if let Some(s) = req.supply {
        config.edge_supply = s;
    }
    if let Some(m) = req.max_relaxations {
        config.relaxation.max_relaxations = m;
    }
    config
}

/// Fingerprints every input that affects the rendered report: netlist
/// text plus the resolved routing knobs. The time budget is deliberately
/// excluded — budgets shape *whether* a report completes, not its bytes,
/// and deadline-shaped reports are never cached.
fn request_key(netlist: &str, config: &RouterConfig) -> u64 {
    let mut fp = Fingerprint::new();
    fp.field(netlist.as_bytes());
    fp.field(config.algorithm.name().as_bytes());
    fp.field(&config.eps_critical.to_bits().to_le_bytes());
    fp.field(&config.eps_normal.to_bits().to_le_bytes());
    fp.field(&config.eps_relaxed.to_bits().to_le_bytes());
    fp.field(format!("{:?}", config.edge_supply).as_bytes());
    fp.field(&(config.relaxation.max_relaxations as u64).to_le_bytes());
    fp.finish()
}

/// Per-connection reader: accumulates lines, parses, admits. Exits on
/// EOF, an unrecoverable stream error, an oversized line, or shutdown.
fn conn_loop(state: &Arc<State>, tx: &SyncSender<Job>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    // Response lines are small; without TCP_NODELAY they sit in Nagle's
    // buffer waiting on the peer's delayed ACK (~40ms per roundtrip).
    let _ = stream.set_nodelay(true);
    let out = match stream.try_clone() {
        Ok(w) => ConnOut {
            stream: Arc::new(Mutex::new(w)),
        },
        Err(_) => return,
    };
    let mut reader = stream;
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match reader.read(&mut chunk) {
            Ok(0) => break, // EOF: client closed its write half
            Ok(n) => {
                pending.extend_from_slice(&chunk[..n]);
                if pending.len() > MAX_LINE_BYTES {
                    state.counters.malformed.fetch_add(1, Ordering::Relaxed);
                    out.write_line(&protocol::render_error(
                        &Json::Null,
                        "bad_request",
                        "request line too long; closing connection",
                        None,
                    ));
                    break;
                }
                drain_lines(state, tx, &out, &mut pending);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if state.is_shutdown() {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

/// Splits the accumulated bytes on `\n` and handles each complete line.
fn drain_lines(state: &Arc<State>, tx: &SyncSender<Job>, out: &ConnOut, pending: &mut Vec<u8>) {
    while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
        let raw: Vec<u8> = pending.drain(..=pos).collect();
        let line = String::from_utf8_lossy(&raw);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        handle_line(state, tx, out, line);
    }
}

/// Parses and dispatches one request line.
fn handle_line(state: &Arc<State>, tx: &SyncSender<Job>, out: &ConnOut, line: &str) {
    let envelope = match protocol::parse_line(line) {
        Ok(env) => env,
        Err((id, detail)) => {
            state.counters.malformed.fetch_add(1, Ordering::Relaxed);
            out.write_line(&protocol::render_error(&id, "bad_request", &detail, None));
            return;
        }
    };
    match envelope.request {
        Request::Status => {
            out.write_line(&protocol::render_ok(
                &envelope.id,
                "status",
                &state.status_json(),
            ));
        }
        Request::Shutdown => {
            state.begin_shutdown();
            out.write_line(&protocol::render_ok(
                &envelope.id,
                "shutdown",
                &Json::Obj(vec![("draining".to_owned(), Json::Bool(true))]),
            ));
        }
        Request::Route(req) => admit(state, tx, out, envelope.id, req),
    }
}

/// Admission control: arm the request's token, register it in-flight,
/// and try the bounded queue. Shedding and shutdown produce their typed
/// responses here; admitted requests are answered by a worker.
fn admit(
    state: &Arc<State>,
    tx: &SyncSender<Job>,
    out: &ConnOut,
    id: Json,
    req: Box<RouteRequest>,
) {
    if state.is_shutdown() {
        out.write_line(&protocol::render_error(
            &id,
            "shutting_down",
            "server is draining; no new work accepted",
            None,
        ));
        return;
    }
    let seq = state.seq.fetch_add(1, Ordering::Relaxed);
    // The budget clock starts at admission: queue wait counts against it.
    let token = match req.budget_ms.or(state.cfg.default_budget_ms) {
        Some(ms) => CancelToken::with_budget(Duration::from_millis(ms)),
        None => CancelToken::manual(), // still cancellable at drain time
    };
    let fault = request_fault(&state.cfg, seq);
    lock_recover(&state.inflight).insert(seq, token.clone());
    let job = Job {
        seq,
        id,
        req,
        token,
        fault,
        out: out.clone(),
    };
    match tx.try_send(job) {
        Ok(()) => {
            state.counters.accepted.fetch_add(1, Ordering::Relaxed);
            state.counters.queue_depth.fetch_add(1, Ordering::Relaxed);
            if bmst_obs::enabled() {
                bmst_obs::counter("serve.accepted", 1);
            }
        }
        Err(TrySendError::Full(job)) => {
            lock_recover(&state.inflight).remove(&seq);
            state.counters.shed.fetch_add(1, Ordering::Relaxed);
            if bmst_obs::enabled() {
                bmst_obs::counter("serve.shed", 1);
            }
            job.out.write_line(&protocol::render_error(
                &job.id,
                "overloaded",
                "admission queue full",
                Some(RETRY_AFTER_MS),
            ));
        }
        Err(TrySendError::Disconnected(job)) => {
            lock_recover(&state.inflight).remove(&seq);
            job.out.write_line(&protocol::render_error(
                &job.id,
                "shutting_down",
                "server is draining; no new work accepted",
                None,
            ));
        }
    }
}

/// The fault assigned to request `seq` (always [`Fault::None`] without a
/// configured seed; the seed itself is rejected at bind time unless the
/// `fault-inject` feature is compiled in).
fn request_fault(cfg: &ServeConfig, seq: u64) -> Fault {
    match cfg.fault_seed {
        Some(seed) => crate::fault::FaultPlan { seed }.decide(seq),
        None => Fault::None,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic
    use super::*;

    #[test]
    fn bind_validates_config() {
        assert!(matches!(
            Server::bind(ServeConfig {
                workers: 0,
                ..ServeConfig::default()
            }),
            Err(ServeError::Config { .. })
        ));
        assert!(matches!(
            Server::bind(ServeConfig {
                queue_capacity: 0,
                ..ServeConfig::default()
            }),
            Err(ServeError::Config { .. })
        ));
        if !cfg!(feature = "fault-inject") {
            assert!(matches!(
                Server::bind(ServeConfig {
                    fault_seed: Some(7),
                    ..ServeConfig::default()
                }),
                Err(ServeError::Config { .. })
            ));
        }
        let err = Server::bind(ServeConfig {
            addr: "definitely not an address".to_owned(),
            ..ServeConfig::default()
        })
        .map(|_| ())
        .unwrap_err();
        assert!(err.to_string().contains("cannot bind"), "{err}");
    }

    #[test]
    fn bind_resolves_port_zero() {
        let server = Server::bind(ServeConfig::default()).unwrap();
        assert_ne!(server.local_addr().port(), 0);
    }

    #[test]
    fn request_key_separates_knobs() {
        let base = RouterConfig::default();
        let tighter = RouterConfig {
            eps_critical: 0.2,
            ..RouterConfig::default()
        };
        let k1 = request_key("net a normal\n0 0\n1 1\nend\n", &base);
        let k2 = request_key("net a normal\n0 0\n1 1\nend\n", &tighter);
        let k3 = request_key("net b normal\n0 0\n1 1\nend\n", &base);
        assert_ne!(k1, k2);
        assert_ne!(k1, k3);
        // Budget is not part of the key: same knobs, same key.
        assert_eq!(k1, request_key("net a normal\n0 0\n1 1\nend\n", &base));
    }
}
