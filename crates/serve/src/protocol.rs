//! The JSON-lines wire protocol.
//!
//! One request per line, one response line per accepted request — always.
//! Requests are JSON objects with an `"op"` discriminator (`"route"`,
//! `"status"`, `"shutdown"`) and an optional client-chosen `"id"` echoed
//! verbatim in the response so clients can pipeline. Responses carry
//! `"ok": true` with the payload, or `"ok": false` with a typed
//! `"error"` object (`kind` + `detail`, plus `retry_after_ms` for
//! `overloaded`).
//!
//! A malformed line never kills the connection: it produces a single
//! `bad_request` response (with whatever `id` could be recovered) and the
//! reader moves on to the next line.

use bmst_core::EdgeSupply;
use bmst_obs::json::{escape, Json};
use bmst_router::RouteAlgorithm;

/// Maximum accepted request-line length, a backstop against a client
/// streaming an unbounded line into server memory.
pub const MAX_LINE_BYTES: usize = 4 << 20;

/// A parsed request plus the client-supplied correlation id (echoed
/// verbatim; [`Json::Null`] when the request carried none).
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// The `"id"` field, any JSON value.
    pub id: Json,
    /// The operation to perform.
    pub request: Request,
}

/// The operations the server accepts.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Route a netlist under per-request knobs.
    Route(Box<RouteRequest>),
    /// Return the server's counters and configuration.
    Status,
    /// Begin graceful shutdown (stop accepting, drain, exit).
    Shutdown,
}

/// Per-request routing knobs, each mapped onto the corresponding
/// `RouterConfig` field by the worker; absent knobs keep the server's
/// defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteRequest {
    /// The netlist in the workspace block format (`Netlist::from_str_block`).
    pub netlist: String,
    /// Registry name of the construction (`"bkrus"`, `"bprim"`, ...).
    pub algorithm: Option<String>,
    /// `eps` for critical nets (the JSON string `"inf"` means unbounded).
    pub eps_critical: Option<f64>,
    /// `eps` for normal nets.
    pub eps_normal: Option<f64>,
    /// `eps` for relaxed nets.
    pub eps_relaxed: Option<f64>,
    /// End-to-end time budget in milliseconds, queue wait included.
    pub budget_ms: Option<u64>,
    /// Edge-candidate supply (`"auto"`, `"dense"`, `"sparse"`).
    pub supply: Option<EdgeSupply>,
    /// Cap on the degradation ladder's stepped relaxations.
    pub max_relaxations: Option<usize>,
    /// Whether the report cache may serve/store this request (default
    /// true; the cache is bit-parity so opting out only costs time).
    pub use_cache: bool,
}

/// Recovers the `"id"` from a line that failed to parse as a request, so
/// even the `bad_request` response correlates when possible.
fn recovered_id(value: Option<&Json>) -> Json {
    value.cloned().unwrap_or(Json::Null)
}

/// Reads an eps knob: a non-negative finite number or the string `"inf"`.
fn parse_eps(v: &Json, key: &str) -> Result<f64, String> {
    match v {
        Json::Str(s) if s == "inf" => Ok(f64::INFINITY),
        Json::Num(x) if x.is_finite() && *x >= 0.0 => Ok(*x),
        _ => Err(format!("{key} must be a non-negative number or \"inf\"")),
    }
}

/// Reads a non-negative integer knob.
fn parse_u64(v: &Json, key: &str) -> Result<u64, String> {
    match v.as_f64() {
        Some(x) if x >= 0.0 && x.is_finite() => {
            // Metrics-grade conversion: budgets and caps comfortably fit
            // f64's exact-integer range.
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Ok(x as u64)
        }
        _ => Err(format!("{key} must be a non-negative integer")),
    }
}

/// Parses one request line. On failure returns the best-effort id plus a
/// human-readable detail for the `bad_request` response.
pub fn parse_line(line: &str) -> Result<Envelope, (Json, String)> {
    if line.len() > MAX_LINE_BYTES {
        return Err((
            Json::Null,
            format!("request line exceeds {MAX_LINE_BYTES} bytes"),
        ));
    }
    let value = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => return Err((Json::Null, format!("invalid JSON: {e}"))),
    };
    let id = recovered_id(value.get("id"));
    if value.as_obj().is_none() {
        return Err((id, "request must be a JSON object".to_owned()));
    }
    let op = match value.get("op").and_then(Json::as_str) {
        Some(op) => op,
        None => return Err((id, "missing or non-string \"op\"".to_owned())),
    };
    let request = match op {
        "status" => Request::Status,
        "shutdown" => Request::Shutdown,
        "route" => parse_route(&value).map_err(|detail| (id.clone(), detail))?,
        other => {
            return Err((
                id,
                format!("unknown op {other:?} (expected route, status, or shutdown)"),
            ))
        }
    };
    Ok(Envelope { id, request })
}

/// Parses the knobs of a `"route"` request.
fn parse_route(value: &Json) -> Result<Request, String> {
    let netlist = match value.get("netlist").and_then(Json::as_str) {
        Some(s) => s.to_owned(),
        None => return Err("route requires a string \"netlist\"".to_owned()),
    };
    let algorithm = match value.get("algorithm") {
        None => None,
        Some(v) => {
            let name = v
                .as_str()
                .ok_or_else(|| "algorithm must be a string".to_owned())?;
            if RouteAlgorithm::from_name(name).is_none() {
                return Err(format!("unknown algorithm {name:?}"));
            }
            Some(name.to_owned())
        }
    };
    let mut eps = [None, None, None];
    for (slot, key) in eps
        .iter_mut()
        .zip(["eps_critical", "eps_normal", "eps_relaxed"])
    {
        if let Some(v) = value.get(key) {
            *slot = Some(parse_eps(v, key)?);
        }
    }
    let budget_ms = match value.get("budget_ms") {
        None => None,
        Some(v) => Some(parse_u64(v, "budget_ms")?),
    };
    let supply = match value.get("supply") {
        None => None,
        Some(v) => Some(match v.as_str() {
            Some("auto") => EdgeSupply::Auto,
            Some("dense") => EdgeSupply::Dense,
            Some("sparse") => EdgeSupply::Sparse,
            _ => return Err("supply must be \"auto\", \"dense\", or \"sparse\"".to_owned()),
        }),
    };
    let max_relaxations = match value.get("max_relaxations") {
        None => None,
        Some(v) => {
            let n = parse_u64(v, "max_relaxations")?;
            Some(usize::try_from(n).unwrap_or(usize::MAX))
        }
    };
    let use_cache = match value.get("cache") {
        None => true,
        Some(Json::Bool(b)) => *b,
        Some(_) => return Err("cache must be a boolean".to_owned()),
    };
    Ok(Request::Route(Box::new(RouteRequest {
        netlist,
        algorithm,
        eps_critical: eps[0],
        eps_normal: eps[1],
        eps_relaxed: eps[2],
        budget_ms,
        supply,
        max_relaxations,
        use_cache,
    })))
}

/// Renders a successful `route` response. `report_json` is the rendered
/// `RouteReport` — spliced in verbatim so the cache's bit-parity guarantee
/// extends to the wire.
pub fn render_route_ok(id: &Json, cached: bool, report_json: &str) -> String {
    format!("{{\"id\":{id},\"ok\":true,\"cached\":{cached},\"report\":{report_json}}}")
}

/// Renders a successful `status`/`shutdown` response around a payload
/// object.
pub fn render_ok(id: &Json, key: &str, payload: &Json) -> String {
    format!("{{\"id\":{id},\"ok\":true,\"{key}\":{payload}}}")
}

/// Renders a typed error response.
pub fn render_error(id: &Json, kind: &str, detail: &str, retry_after_ms: Option<u64>) -> String {
    let retry = match retry_after_ms {
        Some(ms) => format!(",\"retry_after_ms\":{ms}"),
        None => String::new(),
    };
    // `escape` renders a complete JSON string literal, quotes included.
    format!(
        "{{\"id\":{id},\"ok\":false,\"error\":{{\"kind\":\"{kind}\",\"detail\":{}{retry}}}}}",
        escape(detail)
    )
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    #[test]
    fn parses_minimal_route() {
        let env =
            parse_line(r#"{"op":"route","netlist":"net a normal\n0 0\n1 1\nend\n"}"#).unwrap();
        assert_eq!(env.id, Json::Null);
        let Request::Route(r) = env.request else {
            panic!("expected route")
        };
        assert!(r.netlist.starts_with("net a"));
        assert!(r.use_cache);
        assert_eq!(r.algorithm, None);
        assert_eq!(r.budget_ms, None);
    }

    #[test]
    fn parses_full_knobs_and_echoes_id() {
        let env = parse_line(
            r#"{"id":42,"op":"route","netlist":"x","algorithm":"bprim","eps_critical":0.25,"eps_relaxed":"inf","budget_ms":50,"supply":"sparse","max_relaxations":1,"cache":false}"#,
        )
        .unwrap();
        assert_eq!(env.id, Json::Num(42.0));
        let Request::Route(r) = env.request else {
            panic!("expected route")
        };
        assert_eq!(r.algorithm.as_deref(), Some("bprim"));
        assert_eq!(r.eps_critical, Some(0.25));
        assert_eq!(r.eps_normal, None);
        assert_eq!(r.eps_relaxed, Some(f64::INFINITY));
        assert_eq!(r.budget_ms, Some(50));
        assert_eq!(r.supply, Some(EdgeSupply::Sparse));
        assert_eq!(r.max_relaxations, Some(1));
        assert!(!r.use_cache);
    }

    #[test]
    fn status_and_shutdown_ops() {
        assert_eq!(
            parse_line(r#"{"op":"status"}"#).unwrap().request,
            Request::Status
        );
        assert_eq!(
            parse_line(r#"{"id":"s","op":"shutdown"}"#).unwrap().request,
            Request::Shutdown
        );
    }

    #[test]
    fn malformed_lines_recover_an_id_when_possible() {
        let (id, detail) = parse_line("not json").unwrap_err();
        assert_eq!(id, Json::Null);
        assert!(detail.contains("invalid JSON"), "{detail}");

        let (id, _) = parse_line(r#"{"id":"r7","op":"explode"}"#).unwrap_err();
        assert_eq!(id, Json::Str("r7".to_owned()));

        let (id, detail) = parse_line(r#"{"id":1,"op":"route"}"#).unwrap_err();
        assert_eq!(id, Json::Num(1.0));
        assert!(detail.contains("netlist"), "{detail}");
    }

    #[test]
    fn rejects_bad_knobs() {
        for bad in [
            r#"{"op":"route","netlist":"x","eps_critical":-1}"#,
            r#"{"op":"route","netlist":"x","eps_critical":"huge"}"#,
            r#"{"op":"route","netlist":"x","algorithm":"nope"}"#,
            r#"{"op":"route","netlist":"x","supply":"gpu"}"#,
            r#"{"op":"route","netlist":"x","budget_ms":-5}"#,
            r#"{"op":"route","netlist":"x","cache":"yes"}"#,
            r#"[1,2,3]"#,
        ] {
            assert!(parse_line(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn response_rendering_is_single_line_json() {
        let ok = render_route_ok(&Json::Str("a".into()), true, "{\"nets\":[]}");
        assert!(!ok.contains('\n'));
        let parsed = Json::parse(&ok).unwrap();
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(parsed.get("cached"), Some(&Json::Bool(true)));

        let err = render_error(&Json::Null, "overloaded", "queue full", Some(25));
        let parsed = Json::parse(&err).unwrap();
        let error = parsed.get("error").unwrap();
        assert_eq!(error.get("kind").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(error.get("retry_after_ms"), Some(&Json::Num(25.0)));
    }
}
