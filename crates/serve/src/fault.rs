//! Deterministic fault injection, compiled in only with `fault-inject`.
//!
//! The harness assigns each accepted request a fault drawn from a seeded
//! splitmix64 stream — no wall clock, no global state — so a soak run
//! with a given seed injects *exactly* the same faults every time. Sites
//! in the worker path call [`failpoint!`](crate::failpoint); without the
//! feature the macro expands to nothing and release builds carry no
//! failpoints.
//!
//! The fault matrix (see DESIGN §5i):
//!
//! | fault            | site                    | expected containment        |
//! |------------------|-------------------------|-----------------------------|
//! | builder panic    | `worker.route`          | caught, `internal` response |
//! | forced internal  | `worker.route`          | typed `internal` response   |
//! | short delay      | `worker.admitted`       | response within budget      |
//! | long delay       | `worker.admitted`       | `DeadlineExceeded` failures |

use bmst_core::BmstError;

/// Seeded per-request fault selection.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// The run's seed; request `seq` draws fault `splitmix64(seed ^ seq)`.
    pub seed: u64,
}

/// The fault assigned to one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// No injected fault.
    None,
    /// Panic inside the worker's routing path (must be caught and
    /// answered as a typed `internal` error — the process survives).
    Panic,
    /// Return a forced [`BmstError::Internal`] from the routing path.
    Internal,
    /// Sleep briefly before routing (shorter than any sane budget).
    DelayShort,
    /// Sleep long enough to blow a tight request budget.
    DelayLong,
}

/// splitmix64: the workspace-standard deterministic mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// The fault assigned to request number `seq`. Roughly 60% of
    /// requests run clean; the rest split evenly across the matrix.
    pub fn decide(&self, seq: u64) -> Fault {
        match splitmix64(self.seed ^ seq) % 10 {
            0 => Fault::Panic,
            1 => Fault::Internal,
            2 => Fault::DelayShort,
            3 => Fault::DelayLong,
            _ => Fault::None,
        }
    }
}

/// Delay injected for [`Fault::DelayShort`], in milliseconds.
pub const SHORT_DELAY_MS: u64 = 2;
/// Delay injected for [`Fault::DelayLong`], in milliseconds.
pub const LONG_DELAY_MS: u64 = 40;

/// Fires the fault assigned to a request at a named site. Called through
/// the [`failpoint!`](crate::failpoint) macro, never directly.
///
/// # Errors
///
/// [`BmstError::Internal`] for [`Fault::Internal`] at the `worker.route`
/// site.
///
/// # Panics
///
/// Deliberately, for [`Fault::Panic`] at the `worker.route` site — the
/// worker's `catch_unwind` must contain it.
pub fn fire(fault: Fault, site: &str) -> Result<(), BmstError> {
    match (fault, site) {
        (Fault::Panic, "worker.route") => {
            emit(site, "panic");
            // lint: allow(no-panic) — injected panic; the soak test proves the worker's catch_unwind contains it
            panic!("fault-inject: seeded panic at {site}");
        }
        (Fault::Internal, "worker.route") => {
            emit(site, "internal");
            Err(BmstError::internal(format!(
                "fault-inject: forced internal error at {site}"
            )))
        }
        (Fault::DelayShort, "worker.admitted") => {
            emit(site, "delay_short");
            std::thread::sleep(std::time::Duration::from_millis(SHORT_DELAY_MS));
            Ok(())
        }
        (Fault::DelayLong, "worker.admitted") => {
            emit(site, "delay_long");
            std::thread::sleep(std::time::Duration::from_millis(LONG_DELAY_MS));
            Ok(())
        }
        _ => Ok(()),
    }
}

/// Records the injection in the observability stream.
fn emit(site: &str, kind: &str) {
    if bmst_obs::enabled() {
        bmst_obs::event(
            "serve.fault_injected",
            &[
                ("site", bmst_obs::Field::from(site)),
                ("kind", bmst_obs::Field::from(kind)),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_mixed() {
        let plan = FaultPlan { seed: 0xb1157 };
        let first: Vec<Fault> = (0..200).map(|s| plan.decide(s)).collect();
        let second: Vec<Fault> = (0..200).map(|s| plan.decide(s)).collect();
        assert_eq!(first, second);
        // A 200-request soak at any seed should exercise the full matrix.
        for needle in [
            Fault::None,
            Fault::Panic,
            Fault::Internal,
            Fault::DelayShort,
            Fault::DelayLong,
        ] {
            assert!(first.contains(&needle), "{needle:?} never drawn");
        }
    }

    #[test]
    fn clean_faults_do_nothing() {
        assert!(fire(Fault::None, "worker.route").is_ok());
        assert!(fire(Fault::Panic, "worker.admitted").is_ok()); // wrong site
    }

    #[test]
    fn forced_internal_is_typed() {
        let err = fire(Fault::Internal, "worker.route").unwrap_err();
        assert!(matches!(err, BmstError::Internal { .. }));
    }

    #[test]
    fn injected_panic_fires() {
        let caught = std::panic::catch_unwind(|| fire(Fault::Panic, "worker.route"));
        // The caught panic maps into BmstError::Internal at the worker;
        // here we only prove the failpoint actually panics.
        assert!(caught.is_err());
        let _ = BmstError::internal("fault containment is the worker's job");
    }
}
