//! A zero-dependency Rust lexer, sufficient for source-level lint rules.
//!
//! This is not a full grammar: it tokenises a file into identifiers,
//! numbers, string/char literals, lifetimes, comments, and single-char
//! punctuation, getting right exactly the cases that break line-regex
//! linters:
//!
//! * raw strings (`r"…"`, `r#"…"#`, any hash depth) and byte strings;
//! * nested block comments (`/* /* … */ */`);
//! * lifetimes (`'a`) vs. char literals (`'x'`, `'\n'`);
//! * doc comments, which are comments — rule patterns inside `///`
//!   examples never fire;
//! * raw identifiers (`r#type`), compared name-wise so `x.r#unwrap()`
//!   cannot evade a rule that matches `unwrap`;
//! * shebang lines (`#!/usr/bin/env …`), consumed as a comment rather
//!   than a stream of stray puncts (`#![…]` inner attributes are not
//!   shebangs and lex normally).
//!
//! Every token carries its 1-based start line and byte span, so rules can
//! reconstruct adjacency (`==` is two contiguous `=` puncts) and report
//! exact locations.

/// The lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `HashMap`, `unwrap`).
    Ident,
    /// A lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// A numeric literal (`1`, `0.5`, `1e-9`, `0xFF`, `2.0f64`).
    Number,
    /// A regular string literal, text includes the quotes.
    Str,
    /// A raw (or raw byte) string literal, text includes the delimiters.
    RawStr,
    /// A char or byte literal (`'x'`, `b'\n'`), text includes the quotes.
    Char,
    /// A `//` comment (including `///` and `//!` doc comments).
    LineComment,
    /// A `/* … */` comment (including `/** … */`), possibly nested.
    BlockComment,
    /// A single punctuation character (`.`, `=`, `!`, `{`, …).
    Punct(char),
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// The lexical class.
    pub kind: TokenKind,
    /// The source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Token {
    /// True for comment tokens (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// True when the token is an identifier with exactly this name. Raw
    /// identifiers compare by their name: `r#unwrap` is the same method
    /// as `unwrap`, so `is_ident("unwrap")` matches both spellings.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.ident_name() == text
    }

    /// For identifiers, the name with any raw-identifier prefix (`r#`)
    /// stripped; the raw text for every other kind.
    pub fn ident_name(&self) -> &str {
        if self.kind == TokenKind::Ident {
            self.text.strip_prefix("r#").unwrap_or(&self.text)
        } else {
            &self.text
        }
    }

    /// True when the token is this punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// For string literals, the content between the delimiters; `None` for
    /// other kinds.
    pub fn str_content(&self) -> Option<&str> {
        match self.kind {
            TokenKind::Str => {
                let inner = self.text.strip_prefix('b').unwrap_or(&self.text);
                inner
                    .strip_prefix('"')
                    .and_then(|s| s.strip_suffix('"'))
                    .or(Some(""))
            }
            TokenKind::RawStr => {
                let inner = self
                    .text
                    .trim_start_matches('b')
                    .trim_start_matches('r')
                    .trim_start_matches('#')
                    .trim_end_matches('#');
                inner
                    .strip_prefix('"')
                    .and_then(|s| s.strip_suffix('"'))
                    .or(Some(""))
            }
            _ => None,
        }
    }

    /// True when a numeric literal is floating-point: it has a decimal
    /// point, a decimal exponent, or an `f32`/`f64` suffix.
    pub fn is_float_literal(&self) -> bool {
        if self.kind != TokenKind::Number {
            return false;
        }
        let t = self.text.as_str();
        if t.starts_with("0x") || t.starts_with("0X") {
            return false;
        }
        if t.ends_with("f32") || t.ends_with("f64") {
            return true;
        }
        if t.ends_with("u8")
            || t.ends_with("u16")
            || t.ends_with("u32")
            || t.ends_with("u64")
            || t.ends_with("usize")
            || t.ends_with("i8")
            || t.ends_with("i16")
            || t.ends_with("i32")
            || t.ends_with("i64")
            || t.ends_with("isize")
        {
            return false;
        }
        t.contains('.') || t.contains(['e', 'E'])
    }
}

/// Lexes `src` into tokens. Unknown bytes become single-char puncts, so
/// lexing never fails; rules simply see what is there.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    chars: Vec<(usize, char)>,
    pos: usize,
    line: usize,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            chars: src.char_indices().collect(),
            pos: 0,
            line: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn byte_at(&self, idx: usize) -> usize {
        self.chars
            .get(idx)
            .map_or(self.src.len(), |&(byte, _)| byte)
    }

    /// Advances one char, counting newlines.
    fn bump(&mut self) {
        if let Some(&(_, c)) = self.chars.get(self.pos) {
            if c == '\n' {
                self.line += 1;
            }
            self.pos += 1;
        }
    }

    fn emit(&mut self, kind: TokenKind, start_idx: usize, start_line: usize) {
        let start = self.byte_at(start_idx);
        let end = self.byte_at(self.pos);
        self.out.push(Token {
            kind,
            text: self.src[start..end].to_owned(),
            line: start_line,
            start,
            end,
        });
    }

    fn run(mut self) -> Vec<Token> {
        // A shebang (`#!…` at byte 0) covers the whole first line; consume
        // it as a comment instead of a stream of stray puncts. `#![…]` is
        // an inner attribute, not a shebang, and lexes normally.
        if self.src.starts_with("#!") && !self.src.starts_with("#![") {
            let line = self.line;
            while self.peek(0).is_some_and(|c| c != '\n') {
                self.bump();
            }
            self.emit(TokenKind::LineComment, 0, line);
        }
        while let Some(c) = self.peek(0) {
            let start = self.pos;
            let line = self.line;
            match c {
                c if c.is_whitespace() => self.bump(),
                '/' if self.peek(1) == Some('/') => {
                    while self.peek(0).is_some_and(|c| c != '\n') {
                        self.bump();
                    }
                    self.emit(TokenKind::LineComment, start, line);
                }
                '/' if self.peek(1) == Some('*') => {
                    self.bump();
                    self.bump();
                    let mut depth = 1u32;
                    while depth > 0 && self.peek(0).is_some() {
                        if self.peek(0) == Some('/') && self.peek(1) == Some('*') {
                            depth += 1;
                            self.bump();
                            self.bump();
                        } else if self.peek(0) == Some('*') && self.peek(1) == Some('/') {
                            depth -= 1;
                            self.bump();
                            self.bump();
                        } else {
                            self.bump();
                        }
                    }
                    self.emit(TokenKind::BlockComment, start, line);
                }
                '"' => self.string(start, line),
                '\'' => self.char_or_lifetime(start, line),
                c if c.is_alphabetic() || c == '_' => {
                    if matches!(c, 'r' | 'b') && self.raw_or_byte_prefix() {
                        continue;
                    }
                    while self
                        .peek(0)
                        .is_some_and(|c| c.is_alphanumeric() || c == '_')
                    {
                        self.bump();
                    }
                    self.emit(TokenKind::Ident, start, line);
                }
                c if c.is_ascii_digit() => self.number(start, line),
                _ => {
                    self.bump();
                    self.emit(TokenKind::Punct(c), start, line);
                }
            }
        }
        self.out
    }

    /// Handles `r"…"`, `r#"…"#`, `br"…"`, `b"…"`, `b'…'`, and raw idents
    /// (`r#match`). Returns `true` when it consumed something; `false`
    /// leaves the `r`/`b` to be lexed as a plain identifier start.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let start = self.pos;
        let line = self.line;
        let first = self.peek(0);
        // b"..." / b'...'
        if first == Some('b') {
            match self.peek(1) {
                Some('"') => {
                    self.bump();
                    self.string(start, line);
                    return true;
                }
                Some('\'') => {
                    self.bump();
                    self.bump(); // consume the opening quote
                    self.char_body(start, line);
                    return true;
                }
                Some('r') => {
                    // br"…" / br#"…"#
                    let mut ahead = 2;
                    while self.peek(ahead) == Some('#') {
                        ahead += 1;
                    }
                    if self.peek(ahead) == Some('"') {
                        self.bump();
                        self.raw_string(start, line);
                        return true;
                    }
                    return false;
                }
                _ => return false,
            }
        }
        // r"…" / r#"…"# / r#ident
        if first == Some('r') {
            let mut ahead = 1;
            while self.peek(ahead) == Some('#') {
                ahead += 1;
            }
            if self.peek(ahead) == Some('"') {
                self.raw_string(start, line);
                return true;
            }
            if ahead == 2 && self.peek(1) == Some('#') {
                // Raw identifier r#match: lex as an identifier.
                self.bump();
                self.bump();
                while self
                    .peek(0)
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
                {
                    self.bump();
                }
                self.emit(TokenKind::Ident, start, line);
                return true;
            }
        }
        false
    }

    /// Consumes a raw string starting at the current `r`.
    fn raw_string(&mut self, start: usize, line: usize) {
        self.bump(); // r
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        loop {
            match self.peek(0) {
                None => break,
                Some('"') => {
                    self.bump();
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(0) == Some('#') {
                        seen += 1;
                        self.bump();
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => self.bump(),
            }
        }
        self.emit(TokenKind::RawStr, start, line);
    }

    /// Consumes a regular string; the opening quote is at the current pos.
    fn string(&mut self, start: usize, line: usize) {
        self.bump(); // opening quote
        loop {
            match self.peek(0) {
                None => break,
                Some('\\') => {
                    self.bump();
                    self.bump();
                }
                Some('"') => {
                    self.bump();
                    break;
                }
                Some(_) => self.bump(),
            }
        }
        self.emit(TokenKind::Str, start, line);
    }

    /// Disambiguates a `'`: lifetime (`'a`, `'static`) vs char (`'x'`).
    fn char_or_lifetime(&mut self, start: usize, line: usize) {
        // A char literal is '<escape-or-one-char>'. A lifetime is '<ident>
        // with no closing quote right after the identifier.
        if self.peek(1) == Some('\\') {
            self.bump();
            self.char_body(start, line);
            return;
        }
        let is_ident_start = self.peek(1).is_some_and(|c| c.is_alphabetic() || c == '_');
        if is_ident_start && self.peek(2) != Some('\'') {
            // Lifetime: consume ' and the identifier.
            self.bump();
            while self
                .peek(0)
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                self.bump();
            }
            self.emit(TokenKind::Lifetime, start, line);
            return;
        }
        self.bump();
        self.char_body(start, line);
    }

    /// Consumes a char literal body after the opening quote.
    fn char_body(&mut self, start: usize, line: usize) {
        loop {
            match self.peek(0) {
                None => break,
                Some('\\') => {
                    self.bump();
                    self.bump();
                }
                Some('\'') => {
                    self.bump();
                    break;
                }
                Some('\n') => break, // unterminated; bail at line end
                Some(_) => self.bump(),
            }
        }
        self.emit(TokenKind::Char, start, line);
    }

    /// Consumes a numeric literal, including float forms (`1.5`, `1e-9`,
    /// `2.0f64`) without swallowing range operators (`0..n`).
    fn number(&mut self, start: usize, line: usize) {
        let hex = self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'X' | 'b' | 'o'));
        self.bump();
        if hex {
            self.bump();
        }
        loop {
            match self.peek(0) {
                Some(c) if c.is_ascii_alphanumeric() || c == '_' => {
                    // Decimal exponent may be signed: 1e-9.
                    if !hex
                        && (c == 'e' || c == 'E')
                        && matches!(self.peek(1), Some('+' | '-'))
                        && self.peek(2).is_some_and(|d| d.is_ascii_digit())
                    {
                        self.bump();
                        self.bump();
                        continue;
                    }
                    self.bump();
                }
                Some('.')
                    if !hex
                        && self.peek(1).is_some_and(|c| c.is_ascii_digit())
                        && self.peek(1) != Some('.') =>
                {
                    self.bump();
                }
                _ => break,
            }
        }
        self.emit(TokenKind::Number, start, line);
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        let toks = lex("let x = 1.5e-3 + 0x1F;");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["let", "x", "=", "1.5e-3", "+", "0x1F", ";"]);
        assert!(toks[3].is_float_literal());
        assert!(!toks[5].is_float_literal());
    }

    #[test]
    fn ranges_do_not_make_floats() {
        let toks = lex("for i in 0..n {}");
        let num = toks.iter().find(|t| t.kind == TokenKind::Number).unwrap();
        assert_eq!(num.text, "0");
        assert!(!num.is_float_literal());
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let toks = lex(r####"let s = r#"x.unwrap()"#; let t = r"y";"####);
        let raws: Vec<&Token> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::RawStr)
            .collect();
        assert_eq!(raws.len(), 2);
        assert_eq!(raws[0].str_content(), Some("x.unwrap()"));
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* outer /* panic!() */ still comment */ fn f() {}");
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert!(toks[0].text.contains("still comment"));
        assert!(toks.iter().any(|t| t.is_ident("fn")));
        assert!(!toks.iter().any(|t| t.is_ident("panic")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = toks.iter().filter(|t| t.kind == TokenKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn static_lifetime_is_not_a_char() {
        let toks = lex("let s: &'static str = \"\";");
        assert!(toks.iter().any(|t| t.kind == TokenKind::Lifetime));
        assert!(!toks.iter().any(|t| t.kind == TokenKind::Char));
    }

    #[test]
    fn doc_comments_are_comments() {
        let src = "/// example: `x.unwrap()`\n//! panic!(\"no\")\nfn f() {}";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokenKind::LineComment);
        assert_eq!(toks[1].kind, TokenKind::LineComment);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn strings_hide_patterns_and_escapes() {
        let toks = lex(r#"let s = "a \" .unwrap() b"; x.real();"#);
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Str).count(), 1);
        assert!(toks.iter().any(|t| t.is_ident("real")));
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn byte_strings_and_raw_idents() {
        let toks = lex(r#"let b = b"bytes"; let r = r#match;"#);
        assert!(toks.iter().any(|t| t.kind == TokenKind::Str));
        assert!(toks.iter().any(|t| t.text == "r#match"));
    }

    #[test]
    fn raw_idents_compare_by_name() {
        let toks = lex("let r#type = x.r#unwrap();");
        let raw = toks.iter().find(|t| t.text == "r#type").unwrap();
        assert_eq!(raw.kind, TokenKind::Ident);
        assert!(raw.is_ident("type"));
        assert_eq!(raw.ident_name(), "type");
        assert!(toks.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn shebang_is_a_comment() {
        let toks = lex("#!/usr/bin/env run-cargo-script\nfn f() {}\n");
        assert_eq!(toks[0].kind, TokenKind::LineComment);
        assert_eq!(toks[0].line, 1);
        assert!(toks[0].text.starts_with("#!/usr"));
        let f = toks.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(f.line, 2);
        // No stray puncts from the shebang path survive.
        assert!(!toks.iter().any(|t| t.is_ident("env")));
    }

    #[test]
    fn inner_attributes_are_not_shebangs() {
        let toks = lex("#![allow(dead_code)]\nfn f() {}\n");
        assert!(toks[0].is_punct('#'));
        assert!(toks[1].is_punct('!'));
        assert!(toks.iter().any(|t| t.is_ident("allow")));
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n  c");
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 3]);
    }

    #[test]
    fn multiline_strings_keep_line_numbers() {
        let toks = lex("let s = \"one\ntwo\";\nlet y = 3;");
        let y = toks.iter().find(|t| t.is_ident("y")).unwrap();
        assert_eq!(y.line, 3);
        assert_eq!(kinds("\"\n\"")[0], TokenKind::Str);
    }
}
