//! bmst-analyze: the token-aware static-analysis engine behind
//! `cargo xtask lint`.
//!
//! The engine lexes every workspace source file ([`lexer`]), builds a
//! per-file model — significant tokens, `#[cfg(test)]` regions, allow
//! markers, `fn` items ([`model`]) — runs the nine rules ([`rules`]),
//! subtracts `// lint: allow(<rule>) — <reason>` markers, and diffs obs
//! emissions against the `crates/obs/events.toml` registry ([`schema`]).
//!
//! | rule             | scope                                  | forbids |
//! |------------------|----------------------------------------|---------|
//! | `no-panic`       | all library crates                     | `.unwrap()`, `.expect(`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` in non-test code |
//! | `float-eq`       | library crates except `geom`           | `==`/`!=` against float literals or `f64::` constants |
//! | `doc-pub`        | `core`, `tree`, `graph`, `geom`, `obs` | `pub` items without a doc comment |
//! | `no-as-cast`     | `core`, `tree`, `graph`, `obs`         | `as usize` / `as f64` casts |
//! | `no-print`       | all crates incl. `cli`, `bench`        | `println!`/`eprintln!`/`dbg!` in library sources |
//! | `determinism`    | `core`, `steiner`, `router`, `tree`    | `HashMap`/`HashSet`; unstable sorts on float keys |
//! | `error-taxonomy` | `core`, `steiner`, `router`            | `catch_unwind` not reaching `BmstError::Internal`; `.unwrap_or_default()`; pub builders not returning `Result<_, BmstError>` |
//! | `obs-schema`     | all crates except `obs`                | emission names missing from `events.toml` (and dead entries); unqualified emission imports |
//! | `concurrency`    | `router`                               | `static mut`, `Rc`/`RefCell`, `thread_local!`; missing `Send`/`Sync` assertions on `RouteAlgorithm` |
//!
//! Markers attach to **tokens**, not raw lines: a marker only counts when
//! the rule it names actually produced a candidate on its line or the line
//! below. A marker that suppresses nothing is itself a violation (stale),
//! as is one missing its mandatory reason.
//!
//! On top of the per-file rules sits the **semantic engine** behind
//! `cargo xtask analyze`: a workspace item index ([`items`]), an
//! approximate call graph ([`callgraph`]), panic-reachability over it
//! ([`reach`]), complexity-budget enforcement ([`complexity`]),
//! cancellation-liveness ([`cancel`] — entry-reachable instance loops
//! must poll the `CancelToken`), and blocking-discipline ([`blocking`]
//! — no mutex guard held across a blocking call in the service crate).
//! Semantic passes use the parallel `// analyze: allow(<pass>)` /
//! `// analyze: complexity(<budget>)` marker family with the same
//! staleness discipline.

pub mod blocking;
pub mod callgraph;
pub mod cancel;
pub mod complexity;
pub mod items;
pub mod lexer;
pub mod model;
pub mod reach;
pub mod rules;
pub mod schema;

use std::path::{Path, PathBuf};

use model::{Marker, SourceFile};
use rules::Candidate;
use schema::{EventsSchema, SchemaDiff};

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// File the violation is in.
    pub path: PathBuf,
    /// 1-based line (0 for file-level problems).
    pub line: usize,
    /// Rule name, or `marker` / `schema` / `io` for engine-level findings.
    pub rule: String,
    /// Human-readable description.
    pub message: String,
}

/// The result of analysing a workspace.
#[derive(Debug, Default)]
pub struct AnalysisReport {
    /// Every violation, sorted by path then line.
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of obs emissions extracted.
    pub emissions_seen: usize,
}

impl AnalysisReport {
    /// True when the workspace is violation-free.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Relative path of the obs event registry inside the workspace.
pub const EVENTS_TOML: &str = "crates/obs/events.toml";

/// Locates the workspace root: the nearest ancestor of the current
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

/// Recursively collects `.rs` files under `dir`, sorted for stable output.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Loads every in-scope source file under `<root>/crates/*/src`. IO
/// failures are reported through `errors` rather than panicking.
pub fn load_workspace(root: &Path, errors: &mut Vec<Violation>) -> Vec<SourceFile> {
    let mut files = Vec::new();
    for krate in rules::ALL_CRATES {
        let src = root.join("crates").join(krate).join("src");
        for file in rust_files(&src) {
            match std::fs::read_to_string(&file) {
                Ok(text) => {
                    files.push(SourceFile::new(file, (*krate).to_owned(), &text));
                }
                Err(e) => errors.push(Violation {
                    path: file,
                    line: 0,
                    rule: "io".to_owned(),
                    message: format!("file could not be read: {e}"),
                }),
            }
        }
    }
    files
}

/// Extracts obs emissions from every file in the obs-schema scope.
pub fn workspace_emissions(files: &[SourceFile]) -> Vec<schema::Emission> {
    files
        .iter()
        .filter(|f| rules::OBS_SCHEMA_CRATES.contains(&f.crate_name.as_str()))
        .flat_map(schema::extract_emissions)
        .collect()
}

/// Loads and parses `<root>/crates/obs/events.toml`. Errors are reported
/// as violations on the registry file.
pub fn load_events_schema(root: &Path, errors: &mut Vec<Violation>) -> Option<EventsSchema> {
    let path = root.join(EVENTS_TOML);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            errors.push(Violation {
                path,
                line: 0,
                rule: "schema".to_owned(),
                message: format!("obs event registry could not be read: {e}"),
            });
            return None;
        }
    };
    match EventsSchema::parse(&text) {
        Ok(s) => Some(s),
        Err(e) => {
            errors.push(Violation {
                path,
                line: e.line,
                rule: "schema".to_owned(),
                message: e.message,
            });
            None
        }
    }
}

/// One marker family's application parameters: which markers to consult,
/// which rule names they may cite, the comment syntax for messages, and
/// the per-file scope predicate used by staleness.
struct MarkerFamily<'a> {
    markers: &'a [Marker],
    known: &'a [&'static str],
    syntax: &'static str,
    in_scope: fn(&SourceFile, &str) -> bool,
}

/// Filters `candidates` through one marker family, then reports marker
/// problems: unknown rule, missing reason, stale (suppresses nothing).
/// Returns the surviving violations.
fn apply_family(
    file: &SourceFile,
    mut candidates: Vec<Candidate>,
    fam: MarkerFamily<'_>,
) -> Vec<Violation> {
    // One report per (rule, line) keeps output readable when a construct
    // matches multiple ways.
    candidates.sort_by_key(|c| (c.line, c.rule));
    candidates.dedup_by_key(|c| (c.line, c.rule));

    let mut used = vec![false; fam.markers.len()];
    candidates.retain(|c| {
        let suppressed = fam.markers.iter().enumerate().find_map(|(mi, m)| {
            let covers = m.line == c.line || m.line + 1 == c.line;
            // A marker inside a `#[cfg(test)]` region may only waive a
            // candidate that is itself on a test-region line: a marker on
            // the last line of a test module must not silently swallow a
            // violation in the non-test code directly below it.
            let same_side = !m.in_test || file.line_in_test(c.line);
            (covers && same_side && m.rule == c.rule && m.has_reason).then_some(mi)
        });
        match suppressed {
            Some(mi) => {
                used[mi] = true;
                false
            }
            None => true,
        }
    });

    let mut out: Vec<Violation> = candidates
        .into_iter()
        .map(|c| Violation {
            path: file.path.clone(),
            line: c.line,
            rule: c.rule.to_owned(),
            message: c.message,
        })
        .collect();

    for (mi, m) in fam.markers.iter().enumerate() {
        if !fam.known.contains(&m.rule.as_str()) {
            out.push(Violation {
                path: file.path.clone(),
                line: m.line,
                rule: "marker".to_owned(),
                message: format!(
                    "allow marker names unknown rule `{}` (known: {})",
                    m.rule,
                    fam.known.join(", ")
                ),
            });
        } else if !m.has_reason {
            out.push(Violation {
                path: file.path.clone(),
                line: m.line,
                rule: "marker".to_owned(),
                message: format!(
                    "allow marker for `{}` is missing its reason: \
                     `// {}: allow({}) — <reason>`",
                    m.rule, fam.syntax, m.rule
                ),
            });
        } else if !used[mi] && !m.in_test && (fam.in_scope)(file, &m.rule) {
            out.push(Violation {
                path: file.path.clone(),
                line: m.line,
                rule: "marker".to_owned(),
                message: format!(
                    "stale allow marker: `{}` produces no violation on line {} or {}; \
                     remove the marker",
                    m.rule,
                    m.line,
                    m.line + 1
                ),
            });
        }
    }
    out
}

/// Filters token-rule `candidates` through the file's `// lint: allow`
/// markers (see [`apply_family`] for the shared mechanics).
pub fn apply_markers(file: &SourceFile, candidates: Vec<Candidate>) -> Vec<Violation> {
    apply_family(
        file,
        candidates,
        MarkerFamily {
            markers: &file.markers,
            known: rules::KNOWN_RULES,
            syntax: "lint",
            in_scope: rules::rule_in_scope,
        },
    )
}

/// Filters semantic-pass `candidates` through the file's
/// `// analyze: allow` markers, with the same staleness discipline.
pub fn apply_sem_markers(file: &SourceFile, candidates: Vec<Candidate>) -> Vec<Violation> {
    apply_family(
        file,
        candidates,
        MarkerFamily {
            markers: &file.sem_markers,
            known: rules::SEMANTIC_RULES,
            syntax: "analyze",
            in_scope: rules::semantic_rule_in_scope,
        },
    )
}

/// Analyses one file in isolation (no schema diff) — the entry point the
/// fixture tests use.
pub fn analyze_file(file: &SourceFile) -> Vec<Violation> {
    apply_markers(file, rules::candidates(file))
}

/// Turns a schema diff into violations: unknown emissions at their site,
/// dead entries at their registry line.
pub fn diff_violations(root: &Path, diff: &SchemaDiff) -> Vec<Violation> {
    let mut out = Vec::new();
    for e in &diff.unknown {
        out.push(Violation {
            path: e.path.clone(),
            line: e.line,
            rule: "obs-schema".to_owned(),
            message: format!(
                "emission `{}` ({}) is not registered in {EVENTS_TOML}; add it under \
                 [{}] or rename the emission",
                e.name,
                e.kind.section().trim_end_matches('s'),
                e.kind.section()
            ),
        });
    }
    for (section, name, line) in &diff.dead {
        out.push(Violation {
            path: root.join(EVENTS_TOML),
            line: *line,
            rule: "obs-schema".to_owned(),
            message: format!(
                "dead registry entry: [{section}] `{name}` is emitted nowhere; remove it \
                 or restore the emission"
            ),
        });
    }
    out
}

/// Analyses the whole workspace: all nine rules plus the obs-schema
/// round-trip against `crates/obs/events.toml`.
pub fn analyze_workspace(root: &Path) -> AnalysisReport {
    let mut report = AnalysisReport::default();
    let files = load_workspace(root, &mut report.violations);
    report.files_scanned = files.len();

    let emissions = workspace_emissions(&files);
    report.emissions_seen = emissions.len();

    // Per-file rule candidates; schema-diff violations join the matching
    // file's candidate list so allow markers can cover them too.
    let mut extra: Vec<Violation> = Vec::new();
    let mut unknown_by_file: std::collections::BTreeMap<PathBuf, Vec<Candidate>> =
        std::collections::BTreeMap::new();
    if let Some(schema_reg) = load_events_schema(root, &mut report.violations) {
        let diff = schema::diff(&schema_reg, &emissions);
        for v in diff_violations(root, &diff) {
            if v.path.ends_with(EVENTS_TOML) {
                extra.push(v);
            } else {
                unknown_by_file
                    .entry(v.path.clone())
                    .or_default()
                    .push(Candidate {
                        line: v.line,
                        rule: "obs-schema",
                        message: v.message,
                    });
            }
        }
    }

    for file in &files {
        let mut cands = rules::candidates(file);
        if let Some(unknown) = unknown_by_file.remove(&file.path) {
            cands.extend(unknown);
        }
        report.violations.extend(apply_markers(file, cands));
    }
    report.violations.extend(extra);
    report
        .violations
        .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    report
}

/// One row of the rule table shown by `cargo xtask lint --list`.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule name.
    pub name: &'static str,
    /// Crates the rule runs on.
    pub scope: &'static [&'static str],
    /// One-line description.
    pub description: &'static str,
}

/// The full rule table, in display order.
pub fn rule_table() -> Vec<RuleInfo> {
    vec![
        RuleInfo {
            name: "no-panic",
            scope: rules::PANIC_FREE_CRATES,
            description: "forbids .unwrap() / .expect( / panic! / unreachable! / todo! / \
                          unimplemented! in non-test code",
        },
        RuleInfo {
            name: "float-eq",
            scope: rules::FLOAT_EQ_CRATES,
            description: "forbids ==/!= against float literals or f64:: constants; use \
                          bmst-geom's tolerance helpers",
        },
        RuleInfo {
            name: "doc-pub",
            scope: rules::DOC_CRATES,
            description: "every `pub` item must carry a doc comment",
        },
        RuleInfo {
            name: "no-as-cast",
            scope: rules::CAST_CRATES,
            description: "forbids `as usize` / `as f64` casts; use From/TryFrom or annotate",
        },
        RuleInfo {
            name: "no-print",
            scope: rules::PRINT_FREE_CRATES,
            description: "forbids println!/eprintln!/dbg! in library sources (src/bin/ and \
                          main.rs exempt)",
        },
        RuleInfo {
            name: "determinism",
            scope: rules::DETERMINISM_CRATES,
            description: "forbids HashMap/HashSet and unstable sorts on float keys in the \
                          byte-identical routing hot paths",
        },
        RuleInfo {
            name: "error-taxonomy",
            scope: rules::ERROR_TAXONOMY_CRATES,
            description: "catch_unwind must flow into BmstError::Internal; no \
                          .unwrap_or_default(); pub builders return Result<_, BmstError>",
        },
        RuleInfo {
            name: "obs-schema",
            scope: rules::OBS_SCHEMA_CRATES,
            description: "every obs emission name must round-trip against \
                          crates/obs/events.toml (no unknown emissions, no dead entries)",
        },
        RuleInfo {
            name: "concurrency",
            scope: rules::CONCURRENCY_CRATES,
            description: "forbids static mut / Rc / RefCell / thread_local! in the parallel \
                          router; RouteAlgorithm carries Send/Sync assertions",
        },
    ]
}

/// The result of running the semantic passes over a workspace.
#[derive(Debug, Default)]
pub struct SemanticReport {
    /// Every violation, sorted by path then line.
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of `fn` items indexed.
    pub fns_indexed: usize,
    /// Number of resolved call edges.
    pub call_edges: usize,
}

impl SemanticReport {
    /// True when the workspace passes every semantic check.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs the semantic passes (panic-reachability, complexity budgets)
/// over an already-loaded file set — the entry point fixture tests use.
pub fn analyze_semantic_files(files: &[SourceFile]) -> SemanticReport {
    let index = items::ItemIndex::build(files);
    let graph = callgraph::CallGraph::build(&index);
    let info = reach::ReachInfo::compute(&index, &graph);
    let mut per_file: Vec<Vec<Candidate>> = vec![Vec::new(); files.len()];
    for (fi, c) in reach::candidates(&index, &graph, &info) {
        per_file[fi].push(c);
    }
    for (fi, c) in complexity::candidates(&index, &graph) {
        per_file[fi].push(c);
    }
    for (fi, c) in cancel::candidates(&index, &graph) {
        per_file[fi].push(c);
    }
    for (fi, c) in blocking::candidates(files) {
        per_file[fi].push(c);
    }
    let mut violations = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        violations.extend(apply_sem_markers(file, std::mem::take(&mut per_file[fi])));
    }
    violations.sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    SemanticReport {
        violations,
        files_scanned: files.len(),
        fns_indexed: index.fns.len(),
        call_edges: graph.edge_count(),
    }
}

/// Runs the semantic passes over the workspace at `root`.
pub fn analyze_semantic(root: &Path) -> SemanticReport {
    let mut io_errors = Vec::new();
    let files = load_workspace(root, &mut io_errors);
    let mut report = analyze_semantic_files(&files);
    if !io_errors.is_empty() {
        report.violations.extend(io_errors);
        report
            .violations
            .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    }
    report
}

/// Renders the workspace call graph in Graphviz dot syntax
/// (`cargo xtask analyze --graph dot`).
pub fn callgraph_dot(root: &Path) -> String {
    let mut io_errors = Vec::new();
    let files = load_workspace(root, &mut io_errors);
    let index = items::ItemIndex::build(&files);
    callgraph::CallGraph::build(&index).to_dot(&index)
}

/// The semantic-pass table shown by `cargo xtask analyze --list`.
pub fn semantic_pass_table() -> Vec<RuleInfo> {
    vec![
        RuleInfo {
            name: "panic-reach",
            scope: rules::PANIC_REACH_CRATES,
            description: "public builders taking &ProblemContext must not transitively reach \
                          .unwrap()/.expect(/panic-family macros/indexing unless isolated by \
                          catch_unwind or waived with a reason",
        },
        RuleInfo {
            name: "complexity",
            scope: rules::COMPLEXITY_CRATES,
            description: "instance-loop nesting (call-graph aware) must stay within declared \
                          `// analyze: complexity(<budget>)` markers; unbudgeted depth-2 nests \
                          in hot crates fail",
        },
        RuleInfo {
            name: "cancel-liveness",
            scope: rules::CANCEL_CRATES,
            description: "every instance loop reachable from a registry-facing builder or serve \
                          worker must poll the CancelToken in its body or a callee, unless \
                          budgeted `1`/`log n` or waived with a reason",
        },
        RuleInfo {
            name: "blocking-discipline",
            scope: rules::BLOCKING_CRATES,
            description: "no mutex guard held across channel send/recv, stream writes, or \
                          catch_unwind in the service crate (temporary-scope aware)",
        },
    ]
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic
    use super::*;

    fn file(krate: &str, src: &str) -> SourceFile {
        SourceFile::new(
            PathBuf::from(format!("crates/{krate}/src/lib.rs")),
            krate.to_owned(),
            src,
        )
    }

    #[test]
    fn markers_suppress_and_are_tracked() {
        let src = "// lint: allow(no-panic) — index is in range by construction\n\
                   fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let v = analyze_file(&file("core", src));
        assert!(v.is_empty(), "got {v:?}");
    }

    #[test]
    fn marker_without_reason_is_a_violation() {
        let src = "// lint: allow(no-panic)\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let v = analyze_file(&file("core", src));
        let rules: Vec<&str> = v.iter().map(|x| x.rule.as_str()).collect();
        assert!(
            rules.contains(&"no-panic"),
            "unsuppressed violation survives"
        );
        assert!(rules.contains(&"marker"), "reasonless marker reported");
    }

    #[test]
    fn stale_marker_is_a_violation() {
        let src = "// lint: allow(no-panic) — was needed before the refactor\nfn f() -> u8 { 1 }\n";
        let v = analyze_file(&file("core", src));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "marker");
        assert!(v[0].message.contains("stale"));
    }

    #[test]
    fn unknown_rule_marker_is_a_violation() {
        let src = "// lint: allow(bogus) — because\nfn f() {}\n";
        let v = analyze_file(&file("core", src));
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("unknown rule"));
    }

    #[test]
    fn out_of_scope_marker_is_not_stale() {
        // `bench` is outside the no-panic scope: the rule never runs, so
        // the marker cannot be judged stale there (but the unknown-rule
        // and reason checks still apply).
        let src = "// lint: allow(no-panic) — kept for symmetry\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let v = analyze_file(&file("bench", src));
        assert!(v.is_empty(), "got {v:?}");
    }

    #[test]
    fn test_region_markers_are_exempt_from_staleness() {
        let src = "#[cfg(test)]\nmod tests {\n    // lint: allow(no-panic) — tests may panic\n    fn t() {}\n}\n";
        let v = analyze_file(&file("core", src));
        assert!(v.is_empty(), "got {v:?}");
    }

    #[test]
    fn test_region_marker_cannot_waive_non_test_violation() {
        // The marker sits on the closing line of the test module; the
        // violation is on the first non-test line below it. The waiver
        // must not cross the region boundary: the violation survives,
        // and the in-test marker stays exempt from staleness.
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {}\n    // lint: allow(no-panic) — tests may panic\n}\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let v = analyze_file(&file("core", src));
        let rules: Vec<&str> = v.iter().map(|x| x.rule.as_str()).collect();
        assert_eq!(rules, ["no-panic"], "got {v:?}");
    }

    #[test]
    fn non_test_marker_aimed_into_test_region_is_stale() {
        // The marker sits in non-test code directly above a test region.
        // Rules skip test code, so there is no candidate to waive: the
        // marker is stale and must be reported.
        let src = "// lint: allow(no-panic) — covers the test below\n#[cfg(test)]\nmod tests {\n    fn t(x: Option<u8>) -> u8 { x.unwrap() }\n}\n";
        let v = analyze_file(&file("core", src));
        assert_eq!(v.len(), 1, "got {v:?}");
        assert_eq!(v[0].rule, "marker");
        assert!(v[0].message.contains("stale"));
    }

    #[test]
    fn one_report_per_rule_per_line() {
        let src = "fn f(x: Option<u8>, y: Option<u8>) -> u8 { x.unwrap() + y.unwrap() }\n";
        let v = analyze_file(&file("core", src));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn rule_table_covers_all_known_rules() {
        let table = rule_table();
        assert_eq!(table.len(), rules::KNOWN_RULES.len());
        for info in &table {
            assert!(rules::KNOWN_RULES.contains(&info.name));
            assert!(!info.scope.is_empty());
        }
    }

    #[test]
    fn semantic_pass_table_covers_semantic_rules() {
        let table = semantic_pass_table();
        assert_eq!(table.len(), rules::SEMANTIC_RULES.len());
        for info in &table {
            assert!(rules::SEMANTIC_RULES.contains(&info.name));
        }
    }

    #[test]
    fn semantic_waiver_suppresses_and_staleness_is_tracked() {
        let src = "// analyze: allow(panic-reach) — raw API; try_build isolates callers\n\
                   pub fn build(cx: &ProblemContext) -> T { x.unwrap() }\n";
        let r = analyze_semantic_files(&[file("core", src)]);
        assert!(r.is_clean(), "got {:?}", r.violations);

        let stale = "// analyze: allow(panic-reach) — no longer needed\n\
                     pub fn build(cx: &ProblemContext) -> T { T::new() }\n";
        let r = analyze_semantic_files(&[file("core", stale)]);
        assert_eq!(r.violations.len(), 1, "got {:?}", r.violations);
        assert_eq!(r.violations[0].rule, "marker");
        assert!(r.violations[0].message.contains("stale"));
    }

    #[test]
    fn semantic_marker_naming_lint_rule_is_unknown() {
        let src = "// analyze: allow(no-panic) — wrong family\npub fn f() {}\n";
        let r = analyze_semantic_files(&[file("core", src)]);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].message.contains("unknown rule"));
        assert!(r.violations[0].message.contains("panic-reach"));
    }

    #[test]
    fn semantic_report_counts_fns_and_edges() {
        let src = "fn a() { b(); }\nfn b() {}\n";
        let r = analyze_semantic_files(&[file("core", src)]);
        assert_eq!(r.fns_indexed, 2);
        assert_eq!(r.call_edges, 1);
        assert_eq!(r.files_scanned, 1);
    }
}
