//! Per-file source model shared by every rule: the token stream, a
//! significant-token view (comments stripped), `#[cfg(test)]` region
//! tracking, `// lint: allow` markers attached to tokens, and a
//! lightweight `fn` item walker (name, visibility, parameter and return
//! token ranges, body span).
//!
//! Two marker families are collected:
//!
//! * `// lint: allow(<rule>) — <reason>` waives a token-rule violation
//!   ([`SourceFile::markers`]);
//! * `// analyze: allow(<pass>) — <reason>` waives a semantic-pass
//!   violation ([`SourceFile::sem_markers`]), and
//!   `// analyze: complexity(<budget>)` declares a complexity budget for
//!   the `fn` item it precedes ([`SourceFile::budgets`]).

use std::ops::Range;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Token, TokenKind};

/// A parsed `// lint: allow(<rule>) — <reason>` marker.
#[derive(Debug, Clone)]
pub struct Marker {
    /// The rule name inside the parentheses.
    pub rule: String,
    /// Whether a non-empty reason follows the closing parenthesis.
    pub has_reason: bool,
    /// 1-based line of the comment carrying the marker.
    pub line: usize,
    /// Whether the marker sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// A parsed `// analyze: complexity(<budget>)` marker: a declared
/// complexity budget for the `fn` item on the same or the next line.
/// The budget text is interpreted by the complexity pass.
#[derive(Debug, Clone)]
pub struct BudgetMarker {
    /// The budget text inside the parentheses (`1`, `n`, `n log n`,
    /// `n^2`, …), whitespace-trimmed but otherwise unparsed.
    pub spec: String,
    /// 1-based line of the comment carrying the marker.
    pub line: usize,
    /// Whether the marker sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// A `fn` item found by the walker. All ranges index into
/// [`SourceFile::sig`] (positions of significant tokens), not raw tokens.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// True for unrestricted `pub` (not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Significant-token range of the parameter list (between the parens).
    pub params: Range<usize>,
    /// Significant-token range between the parameter list and the body
    /// (return type and any `where` clause).
    pub ret: Range<usize>,
    /// Significant-token range of the body (between the braces); empty for
    /// bodyless trait-method declarations.
    pub body: Range<usize>,
    /// Whether the `fn` keyword lies inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// One analysed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path the file was read from.
    pub path: PathBuf,
    /// The crate directory name under `crates/` this file belongs to.
    pub crate_name: String,
    /// The full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the significant (non-comment) tokens.
    pub sig: Vec<usize>,
    /// Per raw-token flag: inside a `#[cfg(test)]` region.
    pub in_test: Vec<bool>,
    /// Every `// lint: allow` marker in the file.
    pub markers: Vec<Marker>,
    /// Every `// analyze: allow` marker (semantic-pass waiver) in the file.
    pub sem_markers: Vec<Marker>,
    /// Every `// analyze: complexity(...)` budget declaration in the file.
    pub budgets: Vec<BudgetMarker>,
    /// Every `fn` item in the file.
    pub fns: Vec<FnItem>,
}

impl SourceFile {
    /// Lexes and pre-analyses `text`.
    pub fn new(path: PathBuf, crate_name: String, text: &str) -> Self {
        let tokens = lex(text);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        let in_test = mark_test_regions(&tokens, &sig);
        let (markers, sem_markers, budgets) = collect_markers(&tokens, &in_test);
        let mut file = SourceFile {
            path,
            crate_name,
            tokens,
            sig,
            in_test,
            markers,
            sem_markers,
            budgets,
            fns: Vec::new(),
        };
        file.fns = walk_fns(&file);
        file
    }

    /// The significant token at significant-position `i`, if any.
    pub fn s(&self, i: usize) -> Option<&Token> {
        self.sig.get(i).map(|&idx| &self.tokens[idx])
    }

    /// Whether the significant token at position `i` is in a test region.
    pub fn sig_in_test(&self, i: usize) -> bool {
        self.sig
            .get(i)
            .is_some_and(|&idx| self.in_test.get(idx).copied().unwrap_or(false))
    }

    /// Whether any significant token starting on `line` lies inside a
    /// `#[cfg(test)]` region — the line-level view markers need when
    /// deciding whether they may waive a candidate on that line.
    pub fn line_in_test(&self, line: usize) -> bool {
        self.sig
            .iter()
            .any(|&idx| self.tokens[idx].line == line && self.in_test[idx])
    }

    /// Finds the `fn` item a fn-level marker on `line` attaches to: the
    /// item whose `fn` keyword sits on the marker's own line (trailing
    /// comment) or the line directly below.
    pub fn fn_on_or_after(&self, line: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .find(|f| f.line == line || f.line == line + 1)
    }

    /// True for sources that build into binaries (`src/bin/**`, `main.rs`),
    /// where printing is the point.
    pub fn is_binary_source(&self) -> bool {
        is_binary_source(&self.path)
    }

    /// True when two significant positions hold contiguous tokens (no
    /// whitespace between them), e.g. the two `=` of `==`.
    pub fn contiguous(&self, a: usize, b: usize) -> bool {
        match (self.s(a), self.s(b)) {
            (Some(ta), Some(tb)) => ta.end == tb.start,
            _ => false,
        }
    }

    /// Finds the `fn` item whose body contains significant position `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.contains(&i))
            .min_by_key(|f| f.body.len())
    }
}

/// True for `src/bin/**` files and crate-root `main.rs`.
pub fn is_binary_source(path: &Path) -> bool {
    if path.file_name().is_some_and(|n| n == "main.rs") {
        return true;
    }
    let mut prev: Option<&std::ffi::OsStr> = None;
    for c in path.components().rev().skip(1) {
        let name = c.as_os_str();
        if name == "src" && prev.is_some_and(|p| p == "bin") {
            return true;
        }
        prev = Some(name);
    }
    false
}

/// Parses an allow marker out of a comment body, if present. Only plain
/// `//` comments qualify: doc comments (`///`, `//!`) are documentation,
/// and mentioning the convention there must not create a live marker.
/// `prefix` selects the family: `"lint: allow("` or `"analyze: allow("`.
fn parse_marker(text: &str, prefix: &str) -> Option<(String, bool)> {
    let after = text.split(prefix).nth(1)?;
    let (rule, rest) = after.split_once(')')?;
    let rest = rest.trim_start();
    let has_reason = ["—", "--", "-"]
        .iter()
        .any(|sep| rest.strip_prefix(sep).is_some_and(|r| !r.trim().is_empty()));
    Some((rule.trim().to_owned(), has_reason))
}

/// Parses a complexity-budget declaration out of a comment body.
fn parse_budget(text: &str) -> Option<String> {
    let after = text.split("analyze: complexity(").nth(1)?;
    let (spec, _) = after.split_once(')')?;
    Some(spec.trim().to_owned())
}

type MarkerSets = (Vec<Marker>, Vec<Marker>, Vec<BudgetMarker>);

/// Collects the three marker kinds in one comment walk: lint waivers,
/// semantic-pass waivers, and complexity-budget declarations.
fn collect_markers(tokens: &[Token], in_test: &[bool]) -> MarkerSets {
    let mut lint = Vec::new();
    let mut sem = Vec::new();
    let mut budgets = Vec::new();
    for (idx, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        if t.text.starts_with("///") || t.text.starts_with("//!") {
            continue;
        }
        let test = in_test.get(idx).copied().unwrap_or(false);
        if let Some((rule, has_reason)) = parse_marker(&t.text, "lint: allow(") {
            lint.push(Marker {
                rule,
                has_reason,
                line: t.line,
                in_test: test,
            });
        }
        if let Some((rule, has_reason)) = parse_marker(&t.text, "analyze: allow(") {
            sem.push(Marker {
                rule,
                has_reason,
                line: t.line,
                in_test: test,
            });
        }
        if let Some(spec) = parse_budget(&t.text) {
            budgets.push(BudgetMarker {
                spec,
                line: t.line,
                in_test: test,
            });
        }
    }
    (lint, sem, budgets)
}

/// Marks every raw token inside a `#[cfg(test)]`- or `#[cfg(all(test…))]`-
/// annotated item (attribute included) by walking the token stream and
/// matching the brace span of the annotated item.
fn mark_test_regions(tokens: &[Token], sig: &[usize]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let s = |i: usize| -> Option<&Token> { sig.get(i).map(|&idx| &tokens[idx]) };
    let mut i = 0usize;
    while i < sig.len() {
        if !(s(i).is_some_and(|t| t.is_punct('#')) && s(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        // Attribute content: tokens between the brackets.
        let attr_start = i;
        let mut j = i + 2;
        let mut depth = 1i32;
        let mut content: Vec<&str> = Vec::new();
        while depth > 0 {
            let Some(t) = s(j) else { break };
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
            }
            if depth > 0 {
                content.push(&t.text);
            }
            j += 1;
        }
        let is_cfg_test = content.first() == Some(&"cfg")
            && (content.get(2) == Some(&"test")
                || (content.get(2) == Some(&"all") && content.get(4) == Some(&"test")));
        if !is_cfg_test {
            i = j;
            continue;
        }
        // Skip any further attributes between this one and the item.
        while s(j).is_some_and(|t| t.is_punct('#')) && s(j + 1).is_some_and(|t| t.is_punct('[')) {
            let mut d = 1i32;
            j += 2;
            while d > 0 {
                let Some(t) = s(j) else { break };
                if t.is_punct('[') {
                    d += 1;
                } else if t.is_punct(']') {
                    d -= 1;
                }
                j += 1;
            }
        }
        // The annotated item: through its brace-matched body, or to the
        // first `;` for bodyless items (`mod tests;`, `use …;`).
        let mut brace = 0i32;
        let mut opened = false;
        let end_sig = loop {
            let Some(t) = s(j) else { break j };
            if t.is_punct('{') {
                brace += 1;
                opened = true;
            } else if t.is_punct('}') {
                brace -= 1;
                if opened && brace <= 0 {
                    break j + 1;
                }
            } else if t.is_punct(';') && !opened {
                break j + 1;
            }
            j += 1;
        };
        // Mark every raw token from the attribute through the item end.
        let from = sig[attr_start];
        let to = if end_sig > 0 && end_sig <= sig.len() {
            sig[end_sig - 1]
        } else {
            tokens.len() - 1
        };
        for flag in in_test.iter_mut().take(to + 1).skip(from) {
            *flag = true;
        }
        i = end_sig.max(i + 1);
    }
    in_test
}

/// Item-position modifier keywords that may precede `fn`.
const FN_MODIFIERS: &[&str] = &["const", "async", "unsafe", "extern"];

/// Walks the significant tokens for `fn` items, recording signature and
/// body ranges. Nested functions and trait/impl methods are all recorded;
/// `fn` in type position (`fn(usize) -> bool`) is skipped because no
/// identifier follows.
fn walk_fns(file: &SourceFile) -> Vec<FnItem> {
    let mut out = Vec::new();
    let n = file.sig.len();
    for i in 0..n {
        let Some(t) = file.s(i) else { continue };
        if !t.is_ident("fn") {
            continue;
        }
        let Some(name_tok) = file.s(i + 1) else {
            continue;
        };
        if name_tok.kind != TokenKind::Ident {
            continue;
        }
        let line = t.line;
        let in_test = file.sig_in_test(i);
        let is_pub = fn_is_pub(file, i);
        // Skip generics after the name, tolerating `->` inside bounds.
        let mut k = i + 2;
        if file.s(k).is_some_and(|t| t.is_punct('<')) {
            let mut depth = 1i32;
            k += 1;
            while depth > 0 {
                let Some(t) = file.s(k) else { break };
                if t.is_punct('<') {
                    depth += 1;
                } else if t.is_punct('>') && !file.s(k - 1).is_some_and(|p| p.is_punct('-')) {
                    depth -= 1;
                }
                k += 1;
            }
        }
        if !file.s(k).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let params_start = k + 1;
        let mut depth = 1i32;
        k += 1;
        while depth > 0 {
            let Some(t) = file.s(k) else { break };
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
            }
            k += 1;
        }
        let params = params_start..k.saturating_sub(1);
        // Return type / where clause: up to the body `{` or a `;`.
        let ret_start = k;
        let mut body = 0..0;
        while let Some(t) = file.s(k) {
            if t.is_punct(';') {
                break;
            }
            if t.is_punct('{') {
                let body_start = k + 1;
                let mut d = 1i32;
                let mut m = k + 1;
                while d > 0 {
                    let Some(t) = file.s(m) else { break };
                    if t.is_punct('{') {
                        d += 1;
                    } else if t.is_punct('}') {
                        d -= 1;
                    }
                    m += 1;
                }
                body = body_start..m.saturating_sub(1);
                break;
            }
            k += 1;
        }
        out.push(FnItem {
            name: name_tok.ident_name().to_owned(),
            is_pub,
            line,
            params,
            ret: ret_start..k,
            body,
            in_test,
        });
    }
    out
}

/// Determines whether the `fn` at significant position `i` is unrestricted
/// `pub`, by walking back over modifier keywords.
fn fn_is_pub(file: &SourceFile, i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let Some(t) = file.s(j) else { return false };
        match t.kind {
            TokenKind::Ident if FN_MODIFIERS.contains(&t.text.as_str()) => continue,
            TokenKind::Str => continue, // extern "C"
            TokenKind::Punct(')') => {
                // pub(crate) / pub(super): walk back to `(` then `pub`.
                let mut d = 1i32;
                while d > 0 && j > 0 {
                    j -= 1;
                    let Some(t) = file.s(j) else { return false };
                    if t.is_punct(')') {
                        d += 1;
                    } else if t.is_punct('(') {
                        d -= 1;
                    }
                }
                return false; // restricted visibility is not public API
            }
            TokenKind::Ident if t.text == "pub" => {
                return true;
            }
            _ => return false,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::new(PathBuf::from("test.rs"), "test".to_owned(), src)
    }

    #[test]
    fn test_regions_cover_attribute_and_body() {
        let src =
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let f = file(src);
        let unwrap_idx = f.tokens.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(f.in_test[unwrap_idx]);
        let c_fn = f.fns.iter().find(|x| x.name == "c").unwrap();
        assert!(!c_fn.in_test);
        let b_fn = f.fns.iter().find(|x| x.name == "b").unwrap();
        assert!(b_fn.in_test);
    }

    #[test]
    fn cfg_all_test_is_a_test_region() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t { fn b() {} }\nfn c() {}\n";
        let f = file(src);
        assert!(f.fns.iter().find(|x| x.name == "b").unwrap().in_test);
        assert!(!f.fns.iter().find(|x| x.name == "c").unwrap().in_test);
    }

    #[test]
    fn markers_attach_and_doc_comments_do_not() {
        let src = "// lint: allow(no-panic) — fine here\nfn a() {}\n/// lint: allow(no-print) — doc example\nfn b() {}\n";
        let f = file(src);
        assert_eq!(f.markers.len(), 1);
        assert_eq!(f.markers[0].rule, "no-panic");
        assert!(f.markers[0].has_reason);
        assert_eq!(f.markers[0].line, 1);
    }

    #[test]
    fn analyze_markers_and_budgets_are_collected() {
        let src = "// analyze: allow(panic-reach) — raw API, try_build isolates\n\
                   fn raw() {}\n\
                   // analyze: complexity(n^2)\n\
                   fn hot() { }\n";
        let f = file(src);
        assert!(f.markers.is_empty(), "lint markers unaffected");
        assert_eq!(f.sem_markers.len(), 1);
        assert_eq!(f.sem_markers[0].rule, "panic-reach");
        assert!(f.sem_markers[0].has_reason);
        assert_eq!(f.budgets.len(), 1);
        assert_eq!(f.budgets[0].spec, "n^2");
        assert_eq!(f.fn_on_or_after(f.budgets[0].line).unwrap().name, "hot");
        assert_eq!(f.fn_on_or_after(f.sem_markers[0].line).unwrap().name, "raw");
    }

    #[test]
    fn doc_comments_do_not_create_semantic_markers() {
        let src = "/// analyze: complexity(n^2)\n/// analyze: allow(complexity) — doc\nfn a() {}\n";
        let f = file(src);
        assert!(f.budgets.is_empty());
        assert!(f.sem_markers.is_empty());
    }

    #[test]
    fn line_in_test_tracks_region_lines() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let f = file(src);
        assert!(!f.line_in_test(1));
        assert!(f.line_in_test(4));
        assert!(!f.line_in_test(6));
    }

    #[test]
    fn marker_without_reason_detected() {
        let f = file("// lint: allow(float-eq)\nfn a() {}\n");
        assert_eq!(f.markers.len(), 1);
        assert!(!f.markers[0].has_reason);
    }

    #[test]
    fn fn_walker_records_signature_and_body() {
        let src = "pub fn build(cx: &ProblemContext<'_>) -> Result<Tree, BmstError> { go() }\n";
        let f = file(src);
        let item = &f.fns[0];
        assert_eq!(item.name, "build");
        assert!(item.is_pub);
        let params: Vec<&str> = item
            .params
            .clone()
            .filter_map(|i| f.s(i).map(|t| t.text.as_str()))
            .collect();
        assert!(params.contains(&"ProblemContext"));
        let ret: Vec<&str> = item
            .ret
            .clone()
            .filter_map(|i| f.s(i).map(|t| t.text.as_str()))
            .collect();
        assert!(ret.contains(&"Result") && ret.contains(&"BmstError"));
        let body: Vec<&str> = item
            .body
            .clone()
            .filter_map(|i| f.s(i).map(|t| t.text.as_str()))
            .collect();
        assert_eq!(body, ["go", "(", ")"]);
    }

    #[test]
    fn pub_crate_is_not_public() {
        let f = file("pub(crate) fn run() {}\npub const fn fast() {}\nfn private() {}\n");
        assert!(!f.fns.iter().find(|x| x.name == "run").unwrap().is_pub);
        assert!(f.fns.iter().find(|x| x.name == "fast").unwrap().is_pub);
        assert!(!f.fns.iter().find(|x| x.name == "private").unwrap().is_pub);
    }

    #[test]
    fn generics_with_arrow_bounds_are_skipped() {
        let f = file("fn apply<F: Fn() -> usize>(f: F) -> usize { f() }\n");
        assert_eq!(f.fns[0].name, "apply");
        let params: Vec<&str> = f.fns[0]
            .params
            .clone()
            .filter_map(|i| f.s(i).map(|t| t.text.as_str()))
            .collect();
        assert_eq!(params, ["f", ":", "F"]);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let f = file("type Cb = fn(usize) -> bool;\nfn real() {}\n");
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "real");
    }

    #[test]
    fn binary_sources_are_recognised() {
        assert!(is_binary_source(Path::new("crates/cli/src/main.rs")));
        assert!(is_binary_source(Path::new("crates/bench/src/bin/t2.rs")));
        assert!(is_binary_source(Path::new("crates/bench/src/bin/x/y.rs")));
        assert!(!is_binary_source(Path::new("crates/cli/src/commands.rs")));
    }

    #[test]
    fn enclosing_fn_finds_innermost() {
        let src = "fn outer() { fn inner() { x.unwrap(); } }\n";
        let f = file(src);
        let pos = (0..f.sig.len())
            .find(|&i| f.s(i).is_some_and(|t| t.is_ident("unwrap")))
            .unwrap();
        assert_eq!(f.enclosing_fn(pos).unwrap().name, "inner");
    }
}
