//! Complexity-budget enforcement: loop-nesting depth over
//! instance-sized collections, checked against declared
//! `// analyze: complexity(<budget>)` markers, call-graph aware.
//!
//! The depth model is deliberately coarse — it counts nesting of
//! **instance loops** (`for`/`while` whose header mentions an
//! instance-sized collection: sinks, edges, nets, …) and adds the
//! effective depth of callees at each call site. A budget of `n^2`
//! allows depth 2, `n log n`/`n`/`log n` allow depth 1, `1` allows 0.
//! Budgeted (and explicitly waived) fns are *audited boundaries*: they
//! contribute depth 0 to callers, because their cost has been reviewed
//! and declared (memoised `OnceLock` sites are the canonical example —
//! `matrix()` is O(n²) once, not per call).
//!
//! Enforcement is two-sided:
//!
//! * a **budgeted** fn whose effective depth exceeds its budget fails;
//! * an **unbudgeted** fn in [`crate::rules::COMPLEXITY_CRATES`] with a
//!   *local* instance-loop nest of depth ≥ 2 fails — a new quadratic
//!   hot spot must either declare its budget or restructure.

use std::collections::BTreeMap;
use std::ops::Range;

use crate::callgraph::CallGraph;
use crate::items::ItemIndex;
use crate::model::SourceFile;
use crate::rules::{Candidate, COMPLEXITY_CRATES};

/// Effective-depth values are clamped here: beyond this the precise
/// number is meaningless and the fixed point must terminate.
const DEPTH_CAP: u32 = 5;

/// Identifier hints marking a loop as iterating an instance-sized
/// collection. Tuned to this workspace's vocabulary (sinks, edges,
/// nets, …); `len`/`n` catch the `for i in 0..xs.len()` index form.
pub(crate) const INSTANCE_HINTS: &[&str] = &[
    "sinks",
    "sink",
    "edges",
    "edge",
    "points",
    "nodes",
    "node",
    "terminals",
    "nets",
    "net",
    "neighbors",
    "len",
    "n",
    "m",
    "matrix",
    "heap",
    "queue",
    "candidates",
    "pairs",
    "vertices",
    "children",
    "adjacency",
    "adj",
    "segments",
    "parents",
    "order",
    "sorted",
    "items",
];

/// Parses a budget spec into its allowed instance-loop depth.
/// Recognised: `1`, `log n` (0/1), `n`, `n log n` (1), `n^k` (k).
pub fn allowed_depth(spec: &str) -> Option<u32> {
    let norm: String = spec
        .to_lowercase()
        .chars()
        .filter(|c| !c.is_whitespace())
        .collect();
    match norm.as_str() {
        "1" => Some(0),
        "logn" | "n" | "nlogn" => Some(1),
        _ => {
            let k = norm.strip_prefix("n^")?;
            k.parse::<u32>().ok().filter(|&k| (2..=9).contains(&k))
        }
    }
}

/// One `for`/`while` loop inside a fn body: its keyword position, body
/// span (significant positions), and whether the header marks it
/// instance-sized. Shared with the cancel-liveness pass, which extracts
/// loops with a wider hint vocabulary.
#[derive(Debug)]
pub(crate) struct Loop {
    pub(crate) kw: usize,
    pub(crate) body: Range<usize>,
    pub(crate) instance: bool,
}

/// Extracts the loops of a body range. Headers run from the loop keyword
/// to the body `{` at bracket-neutral depth; `loop {}` has no header and
/// never counts as instance-sized. `hints` selects the identifier
/// vocabulary that marks a header instance-sized — the complexity pass
/// uses [`INSTANCE_HINTS`], the cancel-liveness pass extends it.
pub(crate) fn loops_in(file: &SourceFile, body: &Range<usize>, hints: &[&str]) -> Vec<Loop> {
    let mut out = Vec::new();
    let mut i = body.start;
    while i < body.end {
        let Some(t) = file.s(i) else { break };
        if !(t.is_ident("for") || t.is_ident("while")) {
            i += 1;
            continue;
        }
        // Find the body `{`: first brace outside parens/brackets.
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut instance = false;
        while let Some(h) = file.s(j) {
            if j >= body.end {
                break;
            }
            match h.kind {
                crate::lexer::TokenKind::Punct('(' | '[') => depth += 1,
                crate::lexer::TokenKind::Punct(')' | ']') => depth -= 1,
                crate::lexer::TokenKind::Punct('{') if depth == 0 => break,
                crate::lexer::TokenKind::Ident if hints.contains(&h.ident_name()) => {
                    instance = true;
                }
                _ => {}
            }
            j += 1;
        }
        // Brace-match the loop body.
        let mut d = 1i32;
        let mut m = j + 1;
        while d > 0 && m < body.end + 1 {
            let Some(t) = file.s(m) else { break };
            if t.is_punct('{') {
                d += 1;
            } else if t.is_punct('}') {
                d -= 1;
            }
            m += 1;
        }
        out.push(Loop {
            kw: i,
            body: j + 1..m.saturating_sub(1),
            instance,
        });
        i += 1; // nested loops are found by continuing inside the header/body
    }
    out
}

/// Instance-loop depth at a significant position: how many instance
/// loops of this fn contain it.
pub(crate) fn depth_at(loops: &[Loop], pos: usize) -> u32 {
    let n = loops
        .iter()
        .filter(|l| l.instance && l.body.contains(&pos))
        .count();
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// Max local instance-loop nesting of a fn: for each instance loop, one
/// for itself plus its instance ancestors (loops whose body contains its
/// keyword — a loop's own body never does).
fn local_depth(loops: &[Loop]) -> u32 {
    loops
        .iter()
        .filter(|l| l.instance)
        .map(|l| 1 + depth_at(loops, l.kw))
        .max()
        .unwrap_or(0)
}

/// Per-fn budget facts resolved from the files' budget markers.
struct Budgets {
    /// fn id → allowed depth (parsed budget).
    allowed: BTreeMap<usize, u32>,
    /// fn id → waived (reasoned `analyze: allow(complexity)` attached).
    waived: Vec<bool>,
    /// Marker-hygiene violations (unparsable spec, dangling marker).
    hygiene: Vec<(usize, Candidate)>,
}

/// Resolves budget markers and complexity waivers to fn ids.
fn resolve_budgets(index: &ItemIndex<'_>) -> Budgets {
    let mut allowed = BTreeMap::new();
    let mut waived = vec![false; index.fns.len()];
    let mut hygiene = Vec::new();
    for (fi, file) in index.files.iter().enumerate() {
        let fn_id_at = |item_line: usize| -> Option<usize> {
            index.fns_by_file[fi]
                .iter()
                .copied()
                .find(|&id| index.item(id).line == item_line)
        };
        for b in &file.budgets {
            let target = file
                .fn_on_or_after(b.line)
                .and_then(|item| fn_id_at(item.line));
            let Some(id) = target else {
                hygiene.push((
                    fi,
                    Candidate {
                        line: b.line,
                        rule: "complexity",
                        message: format!(
                            "`analyze: complexity({})` attaches to no fn item (expected on the \
                             fn's line or the line above)",
                            b.spec
                        ),
                    },
                ));
                continue;
            };
            match allowed_depth(&b.spec) {
                Some(d) => {
                    allowed.insert(id, d);
                }
                None => hygiene.push((
                    fi,
                    Candidate {
                        line: b.line,
                        rule: "complexity",
                        message: format!(
                            "unparsable complexity budget `{}`; expected `1`, `log n`, `n`, \
                             `n log n`, or `n^k`",
                            b.spec
                        ),
                    },
                )),
            }
        }
        for m in &file.sem_markers {
            if m.rule == "complexity" && m.has_reason {
                if let Some(id) = file
                    .fn_on_or_after(m.line)
                    .and_then(|item| fn_id_at(item.line))
                {
                    waived[id] = true;
                }
            }
        }
    }
    Budgets {
        allowed,
        waived,
        hygiene,
    }
}

/// Strongly connected components of the deduped call graph, via an
/// iterative Tarjan walk. Components are numbered callees-first: every
/// SCC a component can reach gets a smaller id.
fn sccs(n: usize, succ: &[Vec<usize>]) -> Vec<usize> {
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![UNSET; n];
    let mut next_index = 0usize;
    let mut next_comp = 0usize;
    let mut frames: Vec<(usize, usize)> = Vec::new(); // (node, next child)
    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        frames.push((root, 0));
        while let Some(&(v, ci)) = frames.last() {
            if let Some(&w) = succ[v].get(ci) {
                if let Some(last) = frames.last_mut() {
                    last.1 += 1;
                }
                if index[w] == UNSET {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    comp
}

/// Computes every fn's effective instance-loop depth: local nesting plus
/// callee contributions at their call-site depth, in one callees-first
/// pass over the call graph's SCC condensation. Intra-SCC edges
/// (recursion, mutual or direct) contribute nothing — recursion depth is
/// not loop depth, and counting it would saturate every cycle at the
/// cap. Audited boundaries (budgeted or waived fns) and test fns also
/// contribute 0.
fn effective(
    index: &ItemIndex<'_>,
    graph: &CallGraph,
    budgets: &Budgets,
    fn_loops: &[Vec<Loop>],
    local: &[u32],
) -> Vec<u32> {
    let n = index.fns.len();
    let succ: Vec<Vec<usize>> = (0..n).map(|id| graph.callees_of(id)).collect();
    let comp = sccs(n, &succ);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&id| comp[id]);
    let mut eff = vec![0u32; n];
    for &id in &order {
        if index.item(id).in_test {
            continue;
        }
        let mut best = local[id];
        for site in &graph.sites[id] {
            let at = depth_at(&fn_loops[id], site.pos);
            best = best.max(at);
            for &callee in &site.callees {
                if comp[callee] == comp[id]
                    || budgets.allowed.contains_key(&callee)
                    || budgets.waived[callee]
                    || index.item(callee).in_test
                {
                    continue;
                }
                best = best.max((at + eff[callee]).min(DEPTH_CAP));
            }
        }
        eff[id] = best;
    }
    eff
}

/// The effective instance-loop depth of every indexed fn — exposed for
/// diagnostics and tooling.
pub fn effective_depths(index: &ItemIndex<'_>, graph: &CallGraph) -> Vec<u32> {
    let n = index.fns.len();
    let budgets = resolve_budgets(index);
    let fn_loops: Vec<Vec<Loop>> = (0..n)
        .map(|id| loops_in(index.file(id), &index.item(id).body, INSTANCE_HINTS))
        .collect();
    let local: Vec<u32> = fn_loops.iter().map(|l| local_depth(l)).collect();
    effective(index, graph, &budgets, &fn_loops, &local)
}

/// Emits complexity candidates across the workspace.
pub fn candidates(index: &ItemIndex<'_>, graph: &CallGraph) -> Vec<(usize, Candidate)> {
    let n = index.fns.len();
    let budgets = resolve_budgets(index);
    let fn_loops: Vec<Vec<Loop>> = (0..n)
        .map(|id| loops_in(index.file(id), &index.item(id).body, INSTANCE_HINTS))
        .collect();
    let local: Vec<u32> = fn_loops.iter().map(|l| local_depth(l)).collect();
    let eff = effective(index, graph, &budgets, &fn_loops, &local);

    let mut out = budgets.hygiene;
    for id in 0..n {
        let item = index.item(id);
        if item.in_test {
            continue;
        }
        let f = &index.fns[id];
        if let Some(&allowed) = budgets.allowed.get(&id) {
            if eff[id] > allowed {
                out.push((
                    f.file,
                    Candidate {
                        line: item.line,
                        rule: "complexity",
                        message: format!(
                            "`{}` has effective instance-loop depth {} but declares a budget \
                             allowing depth {allowed}; tighten the code or raise the declared \
                             budget",
                            f.name, eff[id]
                        ),
                    },
                ));
            }
        } else if COMPLEXITY_CRATES.contains(&f.krate.as_str()) && local[id] >= 2 {
            // Waived fns still emit: the engine's marker pass suppresses
            // the candidate and tracks the waiver's staleness.
            out.push((
                f.file,
                Candidate {
                    line: item.line,
                    rule: "complexity",
                    message: format!(
                        "`{}` nests instance loops to depth {} without a declared budget; add \
                         `// analyze: complexity(n^{})` (with review) or restructure, or \
                         annotate with `// analyze: allow(complexity) — <reason>`",
                        f.name, local[id], local[id]
                    ),
                },
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic
    use super::*;
    use std::path::PathBuf;

    fn file(krate: &str, path: &str, src: &str) -> SourceFile {
        SourceFile::new(PathBuf::from(path), krate.to_owned(), src)
    }

    fn analyse(files: &[SourceFile]) -> Vec<Candidate> {
        let idx = ItemIndex::build(files);
        let g = CallGraph::build(&idx);
        candidates(&idx, &g).into_iter().map(|(_, c)| c).collect()
    }

    #[test]
    fn budget_specs_parse_to_depths() {
        assert_eq!(allowed_depth("1"), Some(0));
        assert_eq!(allowed_depth("log n"), Some(1));
        assert_eq!(allowed_depth("n"), Some(1));
        assert_eq!(allowed_depth("n log n"), Some(1));
        assert_eq!(allowed_depth("N log N"), Some(1));
        assert_eq!(allowed_depth("n^2"), Some(2));
        assert_eq!(allowed_depth("n^3"), Some(3));
        assert_eq!(allowed_depth("n^1"), None);
        assert_eq!(allowed_depth("exp"), None);
    }

    #[test]
    fn unbudgeted_quadratic_nest_is_flagged() {
        let src = "fn hot(sinks: &[P]) {\n    for a in sinks {\n        for b in sinks {\n            go(a, b);\n        }\n    }\n}\n";
        let out = analyse(&[file("core", "crates/core/src/h.rs", src)]);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("depth 2 without a declared budget"));
    }

    #[test]
    fn budgeted_quadratic_nest_is_clean() {
        let src = "// analyze: complexity(n^2)\nfn hot(sinks: &[P]) {\n    for a in sinks {\n        for b in sinks {\n            go(a, b);\n        }\n    }\n}\n";
        assert!(analyse(&[file("core", "crates/core/src/h.rs", src)]).is_empty());
    }

    #[test]
    fn budget_violated_by_deeper_nest() {
        let src = "// analyze: complexity(n)\nfn hot(sinks: &[P]) {\n    for a in sinks {\n        for b in sinks {}\n    }\n}\n";
        let out = analyse(&[file("core", "crates/core/src/h.rs", src)]);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("depth 2"), "{}", out[0].message);
        assert!(out[0].message.contains("allowing depth 1"));
    }

    #[test]
    fn callee_depth_flows_into_budget_check() {
        // Caller loops over sinks and calls a fn that itself loops over
        // sinks: effective depth 2, violating the caller's `n` budget.
        let src = "// analyze: complexity(n)\nfn hot(sinks: &[P]) {\n    for a in sinks { inner(sinks); }\n}\nfn inner(sinks: &[P]) { for b in sinks {} }\n";
        let out = analyse(&[file("core", "crates/core/src/h.rs", src)]);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("`hot`"));
    }

    #[test]
    fn budgeted_callee_is_an_audited_boundary() {
        // The callee declares n^2; its cost does not leak into callers.
        let src = "// analyze: complexity(n)\nfn hot(sinks: &[P]) {\n    for a in sinks { memoised(sinks); }\n}\n// analyze: complexity(n^2)\nfn memoised(sinks: &[P]) { for a in sinks { for b in sinks {} } }\n";
        assert!(analyse(&[file("core", "crates/core/src/h.rs", src)]).is_empty());
    }

    #[test]
    fn non_instance_loops_do_not_count() {
        let src = "fn walk() {\n    for bit in 0..64 {\n        for side in 0..2 {\n            go(bit, side);\n        }\n    }\n}\n";
        assert!(analyse(&[file("core", "crates/core/src/h.rs", src)]).is_empty());
    }

    #[test]
    fn dangling_and_unparsable_budgets_are_hygiene_errors() {
        let src = "// analyze: complexity(n^2)\nconst X: usize = 4;\n// analyze: complexity(exp)\nfn a() {}\n";
        let out = analyse(&[file("core", "crates/core/src/h.rs", src)]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().any(|c| c.message.contains("attaches to no fn")));
        assert!(out.iter().any(|c| c.message.contains("unparsable")));
    }

    #[test]
    fn out_of_scope_crates_are_not_floor_checked_but_budgets_are() {
        // geom is not in COMPLEXITY_CRATES: no unbudgeted-nest floor…
        let src = "fn hot(points: &[P]) { for a in points { for b in points {} } }\n";
        assert!(analyse(&[file("geom", "crates/geom/src/h.rs", src)]).is_empty());
        // …but a declared budget is still enforced there.
        let src2 = "// analyze: complexity(n)\nfn hot(points: &[P]) { for a in points { for b in points {} } }\n";
        assert_eq!(
            analyse(&[file("geom", "crates/geom/src/h.rs", src2)]).len(),
            1
        );
    }
}
