//! An approximate intra-workspace call graph over the item index.
//!
//! Call sites are recognised syntactically — an identifier directly
//! followed by `(` — and resolved in three tiers:
//!
//! * **Free calls** (`go(...)`) resolve to same-file fns by name, then
//!   through the file's `use` imports;
//! * **Qualified calls** (`bmst_graph::complete_edges(...)`,
//!   `crate::x::y(...)`, `Self::go(...)`) resolve by mapping the path
//!   head to a crate and suffix-matching module paths;
//! * **Method calls** (`x.cost(...)`) resolve conservatively to *every*
//!   `self`-taking fn of that name in the caller's crate or its
//!   workspace dependencies.
//!
//! Unresolved names (std, external crates) contribute no edges. Macro
//! invocations never match (the `!` sits between name and `(`), and the
//! panic-reachability pass accounts for panic macros separately.

use std::ops::Range;

use crate::items::ItemIndex;
use crate::lexer::TokenKind;
use crate::model::SourceFile;

/// Keywords that read like `ident (` but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "move", "as", "let", "else", "unsafe",
    "impl", "where", "use", "mod", "pub", "fn", "crate", "ref", "box", "yield", "dyn",
];

/// A syntactic callee reference, before resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalleeRef {
    /// `go(...)` — a bare name.
    Free(String),
    /// `x.go(...)` — a method receiver call.
    Method(String),
    /// `a::b::go(...)` — path segments, leaf last.
    Qualified(Vec<String>),
}

impl CalleeRef {
    /// The leaf name being called.
    pub fn name(&self) -> &str {
        match self {
            CalleeRef::Free(n) | CalleeRef::Method(n) => n,
            CalleeRef::Qualified(segs) => segs.last().map(String::as_str).unwrap_or(""),
        }
    }
}

/// A call site inside a fn body, resolved to candidate callees.
#[derive(Debug, Clone)]
pub struct ResolvedSite {
    /// Significant-token position of the callee name.
    pub pos: usize,
    /// The leaf name, for diagnostics.
    pub name: String,
    /// Indices into [`ItemIndex::fns`] the call may land on; empty for
    /// external or unresolved targets.
    pub callees: Vec<usize>,
}

/// The workspace call graph: per indexed fn, its resolved call sites.
#[derive(Debug)]
pub struct CallGraph {
    /// Indexed parallel to [`ItemIndex::fns`].
    pub sites: Vec<Vec<ResolvedSite>>,
}

impl CallGraph {
    /// Extracts and resolves every call site of every indexed fn.
    pub fn build(index: &ItemIndex<'_>) -> Self {
        let mut sites = Vec::with_capacity(index.fns.len());
        for id in 0..index.fns.len() {
            let file = index.file(id);
            let file_idx = index.fns[id].file;
            let body = index.item(id).body.clone();
            let resolved = call_sites(file, &body)
                .into_iter()
                .map(|(pos, callee)| ResolvedSite {
                    pos,
                    name: callee.name().to_owned(),
                    callees: resolve(index, file_idx, &callee),
                })
                .collect();
            sites.push(resolved);
        }
        CallGraph { sites }
    }

    /// Total resolved edges (call site → candidate callee pairs).
    pub fn edge_count(&self) -> usize {
        self.sites.iter().flatten().map(|s| s.callees.len()).sum()
    }

    /// All candidate callee fn ids of `id`, deduplicated.
    pub fn callees_of(&self, id: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self.sites[id]
            .iter()
            .flat_map(|s| s.callees.iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Renders the graph in Graphviz dot syntax, qualified names as
    /// nodes, one edge per resolved (caller, callee) pair.
    pub fn to_dot(&self, index: &ItemIndex<'_>) -> String {
        let mut out = String::from("digraph calls {\n  rankdir=LR;\n");
        for (id, f) in index.fns.iter().enumerate() {
            if index.item(id).in_test {
                continue;
            }
            for callee in self.callees_of(id) {
                out.push_str(&format!(
                    "  \"{}\" -> \"{}\";\n",
                    f.qualified(),
                    index.fns[callee].qualified()
                ));
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Extracts syntactic call sites from a body's significant-token range.
pub fn call_sites(file: &SourceFile, body: &Range<usize>) -> Vec<(usize, CalleeRef)> {
    let mut out = Vec::new();
    for i in body.clone() {
        let Some(t) = file.s(i) else { continue };
        if t.kind != TokenKind::Ident || NON_CALL_KEYWORDS.contains(&t.ident_name()) {
            continue;
        }
        if !file.s(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        // `fn name(` is a nested definition, not a call.
        if i > 0 && file.s(i - 1).is_some_and(|p| p.is_ident("fn")) {
            continue;
        }
        let name = t.ident_name().to_owned();
        let callee = match file.s(i.wrapping_sub(1)) {
            Some(p) if i > 0 && p.is_punct('.') => CalleeRef::Method(name),
            Some(p)
                if i > 1 && p.is_punct(':') && file.s(i - 2).is_some_and(|q| q.is_punct(':')) =>
            {
                CalleeRef::Qualified(path_segments(file, i, name))
            }
            _ => CalleeRef::Free(name),
        };
        out.push((i, callee));
    }
    out
}

/// Walks back over `seg :: seg ::` pairs collecting the full path of a
/// qualified call, leaf last. Stops at anything that is not an
/// `Ident ::` pair (e.g. the `>` of `Vec::<u8>::new`), so a partial
/// path degrades to its known suffix.
fn path_segments(file: &SourceFile, name_pos: usize, name: String) -> Vec<String> {
    let mut segs = vec![name];
    let mut k = name_pos;
    while k >= 3
        && file.s(k - 1).is_some_and(|t| t.is_punct(':'))
        && file.s(k - 2).is_some_and(|t| t.is_punct(':'))
        && file
            .s(k - 3)
            .is_some_and(|t| t.kind == TokenKind::Ident && !t.is_ident("as"))
    {
        if let Some(t) = file.s(k - 3) {
            segs.insert(0, t.ident_name().to_owned());
        }
        k -= 3;
    }
    segs
}

/// Resolves a callee reference to candidate fn ids (see module docs for
/// the tiers). Empty means external/unresolved — no edge.
fn resolve(index: &ItemIndex<'_>, file_idx: usize, callee: &CalleeRef) -> Vec<usize> {
    let krate = index.files[file_idx].crate_name.as_str();
    match callee {
        CalleeRef::Free(name) => resolve_free(index, file_idx, name),
        CalleeRef::Method(name) => index.methods_visible_from(krate, name),
        CalleeRef::Qualified(segs) if segs.len() == 1 => {
            // Degraded path (`Vec::<u8>::new` style): try free resolution.
            resolve_free(index, file_idx, &segs[0])
        }
        CalleeRef::Qualified(segs) => resolve_qualified(index, file_idx, segs),
    }
}

/// Free-call resolution: same-file fns by name first, then the file's
/// imports.
fn resolve_free(index: &ItemIndex<'_>, file_idx: usize, name: &str) -> Vec<usize> {
    let local: Vec<usize> = index.fns_by_file[file_idx]
        .iter()
        .copied()
        .filter(|&id| index.fns[id].name == name)
        .collect();
    if !local.is_empty() {
        return local;
    }
    if let Some(path) = index.imports[file_idx].get(name) {
        return index.resolve_path(path);
    }
    Vec::new()
}

/// Qualified-call resolution: map the head segment to a crate, then
/// suffix-match. `Self::`/`Type::` associated calls fall back to
/// same-file, then crate+deps `self`-less pools by leaf name.
fn resolve_qualified(index: &ItemIndex<'_>, file_idx: usize, segs: &[String]) -> Vec<usize> {
    let file = &index.files[file_idx];
    let krate = file.crate_name.clone();
    let module = crate::items::module_path(&file.path);
    let head = segs[0].as_str();

    // An imported alias: `use bmst_graph::edges; edges::go(...)`. A type
    // import (`use crate::matrix::DistanceMatrix`) aliases the type, not
    // a module — its associated fns live in the module declaring it, so
    // the type segment itself is dropped from the path.
    if let Some(prefix) = index.imports[file_idx].get(head) {
        let type_import = head.starts_with(char::is_uppercase);
        let keep = prefix.len() - usize::from(type_import);
        let mut path = prefix[..keep].to_vec();
        path.extend(segs[1..].iter().cloned());
        let hits = index.resolve_path(&path);
        if !hits.is_empty() || !type_import {
            return hits;
        }
        // Re-exported types miss here; fall through to the pool below.
    }

    let mapped: Option<Vec<String>> = if let Some(rest) = head.strip_prefix("bmst_") {
        Some(vec![rest.to_owned()])
    } else {
        match head {
            "crate" => Some(vec![krate.clone()]),
            "self" => {
                let mut v = vec![krate.clone()];
                v.extend(module.iter().cloned());
                Some(v)
            }
            "super" => {
                let mut v = vec![krate.clone()];
                v.extend(module.iter().take(module.len().saturating_sub(1)).cloned());
                Some(v)
            }
            _ => None,
        }
    };
    if let Some(mut path) = mapped {
        path.extend(segs[1..].iter().cloned());
        return index.resolve_path(&path);
    }

    // `Self::go(...)` or `Type::go(...)`: associated fns live next to
    // their impl block, so prefer same-file, then the crate+deps pool.
    let leaf = segs.last().map(String::as_str).unwrap_or("");
    if head == "Self" || head.starts_with(char::is_uppercase) {
        let local = resolve_free(index, file_idx, leaf);
        if !local.is_empty() {
            return local;
        }
        let deps = crate::items::crate_deps(&krate);
        return index
            .by_name
            .get(leaf)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|&id| {
                        let f = &index.fns[id];
                        f.krate == krate || deps.contains(&f.krate.as_str())
                    })
                    .collect()
            })
            .unwrap_or_default();
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic
    use super::*;
    use crate::items::ItemIndex;
    use std::path::PathBuf;

    fn file(krate: &str, path: &str, src: &str) -> SourceFile {
        SourceFile::new(PathBuf::from(path), krate.to_owned(), src)
    }

    fn graph(files: &[SourceFile]) -> (ItemIndex<'_>, CallGraph) {
        let idx = ItemIndex::build(files);
        let g = CallGraph::build(&idx);
        (idx, g)
    }

    #[test]
    fn free_calls_resolve_same_file_then_imports() {
        let files = vec![
            file(
                "core",
                "crates/core/src/lib.rs",
                "use crate::util::helper;\nfn a() { b(); helper(); external(); }\nfn b() {}\n",
            ),
            file("core", "crates/core/src/util.rs", "pub fn helper() {}\n"),
        ];
        let (idx, g) = graph(&files);
        let a = idx.by_name["a"][0];
        let names: Vec<&str> = g
            .callees_of(a)
            .into_iter()
            .map(|id| idx.fns[id].name.as_str())
            .collect();
        assert_eq!(names, ["b", "helper"]);
    }

    #[test]
    fn qualified_calls_map_crate_heads() {
        let files = vec![
            file(
                "core",
                "crates/core/src/context.rs",
                "fn m() { bmst_graph::complete_edges(); crate::context::local(); }\nfn local() {}\n",
            ),
            file(
                "graph",
                "crates/graph/src/lib.rs",
                "pub fn complete_edges() {}\n",
            ),
        ];
        let (idx, g) = graph(&files);
        let m = idx.by_name["m"][0];
        let mut names: Vec<String> = g
            .callees_of(m)
            .into_iter()
            .map(|id| idx.fns[id].qualified())
            .collect();
        names.sort();
        assert_eq!(names, ["core::context::local", "graph::complete_edges"]);
    }

    #[test]
    fn type_imports_resolve_associated_calls_to_the_declaring_module() {
        // `use crate::matrix::DistanceMatrix` aliases a type; the
        // associated call `DistanceMatrix::from_points(..)` must land in
        // the module that declares the type, not treat the type name as
        // a module segment.
        let files = vec![
            file(
                "geom",
                "crates/geom/src/net.rs",
                "use crate::matrix::DistanceMatrix;\n\
                 fn build() { DistanceMatrix::from_points(); }\n",
            ),
            file(
                "geom",
                "crates/geom/src/matrix.rs",
                "pub fn from_points() {}\n",
            ),
        ];
        let (idx, g) = graph(&files);
        let b = idx.by_name["build"][0];
        let names: Vec<String> = g
            .callees_of(b)
            .into_iter()
            .map(|id| idx.fns[id].qualified())
            .collect();
        assert_eq!(names, ["geom::matrix::from_points"]);
    }

    #[test]
    fn method_calls_resolve_conservatively_within_deps() {
        let files = vec![
            file(
                "core",
                "crates/core/src/lib.rs",
                "fn m(t: &Tree) { t.cost(); }\n",
            ),
            file(
                "tree",
                "crates/tree/src/lib.rs",
                "pub fn cost(&self) -> f64 { 0.0 }\n",
            ),
            file(
                "router",
                "crates/router/src/lib.rs",
                "pub fn cost(&self) -> f64 { 1.0 }\n",
            ),
        ];
        let (idx, g) = graph(&files);
        let m = idx.by_name["m"][0];
        // tree is a core dep; router is not — only tree::cost is a candidate.
        let names: Vec<String> = g
            .callees_of(m)
            .into_iter()
            .map(|id| idx.fns[id].qualified())
            .collect();
        assert_eq!(names, ["tree::cost"]);
    }

    #[test]
    fn macros_and_definitions_are_not_call_sites() {
        let files = vec![file(
            "core",
            "crates/core/src/lib.rs",
            "fn m() { vec![1]; format!(\"x\"); fn nested() {} if x() {} }\nfn x() -> bool { true }\n",
        )];
        let (idx, g) = graph(&files);
        let m = idx.by_name["m"][0];
        let names: Vec<&str> = g.sites[m].iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["x"], "only the real call survives");
    }

    #[test]
    fn self_calls_prefer_same_file() {
        let files = vec![file(
            "core",
            "crates/core/src/lib.rs",
            "impl T { fn a(&self) { Self::b(); } fn b() {} }\n",
        )];
        let (idx, g) = graph(&files);
        let a = idx.by_name["a"][0];
        assert_eq!(g.callees_of(a), vec![idx.by_name["b"][0]]);
    }

    #[test]
    fn dot_output_names_edges() {
        let files = vec![file(
            "core",
            "crates/core/src/lib.rs",
            "fn a() { b(); }\nfn b() {}\n",
        )];
        let (idx, g) = graph(&files);
        let dot = g.to_dot(&idx);
        assert!(dot.starts_with("digraph calls {"));
        assert!(dot.contains("\"core::a\" -> \"core::b\";"));
    }
}
