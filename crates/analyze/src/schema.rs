//! The obs-schema contract: extract every event/counter/histogram/span
//! name passed to `bmst-obs` from the token streams, parse the checked-in
//! `crates/obs/events.toml` registry, and diff the two — unknown emissions
//! and dead registry entries are both failures.

use std::collections::BTreeMap;
use std::path::PathBuf;

use crate::lexer::TokenKind;
use crate::model::SourceFile;

/// Which `bmst_obs` entry point an emission flows through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmissionKind {
    /// `bmst_obs::event(name, fields)`.
    Event,
    /// `bmst_obs::counter(name, n)`.
    Counter,
    /// `bmst_obs::histogram(name, v)`.
    Histogram,
    /// `bmst_obs::span(name)` / `bmst_obs::span_dyn(name)`.
    Span,
}

impl EmissionKind {
    /// The `events.toml` section this kind is registered under.
    pub fn section(self) -> &'static str {
        match self {
            EmissionKind::Event => "events",
            EmissionKind::Counter => "counters",
            EmissionKind::Histogram => "histograms",
            EmissionKind::Span => "spans",
        }
    }

    fn of(fn_name: &str) -> Option<Self> {
        match fn_name {
            "event" => Some(EmissionKind::Event),
            "counter" => Some(EmissionKind::Counter),
            "histogram" => Some(EmissionKind::Histogram),
            "span" | "span_dyn" => Some(EmissionKind::Span),
            _ => None,
        }
    }
}

/// The names `bmst_obs::` exposes for emitting; importing these unqualified
/// would let emissions escape the extractor, so the obs-schema rule forbids
/// it outside the obs crate.
pub const EMISSION_FNS: &[&str] = &["event", "counter", "histogram", "span", "span_dyn"];

/// One name literal observed flowing into `bmst-obs`.
#[derive(Debug, Clone)]
pub struct Emission {
    /// File the emission was found in.
    pub path: PathBuf,
    /// 1-based line of the name literal.
    pub line: usize,
    /// Which entry point it flows through.
    pub kind: EmissionKind,
    /// The name, verbatim — format-string emissions keep their `{...}`
    /// placeholders (e.g. `router.net.w{worker}`).
    pub name: String,
}

/// Extracts every emission from `file` by matching qualified calls
/// `bmst_obs::<fn>(...)` and collecting **all** string literals inside the
/// first top-level argument. Collecting all of them (not just the first)
/// keeps conditional names — `if ok { "a" } else { "b" }` — and names
/// wrapped in `format!` visible to the diff.
pub fn extract_emissions(file: &SourceFile) -> Vec<Emission> {
    let mut out = Vec::new();
    let n = file.sig.len();
    for i in 0..n {
        if !file.s(i).is_some_and(|t| t.is_ident("bmst_obs")) {
            continue;
        }
        let path_is = |a: usize, ch: char| file.s(a).is_some_and(|t| t.is_punct(ch));
        if !(path_is(i + 1, ':') && path_is(i + 2, ':')) {
            continue;
        }
        let Some(fn_tok) = file.s(i + 3) else {
            continue;
        };
        let Some(kind) = EmissionKind::of(&fn_tok.text) else {
            continue;
        };
        if !path_is(i + 4, '(') {
            continue;
        }
        // Scan the first top-level argument: up to a `,` at call depth, or
        // the call's closing paren. Nested parens/brackets/braces (from
        // `format!`, `if`/`else` blocks) are traversed, and every string
        // literal inside is an emission name.
        let mut depth = 1i32;
        let mut k = i + 5;
        while depth > 0 {
            let Some(t) = file.s(k) else { break };
            match t.kind {
                TokenKind::Punct('(' | '[' | '{') => depth += 1,
                TokenKind::Punct(')' | ']' | '}') => depth -= 1,
                TokenKind::Punct(',') if depth == 1 => break,
                TokenKind::Str | TokenKind::RawStr => {
                    if let Some(name) = t.str_content() {
                        out.push(Emission {
                            path: file.path.clone(),
                            line: t.line,
                            kind,
                            name: name.to_owned(),
                        });
                    }
                }
                _ => {}
            }
            k += 1;
        }
    }
    out
}

/// The parsed `events.toml` registry: section → name → 1-based line.
#[derive(Debug, Default)]
pub struct EventsSchema {
    /// Registered names per section, with the line each was declared on.
    pub sections: BTreeMap<String, BTreeMap<String, usize>>,
}

/// A syntax problem in `events.toml`.
#[derive(Debug)]
pub struct SchemaError {
    /// 1-based line of the offending text.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl EventsSchema {
    /// Parses the TOML subset the registry uses: `[section]` headers,
    /// `"name" = "description"` entries (bare keys allowed), `#` comments
    /// and blank lines. Anything else is an error — the registry is a
    /// contract, not a config file.
    pub fn parse(text: &str) -> Result<Self, SchemaError> {
        let mut schema = EventsSchema::default();
        let mut current: Option<String> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            if let Some(inner) = trimmed.strip_prefix('[') {
                let Some(name) = inner.strip_suffix(']') else {
                    return Err(SchemaError {
                        line,
                        message: format!("malformed section header `{trimmed}`"),
                    });
                };
                let name = name.trim().to_owned();
                if schema.sections.contains_key(&name) {
                    return Err(SchemaError {
                        line,
                        message: format!("duplicate section `[{name}]`"),
                    });
                }
                schema.sections.insert(name.clone(), BTreeMap::new());
                current = Some(name);
                continue;
            }
            let Some((key, value)) = trimmed.split_once('=') else {
                return Err(SchemaError {
                    line,
                    message: format!("expected `\"name\" = \"description\"`, got `{trimmed}`"),
                });
            };
            let key = key.trim().trim_matches('"').to_owned();
            let value = value.trim();
            if key.is_empty()
                || !(value.starts_with('"') && value.ends_with('"') && value.len() >= 2)
            {
                return Err(SchemaError {
                    line,
                    message: format!("expected `\"name\" = \"description\"`, got `{trimmed}`"),
                });
            }
            let Some(section) = current.as_ref() else {
                return Err(SchemaError {
                    line,
                    message: format!("entry `{key}` appears before any [section] header"),
                });
            };
            if let Some(entries) = schema.sections.get_mut(section) {
                if entries.insert(key.clone(), line).is_some() {
                    return Err(SchemaError {
                        line,
                        message: format!("duplicate entry `{key}` in [{section}]"),
                    });
                }
            }
        }
        Ok(schema)
    }

    /// Whether `name` is registered under `section`.
    pub fn contains(&self, section: &str, name: &str) -> bool {
        self.sections
            .get(section)
            .is_some_and(|entries| entries.contains_key(name))
    }
}

/// Result of diffing live emissions against the registry.
#[derive(Debug, Default)]
pub struct SchemaDiff {
    /// Emissions whose name is not registered under the matching section.
    pub unknown: Vec<Emission>,
    /// Registered `(section, name, line)` entries nothing emits.
    pub dead: Vec<(String, String, usize)>,
}

impl SchemaDiff {
    /// True when the registry round-trips: zero unknown, zero dead.
    pub fn is_clean(&self) -> bool {
        self.unknown.is_empty() && self.dead.is_empty()
    }
}

/// Diffs `emissions` against `schema`, both directions.
pub fn diff(schema: &EventsSchema, emissions: &[Emission]) -> SchemaDiff {
    let mut out = SchemaDiff::default();
    for e in emissions {
        if !schema.contains(e.kind.section(), &e.name) {
            out.unknown.push(e.clone());
        }
    }
    for (section, entries) in &schema.sections {
        for (name, &line) in entries {
            let live = emissions
                .iter()
                .any(|e| e.kind.section() == section && &e.name == name);
            if !live {
                out.dead.push((section.clone(), name.clone(), line));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic
    use super::*;
    use std::path::Path;

    fn file(src: &str) -> SourceFile {
        SourceFile::new(PathBuf::from("test.rs"), "test".to_owned(), src)
    }

    #[test]
    fn simple_emissions_are_extracted() {
        let f = file(
            "fn f() {\n    bmst_obs::counter(\"a.b\", 1);\n    let _s = bmst_obs::span(\"sp\");\n}\n",
        );
        let ems = extract_emissions(&f);
        assert_eq!(ems.len(), 2);
        assert_eq!(ems[0].name, "a.b");
        assert_eq!(ems[0].kind, EmissionKind::Counter);
        assert_eq!(ems[1].name, "sp");
        assert_eq!(ems[1].kind, EmissionKind::Span);
    }

    #[test]
    fn conditional_names_yield_both_literals() {
        let f = file(
            "fn f(ok: bool) {\n    bmst_obs::counter(\n        if ok { \"x.accept\" } else { \"x.reject\" },\n        1,\n    );\n}\n",
        );
        let names: Vec<String> = extract_emissions(&f).into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["x.accept", "x.reject"]);
    }

    #[test]
    fn format_span_names_are_kept_verbatim() {
        let f =
            file("fn f(w: usize) {\n    let _s = bmst_obs::span_dyn(&format!(\"net.w{w}\"));\n}\n");
        let ems = extract_emissions(&f);
        assert_eq!(ems.len(), 1);
        assert_eq!(ems[0].name, "net.w{w}");
        assert_eq!(ems[0].kind, EmissionKind::Span);
    }

    #[test]
    fn second_argument_literals_are_not_names() {
        let f =
            file("fn f() {\n    bmst_obs::event(\"e.name\", &[(\"key\", field(\"val\"))]);\n}\n");
        let names: Vec<String> = extract_emissions(&f).into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["e.name"]);
    }

    #[test]
    fn unqualified_or_other_calls_are_ignored() {
        let f = file("fn f() {\n    counter(\"loose\", 1);\n    other::span(\"x\");\n    bmst_obs::install(r);\n}\n");
        assert!(extract_emissions(&f).is_empty());
    }

    #[test]
    fn emissions_in_comments_and_strings_are_ignored() {
        let f = file(
            "//! bmst_obs::counter(\"doc.example\", 1);\nfn f() {\n    let _s = \"bmst_obs::span(\\\"fake\\\")\";\n}\n",
        );
        assert!(extract_emissions(&f).is_empty());
    }

    #[test]
    fn schema_parses_and_diffs_both_directions() {
        let toml = "# registry\n[counters]\n\"a.b\" = \"things\"\n\"dead.one\" = \"unused\"\n\n[spans]\n\"sp\" = \"a span\"\n";
        let schema = EventsSchema::parse(toml).unwrap();
        assert!(schema.contains("counters", "a.b"));
        let ems = vec![
            Emission {
                path: Path::new("x.rs").to_owned(),
                line: 1,
                kind: EmissionKind::Counter,
                name: "a.b".into(),
            },
            Emission {
                path: Path::new("x.rs").to_owned(),
                line: 2,
                kind: EmissionKind::Counter,
                name: "new.one".into(),
            },
            Emission {
                path: Path::new("x.rs").to_owned(),
                line: 3,
                kind: EmissionKind::Span,
                name: "sp".into(),
            },
        ];
        let d = diff(&schema, &ems);
        assert_eq!(d.unknown.len(), 1);
        assert_eq!(d.unknown[0].name, "new.one");
        assert_eq!(d.dead, vec![("counters".into(), "dead.one".into(), 4)]);
        assert!(!d.is_clean());
    }

    #[test]
    fn kind_section_mismatch_is_unknown() {
        let toml = "[counters]\n\"x\" = \"c\"\n";
        let schema = EventsSchema::parse(toml).unwrap();
        let ems = vec![Emission {
            path: Path::new("x.rs").to_owned(),
            line: 1,
            kind: EmissionKind::Histogram,
            name: "x".into(),
        }];
        let d = diff(&schema, &ems);
        assert_eq!(d.unknown.len(), 1);
        assert_eq!(d.dead.len(), 1);
    }

    #[test]
    fn schema_rejects_malformed_lines() {
        assert!(EventsSchema::parse("\"orphan\" = \"x\"\n").is_err());
        assert!(EventsSchema::parse("[events\n").is_err());
        assert!(EventsSchema::parse("[events]\nnot a pair\n").is_err());
        assert!(EventsSchema::parse("[events]\n\"a\" = \"x\"\n\"a\" = \"y\"\n").is_err());
        assert!(EventsSchema::parse("[events]\n[events]\n").is_err());
    }
}
