//! Panic-reachability: the transitive set of fns that can reach a
//! panic site, propagated over the approximate call graph.
//!
//! A fn is a **local** panic source when its body contains `.unwrap()`,
//! `.expect(..)`, a panic-family macro (`panic!`, `assert!`, …), or a
//! bare index expression (`xs[i]` — release builds keep bounds checks).
//! Can-panic propagates caller-ward through call edges in a fixed point,
//! except across **isolation boundaries**: a fn whose body invokes
//! `catch_unwind` converts panics into values (the error-taxonomy rule
//! separately checks those map to `BmstError::Internal`), so nothing
//! propagates out of it.
//!
//! The enforced contract: every registry-facing builder in
//! [`crate::rules::PANIC_REACH_CRATES`] — a `pub` fn taking
//! `&ProblemContext`, or a `TreeBuilder` contract method
//! (`build`/`build_geometry`/`try_build`, which trait impls expose
//! publicly without a `pub` keyword) — must be panic-isolated or carry
//! a reasoned `// analyze: allow(panic-reach) — <reason>` waiver. The
//! conservative call graph means can-panic over-approximates; waivers
//! are the pressure valve and must state why the path is actually safe
//! (for raw `build` impls: registry consumers go through `try_build`).

use crate::callgraph::CallGraph;
use crate::items::ItemIndex;
use crate::lexer::TokenKind;
use crate::model::SourceFile;
use crate::rules::{Candidate, PANIC_REACH_CRATES};

/// Panic-family macros: anything that unwinds when its condition fails.
/// `debug_assert*` is compiled out of release builds and deliberately
/// excluded — the contract is about release behaviour.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Per-fn reachability facts, indexed parallel to [`ItemIndex::fns`].
#[derive(Debug)]
pub struct ReachInfo {
    /// Whether the fn can reach a panic (post fixed-point).
    pub can_panic: Vec<bool>,
    /// The local panic source, if the fn itself contains one.
    pub local: Vec<Option<String>>,
    /// Whether the fn is an isolation boundary (`catch_unwind` in body).
    pub boundary: Vec<bool>,
}

impl ReachInfo {
    /// Computes local sources, boundaries, and the can-panic fixed point.
    pub fn compute(index: &ItemIndex<'_>, graph: &CallGraph) -> Self {
        let n = index.fns.len();
        let mut local = Vec::with_capacity(n);
        let mut boundary = Vec::with_capacity(n);
        for id in 0..n {
            let file = index.file(id);
            let item = index.item(id);
            boundary.push(
                item.body
                    .clone()
                    .filter_map(|i| file.s(i))
                    .any(|t| t.is_ident("catch_unwind")),
            );
            local.push(local_panic_source(file, id, index));
        }
        let mut can_panic: Vec<bool> = (0..n)
            .map(|id| !boundary[id] && local[id].is_some())
            .collect();
        // Fixed point: propagate caller-ward until stable. Boundaries
        // absorb; everything else ORs its callees.
        let mut changed = true;
        while changed {
            changed = false;
            for id in 0..n {
                if can_panic[id] || boundary[id] {
                    continue;
                }
                if graph.callees_of(id).iter().any(|&c| can_panic[c]) {
                    can_panic[id] = true;
                    changed = true;
                }
            }
        }
        ReachInfo {
            can_panic,
            local,
            boundary,
        }
    }

    /// Reconstructs a witness path `f → g → … (source)` for diagnostics:
    /// follows can-panic callees until a local source is found.
    pub fn witness(&self, index: &ItemIndex<'_>, graph: &CallGraph, id: usize) -> String {
        let mut path = vec![index.fns[id].name.clone()];
        let mut cur = id;
        let mut seen = vec![id];
        for _ in 0..8 {
            if let Some(src) = &self.local[cur] {
                return format!("{} ({src})", path.join(" → "));
            }
            let Some(next) = graph
                .callees_of(cur)
                .into_iter()
                .find(|c| self.can_panic[*c] && !seen.contains(c))
            else {
                break;
            };
            path.push(index.fns[next].name.clone());
            seen.push(next);
            cur = next;
        }
        path.join(" → ")
    }
}

/// Scans a fn body for the first local panic source, returning a short
/// description of it.
fn local_panic_source(file: &SourceFile, id: usize, index: &ItemIndex<'_>) -> Option<String> {
    let item = index.item(id);
    for i in item.body.clone() {
        let t = file.s(i)?;
        if t.kind == TokenKind::Ident {
            let prev_dot = i > 0 && file.s(i - 1).is_some_and(|p| p.is_punct('.'));
            match t.ident_name() {
                "unwrap"
                    if prev_dot
                        && file.s(i + 1).is_some_and(|n| n.is_punct('('))
                        && file.s(i + 2).is_some_and(|n| n.is_punct(')')) =>
                {
                    return Some("`.unwrap()`".to_owned());
                }
                "expect" if prev_dot && file.s(i + 1).is_some_and(|n| n.is_punct('(')) => {
                    return Some("`.expect(..)`".to_owned());
                }
                name if PANIC_MACROS.contains(&name)
                    && file.s(i + 1).is_some_and(|n| n.is_punct('!')) =>
                {
                    return Some(format!("`{name}!`"));
                }
                _ => {}
            }
        }
        // Bare indexing: `[` whose previous significant token closes an
        // expression (identifier, `)`, or `]`). Attributes (`#[`), slice
        // types (`&[`), and array literals (`= [`) don't match.
        if t.is_punct('[') && i > 0 {
            let indexes = file.s(i - 1).is_some_and(|p| {
                p.kind == TokenKind::Ident && !p.is_ident("mut") && !p.is_ident("in")
                    || p.is_punct(')')
                    || p.is_punct(']')
            });
            if indexes {
                return Some("index expression".to_owned());
            }
        }
    }
    None
}

/// Trait-contract method names that are registry-facing even without a
/// `pub` keyword (trait impls inherit the trait's visibility). Shared
/// with the cancel-liveness pass, whose entry set starts from the same
/// builder surface.
pub(crate) const REGISTRY_METHODS: &[&str] = &["build", "build_geometry", "try_build"];

/// Emits panic-reach candidates: one per registry-facing builder that
/// can reach a panic, attached to its declaration line.
pub fn candidates(
    index: &ItemIndex<'_>,
    graph: &CallGraph,
    info: &ReachInfo,
) -> Vec<(usize, Candidate)> {
    let mut out = Vec::new();
    for id in 0..index.fns.len() {
        let f = &index.fns[id];
        let item = index.item(id);
        let registry_facing = item.is_pub || REGISTRY_METHODS.contains(&item.name.as_str());
        if !PANIC_REACH_CRATES.contains(&f.krate.as_str())
            || !registry_facing
            || item.in_test
            || item.body.is_empty()
            || !info.can_panic[id]
        {
            continue;
        }
        let file = index.file(id);
        let takes_context = item
            .params
            .clone()
            .filter_map(|j| file.s(j))
            .any(|t| t.is_ident("ProblemContext"));
        if !takes_context {
            continue;
        }
        let witness = info.witness(index, graph, id);
        out.push((
            f.file,
            Candidate {
                line: item.line,
                rule: "panic-reach",
                message: format!(
                    "public builder `{}` can reach a panic: {witness}; isolate it behind a \
                     `catch_unwind` boundary (try_build) or annotate with \
                     `// analyze: allow(panic-reach) — <reason>`",
                    f.name
                ),
            },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic
    use super::*;
    use std::path::PathBuf;

    fn file(krate: &str, path: &str, src: &str) -> SourceFile {
        SourceFile::new(PathBuf::from(path), krate.to_owned(), src)
    }

    fn analyse(files: &[SourceFile]) -> Vec<String> {
        let idx = ItemIndex::build(files);
        let g = CallGraph::build(&idx);
        let info = ReachInfo::compute(&idx, &g);
        candidates(&idx, &g, &info)
            .into_iter()
            .map(|(_, c)| c.message)
            .collect()
    }

    #[test]
    fn transitive_panic_reaches_public_builder() {
        let src = "pub fn build(cx: &ProblemContext) -> T { inner() }\n\
                   fn inner() -> T { deep() }\n\
                   fn deep() -> T { x.unwrap() }\n";
        let msgs = analyse(&[file("core", "crates/core/src/b.rs", src)]);
        assert_eq!(msgs.len(), 1);
        assert!(
            msgs[0].contains("build → inner → deep (`.unwrap()`)"),
            "{}",
            msgs[0]
        );
    }

    #[test]
    fn catch_unwind_boundary_absorbs_panics() {
        let src = "pub fn try_build(cx: &ProblemContext) -> R { catch_unwind(|| raw(cx)) }\n\
                   fn raw(cx: &ProblemContext) -> T { x.unwrap() }\n";
        assert!(analyse(&[file("core", "crates/core/src/b.rs", src)]).is_empty());
    }

    #[test]
    fn indexing_counts_assert_counts_debug_assert_does_not() {
        let idx_src = "pub fn a(cx: &ProblemContext) -> f64 { xs[0] }\n";
        assert_eq!(
            analyse(&[file("core", "crates/core/src/x.rs", idx_src)]).len(),
            1
        );
        let assert_src = "pub fn a(cx: &ProblemContext) { assert!(ok); }\n";
        assert_eq!(
            analyse(&[file("core", "crates/core/src/x.rs", assert_src)]).len(),
            1
        );
        let dbg_src = "pub fn a(cx: &ProblemContext) { debug_assert!(ok); }\n";
        assert!(analyse(&[file("core", "crates/core/src/x.rs", dbg_src)]).is_empty());
    }

    #[test]
    fn slice_types_and_attributes_are_not_indexing() {
        let src = "pub fn a(cx: &ProblemContext, xs: &[f64]) -> Vec<f64> { let v = [0.0; 4]; v.to_vec() }\n";
        assert!(analyse(&[file("core", "crates/core/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn non_context_and_private_fns_are_not_flagged() {
        let src = "pub fn helper(n: usize) -> usize { xs[n] }\n\
                   fn private(cx: &ProblemContext) { x.unwrap() }\n";
        assert!(analyse(&[file("core", "crates/core/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn trait_impl_build_methods_are_registry_facing() {
        // No `pub` keyword, but `build(&self, &ProblemContext)` is the
        // TreeBuilder contract: the impl is publicly reachable through
        // the trait object. The bodyless trait declaration is not.
        let src = "trait TreeBuilder { fn build(&self, cx: &ProblemContext<'_>) -> R; }\n\
                   impl TreeBuilder for Mst {\n\
                       fn build(&self, cx: &ProblemContext<'_>) -> R { xs[0] }\n\
                   }\n";
        let msgs = analyse(&[file("core", "crates/core/src/b.rs", src)]);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("`build`"));
    }

    #[test]
    fn out_of_scope_crates_are_ignored() {
        let src = "pub fn build(cx: &ProblemContext) { x.unwrap() }\n";
        assert!(analyse(&[file("geom", "crates/geom/src/x.rs", src)]).is_empty());
    }
}
