//! The nine workspace rules, re-hosted on token streams.
//!
//! Rules emit **candidates** — every site that matches, with no marker
//! filtering. The engine in `lib.rs` subtracts `// lint: allow` markers
//! afterwards and tracks which markers actually suppressed something, so
//! stale markers can be reported as violations themselves.

use crate::lexer::TokenKind;
use crate::model::SourceFile;
use crate::schema::EMISSION_FNS;

/// Library crates whose non-test code must be panic-free.
pub const PANIC_FREE_CRATES: &[&str] = &[
    "core",
    "tree",
    "graph",
    "geom",
    "steiner",
    "io",
    "instances",
    "router",
    "clock",
    "obs",
    "cli",
    "serve",
];

/// Crates whose raw float comparisons must go through `geom`'s tolerance
/// helpers. `geom` itself hosts those helpers and is exempt.
pub const FLOAT_EQ_CRATES: &[&str] = &[
    "core",
    "tree",
    "graph",
    "steiner",
    "io",
    "instances",
    "router",
    "clock",
    "obs",
    "serve",
];

/// Crates whose whole `pub` surface must carry doc comments.
pub const DOC_CRATES: &[&str] = &["core", "tree", "graph", "geom", "obs"];

/// Algorithm crates where `as usize` / `as f64` casts need justification.
pub const CAST_CRATES: &[&str] = &["core", "tree", "graph", "obs"];

/// Crates whose library sources must not print to stdout/stderr.
pub const PRINT_FREE_CRATES: &[&str] = &[
    "core",
    "tree",
    "graph",
    "geom",
    "steiner",
    "io",
    "instances",
    "router",
    "clock",
    "obs",
    "cli",
    "bench",
    "serve",
];

/// The byte-identical guarantee's hot paths (BKRUS §3.1 tie-breaking):
/// nondeterministic iteration order is a correctness bug class here.
/// `serve` rides along: its report cache must key and render requests
/// byte-identically for the bit-parity guarantee to hold.
pub const DETERMINISM_CRATES: &[&str] = &["core", "steiner", "router", "tree", "serve"];

/// Crates whose failures must stay inside the `BmstError` taxonomy.
pub const ERROR_TAXONOMY_CRATES: &[&str] = &["core", "steiner", "router", "serve"];

/// Crates whose obs emissions are extracted and diffed against
/// `crates/obs/events.toml` — everything except `obs` itself, which
/// defines the entry points.
pub const OBS_SCHEMA_CRATES: &[&str] = &[
    "core",
    "tree",
    "graph",
    "geom",
    "steiner",
    "io",
    "instances",
    "router",
    "clock",
    "cli",
    "bench",
    "serve",
];

/// Crates hosting thread-pooled paths (the parallel router, the serve
/// worker pool); shared-nothing only.
pub const CONCURRENCY_CRATES: &[&str] = &["router", "serve"];

/// Every crate the lint walks: the union of the per-rule scopes above.
pub const ALL_CRATES: &[&str] = &[
    "core",
    "tree",
    "graph",
    "geom",
    "steiner",
    "io",
    "instances",
    "router",
    "clock",
    "obs",
    "cli",
    "bench",
    "serve",
];

/// Every rule name an allow marker may reference.
pub const KNOWN_RULES: &[&str] = &[
    "no-panic",
    "float-eq",
    "doc-pub",
    "no-as-cast",
    "no-print",
    "determinism",
    "error-taxonomy",
    "obs-schema",
    "concurrency",
];

/// Crates whose hot paths carry `// analyze: complexity(...)` budgets:
/// the unbudgeted-quadratic check of the complexity pass runs here.
/// Budget declarations themselves are legal (and checked) in every crate.
pub const COMPLEXITY_CRATES: &[&str] = &["core", "steiner", "tree", "router", "serve"];

/// Crates whose `pub` ProblemContext entry points are checked for panic
/// reachability — the same surface the error-taxonomy rule covers.
pub const PANIC_REACH_CRATES: &[&str] = &["core", "steiner", "router", "serve"];

/// Crates whose entry-reachable instance loops must poll the
/// `CancelToken` (the cancel-liveness pass).
pub const CANCEL_CRATES: &[&str] = &["core", "steiner", "tree", "router", "serve"];

/// Crates whose mutex guards must not be held across blocking calls
/// (the blocking-discipline pass) — the thread-pooled service.
pub const BLOCKING_CRATES: &[&str] = &["serve"];

/// Every semantic-pass name an `// analyze: allow(...)` waiver may
/// reference.
pub const SEMANTIC_RULES: &[&str] = &[
    "panic-reach",
    "complexity",
    "cancel-liveness",
    "blocking-discipline",
];

/// Whether semantic pass `rule` is enforced at all for `file` — the
/// staleness scoping for `analyze:` waivers, mirroring
/// [`rule_in_scope`] for the `lint:` family.
pub fn semantic_rule_in_scope(file: &SourceFile, rule: &str) -> bool {
    let krate = file.crate_name.as_str();
    match rule {
        "panic-reach" => PANIC_REACH_CRATES.contains(&krate),
        // Budget declarations (and hence budget-check waivers) are legal
        // in every crate the engine walks.
        "complexity" => ALL_CRATES.contains(&krate),
        "cancel-liveness" => CANCEL_CRATES.contains(&krate),
        "blocking-discipline" => BLOCKING_CRATES.contains(&krate),
        _ => false,
    }
}

/// One matching site, before marker filtering.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// 1-based line of the match.
    pub line: usize,
    /// Rule name (one of [`KNOWN_RULES`]).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

/// Runs every rule whose crate scope covers `file` and returns the raw
/// candidate list (marker filtering happens in the engine).
pub fn candidates(file: &SourceFile) -> Vec<Candidate> {
    let krate = file.crate_name.as_str();
    let mut out = Vec::new();
    if PANIC_FREE_CRATES.contains(&krate) {
        no_panic(file, &mut out);
    }
    if FLOAT_EQ_CRATES.contains(&krate) {
        float_eq(file, &mut out);
    }
    if DOC_CRATES.contains(&krate) {
        doc_pub(file, &mut out);
    }
    if CAST_CRATES.contains(&krate) {
        as_cast(file, &mut out);
    }
    if PRINT_FREE_CRATES.contains(&krate) && !file.is_binary_source() {
        no_print(file, &mut out);
    }
    if DETERMINISM_CRATES.contains(&krate) {
        determinism(file, &mut out);
    }
    if ERROR_TAXONOMY_CRATES.contains(&krate) {
        error_taxonomy(file, &mut out);
    }
    if OBS_SCHEMA_CRATES.contains(&krate) {
        obs_imports(file, &mut out);
    }
    if CONCURRENCY_CRATES.contains(&krate) {
        concurrency(file, &mut out);
    }
    out
}

/// Whether `rule` is enforced at all for `file` — used by the engine to
/// decide whether an unused marker is stale (a marker for a rule that
/// never runs here suppresses nothing by construction, which is exactly
/// what stale means).
pub fn rule_in_scope(file: &SourceFile, rule: &str) -> bool {
    let krate = file.crate_name.as_str();
    match rule {
        "no-panic" => PANIC_FREE_CRATES.contains(&krate),
        "float-eq" => FLOAT_EQ_CRATES.contains(&krate),
        "doc-pub" => DOC_CRATES.contains(&krate),
        "no-as-cast" => CAST_CRATES.contains(&krate),
        "no-print" => PRINT_FREE_CRATES.contains(&krate) && !file.is_binary_source(),
        "determinism" => DETERMINISM_CRATES.contains(&krate),
        "error-taxonomy" => ERROR_TAXONOMY_CRATES.contains(&krate),
        "obs-schema" => OBS_SCHEMA_CRATES.contains(&krate),
        "concurrency" => CONCURRENCY_CRATES.contains(&krate),
        _ => false,
    }
}

/// Macros forbidden by `no-panic`.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn no_panic(file: &SourceFile, out: &mut Vec<Candidate>) {
    for i in 0..file.sig.len() {
        if file.sig_in_test(i) {
            continue;
        }
        let Some(t) = file.s(i) else { continue };
        if t.kind != TokenKind::Ident {
            continue;
        }
        let prev_dot = i > 0 && file.s(i - 1).is_some_and(|p| p.is_punct('.'));
        let shown = match t.ident_name() {
            "unwrap"
                if prev_dot
                    && file.s(i + 1).is_some_and(|n| n.is_punct('('))
                    && file.s(i + 2).is_some_and(|n| n.is_punct(')')) =>
            {
                ".unwrap()"
            }
            "expect" if prev_dot && file.s(i + 1).is_some_and(|n| n.is_punct('(')) => ".expect(..)",
            name if PANIC_MACROS.contains(&name)
                && file.s(i + 1).is_some_and(|n| n.is_punct('!'))
                && file
                    .s(i + 2)
                    .is_some_and(|n| matches!(n.kind, TokenKind::Punct('(' | '[' | '{'))) =>
            {
                match name {
                    "panic" => "panic!",
                    "unreachable" => "unreachable!",
                    "todo" => "todo!",
                    _ => "unimplemented!",
                }
            }
            _ => continue,
        };
        out.push(Candidate {
            line: t.line,
            rule: "no-panic",
            message: format!(
                "{shown} in non-test library code; propagate an error or annotate with \
                 `// lint: allow(no-panic) — <reason>`"
            ),
        });
    }
}

/// Float constants whose `f64::`/`f32::` paths count as float operands.
const FLOAT_CONSTS: &[&str] = &["INFINITY", "NEG_INFINITY", "NAN", "EPSILON"];

/// True when the significant token at `i` ends a float operand: a float
/// literal, or the constant ident of an `f64::CONST` path.
fn float_operand_ending_at(file: &SourceFile, i: usize) -> bool {
    let Some(t) = file.s(i) else { return false };
    if t.is_float_literal() {
        return true;
    }
    if t.kind == TokenKind::Ident && FLOAT_CONSTS.contains(&t.text.as_str()) {
        return i >= 3
            && file.s(i - 1).is_some_and(|p| p.is_punct(':'))
            && file.s(i - 2).is_some_and(|p| p.is_punct(':'))
            && file
                .s(i - 3)
                .is_some_and(|p| p.is_ident("f64") || p.is_ident("f32"));
    }
    false
}

/// True when a float operand starts at significant position `i` (an
/// optional unary minus, then a float literal or `f64::CONST` path).
fn float_operand_starting_at(file: &SourceFile, i: usize) -> bool {
    let i = if file.s(i).is_some_and(|t| t.is_punct('-')) {
        i + 1
    } else {
        i
    };
    let Some(t) = file.s(i) else { return false };
    if t.is_float_literal() {
        return true;
    }
    if t.is_ident("f64") || t.is_ident("f32") {
        return file.s(i + 1).is_some_and(|p| p.is_punct(':'))
            && file.s(i + 2).is_some_and(|p| p.is_punct(':'))
            && file.s(i + 3).is_some_and(|c| {
                c.kind == TokenKind::Ident && FLOAT_CONSTS.contains(&c.text.as_str())
            });
    }
    false
}

fn float_eq(file: &SourceFile, out: &mut Vec<Candidate>) {
    for i in 0..file.sig.len() {
        if file.sig_in_test(i) {
            continue;
        }
        let Some(t) = file.s(i) else { continue };
        let op = if t.is_punct('=')
            && file.s(i + 1).is_some_and(|n| n.is_punct('='))
            && file.contiguous(i, i + 1)
        {
            // Exclude `<=`, `>=`, `==` run-ons and `=` of a previous `==`.
            let prev_glued = i > 0
                && file.contiguous(i - 1, i)
                && file
                    .s(i - 1)
                    .is_some_and(|p| matches!(p.kind, TokenKind::Punct('<' | '>' | '=' | '!')));
            let next_glued =
                file.s(i + 2).is_some_and(|n| n.is_punct('=')) && file.contiguous(i + 1, i + 2);
            if prev_glued || next_glued {
                continue;
            }
            "=="
        } else if t.is_punct('!')
            && file.s(i + 1).is_some_and(|n| n.is_punct('='))
            && file.contiguous(i, i + 1)
        {
            let next_glued =
                file.s(i + 2).is_some_and(|n| n.is_punct('=')) && file.contiguous(i + 1, i + 2);
            if next_glued {
                continue;
            }
            "!="
        } else {
            continue;
        };
        let left = i > 0 && float_operand_ending_at(file, i - 1);
        let right = float_operand_starting_at(file, i + 2);
        if left || right {
            out.push(Candidate {
                line: t.line,
                rule: "float-eq",
                message: format!(
                    "raw float `{op}` comparison; use bmst-geom's tolerance helpers \
                     (approx_eq/le_tol) or annotate with `// lint: allow(float-eq) — <reason>`"
                ),
            });
        }
    }
}

/// Item keywords that require a doc comment when `pub`.
const DOC_ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "type", "const", "static", "mod", "union", "unsafe",
];

/// Keywords to hop over when looking for the item's name.
const ITEM_MODIFIERS: &[&str] = &[
    "fn", "struct", "enum", "trait", "type", "const", "static", "mod", "union", "unsafe", "async",
    "extern", "mut",
];

fn doc_pub(file: &SourceFile, out: &mut Vec<Candidate>) {
    for i in 0..file.sig.len() {
        if file.sig_in_test(i) {
            continue;
        }
        let Some(t) = file.s(i) else { continue };
        if !t.is_ident("pub") {
            continue;
        }
        let Some(next) = file.s(i + 1) else { continue };
        // `pub(crate)` / `pub(super)` are not public API; `pub use`
        // re-exports inherit the source item's docs.
        if next.is_punct('(') || next.is_ident("use") {
            continue;
        }
        if !(next.kind == TokenKind::Ident && DOC_ITEM_KEYWORDS.contains(&next.text.as_str())) {
            continue;
        }
        if is_documented(file, file.sig[i]) {
            continue;
        }
        // The item's name: first ident after the modifier keywords.
        let name = (i + 1..file.sig.len().min(i + 8))
            .filter_map(|j| file.s(j))
            .find(|t| t.kind == TokenKind::Ident && !ITEM_MODIFIERS.contains(&t.text.as_str()))
            .map_or_else(|| "<unnamed>".to_owned(), |t| t.text.clone());
        out.push(Candidate {
            line: t.line,
            rule: "doc-pub",
            message: format!("public item `{name}` lacks a doc comment"),
        });
    }
}

/// Walks raw tokens backwards from `raw_idx` over attributes and plain
/// comments; true when the nearest documentation-position token is a doc
/// comment (or a `#[doc...]` attribute).
fn is_documented(file: &SourceFile, raw_idx: usize) -> bool {
    let mut j = raw_idx;
    while j > 0 {
        j -= 1;
        let t = &file.tokens[j];
        match t.kind {
            TokenKind::LineComment => {
                if t.text.starts_with("///") {
                    return true;
                }
                // Plain `//` comments (markers among them) are transparent.
            }
            TokenKind::BlockComment => {
                if t.text.starts_with("/**") {
                    return true;
                }
            }
            TokenKind::Punct(']') => {
                // Skip an attribute `#[...]`, watching for `#[doc ...]`.
                let mut depth = 1i32;
                let mut saw_doc = false;
                while depth > 0 && j > 0 {
                    j -= 1;
                    match &file.tokens[j].kind {
                        TokenKind::Punct(']') => depth += 1,
                        TokenKind::Punct('[') => depth -= 1,
                        TokenKind::Ident if file.tokens[j].text == "doc" => saw_doc = true,
                        _ => {}
                    }
                }
                if saw_doc {
                    return true;
                }
                // Consume the attribute's `#`.
                if j > 0 && file.tokens[j - 1].is_punct('#') {
                    j -= 1;
                } else {
                    return false; // `]` that wasn't an attribute: give up
                }
            }
            _ => return false,
        }
    }
    false
}

fn as_cast(file: &SourceFile, out: &mut Vec<Candidate>) {
    for i in 0..file.sig.len() {
        if file.sig_in_test(i) {
            continue;
        }
        let Some(t) = file.s(i) else { continue };
        if !t.is_ident("as") {
            continue;
        }
        let Some(target) = file.s(i + 1) else {
            continue;
        };
        if target.is_ident("usize") || target.is_ident("f64") {
            out.push(Candidate {
                line: t.line,
                rule: "no-as-cast",
                message: format!(
                    "`as {}` cast in algorithm crate; use From/TryFrom/f64::from or annotate \
                     with `// lint: allow(no-as-cast) — <reason>`",
                    target.text
                ),
            });
        }
    }
}

/// Macros forbidden by `no-print`.
const PRINT_MACROS: &[&str] = &["println", "eprintln", "dbg"];

fn no_print(file: &SourceFile, out: &mut Vec<Candidate>) {
    for i in 0..file.sig.len() {
        if file.sig_in_test(i) {
            continue;
        }
        let Some(t) = file.s(i) else { continue };
        if !(t.kind == TokenKind::Ident && PRINT_MACROS.contains(&t.ident_name())) {
            continue;
        }
        if !file.s(i + 1).is_some_and(|n| n.is_punct('!')) {
            continue;
        }
        if i > 0 && file.s(i - 1).is_some_and(|p| p.is_punct(':')) {
            continue; // qualified path such as `std::println!`
        }
        out.push(Candidate {
            line: t.line,
            rule: "no-print",
            message: format!(
                "{}! in library code; return the text to the caller, record it through \
                 bmst-obs, or annotate with `// lint: allow(no-print) — <reason>`",
                t.text
            ),
        });
    }
}

/// Idents whose closure arguments indicate a float sort key.
const FLOAT_KEY_HINTS: &[&str] = &["partial_cmp", "total_cmp"];

fn determinism(file: &SourceFile, out: &mut Vec<Candidate>) {
    for i in 0..file.sig.len() {
        if file.sig_in_test(i) {
            continue;
        }
        let Some(t) = file.s(i) else { continue };
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            out.push(Candidate {
                line: t.line,
                rule: "determinism",
                message: format!(
                    "`{}` has nondeterministic iteration order, which breaks the byte-identical \
                     routing guarantee; use BTreeMap/BTreeSet or a sorted Vec, or annotate with \
                     `// lint: allow(determinism) — <reason>`",
                    t.text
                ),
            });
            continue;
        }
        let is_unstable_sort = (t.is_ident("sort_unstable_by")
            || t.is_ident("sort_unstable_by_key"))
            && i > 0
            && file.s(i - 1).is_some_and(|p| p.is_punct('.'))
            && file.s(i + 1).is_some_and(|n| n.is_punct('('));
        if !is_unstable_sort {
            continue;
        }
        // Scan the call's arguments for float-key evidence: a float
        // literal, `partial_cmp`/`total_cmp`, or an `f64`/`f32` ascription.
        let mut depth = 1i32;
        let mut k = i + 2;
        let mut float_key = false;
        while depth > 0 {
            let Some(a) = file.s(k) else { break };
            match a.kind {
                TokenKind::Punct('(') => depth += 1,
                TokenKind::Punct(')') => depth -= 1,
                TokenKind::Ident
                    if FLOAT_KEY_HINTS.contains(&a.text.as_str())
                        || a.text == "f64"
                        || a.text == "f32" =>
                {
                    float_key = true;
                }
                TokenKind::Number if a.is_float_literal() => float_key = true,
                _ => {}
            }
            k += 1;
        }
        if float_key {
            out.push(Candidate {
                line: t.line,
                rule: "determinism",
                message: format!(
                    "`{}` on float keys: unstable sorts reorder ties arbitrarily, breaking \
                     deterministic tie-breaking (BKRUS §3.1); use a stable sort with a total \
                     order, or annotate with `// lint: allow(determinism) — <reason>`",
                    t.text
                ),
            });
        }
    }
}

fn error_taxonomy(file: &SourceFile, out: &mut Vec<Candidate>) {
    for i in 0..file.sig.len() {
        if file.sig_in_test(i) {
            continue;
        }
        let Some(t) = file.s(i) else { continue };
        if t.is_ident("catch_unwind") {
            // The enclosing function must route the caught panic into
            // `BmstError::Internal` (via the variant or the `internal`
            // constructor) somewhere after the call.
            let flows = file.enclosing_fn(i).is_some_and(|f| {
                (i..f.body.end).any(|j| {
                    file.s(j)
                        .is_some_and(|x| x.is_ident("Internal") || x.is_ident("internal"))
                })
            });
            if !flows {
                out.push(Candidate {
                    line: t.line,
                    rule: "error-taxonomy",
                    message: "catch_unwind whose result does not flow into BmstError::Internal \
                              in the same function; map the caught panic into the taxonomy or \
                              annotate with `// lint: allow(error-taxonomy) — <reason>`"
                        .to_owned(),
                });
            }
        } else if t.is_ident("unwrap_or_default")
            && i > 0
            && file.s(i - 1).is_some_and(|p| p.is_punct('.'))
        {
            out.push(Candidate {
                line: t.line,
                rule: "error-taxonomy",
                message: ".unwrap_or_default() silently discards the error taxonomy on Result; \
                          match on the error (or, for a genuine Option, annotate with \
                          `// lint: allow(error-taxonomy) — <reason>`)"
                    .to_owned(),
            });
        }
    }
    for f in &file.fns {
        if !f.is_pub || f.in_test {
            continue;
        }
        let takes_context = f
            .params
            .clone()
            .any(|j| file.s(j).is_some_and(|t| t.is_ident("ProblemContext")));
        if !takes_context {
            continue;
        }
        let ret_ok = f
            .ret
            .clone()
            .any(|j| file.s(j).is_some_and(|t| t.is_ident("Result")))
            && f.ret
                .clone()
                .any(|j| file.s(j).is_some_and(|t| t.is_ident("BmstError")));
        if !ret_ok {
            out.push(Candidate {
                line: f.line,
                rule: "error-taxonomy",
                message: format!(
                    "public builder entry point `{}` takes a ProblemContext but does not \
                     return Result<_, BmstError>; every public construction path must surface \
                     the taxonomy",
                    f.name
                ),
            });
        }
    }
}

fn obs_imports(file: &SourceFile, out: &mut Vec<Candidate>) {
    for i in 0..file.sig.len() {
        let Some(t) = file.s(i) else { continue };
        if !t.is_ident("use") {
            continue;
        }
        // Collect the import tree's tokens up to the terminating `;`.
        let mut k = i + 1;
        let mut toks: Vec<usize> = Vec::new();
        while let Some(x) = file.s(k) {
            if x.is_punct(';') {
                break;
            }
            toks.push(k);
            k += 1;
        }
        let mentions_obs = toks
            .iter()
            .any(|&j| file.s(j).is_some_and(|x| x.is_ident("bmst_obs")));
        if !mentions_obs {
            continue;
        }
        let leaked = toks.iter().find_map(|&j| {
            file.s(j).and_then(|x| match x.kind {
                TokenKind::Ident if EMISSION_FNS.contains(&x.text.as_str()) => Some(x.text.clone()),
                TokenKind::Punct('*') => Some("*".to_owned()),
                _ => None,
            })
        });
        if let Some(name) = leaked {
            out.push(Candidate {
                line: t.line,
                rule: "obs-schema",
                message: format!(
                    "`use bmst_obs::{name}` imports an emission entry point unqualified, which \
                     hides event names from the schema extractor; call it as \
                     `bmst_obs::{}(...)` instead",
                    if name == "*" { "<fn>" } else { name.as_str() }
                ),
            });
        }
    }
}

fn concurrency(file: &SourceFile, out: &mut Vec<Candidate>) {
    let mut defines_route_algorithm = None;
    let mut has_assertion = false;
    for i in 0..file.sig.len() {
        let Some(t) = file.s(i) else { continue };
        if t.is_ident("assert_send_sync") {
            has_assertion = true;
        }
        if t.is_ident("struct") && file.s(i + 1).is_some_and(|n| n.is_ident("RouteAlgorithm")) {
            defines_route_algorithm = Some(t.line);
        }
        if file.sig_in_test(i) {
            continue;
        }
        if t.is_ident("static") && file.s(i + 1).is_some_and(|n| n.is_ident("mut")) {
            out.push(Candidate {
                line: t.line,
                rule: "concurrency",
                message: "`static mut` in the parallel routing crate; use atomics or \
                          message passing, or annotate with \
                          `// lint: allow(concurrency) — <reason>`"
                    .to_owned(),
            });
        } else if t.is_ident("Rc") || t.is_ident("RefCell") {
            out.push(Candidate {
                line: t.line,
                rule: "concurrency",
                message: format!(
                    "`{}` is not Send/Sync and must not appear in the parallel routing crate; \
                     use Arc/Mutex or restructure, or annotate with \
                     `// lint: allow(concurrency) — <reason>`",
                    t.text
                ),
            });
        } else if t.is_ident("thread_local") && file.s(i + 1).is_some_and(|n| n.is_punct('!')) {
            out.push(Candidate {
                line: t.line,
                rule: "concurrency",
                message: "`thread_local!` state breaks the shared-nothing parallel routing \
                          design; pass state explicitly, or annotate with \
                          `// lint: allow(concurrency) — <reason>`"
                    .to_owned(),
            });
        }
    }
    if let Some(line) = defines_route_algorithm {
        if !has_assertion {
            out.push(Candidate {
                line,
                rule: "concurrency",
                message: "`RouteAlgorithm` is defined without compile-time Send/Sync assertion \
                          stubs (`assert_send_sync::<RouteAlgorithm>()`); add the const \
                          assertion so a non-Send field is a compile error"
                    .to_owned(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic
    use super::*;
    use std::path::PathBuf;

    fn candidates_in(krate: &str, src: &str) -> Vec<Candidate> {
        let f = SourceFile::new(PathBuf::from("lib.rs"), krate.to_owned(), src);
        candidates(&f)
    }

    fn rules_of(cands: &[Candidate]) -> Vec<&'static str> {
        cands.iter().map(|c| c.rule).collect()
    }

    #[test]
    fn no_panic_catches_split_macro_and_skips_doc_examples() {
        // `panic!` with its argument list on the following line.
        let v = candidates_in(
            "core",
            "fn f() {\n    panic!(\n        \"boom\"\n    );\n}\n",
        );
        assert_eq!(rules_of(&v), ["no-panic"]);
        assert_eq!(v[0].line, 2);
        // The same text inside a doc-comment example must not fire.
        let v = candidates_in(
            "core",
            "/// ```\n/// x.unwrap();\n/// panic!(\"no\");\n/// ```\nfn f() {}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn no_panic_ignores_strings_and_unwrap_or() {
        let v = candidates_in(
            "core",
            "fn f(x: Option<u8>) -> u8 {\n    let _m = \"panic!(no) .unwrap()\";\n    x.unwrap_or(0)\n}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn float_eq_on_literals_and_consts_only() {
        assert_eq!(
            rules_of(&candidates_in(
                "core",
                "fn f(x: f64) -> bool { x == 0.0 }\n"
            )),
            ["float-eq"]
        );
        assert_eq!(
            rules_of(&candidates_in(
                "core",
                "fn f(x: f64) -> bool { x != f64::INFINITY }\n"
            )),
            ["float-eq"]
        );
        assert_eq!(
            rules_of(&candidates_in(
                "core",
                "fn f(x: f64) -> bool { -1e-9 == x }\n"
            )),
            ["float-eq"]
        );
        assert!(candidates_in("core", "fn f(n: usize) -> bool { n == 0 }\n").is_empty());
        assert!(candidates_in("core", "fn f(n: usize) { for _ in 0..n {} }\n").is_empty());
        assert!(candidates_in("core", "fn f(x: f64, y: f64) -> bool { x <= y }\n").is_empty());
    }

    #[test]
    fn doc_pub_sees_through_attributes_and_plain_comments() {
        let src = "/// Documented.\n#[derive(Debug)]\npub struct A;\n\npub struct B;\n";
        let v = candidates_in("tree", src);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains('B'));
        // A plain comment between the doc and the item stays transparent.
        let src = "/// Doc.\n// plain note\npub fn c() {}\n";
        assert!(candidates_in("tree", src).is_empty());
    }

    #[test]
    fn doc_pub_exempts_restricted_and_use() {
        let src = "pub(crate) fn a() {}\npub use other::Thing;\n";
        assert!(candidates_in("tree", src).is_empty());
    }

    #[test]
    fn as_cast_flags_only_target_types() {
        assert_eq!(
            rules_of(&candidates_in(
                "tree",
                "fn f(n: u32) -> usize { n as usize }\n"
            )),
            ["no-as-cast"]
        );
        assert!(candidates_in("tree", "fn f(n: u32) -> u64 { u64::from(n) }\n").is_empty());
        assert!(candidates_in("tree", "fn f(n: u8) -> u32 { n as u32 }\n").is_empty());
    }

    #[test]
    fn no_print_flags_macros_not_writeln() {
        assert_eq!(
            rules_of(&candidates_in("io", "fn f() { println!(\"x\"); }\n")),
            ["no-print"]
        );
        assert!(candidates_in(
            "io",
            "fn f(w: &mut String) { let _ = writeln!(w, \"x\"); }\n"
        )
        .is_empty());
    }

    #[test]
    fn determinism_flags_hash_collections_in_scope_only() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(rules_of(&candidates_in("steiner", src)), ["determinism"]);
        // `instances` is outside the determinism scope.
        assert!(candidates_in("instances", src).is_empty());
    }

    #[test]
    fn determinism_flags_unstable_float_sorts_only() {
        let float_sort = "fn f(v: &mut Vec<(f64, usize)>) {\n    v.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));\n}\n";
        let v = candidates_in("core", float_sort);
        assert!(rules_of(&v).contains(&"determinism"), "got {v:?}");
        // Integer unstable sorts are fine.
        assert!(
            candidates_in("core", "fn f(v: &mut Vec<usize>) { v.sort_unstable(); }\n").is_empty()
        );
        assert!(candidates_in(
            "core",
            "fn f(v: &mut Vec<usize>) { v.sort_unstable_by(|a, b| b.cmp(a)); }\n"
        )
        .is_empty());
    }

    #[test]
    fn error_taxonomy_catch_unwind_must_reach_internal() {
        let bad = "fn f() -> Option<u8> {\n    std::panic::catch_unwind(|| 1u8).ok()\n}\n";
        assert_eq!(rules_of(&candidates_in("core", bad)), ["error-taxonomy"]);
        let good = "fn f() -> Result<u8, BmstError> {\n    std::panic::catch_unwind(|| 1u8).map_err(|_| BmstError::internal(\"boom\"))\n}\n";
        assert!(candidates_in("core", good).is_empty());
    }

    #[test]
    fn error_taxonomy_flags_unwrap_or_default() {
        let src = "fn f(r: Result<u8, E>) -> u8 { r.unwrap_or_default() }\n";
        assert_eq!(rules_of(&candidates_in("router", src)), ["error-taxonomy"]);
    }

    #[test]
    fn error_taxonomy_public_builders_return_taxonomy_results() {
        let bad = "pub fn build(cx: &ProblemContext<'_>) -> Tree { go(cx) }\n";
        assert_eq!(rules_of(&candidates_in("steiner", bad)), ["error-taxonomy"]);
        let good = "pub fn build(cx: &ProblemContext<'_>) -> Result<Tree, BmstError> { go(cx) }\n";
        assert!(candidates_in("steiner", good).is_empty());
        // Restricted visibility is not a public entry point.
        let restricted = "pub(crate) fn helper(cx: &ProblemContext<'_>) -> Tree { go(cx) }\n";
        assert!(candidates_in("steiner", restricted).is_empty());
    }

    #[test]
    fn obs_imports_of_emission_fns_are_flagged() {
        let bad = "use bmst_obs::counter;\n";
        assert_eq!(rules_of(&candidates_in("core", bad)), ["obs-schema"]);
        let glob = "use bmst_obs::*;\n";
        assert_eq!(rules_of(&candidates_in("core", glob)), ["obs-schema"]);
        let fine = "use bmst_obs::{Field, SummaryRecorder};\n";
        assert!(candidates_in("core", fine).is_empty());
        let other_crate = "use std::iter::*;\n";
        assert!(candidates_in("core", other_crate).is_empty());
    }

    #[test]
    fn concurrency_forbids_shared_mutable_state() {
        assert_eq!(
            rules_of(&candidates_in("router", "static mut COUNT: usize = 0;\n")),
            ["concurrency"]
        );
        assert_eq!(
            rules_of(&candidates_in(
                "router",
                "use std::rc::Rc;\nfn f(x: Rc<u8>) {}\n"
            )),
            ["concurrency", "concurrency"]
        );
        assert_eq!(
            rules_of(&candidates_in(
                "router",
                "thread_local! { static X: u8 = 0; }\n"
            )),
            ["concurrency"]
        );
        // `core` is outside the concurrency scope.
        assert!(candidates_in("core", "use std::rc::Rc;\n").is_empty());
    }

    #[test]
    fn concurrency_requires_send_sync_assertions_next_to_route_algorithm() {
        let bare = "pub struct RouteAlgorithm { inner: usize }\n";
        let v = candidates_in("router", bare);
        assert_eq!(rules_of(&v), ["concurrency"]);
        assert!(v[0].message.contains("assert_send_sync"));
        let asserted = "pub struct RouteAlgorithm { inner: usize }\nconst _: () = {\n    const fn assert_send_sync<T: Send + Sync>() {}\n    assert_send_sync::<RouteAlgorithm>();\n};\n";
        assert!(candidates_in("router", asserted).is_empty());
    }
}
