//! The workspace item index: every `fn` item qualified by crate and
//! module path, plus per-file `use`-import tracking.
//!
//! This is the name-resolution substrate for the approximate call graph
//! ([`crate::callgraph`]). It is deliberately not a compiler: module
//! paths come from file layout (`crates/<crate>/src/<mods...>/file.rs`),
//! imports from a token-level walk of `use` trees, and nothing here
//! understands type inference. The passes built on top are written so
//! that this approximation errs conservative (see DESIGN.md §5f).

use std::collections::BTreeMap;
use std::path::Path;

use crate::model::{FnItem, SourceFile};

/// One `fn` item, qualified by where it lives.
#[derive(Debug, Clone)]
pub struct IndexedFn {
    /// Index of the owning file in the index's file slice.
    pub file: usize,
    /// Index into that file's [`SourceFile::fns`].
    pub item: usize,
    /// The owning crate's directory name (`core`, `steiner`, …).
    pub krate: String,
    /// Module path inside the crate, derived from the file layout
    /// (empty for the crate root).
    pub module: Vec<String>,
    /// The function's name.
    pub name: String,
}

impl IndexedFn {
    /// The display-qualified name, `crate::module::name`.
    pub fn qualified(&self) -> String {
        let mut parts = vec![self.krate.as_str()];
        parts.extend(self.module.iter().map(String::as_str));
        parts.push(self.name.as_str());
        parts.join("::")
    }
}

/// The workspace item index.
#[derive(Debug)]
pub struct ItemIndex<'a> {
    /// The files the index was built over.
    pub files: &'a [SourceFile],
    /// Every indexed `fn`, in file order.
    pub fns: Vec<IndexedFn>,
    /// Name → indices into [`ItemIndex::fns`].
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Per file: indices of the fns it hosts.
    pub fns_by_file: Vec<Vec<usize>>,
    /// Per file: imported leaf name → absolute path segments
    /// (`[crate, mods…, leaf]`), from its `use` trees.
    pub imports: Vec<BTreeMap<String, Vec<String>>>,
}

/// Intra-workspace dependencies per crate, mirroring the `Cargo.toml`
/// graph. Conservative method-call resolution is pruned to crates the
/// caller can actually reach, which keeps false call edges from flowing
/// against the dependency direction.
pub fn crate_deps(krate: &str) -> &'static [&'static str] {
    match krate {
        "graph" | "instances" => &["geom"],
        "tree" => &["geom", "obs", "graph"],
        "core" => &["geom", "obs", "graph", "tree"],
        "steiner" => &["geom", "graph", "tree", "core", "obs"],
        "io" => &["geom", "graph", "tree", "core"],
        "router" => &["geom", "graph", "tree", "core", "steiner", "obs"],
        "serve" => &["geom", "graph", "tree", "core", "steiner", "router", "obs"],
        "clock" => &["geom", "graph", "tree", "core"],
        "cli" => &[
            "geom",
            "obs",
            "graph",
            "tree",
            "core",
            "steiner",
            "instances",
            "io",
            "router",
            "clock",
        ],
        "bench" => &[
            "geom",
            "obs",
            "graph",
            "tree",
            "core",
            "steiner",
            "instances",
            "clock",
            "router",
        ],
        _ => &[],
    }
}

/// Derives the module path of a source file from its location under the
/// crate's `src/` directory. `lib.rs`, `main.rs`, and `mod.rs` name their
/// parent module; anything outside a `src/` directory (fixtures, tests)
/// is treated as a crate root.
pub fn module_path(path: &Path) -> Vec<String> {
    let mut comps: Vec<&str> = Vec::new();
    let mut seen_src = false;
    for c in path.components() {
        let name = c.as_os_str().to_str().unwrap_or("");
        if seen_src {
            comps.push(name);
        } else if name == "src" {
            seen_src = true;
        }
    }
    let mut out: Vec<String> = Vec::new();
    for (i, comp) in comps.iter().enumerate() {
        let last = i + 1 == comps.len();
        let seg = if last {
            comp.strip_suffix(".rs").unwrap_or(comp)
        } else {
            comp
        };
        if last && matches!(seg, "lib" | "main" | "mod") {
            continue;
        }
        out.push(seg.to_owned());
    }
    out
}

/// True when the `fn` item takes a `self` receiver (it can be the target
/// of a `.method()` call).
pub fn takes_self(file: &SourceFile, f: &FnItem) -> bool {
    f.params
        .clone()
        .take(3)
        .filter_map(|j| file.s(j))
        .any(|t| t.is_ident("self"))
}

impl<'a> ItemIndex<'a> {
    /// Indexes every `fn` item and `use` tree across `files`.
    pub fn build(files: &'a [SourceFile]) -> Self {
        let mut fns = Vec::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut fns_by_file = Vec::with_capacity(files.len());
        let mut imports = Vec::with_capacity(files.len());
        for (fi, file) in files.iter().enumerate() {
            let module = module_path(&file.path);
            let mut here = Vec::new();
            for (ii, item) in file.fns.iter().enumerate() {
                let id = fns.len();
                by_name.entry(item.name.clone()).or_default().push(id);
                here.push(id);
                fns.push(IndexedFn {
                    file: fi,
                    item: ii,
                    krate: file.crate_name.clone(),
                    module: module.clone(),
                    name: item.name.clone(),
                });
            }
            fns_by_file.push(here);
            imports.push(collect_imports(file, &module));
        }
        ItemIndex {
            files,
            fns,
            by_name,
            fns_by_file,
            imports,
        }
    }

    /// The `FnItem` behind an indexed fn.
    pub fn item(&self, id: usize) -> &FnItem {
        let f = &self.fns[id];
        &self.files[f.file].fns[f.item]
    }

    /// The `SourceFile` hosting an indexed fn.
    pub fn file(&self, id: usize) -> &SourceFile {
        &self.files[self.fns[id].file]
    }

    /// Fns named `name` visible from crate `krate`: the crate itself plus
    /// its workspace dependencies. The conservative pool for method-call
    /// resolution; restricted to fns taking `self`.
    pub fn methods_visible_from(&self, krate: &str, name: &str) -> Vec<usize> {
        let deps = crate_deps(krate);
        self.by_name
            .get(name)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|&id| {
                        let f = &self.fns[id];
                        (f.krate == krate || deps.contains(&f.krate.as_str()))
                            && takes_self(self.file(id), self.item(id))
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Resolves an absolute path (`[crate, mods…, name]`) to fn ids: the
    /// crate must match and the path's intermediate modules must be a
    /// suffix of the fn's module path (re-exports flatten modules, so an
    /// exact match would miss `pub use`d items).
    pub fn resolve_path(&self, segments: &[String]) -> Vec<usize> {
        let Some((name, head)) = segments.split_last() else {
            return Vec::new();
        };
        let Some((krate, mods)) = head.split_first() else {
            return Vec::new();
        };
        self.by_name
            .get(name)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|&id| {
                        let f = &self.fns[id];
                        f.krate == *krate
                            && (mods.is_empty()
                                || (f.module.len() >= mods.len()
                                    && f.module[f.module.len() - mods.len()..] == *mods))
                    })
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// Maps a `use`-path head segment to absolute form: `bmst_core` → the
/// `core` crate, `crate`/`self`/`super` → relative to (`krate`,
/// `module`). Returns the absolute prefix, or `None` for external crates
/// (`std`, `rand`, …) whose items can never resolve into the index.
fn absolute_head(head: &str, krate: &str, module: &[String]) -> Option<Vec<String>> {
    if let Some(rest) = head.strip_prefix("bmst_") {
        return Some(vec![rest.to_owned()]);
    }
    match head {
        "crate" => Some(vec![krate.to_owned()]),
        "self" => {
            let mut v = vec![krate.to_owned()];
            v.extend(module.iter().cloned());
            Some(v)
        }
        "super" => {
            let mut v = vec![krate.to_owned()];
            v.extend(module.iter().take(module.len().saturating_sub(1)).cloned());
            Some(v)
        }
        _ => None,
    }
}

/// Walks every `use` tree in `file`, producing leaf name → absolute path
/// segments. Globs are skipped (nothing to name); `as` renames map the
/// alias. External-crate imports are dropped — they cannot point into
/// the workspace index.
fn collect_imports(file: &SourceFile, module: &[String]) -> BTreeMap<String, Vec<String>> {
    let mut out = BTreeMap::new();
    let mut i = 0usize;
    while i < file.sig.len() {
        let Some(t) = file.s(i) else { break };
        if !t.is_ident("use") {
            i += 1;
            continue;
        }
        let mut pos = i + 1;
        use_tree(file, &mut pos, &[], &mut out, &file.crate_name, module, 0);
        i = pos.max(i + 1);
    }
    out
}

/// Recursive-descent over one `use` tree level. `prefix` holds the
/// absolute segments accumulated so far (empty at the top level, where
/// the head segment still needs [`absolute_head`] mapping).
#[allow(clippy::too_many_arguments)] // internal walker, not API
fn use_tree(
    file: &SourceFile,
    pos: &mut usize,
    prefix: &[String],
    out: &mut BTreeMap<String, Vec<String>>,
    krate: &str,
    module: &[String],
    depth: u32,
) {
    let mut segs: Vec<String> = prefix.to_vec();
    let mut head_mapped = !prefix.is_empty();
    let mut dead = false; // external-crate path: keep parsing, record nothing
    loop {
        let Some(t) = file.s(*pos) else { return };
        if t.is_punct(';') || t.is_punct(',') || t.is_punct('}') {
            // Leaf without rename: the last segment names itself.
            if !dead && !segs.is_empty() && segs.len() > prefix.len() {
                if let Some(name) = segs.last() {
                    out.insert(name.clone(), segs.clone());
                }
            }
            if t.is_punct(',') {
                *pos += 1;
                // Continue with siblings at this level (caller's loop).
                if depth > 0 {
                    use_tree(file, pos, prefix, out, krate, module, depth);
                }
                return;
            }
            if t.is_punct('}') || t.is_punct(';') {
                *pos += 1;
            }
            return;
        }
        if t.is_punct('{') {
            *pos += 1;
            use_tree(file, pos, &segs, out, krate, module, depth + 1);
            // use_tree consumed through the matching `}`/`;`.
            return;
        }
        if t.is_punct('*') {
            dead = true;
            *pos += 1;
            continue;
        }
        if t.is_ident("as") {
            *pos += 1;
            if let Some(alias) = file.s(*pos) {
                if !dead && !segs.is_empty() {
                    out.insert(alias.ident_name().to_owned(), segs.clone());
                }
                *pos += 1;
            }
            continue;
        }
        if t.is_punct(':') {
            *pos += 1;
            continue;
        }
        // A path segment.
        let seg = t.ident_name().to_owned();
        if !head_mapped {
            head_mapped = true;
            match absolute_head(&seg, krate, module) {
                Some(abs) => segs = abs,
                None => {
                    dead = true;
                    segs.push(seg);
                }
            }
        } else {
            segs.push(seg);
        }
        *pos += 1;
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic
    use super::*;
    use std::path::PathBuf;

    fn file(krate: &str, path: &str, src: &str) -> SourceFile {
        SourceFile::new(PathBuf::from(path), krate.to_owned(), src)
    }

    #[test]
    fn module_paths_from_layout() {
        let p = |s: &str| module_path(Path::new(s));
        assert!(p("crates/core/src/lib.rs").is_empty());
        assert_eq!(p("crates/core/src/context.rs"), ["context"]);
        assert_eq!(p("crates/core/src/bkrus/mod.rs"), ["bkrus"]);
        assert_eq!(p("crates/core/src/bkrus/forest.rs"), ["bkrus", "forest"]);
        assert_eq!(p("crates/bench/src/bin/t2.rs"), ["bin", "t2"]);
        assert!(p("tests/fixtures/reach_violating.rs").is_empty());
    }

    #[test]
    fn index_qualifies_and_groups_by_name() {
        let files = vec![
            file("core", "crates/core/src/lib.rs", "pub fn go() {}\n"),
            file(
                "core",
                "crates/core/src/util.rs",
                "pub fn go() {}\nfn helper(&self) {}\n",
            ),
        ];
        let idx = ItemIndex::build(&files);
        assert_eq!(idx.fns.len(), 3);
        assert_eq!(idx.by_name["go"].len(), 2);
        assert_eq!(idx.fns[idx.by_name["go"][1]].qualified(), "core::util::go");
        assert_eq!(idx.resolve_path(&seg(&["core", "util", "go"])).len(), 1);
        assert_eq!(idx.resolve_path(&seg(&["core", "go"])).len(), 2);
        assert_eq!(idx.resolve_path(&seg(&["tree", "go"])).len(), 0);
    }

    fn seg(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn imports_map_leaves_to_absolute_paths() {
        let src = "use bmst_graph::{complete_edges, sort::sort_edges};\n\
                   use crate::context::ProblemContext as Cx;\n\
                   use std::collections::BTreeMap;\n\
                   use bmst_geom::*;\n";
        let files = vec![file("core", "crates/core/src/bkrus.rs", src)];
        let idx = ItemIndex::build(&files);
        let imp = &idx.imports[0];
        assert_eq!(imp["complete_edges"], seg(&["graph", "complete_edges"]));
        assert_eq!(imp["sort_edges"], seg(&["graph", "sort", "sort_edges"]));
        assert_eq!(imp["Cx"], seg(&["core", "context", "ProblemContext"]));
        assert!(!imp.contains_key("BTreeMap"), "external imports dropped");
        assert!(!imp.contains_key("*"));
    }

    #[test]
    fn method_pool_respects_self_and_deps() {
        let files = vec![
            file(
                "tree",
                "crates/tree/src/lib.rs",
                "pub fn cost(&self) -> f64 { 0.0 }\n",
            ),
            file(
                "router",
                "crates/router/src/lib.rs",
                "pub fn cost(x: f64) -> f64 { x }\n",
            ),
        ];
        let idx = ItemIndex::build(&files);
        // From core, tree is a dep: the self-taking `cost` is visible.
        assert_eq!(idx.methods_visible_from("core", "cost").len(), 1);
        // The router free fn lacks self and router is not a core dep.
        assert_eq!(
            idx.methods_visible_from("core", "cost"),
            idx.methods_visible_from("tree", "cost")
        );
        // From geom (no deps), nothing named `cost` is visible.
        assert!(idx.methods_visible_from("geom", "cost").is_empty());
    }
}
