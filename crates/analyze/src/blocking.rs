//! Blocking-discipline for the routing service: no `Mutex` guard held
//! across a blocking operation — channel send/recv, stream writes, or
//! `catch_unwind` boundaries.
//!
//! The failure class is the one `serve`'s soak test can only sample: a
//! worker holding the shared receiver (or stats/cache) lock while it
//! blocks on I/O or a channel serialises every other worker behind an
//! operation of unbounded latency, and under panic recovery the same
//! shape deadlocks outright. The pass proves the absence of the shape
//! token-level, per file, no call graph needed — same
//! candidates-then-filter contract as the token rules, scoped to
//! [`crate::rules::BLOCKING_CRATES`].
//!
//! **Guard scopes** follow Rust's temporary-scope rules, which is where
//! the bugs hide:
//!
//! * a **let-bound** guard (`let g = lock_recover(&m);`) lives to the
//!   end of the enclosing block, shortened by an explicit `drop(g)`;
//! * a **chained temporary** (`lock_recover(&m).recv()`) lives to the
//!   end of the enclosing *statement* — so the `recv` happens with the
//!   lock held, the classic accidental form;
//! * an **`if let`/`while let`/`match` scrutinee** temporary lives for
//!   the whole expression, success *and* failure arms included;
//! * a **`for` iterator** temporary lives for the whole loop;
//! * a plain-`if`/`while` condition temporary drops *before* the block
//!   runs — only blocking calls inside the condition itself count.
//!
//! Any [`BLOCKING_CALLS`] name invoked inside a guard's scope is a
//! violation, attached to the blocking call's line and waivable there
//! via `// analyze: allow(blocking-discipline) — <reason>`. The pass
//! does not track guards across fn boundaries (a returned guard is out
//! of scope here) and errs conservative inside a scope: a blocking name
//! on a non-blocking type still flags and takes a waiver.

use crate::lexer::TokenKind;
use crate::model::SourceFile;
use crate::rules::{Candidate, BLOCKING_CRATES};

/// Names that acquire a mutex guard: the service's panic-tolerant
/// wrapper plus the raw `std::sync` method.
const LOCK_CALLS: &[&str] = &["lock_recover", "lock"];

/// Blocking leaf names a guard must not be held across. Channel
/// operations, stream I/O, panic isolation (whose closure can run
/// arbitrarily long), thread coordination. Bare `read`/`write` are
/// deliberately absent — they are `RwLock` acquisitions, not I/O, in
/// this workspace's vocabulary.
const BLOCKING_CALLS: &[&str] = &[
    "send",
    "recv",
    "recv_timeout",
    "write_all",
    "write_fmt",
    "flush",
    "read_line",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "catch_unwind",
    "accept",
    "join",
    "park",
    "sleep",
    "wait",
    "wait_timeout",
];

/// True when the significant token at `i` acquires a mutex guard:
/// `lock_recover(...)` free/qualified, or a `.lock(...)` method call.
fn is_lock_site(file: &SourceFile, i: usize) -> bool {
    let Some(t) = file.s(i) else { return false };
    if t.kind != TokenKind::Ident
        || !LOCK_CALLS.contains(&t.ident_name())
        || !file.s(i + 1).is_some_and(|n| n.is_punct('('))
    {
        return false;
    }
    if i > 0 && file.s(i - 1).is_some_and(|p| p.is_ident("fn")) {
        return false; // the definition of the wrapper itself
    }
    // The raw method form only counts with a receiver (`m.lock(`).
    t.ident_name() != "lock" || (i > 0 && file.s(i - 1).is_some_and(|p| p.is_punct('.')))
}

/// The significant position of the `)` matching the `(` at `open`.
fn close_paren(file: &SourceFile, open: usize) -> usize {
    let mut d = 0i32;
    let mut j = open;
    while let Some(t) = file.s(j) {
        if t.is_punct('(') {
            d += 1;
        } else if t.is_punct(')') {
            d -= 1;
            if d == 0 {
                return j;
            }
        }
        j += 1;
    }
    j
}

/// Walks back from the lock site to the start of its statement: the
/// position after the previous `;`, `{`, or `}` at the same nesting.
fn stmt_start(file: &SourceFile, i: usize) -> usize {
    let mut j = i;
    let mut depth = 0i32;
    while j > 0 {
        let Some(t) = file.s(j - 1) else { break };
        match t.kind {
            TokenKind::Punct(')' | ']') => depth += 1,
            TokenKind::Punct('(' | '[') if depth > 0 => depth -= 1,
            TokenKind::Punct(';' | '{' | '}') if depth == 0 => return j,
            _ => {}
        }
        j -= 1;
    }
    j
}

/// The position one past the next `;` at statement level, or `limit` if
/// the statement is a tail expression.
fn stmt_end(file: &SourceFile, from: usize, limit: usize) -> usize {
    let mut d = 0i32;
    let mut j = from;
    while j < limit {
        let Some(t) = file.s(j) else { break };
        match t.kind {
            TokenKind::Punct('(' | '[' | '{') => d += 1,
            TokenKind::Punct(')' | ']' | '}') => d -= 1,
            TokenKind::Punct(';') if d == 0 => return j + 1,
            _ => {}
        }
        if d < 0 {
            return j; // fell off the enclosing block: tail expression
        }
        j += 1;
    }
    j
}

/// The position of the `}` closing the block that contains `from`
/// (bounded by `limit`, the fn body end).
fn block_end(file: &SourceFile, from: usize, limit: usize) -> usize {
    let mut d = 0i32;
    let mut j = from;
    while j < limit {
        let Some(t) = file.s(j) else { break };
        if t.is_punct('{') {
            d += 1;
        } else if t.is_punct('}') {
            d -= 1;
            if d < 0 {
                return j;
            }
        }
        j += 1;
    }
    j
}

/// The `{` opening the body of a control-flow header starting at `kw`:
/// the first brace outside parens/brackets.
fn header_brace(file: &SourceFile, kw: usize, limit: usize) -> usize {
    let mut d = 0i32;
    let mut j = kw + 1;
    while j < limit {
        let Some(t) = file.s(j) else { break };
        match t.kind {
            TokenKind::Punct('(' | '[') => d += 1,
            TokenKind::Punct(')' | ']') => d -= 1,
            TokenKind::Punct('{') if d == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    j
}

/// The significant range a guard acquired at `lock` (with `close` its
/// closing paren) stays alive over, per the temporary-scope rules in the
/// module docs. `limit` bounds everything to the enclosing fn body.
fn guard_scope(
    file: &SourceFile,
    lock: usize,
    close: usize,
    limit: usize,
) -> std::ops::Range<usize> {
    let start = stmt_start(file, lock);
    let kw = file.s(start).map(|t| t.ident_name().to_owned());
    match kw.as_deref() {
        Some("let") => {
            let chained = !file.s(close + 1).is_some_and(|t| t.is_punct(';'));
            if chained {
                // `let x = lock(..).recv();` — temporary to the `;`.
                return close + 1..stmt_end(file, close + 1, limit);
            }
            // `let g = lock(..);` — bound to end of block, or `drop(g)`.
            let guard = file
                .s(start + 1)
                .filter(|t| !t.is_ident("mut"))
                .or_else(|| file.s(start + 2))
                .map(|t| t.ident_name().to_owned())
                .unwrap_or_default();
            let end = block_end(file, close + 1, limit);
            for j in close + 1..end {
                if file.s(j).is_some_and(|t| t.is_ident("drop"))
                    && file.s(j + 1).is_some_and(|t| t.is_punct('('))
                    && file.s(j + 2).is_some_and(|t| t.ident_name() == guard)
                {
                    return close + 1..j;
                }
            }
            close + 1..end
        }
        Some(k @ ("if" | "while")) => {
            let brace = header_brace(file, start, limit);
            let is_let = file.s(start + 1).is_some_and(|t| t.is_ident("let"));
            if is_let {
                // Scrutinee temporary: whole expression. Approximated by
                // the first arm's block — `else` chains extend further,
                // which only under-flags there.
                close + 1..block_end(file, brace + 1, limit) + 1
            } else {
                // Plain condition: the guard drops before the block.
                let _ = k;
                close + 1..brace
            }
        }
        Some("match" | "for") => {
            // Scrutinee / iterator temporary: the whole block.
            let brace = header_brace(file, start, limit);
            close + 1..block_end(file, brace + 1, limit) + 1
        }
        _ => close + 1..stmt_end(file, close + 1, limit),
    }
}

/// Emits blocking-discipline candidates for one file: every blocking
/// call inside a live guard scope.
fn candidates_file(file: &SourceFile) -> Vec<Candidate> {
    let mut out: Vec<Candidate> = Vec::new();
    let mut seen: Vec<(usize, String)> = Vec::new();
    for item in &file.fns {
        if item.in_test || item.body.is_empty() {
            continue;
        }
        for i in item.body.clone() {
            if !is_lock_site(file, i) || file.sig_in_test(i) {
                continue;
            }
            let close = close_paren(file, i + 1);
            let scope = guard_scope(file, i, close, item.body.end);
            let lock_line = file.s(i).map_or(item.line, |t| t.line);
            for j in scope {
                let Some(t) = file.s(j) else { break };
                if t.kind != TokenKind::Ident
                    || !BLOCKING_CALLS.contains(&t.ident_name())
                    || !file.s(j + 1).is_some_and(|n| n.is_punct('('))
                {
                    continue;
                }
                if file.s(j.wrapping_sub(1)).is_some_and(|p| p.is_ident("fn")) {
                    continue;
                }
                let call = t.ident_name().to_owned();
                let line = t.line;
                if seen.contains(&(line, call.clone())) {
                    continue; // overlapping guard scopes: one report per site
                }
                seen.push((line, call.clone()));
                out.push(Candidate {
                    line,
                    rule: "blocking-discipline",
                    message: format!(
                        "`{}` blocks while the mutex guard acquired on line {lock_line} is \
                         still held; drop the guard first (bind and `drop()`, or end the \
                         statement) or annotate with \
                         `// analyze: allow(blocking-discipline) — <reason>`",
                        call
                    ),
                });
            }
        }
    }
    out
}

/// Emits blocking-discipline candidates across the workspace, scoped to
/// [`BLOCKING_CRATES`].
pub fn candidates(files: &[SourceFile]) -> Vec<(usize, Candidate)> {
    let mut out = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        if !BLOCKING_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        for c in candidates_file(file) {
            out.push((fi, c));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic
    use super::*;
    use std::path::PathBuf;

    fn analyse(src: &str) -> Vec<String> {
        let file = SourceFile::new(
            PathBuf::from("crates/serve/src/server.rs"),
            "serve".to_owned(),
            src,
        );
        candidates(std::slice::from_ref(&file))
            .into_iter()
            .map(|(_, c)| c.message)
            .collect()
    }

    #[test]
    fn chained_recv_on_guard_temporary_is_flagged() {
        let src = "fn worker(rx: &Mutex<Receiver<Job>>) {\n\
                       let job = lock_recover(rx).recv();\n\
                   }\n";
        let msgs = analyse(src);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("`recv`"), "{}", msgs[0]);
        assert!(msgs[0].contains("line 2"), "{}", msgs[0]);
    }

    #[test]
    fn bound_guard_held_across_write_is_flagged() {
        let src = "fn out(m: &Mutex<W>) {\n\
                       let mut w = lock_recover(m);\n\
                       w.write_all(b\"x\");\n\
                       w.flush();\n\
                   }\n";
        let msgs = analyse(src);
        assert_eq!(msgs.len(), 2, "{msgs:?}");
        assert!(msgs[0].contains("`write_all`"));
        assert!(msgs[1].contains("`flush`"));
    }

    #[test]
    fn dropping_the_guard_ends_its_scope() {
        let src = "fn out(m: &Mutex<V>, tx: &Sender<V>) {\n\
                       let v = lock_recover(m);\n\
                       let snapshot = v.clone();\n\
                       drop(v);\n\
                       tx.send(snapshot);\n\
                   }\n";
        assert!(analyse(src).is_empty());
    }

    #[test]
    fn bind_then_send_after_statement_end_is_clean() {
        let src = "fn out(m: &Mutex<V>, tx: &Sender<V>) {\n\
                       let snapshot = lock_recover(m).clone();\n\
                       tx.send(snapshot);\n\
                   }\n";
        assert!(analyse(src).is_empty());
    }

    #[test]
    fn plain_if_condition_guard_drops_before_the_block() {
        let src = "fn gate(m: &Mutex<State>, tx: &Sender<V>) {\n\
                       if lock_recover(m).is_ready() {\n\
                           tx.send(done());\n\
                       }\n\
                   }\n";
        assert!(analyse(src).is_empty());
    }

    #[test]
    fn if_let_scrutinee_guard_lives_for_the_whole_arm() {
        let src = "fn cached(m: &Mutex<Cache>, tx: &Sender<V>) {\n\
                       if let Some(hit) = lock_recover(m).get(&key) {\n\
                           tx.send(hit.clone());\n\
                       }\n\
                   }\n";
        let msgs = analyse(src);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("`send`"));
    }

    #[test]
    fn match_scrutinee_and_for_iterator_guards_live_on() {
        let m_src = "fn route(m: &Mutex<S>, out: &mut W) {\n\
                         match lock_recover(m).kind() {\n\
                             K::A => out.flush(),\n\
                             _ => Ok(()),\n\
                         };\n\
                     }\n";
        assert_eq!(analyse(m_src).len(), 1);
        let f_src = "fn drain(m: &Mutex<Vec<J>>, tx: &Sender<J>) {\n\
                         for j in lock_recover(m).drain(..) {\n\
                             tx.send(j);\n\
                         }\n\
                     }\n";
        assert_eq!(analyse(f_src).len(), 1);
    }

    #[test]
    fn raw_lock_method_counts_and_catch_unwind_blocks() {
        let src = "fn risky(m: &Mutex<S>) {\n\
                       let g = m.lock();\n\
                       catch_unwind(|| run(&g));\n\
                   }\n";
        let msgs = analyse(src);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("`catch_unwind`"));
    }

    #[test]
    fn non_blocking_guard_use_is_clean() {
        let src = "fn count(m: &Mutex<Stats>) -> u64 {\n\
                       let s = lock_recover(m);\n\
                       s.jobs + s.errors\n\
                   }\n\
                   fn bump(m: &Mutex<Stats>) {\n\
                       lock_recover(m).jobs += 1;\n\
                   }\n";
        assert!(analyse(src).is_empty());
    }

    #[test]
    fn out_of_scope_crates_and_test_code_are_exempt() {
        let hot = "fn worker(rx: &Mutex<Receiver<J>>) { let j = lock_recover(rx).recv(); }\n";
        let file = SourceFile::new(
            PathBuf::from("crates/core/src/x.rs"),
            "core".to_owned(),
            hot,
        );
        assert!(candidates(std::slice::from_ref(&file)).is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n    fn worker(rx: &Mutex<Receiver<J>>) { let j = lock_recover(rx).recv(); }\n}\n";
        assert!(analyse(test_src).is_empty());
    }
}
