//! Cancellation-liveness: every instance-sized loop reachable from a
//! cancellable entry point must poll the `CancelToken`.
//!
//! PR 9 threaded deadline cancellation through the builder inner loops
//! by hand; this pass makes the property structural so the next inner
//! loop (PathFinder rip-up, incremental STA) cannot silently ship
//! without a poll and reintroduce multi-second service stalls under a
//! 50 ms budget.
//!
//! The contract, per fn:
//!
//! * **Entry points** are the registry-facing builders of
//!   [`crate::rules::PANIC_REACH_CRATES`] (`pub` fns taking
//!   `&ProblemContext`, or `build`/`build_geometry`/`try_build` trait
//!   methods) plus every non-test fn of `serve` — the code a request
//!   deadline must be able to interrupt.
//! * A fn is **checked** when it lives in
//!   [`crate::rules::CANCEL_CRATES`] and is reachable from an entry
//!   through the call graph (augmented with the implicit `Iterator::next`
//!   edge of `for … in` desugaring, so lazy suppliers like the sparse
//!   `EdgeStream` stay in the cone).
//! * Each **outermost instance loop** of a checked fn (extracted with
//!   the complexity pass's loop walker, plus supply-vocabulary hints
//!   like `stream`) must contain a poll: a syntactic
//!   `check_cancelled()`/`<token>.check()` site, or a call whose
//!   resolved callees can transitively reach such a site. Loops nested
//!   inside a polling instance loop are covered by the outer
//!   per-iteration poll — the granularity knob the builders already
//!   use (BPRIM polls per attachment, not per scanned pair).
//! * **Exemptions**: non-instance loops (constant-bounded headers), and
//!   fns whose declared `// analyze: complexity(1)` / `complexity(log n)`
//!   budget proves the body too small to matter.
//!
//! Violations attach to the fn's declaration line, print the loop line
//! plus an entry→…→fn witness chain like `reach.rs`, and are waivable
//! with `// analyze: allow(cancel-liveness) — <reason>` above the fn.
//! The conservative call graph over-approximates both reachability and
//! poll-reach; the waiver is the pressure valve and must state why the
//! loop is actually bounded or covered by a neighbouring poll.

use crate::callgraph::CallGraph;
use crate::complexity::{depth_at, loops_in, INSTANCE_HINTS};
use crate::items::ItemIndex;
use crate::lexer::TokenKind;
use crate::model::SourceFile;
use crate::rules::{Candidate, CANCEL_CRATES, PANIC_REACH_CRATES};

/// Loop-header identifiers that mark instance-sized iteration for this
/// pass *in addition to* the complexity vocabulary: the lazy
/// edge-candidate supply iterates `stream`s and `supply` windows whose
/// length is instance-sized even though the complexity pass does not
/// count them.
const CANCEL_EXTRA_HINTS: &[&str] = &["stream", "supply"];

/// Call leaf names that poll a token through a context, recognised
/// without resolution (`cx.check_cancelled()?`).
const POLL_METHODS: &[&str] = &["check_cancelled"];

/// Per-fn cancellation facts, indexed parallel to [`ItemIndex::fns`].
#[derive(Debug)]
pub struct CancelInfo {
    /// Whether the fn's body contains a poll site, or calls (transitively)
    /// a fn that does.
    pub can_poll: Vec<bool>,
    /// Whether the fn is itself a cancellable entry point.
    pub entry: Vec<bool>,
    /// Whether the fn is reachable from an entry point.
    pub reachable: Vec<bool>,
    /// Predecessor on one entry→fn chain, for witness reconstruction.
    parent: Vec<Option<usize>>,
    /// Whether the fn's declared complexity budget (`1` / `log n`)
    /// exempts it from the polling requirement.
    bounded: Vec<bool>,
}

/// True when the significant token at `i` is a cancellation poll:
/// `check_cancelled(`, `<cancel|token>.check(`, or `CancelToken::check(`.
pub(crate) fn is_poll_site(file: &SourceFile, i: usize) -> bool {
    let Some(t) = file.s(i) else { return false };
    if t.kind != TokenKind::Ident || !file.s(i + 1).is_some_and(|n| n.is_punct('(')) {
        return false;
    }
    // The definition `fn check_cancelled(` is not a poll of itself.
    if i > 0 && file.s(i - 1).is_some_and(|p| p.is_ident("fn")) {
        return false;
    }
    match t.ident_name() {
        name if POLL_METHODS.contains(&name) => true,
        "check" if i >= 2 => {
            if file.s(i - 1).is_some_and(|p| p.is_punct('.')) {
                // `self.cancel.check()`, `token.check()`, `config.cancel.check()`.
                file.s(i - 2).is_some_and(|r| {
                    r.kind == TokenKind::Ident && {
                        let n = r.ident_name().to_ascii_lowercase();
                        n.contains("cancel") || n.contains("token")
                    }
                })
            } else {
                // Qualified `CancelToken::check(...)`.
                i >= 3
                    && file.s(i - 1).is_some_and(|p| p.is_punct(':'))
                    && file.s(i - 2).is_some_and(|p| p.is_punct(':'))
                    && file.s(i - 3).is_some_and(|r| r.is_ident("CancelToken"))
            }
        }
        _ => false,
    }
}

/// True when a budget spec proves the fn constant- or log-bounded —
/// the only budgets that exempt a loop from polling.
fn bounded_spec(spec: &str) -> bool {
    let norm: String = spec
        .to_lowercase()
        .chars()
        .filter(|c| !c.is_whitespace())
        .collect();
    matches!(norm.as_str(), "1" | "logn")
}

impl CancelInfo {
    /// Computes poll-reach, the entry set, and entry-cone reachability.
    pub fn compute(index: &ItemIndex<'_>, graph: &CallGraph) -> Self {
        let n = index.fns.len();

        // Local polls, then the caller-ward can-poll fixed point.
        let mut can_poll: Vec<bool> = (0..n)
            .map(|id| {
                let file = index.file(id);
                index.item(id).body.clone().any(|i| is_poll_site(file, i))
            })
            .collect();
        let mut changed = true;
        while changed {
            changed = false;
            for id in 0..n {
                if can_poll[id] {
                    continue;
                }
                if graph.callees_of(id).iter().any(|&c| can_poll[c]) {
                    can_poll[id] = true;
                    changed = true;
                }
            }
        }

        // Entry set: registry-facing builders + serve workers.
        let entry: Vec<bool> = (0..n)
            .map(|id| {
                let f = &index.fns[id];
                let item = index.item(id);
                if item.in_test || item.body.is_empty() {
                    return false;
                }
                if f.krate == "serve" {
                    return true;
                }
                if !PANIC_REACH_CRATES.contains(&f.krate.as_str()) {
                    return false;
                }
                let registry_facing =
                    item.is_pub || crate::reach::REGISTRY_METHODS.contains(&item.name.as_str());
                if !registry_facing {
                    return false;
                }
                let file = index.file(id);
                item.params
                    .clone()
                    .filter_map(|j| file.s(j))
                    .any(|t| t.is_ident("ProblemContext"))
            })
            .collect();

        // Forward reachability (BFS, parents for witnesses) over call
        // edges plus the implicit `next` edge of `for` desugaring.
        let succ: Vec<Vec<usize>> = (0..n)
            .map(|id| {
                let mut s = graph.callees_of(id);
                let file = index.file(id);
                let item = index.item(id);
                let has_for = item
                    .body
                    .clone()
                    .any(|i| file.s(i).is_some_and(|t| t.is_ident("for")));
                if has_for {
                    s.extend(index.methods_visible_from(&index.fns[id].krate, "next"));
                }
                s.sort_unstable();
                s.dedup();
                s
            })
            .collect();
        let mut reachable = vec![false; n];
        let mut parent = vec![None; n];
        let mut queue: std::collections::VecDeque<usize> = (0..n)
            .filter(|&id| entry[id])
            .inspect(|&id| reachable[id] = true)
            .collect();
        while let Some(id) = queue.pop_front() {
            for &next in &succ[id] {
                if !reachable[next] && !index.item(next).in_test {
                    reachable[next] = true;
                    parent[next] = Some(id);
                    queue.push_back(next);
                }
            }
        }

        // Boundedness exemption from `1` / `log n` budgets.
        let mut bounded = vec![false; n];
        for (fi, file) in index.files.iter().enumerate() {
            for b in &file.budgets {
                if !bounded_spec(&b.spec) {
                    continue;
                }
                if let Some(item) = file.fn_on_or_after(b.line) {
                    for &id in &index.fns_by_file[fi] {
                        if index.item(id).line == item.line {
                            bounded[id] = true;
                        }
                    }
                }
            }
        }

        CancelInfo {
            can_poll,
            entry,
            reachable,
            parent,
            bounded,
        }
    }

    /// Reconstructs the entry→…→fn witness chain for diagnostics.
    pub fn witness(&self, index: &ItemIndex<'_>, id: usize) -> String {
        let mut path = vec![index.fns[id].name.clone()];
        let mut cur = id;
        for _ in 0..12 {
            let Some(p) = self.parent[cur] else { break };
            path.push(index.fns[p].name.clone());
            cur = p;
        }
        path.reverse();
        path.join(" → ")
    }
}

/// True when a loop body polls: a syntactic poll site inside it, or a
/// call site inside it whose resolved callees can reach a poll.
fn loop_polls(
    file: &SourceFile,
    graph: &CallGraph,
    id: usize,
    info: &CancelInfo,
    body: &std::ops::Range<usize>,
) -> bool {
    if body.clone().any(|i| is_poll_site(file, i)) {
        return true;
    }
    graph.sites[id]
        .iter()
        .filter(|s| body.contains(&s.pos))
        .any(|s| s.callees.iter().any(|&c| info.can_poll[c]))
}

/// Emits cancel-liveness candidates across the workspace: one per fn
/// whose first unpolled outermost instance loop is found, attached to
/// the fn's declaration line (where the waiver grammar attaches).
pub fn candidates(index: &ItemIndex<'_>, graph: &CallGraph) -> Vec<(usize, Candidate)> {
    let info = CancelInfo::compute(index, graph);
    let hints: Vec<&str> = INSTANCE_HINTS
        .iter()
        .chain(CANCEL_EXTRA_HINTS.iter())
        .copied()
        .collect();
    let mut out = Vec::new();
    for id in 0..index.fns.len() {
        let f = &index.fns[id];
        let item = index.item(id);
        if !CANCEL_CRATES.contains(&f.krate.as_str())
            || item.in_test
            || item.body.is_empty()
            || !info.reachable[id]
            || info.bounded[id]
        {
            continue;
        }
        let file = index.file(id);
        let loops = loops_in(file, &item.body, &hints);
        for l in loops.iter().filter(|l| l.instance) {
            // Loops nested inside another instance loop are covered by
            // the outer loop's per-iteration poll requirement.
            if depth_at(&loops, l.kw) > 0 {
                continue;
            }
            if loop_polls(file, graph, id, &info, &l.body) {
                continue;
            }
            let loop_line = file.s(l.kw).map_or(item.line, |t| t.line);
            let witness = info.witness(index, id);
            out.push((
                f.file,
                Candidate {
                    line: item.line,
                    rule: "cancel-liveness",
                    message: format!(
                        "`{}` is reachable from a cancellable entry point ({witness}) but its \
                         instance loop at line {loop_line} never polls the CancelToken; call \
                         `cx.check_cancelled()?` / `token.check()?` inside the loop (or a \
                         callee), declare a `// analyze: complexity(1|log n)` budget, or \
                         annotate with `// analyze: allow(cancel-liveness) — <reason>`",
                        f.name
                    ),
                },
            ));
            break; // one report per fn; fixing the first exposes the rest
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic
    use super::*;
    use std::path::PathBuf;

    fn file(krate: &str, path: &str, src: &str) -> SourceFile {
        SourceFile::new(PathBuf::from(path), krate.to_owned(), src)
    }

    fn analyse(files: &[SourceFile]) -> Vec<String> {
        let idx = ItemIndex::build(files);
        let g = CallGraph::build(&idx);
        candidates(&idx, &g)
            .into_iter()
            .map(|(_, c)| c.message)
            .collect()
    }

    #[test]
    fn unpolled_builder_loop_is_flagged_with_witness() {
        let src = "pub fn build(cx: &ProblemContext) -> R { scan(cx) }\n\
                   fn scan(cx: &ProblemContext) -> R {\n\
                       for e in edges {\n\
                           accept(e);\n\
                       }\n\
                       done()\n\
                   }\n";
        let msgs = analyse(&[file("core", "crates/core/src/b.rs", src)]);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("build → scan"), "{}", msgs[0]);
        assert!(msgs[0].contains("line 3"), "{}", msgs[0]);
    }

    #[test]
    fn direct_poll_in_loop_is_clean() {
        let src = "pub fn build(cx: &ProblemContext) -> R {\n\
                       for e in edges {\n\
                           cx.check_cancelled()?;\n\
                           accept(e);\n\
                       }\n\
                   }\n";
        assert!(analyse(&[file("core", "crates/core/src/b.rs", src)]).is_empty());
    }

    #[test]
    fn token_check_and_qualified_check_are_polls() {
        let src = "pub fn build(cx: &ProblemContext) -> R {\n\
                       for e in edges { self.cancel.check()?; go(e); }\n\
                       for s in sinks { CancelToken::check(&t)?; go(s); }\n\
                   }\n";
        assert!(analyse(&[file("core", "crates/core/src/b.rs", src)]).is_empty());
    }

    #[test]
    fn poll_through_a_callee_is_clean() {
        let src = "pub fn build(cx: &ProblemContext) -> R {\n\
                       for e in edges { step(cx, e); }\n\
                   }\n\
                   fn step(cx: &ProblemContext, e: E) { cx.check_cancelled().ok(); }\n";
        assert!(analyse(&[file("core", "crates/core/src/b.rs", src)]).is_empty());
    }

    #[test]
    fn unreachable_and_non_instance_loops_are_exempt() {
        // `helper` is private and unreferenced: not in the entry cone.
        // `build`'s loop header has no instance hint: constant-bounded.
        let src = "pub fn build(cx: &ProblemContext) -> R {\n\
                       for bit in 0..64 { probe(bit); }\n\
                   }\n\
                   fn helper() { for e in edges { go(e); } }\n";
        assert!(analyse(&[file("core", "crates/core/src/b.rs", src)]).is_empty());
    }

    #[test]
    fn bounded_budget_exempts_and_bigger_budgets_do_not() {
        let bounded = "pub fn build(cx: &ProblemContext) -> R { small(cx) }\n\
                       // analyze: complexity(log n)\n\
                       fn small(cx: &ProblemContext) { for e in edges { go(e); } }\n";
        assert!(analyse(&[file("core", "crates/core/src/b.rs", bounded)]).is_empty());
        let quadratic = "pub fn build(cx: &ProblemContext) -> R { big(cx) }\n\
                         // analyze: complexity(n^2)\n\
                         fn big(cx: &ProblemContext) { for e in edges { go(e); } }\n";
        assert_eq!(
            analyse(&[file("core", "crates/core/src/b.rs", quadratic)]).len(),
            1
        );
    }

    #[test]
    fn inner_nested_loop_is_covered_by_outer_poll() {
        let src = "pub fn build(cx: &ProblemContext) -> R {\n\
                       for s in sinks {\n\
                           cx.check_cancelled()?;\n\
                           for e in edges { scan(s, e); }\n\
                       }\n\
                   }\n";
        assert!(analyse(&[file("core", "crates/core/src/b.rs", src)]).is_empty());
    }

    #[test]
    fn for_desugar_keeps_iterator_impls_in_the_cone() {
        // `build` never names `next`, but its `for` loop drives it: the
        // unpolled instance loop inside the Iterator impl must be found.
        let src = "pub fn build(cx: &ProblemContext) -> R {\n\
                       for e in cx.stream() { cx.check_cancelled()?; go(e); }\n\
                   }\n\
                   impl Iterator for S {\n\
                       fn next(&mut self) -> Option<E> { self.refill() }\n\
                   }\n\
                   impl S {\n\
                       fn refill(&mut self) -> Option<E> {\n\
                           for a in 0..self.index.len() { push(a); }\n\
                           pop()\n\
                       }\n\
                   }\n";
        let msgs = analyse(&[file("core", "crates/core/src/s.rs", src)]);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("`refill`"), "{}", msgs[0]);
    }

    #[test]
    fn stream_headers_are_instance_sized() {
        let src = "pub fn build(cx: &ProblemContext) -> R {\n\
                       for e in stream { go(e); }\n\
                   }\n";
        assert_eq!(
            analyse(&[file("core", "crates/core/src/b.rs", src)]).len(),
            1
        );
    }

    #[test]
    fn serve_fns_are_entry_points_without_problem_context() {
        let src = "fn worker_loop(state: &State) {\n\
                       for job in queue { handle(job); }\n\
                   }\n";
        assert_eq!(
            analyse(&[file("serve", "crates/serve/src/w.rs", src)]).len(),
            1
        );
        // The same fn in a non-serve crate is not an entry on its own.
        assert!(analyse(&[file("geom", "crates/geom/src/w.rs", src)]).is_empty());
    }

    #[test]
    fn out_of_scope_crates_emit_nothing() {
        let src = "pub fn build(cx: &ProblemContext) -> R {\n\
                       for e in edges { go(e); }\n\
                   }\n";
        assert!(analyse(&[file("geom", "crates/geom/src/b.rs", src)]).is_empty());
    }
}
