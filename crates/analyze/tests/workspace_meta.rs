//! Meta-test: the live workspace itself must be violation-free under the
//! full engine — all nine rules plus the `events.toml` round-trip. This is
//! the same check `cargo xtask lint` runs in CI, executed here so plain
//! `cargo test` catches a regression even when the lint gate is skipped.

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic

use bmst_analyze::{analyze_workspace, workspace_root};

#[test]
fn live_workspace_is_violation_free() {
    let root = workspace_root();
    assert!(
        root.join("crates").is_dir(),
        "workspace root not found from {}",
        std::env::current_dir().unwrap().display()
    );
    let report = analyze_workspace(&root);
    assert!(
        report.files_scanned > 50,
        "workspace walk found too few files"
    );
    assert!(
        report.emissions_seen > 20,
        "obs emission extraction went blind"
    );
    assert!(
        report.is_clean(),
        "live workspace has lint violations:\n{}",
        report
            .violations
            .iter()
            .map(|v| format!(
                "{}:{}: [{}] {}",
                v.path.display(),
                v.line,
                v.rule,
                v.message
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn events_registry_round_trips() {
    let root = workspace_root();
    let mut errors = Vec::new();
    let files = bmst_analyze::load_workspace(&root, &mut errors);
    let emissions = bmst_analyze::workspace_emissions(&files);
    let schema = bmst_analyze::load_events_schema(&root, &mut errors)
        .expect("crates/obs/events.toml parses");
    assert!(errors.is_empty(), "{errors:?}");
    let diff = bmst_analyze::schema::diff(&schema, &emissions);
    assert!(
        diff.is_clean(),
        "unknown: {:?}\ndead: {:?}",
        diff.unknown
            .iter()
            .map(|e| format!("{} ({})", e.name, e.kind.section()))
            .collect::<Vec<_>>(),
        diff.dead
    );
}
