//! complexity fixture: an unbudgeted quadratic nest and a declared
//! budget the code outgrew.

/// Quadratic over the sink set with no declared budget.
pub fn all_pairs(sinks: &[Point]) -> f64 {
    let mut total = 0.0;
    for a in sinks {
        for b in sinks {
            total += dist(a, b);
        }
    }
    total
}

// analyze: complexity(n)
pub fn outgrown(edges: &[Edge]) -> usize {
    let mut crossings = 0;
    for e in edges {
        for f in edges {
            if crosses(e, f) {
                crossings += 1;
            }
        }
    }
    crossings
}
