// Fixture: public items without doc comments.
pub struct Undocumented {
    pub field: usize,
}

#[derive(Debug)]
pub enum AlsoUndocumented {
    A,
}

pub fn no_docs() {}
