// Fixture: shared mutable state in the parallel routing crate.
static mut ROUTED: usize = 0;

thread_local! {
    static SCRATCH: Vec<usize> = Vec::new();
}

use std::rc::Rc;
use std::cell::RefCell;

pub struct RouteAlgorithm {
    shared: Rc<RefCell<usize>>,
}
