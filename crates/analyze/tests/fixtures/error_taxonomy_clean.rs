// Fixture: failures that stay inside the taxonomy.
fn guarded(cx: &Context) -> Result<Tree, BmstError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| build_inner(cx)))
        .map_err(|_| BmstError::internal("builder panicked"))?
}

fn defaulted_option(x: Option<usize>) -> usize {
    x.unwrap_or(0)
}

pub fn build(cx: &ProblemContext<'_>) -> Result<Tree, BmstError> {
    build_inner(cx)
}

pub(crate) fn helper(cx: &ProblemContext<'_>) -> Tree {
    build_unchecked(cx)
}

pub fn unrelated(n: usize) -> usize {
    n + 1
}
