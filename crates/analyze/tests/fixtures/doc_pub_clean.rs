// Fixture: documented public surface, restricted items, and re-exports.

/// A documented struct.
#[derive(Debug)]
pub struct Documented;

/// Documented even with a plain comment in between.
// implementation note between doc and item
pub fn documented_fn() {}

/** Block-doc documented. */
pub const LIMIT: usize = 8;

pub(crate) fn restricted() {}

pub use other::Thing;

fn private() {}
