//! panic-reach fixture: the registry contract done right. The public
//! surface is isolated behind a `catch_unwind` boundary; the raw path is
//! private, so its panics never reach an unprotected public builder.

/// The isolated entry point: panics inside `raw` become errors here.
pub fn try_build(cx: &ProblemContext<'_>) -> Result<Tree, BmstError> {
    std::panic::catch_unwind(|| raw(cx)).map_err(|_| BmstError::internal("builder panicked"))
}

fn raw(cx: &ProblemContext<'_>) -> Tree {
    let first = cx.sinks().first().unwrap();
    Tree::rooted_at(first)
}

/// Public but panic-free: only safe accessors, no indexing.
pub fn summarize(cx: &ProblemContext<'_>) -> usize {
    cx.sinks().len()
}
