// Fixture: a justified single-threaded cell in the router crate.
fn memoised() -> usize {
    // lint: allow(concurrency) — serial-only diagnostics path, never crosses route_parallel
    let cell = std::cell::RefCell::new(0usize);
    *cell.borrow()
}
