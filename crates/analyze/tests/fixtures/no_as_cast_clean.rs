// Fixture: conversions that stay within the From/TryFrom vocabulary, and
// casts to types the rule does not police.
fn widen(n: u32) -> u64 {
    u64::from(n)
}

fn narrow(n: u8) -> u32 {
    n as u32
}

fn renamed_import() {
    use std::collections::BTreeMap as usize_like;
    let _m: usize_like<u8, u8> = usize_like::new();
}
