//! lexer regression fixture: raw identifiers must compare by name, so
//! `.r#unwrap()` cannot evade the no-panic rule, while `r#type` used as
//! an ordinary field/binding lexes cleanly.

/// `r#unwrap` is the same method as `unwrap`; the rule must see it.
pub fn sneaky(x: Option<u8>) -> u8 {
    x.r#unwrap()
}

/// Raw identifiers as bindings are ordinary code.
pub fn configure(r#type: usize) -> usize {
    let r#match = r#type + 1;
    r#match
}
