// Fixture: truncating casts in an algorithm crate.
fn widen(n: u32) -> usize {
    n as usize
}

fn to_float(n: u64) -> f64 {
    n as f64
}
