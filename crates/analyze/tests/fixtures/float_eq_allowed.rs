// Fixture: an intentional exact float comparison with its justification.
fn exact_sentinel(x: f64) -> bool {
    // lint: allow(float-eq) — comparing against the exact sentinel the encoder wrote
    x == -1.0
}
