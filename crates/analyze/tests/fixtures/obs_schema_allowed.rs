// Fixture: a justified unqualified emission import.
// lint: allow(obs-schema) — macro-generated call sites cannot use qualified paths here
use bmst_obs::counter;

fn record(n: u64) {
    counter("fixture.generated", n);
}
