// Fixture: nondeterministic iteration order and unstable float sorts in
// a byte-identical hot path.
use std::collections::HashMap;

fn collect(edges: &[(usize, usize)]) -> HashMap<usize, usize> {
    edges.iter().copied().collect()
}

fn distinct(ids: &[usize]) -> usize {
    let set: std::collections::HashSet<usize> = ids.iter().copied().collect();
    set.len()
}

fn by_weight(v: &mut Vec<(f64, usize)>) {
    v.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
}

fn by_float_key(v: &mut Vec<Edge>) {
    v.sort_unstable_by_key(|e| e.weight as f64);
}
