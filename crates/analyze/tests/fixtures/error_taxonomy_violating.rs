// Fixture: failures escaping the BmstError taxonomy.
fn swallowed_panic(cx: &Context) -> Option<Tree> {
    std::panic::catch_unwind(|| build_inner(cx)).ok()
}

fn swallowed_error(r: Result<usize, BmstError>) -> usize {
    r.unwrap_or_default()
}

pub fn build(cx: &ProblemContext<'_>) -> Tree {
    build_inner(cx)
}
