// Fixture: comparisons float-eq must leave alone.
fn integers(n: usize) -> bool {
    n == 0
}

fn ranges(n: usize) -> usize {
    let mut acc = 0;
    for i in 0..n {
        acc += i;
    }
    acc
}

fn ordered(x: f64, y: f64) -> bool {
    x <= y && y >= x && x < y + 1.0
}

fn tolerance_helpers(x: f64, y: f64) -> bool {
    approx_eq(x, y)
}

fn strings() -> bool {
    let s = "x == 0.0 in a string";
    s.is_empty()
}
