// Fixture: a justified cast.
fn indexed(i: u32) -> usize {
    // lint: allow(no-as-cast) — u32 always fits in usize on supported targets
    i as usize
}
