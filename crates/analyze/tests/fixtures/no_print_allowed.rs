// Fixture: a justified print in library code.
fn progress(step: usize) {
    // lint: allow(no-print) — progress line of a long-running helper, opt-in via --verbose
    eprintln!("step {step}");
}
