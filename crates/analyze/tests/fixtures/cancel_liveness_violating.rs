//! cancel-liveness fixture: registry-facing builders whose instance loops
//! never poll the `CancelToken` — one directly, one through a callee so the
//! witness chain carries the transitive edge.

/// The entry point itself owns an unpolled instance loop.
pub fn try_build(cx: &ProblemContext<'_>) -> Result<Tree, BmstError> {
    let mut acc = 0.0;
    for v in cx.net().sinks() {
        acc += weight(v);
    }
    grow(cx, acc)
}

/// Reached from `try_build`: its loop over the edge supply must poll too.
fn grow(cx: &ProblemContext<'_>, acc: f64) -> Result<Tree, BmstError> {
    let mut cost = acc;
    for e in cx.edges() {
        cost += e.weight();
    }
    Ok(Tree::with_cost(cost))
}

fn weight(v: usize) -> f64 {
    f64::from(v)
}
