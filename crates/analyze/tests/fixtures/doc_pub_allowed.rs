// Fixture: an undocumented pub item with a justified marker.
// lint: allow(doc-pub) — generated shim, documented at the module level
pub fn generated_shim() {}
