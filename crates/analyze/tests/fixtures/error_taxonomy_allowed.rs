// Fixture: justified taxonomy escapes.
fn probe(cx: &Context) -> bool {
    // lint: allow(error-taxonomy) — feasibility probe: the panic itself is the signal
    std::panic::catch_unwind(|| build_inner(cx)).is_ok()
}

fn counter_of(r: Result<usize, ParseIntError>) -> usize {
    // lint: allow(error-taxonomy) — a missing counter legitimately reads as zero
    r.unwrap_or_default()
}
