// Fixture: emission entry points imported unqualified — names would
// escape the schema extractor.
use bmst_obs::counter;

fn record(n: u64) {
    counter("hidden.from.extractor", n);
}
