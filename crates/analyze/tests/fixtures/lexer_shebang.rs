#!/usr/bin/env run-cargo-script
//! lexer regression fixture: a shebang line is consumed as a comment,
//! so the rest of the file still lexes and the inner attribute below is
//! not confused with one.
#![allow(dead_code)]

/// Clean code after the shebang.
pub fn fine() -> usize {
    1
}
