// Fixture: code the old regex pass falsely flagged — panic vocabulary in
// doc-comment examples, strings, and non-panicking method names.

/// Returns the value or a default.
///
/// ```
/// let v = maybe.unwrap();      // doc example: fine
/// if v == 0 { panic!("no"); }  // doc example: fine
/// ```
fn documented(x: Option<u8>) -> u8 {
    x.unwrap_or(0)
}

fn strings_and_comments() -> &'static str {
    // a comment mentioning .unwrap() and panic!(...) is not a violation
    let raw = r#"panic!("inside a raw string") .expect("nope")"#;
    let plain = ".unwrap() todo!(x) unimplemented!(y)";
    if raw.len() > plain.len() {
        raw
    } else {
        plain
    }
}

fn fallible(x: Option<u8>) -> Result<u8, String> {
    x.ok_or_else(|| "missing".to_owned())
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
        if v.is_none() {
            panic!("unreachable in tests is fine");
        }
    }
}
