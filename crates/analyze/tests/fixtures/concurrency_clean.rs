// Fixture: shared-nothing parallel state, with the Send/Sync assertions
// next to the algorithm handle.
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

static ROUTED: AtomicUsize = AtomicUsize::new(0);

pub struct RouteAlgorithm {
    builder: &'static dyn TreeBuilder,
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<RouteAlgorithm>();
};

fn bump(shared: &Arc<AtomicUsize>) {
    shared.fetch_add(1, Ordering::Relaxed);
    ROUTED.fetch_add(1, Ordering::Relaxed);
}
