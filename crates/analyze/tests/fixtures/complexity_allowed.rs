//! complexity fixture: a quadratic nest waived with a reason instead of
//! budgeted — for sites whose bound is structural, not asymptotic.

// analyze: allow(complexity) — rejected-net report, bounded by the reject cap (≤16)
pub fn reject_report(nets: &[Net]) -> Vec<String> {
    let mut out = Vec::new();
    for net in nets {
        for other in nets {
            if conflicts(net, other) {
                out.push(describe(net, other));
            }
        }
    }
    out
}
