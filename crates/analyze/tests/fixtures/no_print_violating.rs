// Fixture: printing from library code.
fn report(n: usize) {
    println!("routed {n} nets");
    eprintln!("warning: {n}");
    let _peek = dbg!(n);
}
