// Fixture: raw float comparisons the float-eq rule must catch.
fn against_literal(x: f64) -> bool {
    x == 0.0
}

fn against_exponent(x: f64) -> bool {
    x != 1e-9
}

fn against_const(x: f64) -> bool {
    x == f64::INFINITY
}

fn negated_literal(x: f64) -> bool {
    -1.5 == x
}
