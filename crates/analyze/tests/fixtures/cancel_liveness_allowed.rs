//! cancel-liveness fixture: an unpolled instance loop carrying a reasoned
//! waiver — the signature has no token access, so the pass is told why.

// analyze: allow(cancel-liveness) — public signature carries no CancelToken; the wrapper polls per attachment
pub fn try_build(cx: &ProblemContext<'_>) -> Result<Tree, BmstError> {
    let mut acc = 0.0;
    for v in cx.net().sinks() {
        acc += f64::from(v);
    }
    Ok(Tree::with_cost(acc))
}
