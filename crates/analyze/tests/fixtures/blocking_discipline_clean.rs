//! blocking-discipline fixture: blocking calls happen only after the guard
//! is released — by statement-end temporaries, explicit drop, or no lock.

/// The chained clone confines the guard to its own statement; the send on
/// the next line runs lock-free.
pub fn snapshot(state: &Mutex<Stats>, out: &SyncSender<Stats>) {
    let stats = lock_recover(state).clone();
    let _ = out.send(stats);
}

/// Explicit drop releases the guard before the channel send.
pub fn rotate(log: &Mutex<Vec<String>>, out: &SyncSender<String>) {
    let mut guard = lock_recover(log);
    let line = guard.pop();
    drop(guard);
    if let Some(line) = line {
        let _ = out.send(line);
    }
}

/// No guard in scope at all: blocking freely is fine.
pub fn enqueue(q: &SyncSender<Job>, job: Job) {
    let _ = q.send(job);
}
