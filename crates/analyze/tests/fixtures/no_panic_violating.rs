// Fixture: no-panic violations, including the regex pass's blind spot —
// a `panic!` whose argument list is split across lines.
fn split_macro(n: usize) {
    if n == 0 {
        panic!(
            "empty input: {}",
            n
        );
    }
}

fn unwrap_and_expect(x: Option<u8>) -> u8 {
    let a = x.unwrap();
    let b = x.expect("present");
    a + b
}

fn other_macros() {
    unreachable!("dead");
}
