//! blocking-discipline fixture: a deliberate blocking receive under the
//! lock, waived with the reason the discipline demands.

/// Workers share one receiver behind a mutex; taking the lock to block on
/// the next job is the handoff protocol itself.
pub fn handoff(rx: &Mutex<Receiver<Job>>) -> Option<Job> {
    // analyze: allow(blocking-discipline) — the locked receiver is the shared handoff point
    lock_recover(rx).recv().ok()
}
