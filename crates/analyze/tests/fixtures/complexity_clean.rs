//! complexity fixture: budgets declared and honoured. The quadratic
//! nest carries its `n^2` marker; fixed-bound loops never count.

// analyze: complexity(n^2)
pub fn distance_matrix(sinks: &[Point]) -> Vec<f64> {
    let mut out = Vec::new();
    for a in sinks {
        for b in sinks {
            out.push(dist(a, b));
        }
    }
    out
}

/// Callers of a budgeted fn see an audited boundary, not depth 2.
// analyze: complexity(n)
pub fn per_sink(sinks: &[Point]) -> Vec<f64> {
    let mut out = Vec::new();
    for s in sinks {
        out.push(score(s));
    }
    out
}

/// Loops over fixed machine-width bounds are not instance loops.
pub fn bit_walk(word: u64) -> u32 {
    let mut count = 0;
    for bit in 0..64 {
        for phase in 0..2 {
            count += probe(word, bit, phase);
        }
    }
    count
}
