//! cancel-liveness fixture: every reachable instance loop polls — directly,
//! through a polling callee, or is constant-bounded and exempt.

/// Polls at the top of its instance loop.
pub fn try_build(cx: &ProblemContext<'_>) -> Result<Tree, BmstError> {
    let mut acc = 0.0;
    for v in cx.net().sinks() {
        cx.check_cancelled()?;
        acc += f64::from(v);
    }
    relax(cx, acc)
}

/// Clean because `step` polls: liveness may live in the callee cone.
fn relax(cx: &ProblemContext<'_>, acc: f64) -> Result<Tree, BmstError> {
    let mut cost = acc;
    for e in cx.edges() {
        cost += step(cx, e)?;
    }
    Ok(Tree::with_cost(cost))
}

fn step(cx: &ProblemContext<'_>, e: Edge) -> Result<f64, BmstError> {
    cx.check_cancelled()?;
    Ok(e.weight())
}

/// A constant-trip loop is not instance-sized, so no poll is demanded.
pub fn build(cx: &ProblemContext<'_>) -> Result<Tree, BmstError> {
    let mut probes = 0.0;
    for round in 0..4 {
        probes += f64::from(round);
    }
    Ok(Tree::with_cost(probes))
}
