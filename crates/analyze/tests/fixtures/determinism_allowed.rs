// Fixture: a justified hash container in a hot path.
fn lookup_only(keys: &[(u64, u64)]) -> usize {
    // lint: allow(determinism) — lookup-only map, never iterated, so order cannot leak
    let map: std::collections::HashMap<(u64, u64), usize> =
        keys.iter().enumerate().map(|(i, &k)| (k, i)).collect();
    map.len()
}
