// Fixture: every panic site carries a justified allow marker.
fn indexed(v: &[u8], i: usize) -> u8 {
    // lint: allow(no-panic) — index is bounds-checked by the caller
    let first = v.first().unwrap();
    // lint: allow(no-panic) — invariant: builder registry always has the entry
    let second = v.get(i).expect("registry entry");
    first + second
}
