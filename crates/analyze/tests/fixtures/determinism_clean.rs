// Fixture: deterministic containers and sorts.
use std::collections::{BTreeMap, BTreeSet};

fn collect(edges: &[(usize, usize)]) -> BTreeMap<usize, usize> {
    edges.iter().copied().collect()
}

fn distinct(ids: &[usize]) -> usize {
    let set: BTreeSet<usize> = ids.iter().copied().collect();
    set.len()
}

fn by_id(v: &mut Vec<usize>) {
    v.sort_unstable();
}

fn by_pair(v: &mut Vec<(usize, usize)>) {
    v.sort_unstable_by(|a, b| b.cmp(a));
}

fn by_weight_stable(v: &mut Vec<(f64, usize)>) {
    // A *stable* sort keeps equal keys in input order: deterministic.
    v.sort_by(|a, b| a.0.total_cmp(&b.0));
}
