//! blocking-discipline fixture: mutex guards held across blocking calls —
//! a stream write under a let-bound guard, and a chained locked receive.

/// The guard lives to the end of the block, so the write blocks under it.
pub fn publish(out: &Arc<Mutex<TcpStream>>, line: &str) {
    let mut guard = lock_recover(out);
    let _ = guard.write_all(line.as_bytes());
}

/// The temporary guard lives to the end of the statement: the receive
/// blocks while the lock is held.
pub fn take_job(rx: &Mutex<Receiver<Job>>) -> Option<Job> {
    let job = lock_recover(rx).recv();
    job.ok()
}
