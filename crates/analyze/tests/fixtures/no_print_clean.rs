// Fixture: output routed correctly — into strings or recorders.
use std::fmt::Write as _;

fn report(n: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "routed {n} nets");
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_print() {
        println!("debugging a test is fine");
    }
}
