//! panic-reach fixture: public builders reaching panics transitively.

/// Reaches `.unwrap()` two calls deep — the fixed point must carry the
/// fact across both edges and name the witness path.
pub fn build(cx: &ProblemContext<'_>) -> Tree {
    let order = plan(cx);
    assemble(order)
}

fn plan(cx: &ProblemContext<'_>) -> Vec<usize> {
    pick(cx.sinks())
}

fn pick(sinks: &[Point]) -> Vec<usize> {
    let first = sinks.first().unwrap();
    vec![first.id]
}

fn assemble(order: Vec<usize>) -> Tree {
    Tree::from_order(order)
}

/// A direct index expression is a release-mode panic source too.
pub fn lookup(cx: &ProblemContext<'_>, i: usize) -> f64 {
    cx.costs()[i]
}
