// Fixture: qualified emissions and non-emission imports.
use bmst_obs::{Field, SummaryRecorder};

fn record(n: u64, ok: bool) {
    bmst_obs::counter("fixture.count", n);
    bmst_obs::event("fixture.event", &[("ok", Field::from(ok))]);
    let _span = bmst_obs::span("fixture.span");
}
