//! panic-reach fixture: a raw public builder carrying a reasoned waiver.

// analyze: allow(panic-reach) — raw API by contract; try_build wraps it in catch_unwind
pub fn build(cx: &ProblemContext<'_>) -> Tree {
    let first = cx.sinks().first().unwrap();
    Tree::rooted_at(first)
}
