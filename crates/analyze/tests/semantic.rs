//! The semantic-pass fixture corpus and the live-workspace meta-test.
//!
//! Each pass has a violating / clean / allowed fixture triple under
//! `tests/fixtures/`, named `<pass>_*.rs` with `-` flattened to `_`
//! (the prefix `cargo xtask analyze --list` counts). The meta-test runs
//! the real passes over this repository: the workspace must stay clean,
//! so every raw public builder carries its waiver and every known
//! quadratic site its budget.

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic

use std::path::PathBuf;

use bmst_analyze::model::SourceFile;
use bmst_analyze::{analyze_semantic_files, workspace_root, SemanticReport};

/// Loads a fixture and runs the semantic passes as if it were a file of
/// `crate_name`.
fn analyze_fixture(name: &str, crate_name: &str) -> SemanticReport {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    let file = SourceFile::new(path, crate_name.to_owned(), &text);
    analyze_semantic_files(std::slice::from_ref(&file))
}

/// Asserts the fixture produces exactly `expected` rules (sorted).
fn expect_rules(name: &str, crate_name: &str, expected: &[&str]) {
    let report = analyze_fixture(name, crate_name);
    let mut got: Vec<&str> = report.violations.iter().map(|v| v.rule.as_str()).collect();
    got.sort_unstable();
    let mut want = expected.to_vec();
    want.sort_unstable();
    assert_eq!(
        got, want,
        "fixture {name} (as crate `{crate_name}`): {:#?}",
        report.violations
    );
}

// ---- corpus: one violating / clean / allowed triple per pass ----

#[test]
fn panic_reach_corpus() {
    expect_rules(
        "panic_reach_violating.rs",
        "core",
        &["panic-reach", "panic-reach"],
    );
    expect_rules("panic_reach_clean.rs", "core", &[]);
    expect_rules("panic_reach_allowed.rs", "core", &[]);
}

#[test]
fn panic_reach_messages_carry_the_witness_path() {
    let report = analyze_fixture("panic_reach_violating.rs", "core");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.message.contains("build → plan → pick (`.unwrap()`)")),
        "witness path names the transitive chain: {:#?}",
        report.violations
    );
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.message.contains("index expression")),
        "indexing source named: {:#?}",
        report.violations
    );
}

#[test]
fn panic_reach_scope_is_per_crate() {
    // geom is outside PANIC_REACH_CRATES: same source, no findings, and
    // the complexity floor doesn't apply there either.
    expect_rules("panic_reach_violating.rs", "geom", &[]);
}

#[test]
fn complexity_corpus() {
    expect_rules(
        "complexity_violating.rs",
        "core",
        &["complexity", "complexity"],
    );
    expect_rules("complexity_clean.rs", "core", &[]);
    expect_rules("complexity_allowed.rs", "core", &[]);
}

#[test]
fn complexity_messages_distinguish_floor_from_budget() {
    let report = analyze_fixture("complexity_violating.rs", "core");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.message.contains("without a declared budget")),
        "unbudgeted floor named: {:#?}",
        report.violations
    );
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.message.contains("allowing depth 1")),
        "budget overrun named: {:#?}",
        report.violations
    );
}

// ---- the live workspace ----

#[test]
fn live_workspace_passes_semantic_analysis() {
    let root = workspace_root();
    let report = bmst_analyze::analyze_semantic(&root);
    assert!(
        report.files_scanned > 50,
        "expected a real workspace, scanned {}",
        report.files_scanned
    );
    assert!(
        report.fns_indexed > 300,
        "expected a populated item index, got {} fns",
        report.fns_indexed
    );
    assert!(
        report.call_edges > 200,
        "expected a connected call graph, got {} edges",
        report.call_edges
    );
    assert!(
        report.is_clean(),
        "live workspace has semantic violations:\n{}",
        report
            .violations
            .iter()
            .map(|v| format!(
                "{}:{}: [{}] {}",
                v.path.display(),
                v.line,
                v.rule,
                v.message
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn live_callgraph_dot_is_well_formed() {
    let dot = bmst_analyze::callgraph_dot(&workspace_root());
    assert!(dot.starts_with("digraph calls {"));
    assert!(dot.trim_end().ends_with('}'));
    assert!(
        dot.lines().filter(|l| l.contains(" -> ")).count() > 100,
        "expected a dense graph dump"
    );
}
