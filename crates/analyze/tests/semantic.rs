//! The semantic-pass fixture corpus and the live-workspace meta-test.
//!
//! Each pass has a violating / clean / allowed fixture triple under
//! `tests/fixtures/`, named `<pass>_*.rs` with `-` flattened to `_`
//! (the prefix `cargo xtask analyze --list` counts). The meta-test runs
//! the real passes over this repository: the workspace must stay clean,
//! so every raw public builder carries its waiver and every known
//! quadratic site its budget.

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic

use std::path::PathBuf;

use bmst_analyze::model::SourceFile;
use bmst_analyze::{analyze_semantic_files, load_workspace, workspace_root, SemanticReport};

/// Loads a fixture and runs the semantic passes as if it were a file of
/// `crate_name`.
fn analyze_fixture(name: &str, crate_name: &str) -> SemanticReport {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    let file = SourceFile::new(path, crate_name.to_owned(), &text);
    analyze_semantic_files(std::slice::from_ref(&file))
}

/// Asserts the fixture produces exactly `expected` rules (sorted).
fn expect_rules(name: &str, crate_name: &str, expected: &[&str]) {
    let report = analyze_fixture(name, crate_name);
    let mut got: Vec<&str> = report.violations.iter().map(|v| v.rule.as_str()).collect();
    got.sort_unstable();
    let mut want = expected.to_vec();
    want.sort_unstable();
    assert_eq!(
        got, want,
        "fixture {name} (as crate `{crate_name}`): {:#?}",
        report.violations
    );
}

// ---- corpus: one violating / clean / allowed triple per pass ----

#[test]
fn panic_reach_corpus() {
    expect_rules(
        "panic_reach_violating.rs",
        "core",
        &["panic-reach", "panic-reach"],
    );
    expect_rules("panic_reach_clean.rs", "core", &[]);
    expect_rules("panic_reach_allowed.rs", "core", &[]);
}

#[test]
fn panic_reach_messages_carry_the_witness_path() {
    let report = analyze_fixture("panic_reach_violating.rs", "core");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.message.contains("build → plan → pick (`.unwrap()`)")),
        "witness path names the transitive chain: {:#?}",
        report.violations
    );
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.message.contains("index expression")),
        "indexing source named: {:#?}",
        report.violations
    );
}

#[test]
fn panic_reach_scope_is_per_crate() {
    // geom is outside PANIC_REACH_CRATES: same source, no findings, and
    // the complexity floor doesn't apply there either.
    expect_rules("panic_reach_violating.rs", "geom", &[]);
}

#[test]
fn complexity_corpus() {
    expect_rules(
        "complexity_violating.rs",
        "core",
        &["complexity", "complexity"],
    );
    expect_rules("complexity_clean.rs", "core", &[]);
    expect_rules("complexity_allowed.rs", "core", &[]);
}

#[test]
fn complexity_messages_distinguish_floor_from_budget() {
    let report = analyze_fixture("complexity_violating.rs", "core");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.message.contains("without a declared budget")),
        "unbudgeted floor named: {:#?}",
        report.violations
    );
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.message.contains("allowing depth 1")),
        "budget overrun named: {:#?}",
        report.violations
    );
}

// ---- the live workspace ----

#[test]
fn live_workspace_passes_semantic_analysis() {
    let root = workspace_root();
    let report = bmst_analyze::analyze_semantic(&root);
    assert!(
        report.files_scanned > 50,
        "expected a real workspace, scanned {}",
        report.files_scanned
    );
    assert!(
        report.fns_indexed > 300,
        "expected a populated item index, got {} fns",
        report.fns_indexed
    );
    assert!(
        report.call_edges > 200,
        "expected a connected call graph, got {} edges",
        report.call_edges
    );
    assert!(
        report.is_clean(),
        "live workspace has semantic violations:\n{}",
        report
            .violations
            .iter()
            .map(|v| format!(
                "{}:{}: [{}] {}",
                v.path.display(),
                v.line,
                v.rule,
                v.message
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn live_callgraph_dot_is_well_formed() {
    let dot = bmst_analyze::callgraph_dot(&workspace_root());
    assert!(dot.starts_with("digraph calls {"));
    assert!(dot.trim_end().ends_with('}'));
    assert!(
        dot.lines().filter(|l| l.contains(" -> ")).count() > 100,
        "expected a dense graph dump"
    );
}

#[test]
fn cancel_liveness_corpus() {
    expect_rules(
        "cancel_liveness_violating.rs",
        "core",
        &["cancel-liveness", "cancel-liveness"],
    );
    expect_rules("cancel_liveness_clean.rs", "core", &[]);
    expect_rules("cancel_liveness_allowed.rs", "core", &[]);
}

#[test]
fn cancel_liveness_messages_carry_the_witness_chain() {
    let report = analyze_fixture("cancel_liveness_violating.rs", "core");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.message.contains("try_build → grow")),
        "witness chain names the transitive route: {:#?}",
        report.violations
    );
}

#[test]
fn cancel_liveness_scope_is_per_crate() {
    // geom is outside CANCEL_CRATES: same source, no findings.
    expect_rules("cancel_liveness_violating.rs", "geom", &[]);
}

#[test]
fn blocking_discipline_corpus() {
    expect_rules(
        "blocking_discipline_violating.rs",
        "serve",
        &["blocking-discipline", "blocking-discipline"],
    );
    expect_rules("blocking_discipline_clean.rs", "serve", &[]);
    expect_rules("blocking_discipline_allowed.rs", "serve", &[]);
}

#[test]
fn blocking_discipline_names_the_lock_line() {
    let report = analyze_fixture("blocking_discipline_violating.rs", "serve");
    assert!(
        report.violations.iter().any(|v| v
            .message
            .contains("`write_all` blocks while the mutex guard")),
        "blocking call named: {:#?}",
        report.violations
    );
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.message.contains("`recv` blocks")),
        "chained locked receive named: {:#?}",
        report.violations
    );
}

#[test]
fn blocking_discipline_scope_is_per_crate() {
    // Only serve carries the discipline: the same source as `core` is quiet.
    expect_rules("blocking_discipline_violating.rs", "core", &[]);
}

// ---- mutation regression: deleting a poll must trip the pass ----

/// Re-runs the cancel pass over the live workspace with one poll site
/// deleted from an in-memory copy of a builder file. Every single poll in
/// the BKRUS / BPRIM / EdgeStream inner loops is load-bearing: removing any
/// one of them must surface a `cancel-liveness` violation in that file,
/// with an entry→…→fn witness chain in the message.
fn assert_poll_is_load_bearing(file_suffix: &str, mutate: impl Fn(&str) -> Option<String>) {
    let root = workspace_root();
    let mut io_errors = Vec::new();
    let mut files = load_workspace(&root, &mut io_errors);
    assert!(io_errors.is_empty(), "workspace unreadable: {io_errors:#?}");
    let idx = files
        .iter()
        .position(|f| f.path.ends_with(file_suffix))
        .unwrap_or_else(|| panic!("{file_suffix} not in the workspace"));
    let text = std::fs::read_to_string(&files[idx].path).unwrap();
    let mutated = mutate(&text)
        .unwrap_or_else(|| panic!("{file_suffix}: mutation found no poll site to delete"));
    files[idx] = SourceFile::new(
        files[idx].path.clone(),
        files[idx].crate_name.clone(),
        &mutated,
    );
    let report = analyze_semantic_files(&files);
    let hits: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == "cancel-liveness" && v.path.ends_with(file_suffix))
        .collect();
    assert!(
        !hits.is_empty(),
        "deleting a poll from {file_suffix} went unnoticed:\n{:#?}",
        report.violations
    );
    assert!(
        hits.iter().any(|v| v.message.contains('→')),
        "violation carries a witness chain: {hits:#?}"
    );
}

/// Deletes the `nth` line containing `needle` (whole-line removal keeps the
/// token stream brace-balanced).
fn delete_nth_line(text: &str, needle: &str, nth: usize) -> Option<String> {
    let mut seen = 0;
    let mut out = Vec::new();
    let mut deleted = false;
    for line in text.lines() {
        if line.contains(needle) {
            if seen == nth {
                deleted = true;
                seen += 1;
                continue;
            }
            seen += 1;
        }
        out.push(line);
    }
    deleted.then(|| out.join("\n"))
}

#[test]
fn deleting_the_bkrus_scan_poll_is_caught() {
    // The first poll is the strided one inside `for e in stream`; the
    // second is the post-loop deadline-vs-infeasible disambiguation, which
    // is not a loop-liveness site.
    assert_poll_is_load_bearing("core/src/bkrus.rs", |t| {
        delete_nth_line(t, "cx.check_cancelled()?;", 0)
    });
}

#[test]
fn deleting_either_bprim_poll_is_caught() {
    for nth in 0..2 {
        assert_poll_is_load_bearing("core/src/bprim.rs", |t| {
            delete_nth_line(t, "cx.check_cancelled()?;", nth)
        });
    }
}

#[test]
fn deleting_the_edge_stream_poll_is_caught() {
    // The supply poll sits in an `if` header; substituting `false` deletes
    // the check while keeping the braces balanced.
    assert_poll_is_load_bearing("core/src/supply.rs", |t| {
        t.contains("self.cancel.check().is_err()")
            .then(|| t.replace("self.cancel.check().is_err()", "false"))
    });
}
