//! The fixture corpus: every rule has a violating, a clean, and an
//! allow-marked fixture under `tests/fixtures/`. The harness lexes each
//! fixture as if it lived in a crate the rule is scoped to and compares
//! the engine's findings against the expected rule list.

#![allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic

use std::path::PathBuf;

use bmst_analyze::model::SourceFile;
use bmst_analyze::{analyze_file, Violation};

/// Loads a fixture and analyses it under `crate_name`'s rule scopes.
fn analyze_fixture(name: &str, crate_name: &str) -> Vec<Violation> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    let file = SourceFile::new(path, crate_name.to_owned(), &text);
    analyze_file(&file)
}

/// Asserts the fixture produces exactly `expected` rules (sorted).
fn expect_rules(name: &str, crate_name: &str, expected: &[&str]) {
    let violations = analyze_fixture(name, crate_name);
    let mut got: Vec<&str> = violations.iter().map(|v| v.rule.as_str()).collect();
    got.sort_unstable();
    let mut want = expected.to_vec();
    want.sort_unstable();
    assert_eq!(
        got, want,
        "fixture {name} (as crate `{crate_name}`): {violations:#?}"
    );
}

// ---- corpus: one violating / clean / allowed triple per rule ----

#[test]
fn no_panic_corpus() {
    // Includes the two regex-era regressions: a `panic!` split across
    // lines (previously missed) and panic vocabulary inside doc-comment
    // examples and strings (previously falsely flagged).
    expect_rules(
        "no_panic_violating.rs",
        "core",
        &["no-panic", "no-panic", "no-panic", "no-panic"],
    );
    expect_rules("no_panic_clean.rs", "core", &[]);
    expect_rules("no_panic_allowed.rs", "core", &[]);
}

#[test]
fn no_panic_split_macro_line_is_reported_at_the_macro() {
    let violations = analyze_fixture("no_panic_violating.rs", "core");
    assert!(
        violations
            .iter()
            .any(|v| v.line == 5 && v.message.contains("panic!")),
        "split panic! reported at its own line: {violations:#?}"
    );
}

#[test]
fn float_eq_corpus() {
    expect_rules(
        "float_eq_violating.rs",
        "core",
        &["float-eq", "float-eq", "float-eq", "float-eq"],
    );
    expect_rules("float_eq_clean.rs", "core", &[]);
    expect_rules("float_eq_allowed.rs", "core", &[]);
}

#[test]
fn doc_pub_corpus() {
    expect_rules(
        "doc_pub_violating.rs",
        "tree",
        &["doc-pub", "doc-pub", "doc-pub"],
    );
    expect_rules("doc_pub_clean.rs", "tree", &[]);
    expect_rules("doc_pub_allowed.rs", "tree", &[]);
}

#[test]
fn no_as_cast_corpus() {
    expect_rules(
        "no_as_cast_violating.rs",
        "tree",
        &["no-as-cast", "no-as-cast"],
    );
    expect_rules("no_as_cast_clean.rs", "tree", &[]);
    expect_rules("no_as_cast_allowed.rs", "tree", &[]);
}

#[test]
fn no_print_corpus() {
    expect_rules(
        "no_print_violating.rs",
        "io",
        &["no-print", "no-print", "no-print"],
    );
    expect_rules("no_print_clean.rs", "io", &[]);
    expect_rules("no_print_allowed.rs", "io", &[]);
}

#[test]
fn no_print_is_waived_for_binary_sources() {
    // The same violating text is fine when the file builds into a binary.
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/no_print_violating.rs");
    let text = std::fs::read_to_string(&path).unwrap();
    let file = SourceFile::new(
        PathBuf::from("crates/io/src/bin/tool.rs"),
        "io".to_owned(),
        &text,
    );
    assert!(analyze_file(&file).is_empty());
}

#[test]
fn determinism_corpus() {
    expect_rules(
        "determinism_violating.rs",
        "steiner",
        &[
            "determinism",
            "determinism",
            "determinism",
            "determinism",
            "determinism",
        ],
    );
    expect_rules("determinism_clean.rs", "steiner", &[]);
    expect_rules("determinism_allowed.rs", "steiner", &[]);
}

#[test]
fn error_taxonomy_corpus() {
    expect_rules(
        "error_taxonomy_violating.rs",
        "steiner",
        &["error-taxonomy", "error-taxonomy", "error-taxonomy"],
    );
    expect_rules("error_taxonomy_clean.rs", "steiner", &[]);
    expect_rules("error_taxonomy_allowed.rs", "steiner", &[]);
}

#[test]
fn obs_schema_corpus() {
    expect_rules("obs_schema_violating.rs", "core", &["obs-schema"]);
    expect_rules("obs_schema_clean.rs", "core", &[]);
    expect_rules("obs_schema_allowed.rs", "core", &[]);
}

#[test]
fn concurrency_corpus() {
    expect_rules(
        "concurrency_violating.rs",
        "router",
        &[
            "concurrency",
            "concurrency",
            "concurrency",
            "concurrency",
            "concurrency",
            "concurrency",
        ],
    );
    expect_rules("concurrency_clean.rs", "router", &[]);
    expect_rules("concurrency_allowed.rs", "router", &[]);
}

// ---- lexer regressions pinned as fixtures ----

#[test]
fn raw_identifiers_cannot_evade_rules() {
    // `.r#unwrap()` is the same call as `.unwrap()`; raw-identifier
    // spelling must not slip past no-panic, while `r#type`/`r#match`
    // used as ordinary bindings stay clean.
    expect_rules("lexer_raw_ident.rs", "core", &["no-panic"]);
}

#[test]
fn shebang_files_lex_cleanly() {
    expect_rules("lexer_shebang.rs", "core", &[]);
}

// ---- scope checks: fixtures are inert outside their rule's crates ----

#[test]
fn rules_respect_crate_scopes() {
    // `bench` is outside every scope exercised here except no-print and
    // obs-schema; the panic/float/cast/determinism fixtures are silent.
    expect_rules("no_panic_violating.rs", "bench", &[]);
    expect_rules("float_eq_violating.rs", "bench", &[]);
    expect_rules("no_as_cast_violating.rs", "bench", &[]);
    expect_rules("determinism_violating.rs", "bench", &[]);
    expect_rules("concurrency_violating.rs", "bench", &[]);
    // `geom` hosts the tolerance helpers and is exempt from float-eq.
    expect_rules("float_eq_violating.rs", "geom", &[]);
}
