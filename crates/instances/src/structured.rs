//! Structured placement generators: sink distributions that stress the
//! algorithms differently from uniform clouds.
//!
//! Real placements are rarely uniform: registers cluster near their logic
//! cones, standard cells sit in rows, and I/O sinks ring the die. These
//! generators reproduce those shapes deterministically, for evaluation
//! breadth beyond the paper's uniform suites.

use bmst_geom::{Net, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sinks grouped into `clusters` Gaussian-ish blobs spread over the die,
/// the source at the die centre.
///
/// Cluster placements are the adversarial middle ground between the
/// paper's p1 (one far cluster) and uniform clouds: bounded constructions
/// must choose between chaining within blobs and spokes between them.
///
/// # Panics
///
/// Panics if `clusters == 0` or `sinks_per_cluster == 0`, or if `side` is
/// not positive and finite.
#[allow(clippy::expect_used)] // finite-coordinate invariant, justified inline
pub fn clustered_net(clusters: usize, sinks_per_cluster: usize, side: f64, seed: u64) -> Net {
    assert!(
        clusters > 0 && sinks_per_cluster > 0,
        "need at least one sink"
    );
    assert!(side.is_finite() && side > 0.0, "die side must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let spread = side / (clusters as f64).sqrt() / 12.0;
    let mut pts = vec![Point::new(side / 2.0, side / 2.0)];
    for _ in 0..clusters {
        let cx = rng.gen_range(0.1 * side..0.9 * side);
        let cy = rng.gen_range(0.1 * side..0.9 * side);
        for _ in 0..sinks_per_cluster {
            // Triangular-ish jitter: the sum of two uniforms concentrates
            // sinks near the cluster centre.
            let dx = (rng.gen_range(-1.0..1.0f64) + rng.gen_range(-1.0..1.0)) * spread;
            let dy = (rng.gen_range(-1.0..1.0f64) + rng.gen_range(-1.0..1.0)) * spread;
            pts.push(Point::new(
                (cx + dx).clamp(0.0, side),
                (cy + dy).clamp(0.0, side),
            ));
        }
    }
    // lint: allow(no-panic) — generators draw from finite ranges, so coordinates are finite
    Net::with_source_first(pts).expect("generated points are finite")
}

/// Standard-cell-row placement: sinks on `rows` horizontal rows with
/// snapped y coordinates and random x, the source on the middle row's left
/// edge (a typical clock/scan entry point).
///
/// Row placements make the Hanan grid degenerate (few distinct y values) —
/// the regime the paper notes keeps Steiner grids small in practice.
///
/// # Panics
///
/// Panics if `rows == 0` or `sinks == 0`, or `side` is not positive/finite.
#[allow(clippy::expect_used)] // finite-coordinate invariant, justified inline
pub fn row_net(rows: usize, sinks: usize, side: f64, seed: u64) -> Net {
    assert!(rows > 0 && sinks > 0, "need rows and sinks");
    assert!(side.is_finite() && side > 0.0, "die side must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let row_pitch = side / rows as f64;
    let mid_row_y = (rows / 2) as f64 * row_pitch;
    let mut pts = vec![Point::new(0.0, mid_row_y)];
    for _ in 0..sinks {
        let row = rng.gen_range(0..rows);
        pts.push(Point::new(rng.gen_range(0.0..side), row as f64 * row_pitch));
    }
    // lint: allow(no-panic) — generators draw from finite ranges, so coordinates are finite
    Net::with_source_first(pts).expect("generated points are finite")
}

/// Sinks on a jittered ring around a central source (pad-ring style, and
/// the generalisation of the paper's p4).
///
/// # Panics
///
/// Panics if `sinks == 0` or `radius` is not positive/finite.
#[allow(clippy::expect_used)] // finite-coordinate invariant, justified inline
pub fn ring_net(sinks: usize, radius: f64, jitter: f64, seed: u64) -> Net {
    assert!(sinks > 0, "need sinks");
    assert!(
        radius.is_finite() && radius > 0.0,
        "radius must be positive"
    );
    assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pts = vec![Point::new(0.0, 0.0)];
    for i in 0..sinks {
        let ang = std::f64::consts::TAU * (i as f64 + rng.gen_range(0.0..0.5)) / sinks as f64;
        let r = radius * (1.0 + jitter * rng.gen_range(-1.0..1.0));
        pts.push(Point::new(r * ang.cos(), r * ang.sin()));
    }
    // lint: allow(no-panic) — generators draw from finite ranges, so coordinates are finite
    Net::with_source_first(pts).expect("generated points are finite")
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    #[test]
    fn clustered_counts_and_bounds() {
        let net = clustered_net(4, 5, 100.0, 3);
        assert_eq!(net.num_sinks(), 20);
        let bb = net.bounding_box();
        assert!(bb.lo.x >= 0.0 && bb.hi.x <= 100.0);
        assert!(bb.lo.y >= 0.0 && bb.hi.y <= 100.0);
        assert_eq!(net, clustered_net(4, 5, 100.0, 3));
        assert_ne!(net, clustered_net(4, 5, 100.0, 4));
    }

    #[test]
    fn clustered_really_clusters() {
        // Nearest-neighbour distances must be far below the uniform
        // expectation for the same density.
        let net = clustered_net(3, 10, 100.0, 7);
        let mut nn_total = 0.0;
        for i in net.sinks() {
            let nn = net
                .sinks()
                .filter(|&j| j != i)
                .map(|j| net.dist(i, j))
                .fold(f64::INFINITY, f64::min);
            nn_total += nn;
        }
        let nn_avg = nn_total / net.num_sinks() as f64;
        // Uniform 30 points on 100x100 would average ~9-10 apart; clusters
        // compress that severalfold.
        assert!(nn_avg < 6.0, "average nearest neighbour {nn_avg}");
    }

    #[test]
    fn rows_snap_y() {
        let net = row_net(5, 30, 100.0, 11);
        assert_eq!(net.num_sinks(), 30);
        let pitch = 20.0;
        for v in net.sinks() {
            let y = net.point(v).y;
            let snapped = (y / pitch).round() * pitch;
            assert!((y - snapped).abs() < 1e-9, "y = {y} not on a row");
        }
        // Few distinct y values -> small Hanan grid (the property we want).
        let distinct_y: std::collections::HashSet<u64> =
            net.points().iter().map(|p| p.y.to_bits()).collect();
        assert!(distinct_y.len() <= 6);
    }

    #[test]
    fn ring_surrounds_source() {
        let net = ring_net(16, 50.0, 0.1, 9);
        assert_eq!(net.num_sinks(), 16);
        for v in net.sinks() {
            let d = net.point(v).euclidean(Point::new(0.0, 0.0));
            assert!((40.0..=60.0).contains(&d), "sink {v} at distance {d}");
        }
        // All four quadrants hit.
        let quadrants: std::collections::HashSet<(bool, bool)> = net
            .sinks()
            .map(|i| (net.point(i).x >= 0.0, net.point(i).y >= 0.0))
            .collect();
        assert_eq!(quadrants.len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one sink")]
    fn zero_clusters_panic() {
        clustered_net(0, 5, 100.0, 1);
    }

    #[test]
    #[should_panic(expected = "jitter")]
    fn bad_jitter_panics() {
        ring_net(4, 10.0, 1.5, 1);
    }
}
