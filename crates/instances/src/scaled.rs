//! Scaling-study instance generators: nets sized for 100–50k sinks at
//! constant point density, so n-sweeps measure algorithmic scaling rather
//! than changing geometry.
//!
//! The die side grows as `sqrt(n)` (10 units of side per sqrt-sink), which
//! keeps expected nearest-neighbour distance roughly constant across sizes
//! — the regime the paper's Table 2 benchmarks and the sparsification
//! papers in PAPERS.md assume. Four styles cover the placement shapes a
//! router actually sees (plus one adversarial stress case):
//!
//! * [`ScaleStyle::Uniform`] — i.i.d. uniform cloud, the baseline;
//! * [`ScaleStyle::Clustered`] — Gaussian-ish blobs around `~sqrt(n)`
//!   seeded centres, modelling macro-dominated placements;
//! * [`ScaleStyle::Grid`] — jittered lattice, modelling datapath rows;
//! * [`ScaleStyle::Pathological`] — half the sinks exactly collinear, the
//!   rest packed into a near-degenerate cluster, stressing geometric
//!   acceleration structures that assume benign density.
//!
//! All generators are `O(n)`, fully determined by `(n, seed, style)`, and
//! put the source at node 0 in the die centre.

use bmst_geom::{Net, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Placement style for [`scaled_net`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScaleStyle {
    /// I.i.d. uniform over the die.
    Uniform,
    /// Sinks gathered into `~sqrt(n)` uniform-square blobs.
    Clustered,
    /// Jittered lattice: one sink per cell, offset up to 30% of the pitch.
    Grid,
    /// Adversarial layout for geometric indexes: half the sinks sit exactly
    /// on one horizontal line, the other half are crammed into a cluster
    /// whose diameter is a millionth of the die side.
    Pathological,
}

impl ScaleStyle {
    /// All styles, for sweep drivers. `Pathological` is deliberately last so
    /// drivers that sample `ALL[i % 3]` keep their historical composition.
    pub const ALL: [ScaleStyle; 4] = [
        ScaleStyle::Uniform,
        ScaleStyle::Clustered,
        ScaleStyle::Grid,
        ScaleStyle::Pathological,
    ];

    /// Stable lowercase name (used in bench record keys).
    pub fn name(self) -> &'static str {
        match self {
            ScaleStyle::Uniform => "uniform",
            ScaleStyle::Clustered => "clustered",
            ScaleStyle::Grid => "grid",
            ScaleStyle::Pathological => "pathological",
        }
    }
}

/// Die side for `n` sinks: `10 * sqrt(n)`, clamped to at least 10, so
/// density stays constant as `n` grows.
fn die_side(num_sinks: usize) -> f64 {
    #[allow(clippy::cast_precision_loss)]
    // lint: allow(no-as-cast) — usize→f64 for geometry sizing; exact below 2^53
    let n = num_sinks.max(1) as f64;
    10.0 * n.sqrt()
}

/// A deterministic `n`-sink net for scaling studies: constant density,
/// source at node 0 in the die centre, style-dependent sink placement.
///
/// # Panics
///
/// Never for `num_sinks` in the supported range (the generators draw from
/// finite ranges); the internal `expect` guards the finite-coordinate
/// invariant of [`Net::with_source_first`].
#[allow(clippy::expect_used)] // finite-coordinate invariant, justified inline
pub fn scaled_net(num_sinks: usize, seed: u64, style: ScaleStyle) -> Net {
    let side = die_side(num_sinks);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5CA1_EDBE_u64.rotate_left(style as u32 * 8));
    let mut pts = Vec::with_capacity(num_sinks + 1);
    // Source first (node 0), centred in the die.
    pts.push(Point::new(side / 2.0, side / 2.0));
    match style {
        ScaleStyle::Uniform => {
            for _ in 0..num_sinks {
                pts.push(Point::new(
                    rng.gen_range(0.0..side),
                    rng.gen_range(0.0..side),
                ));
            }
        }
        ScaleStyle::Clustered => {
            // ~sqrt(n) blobs whose width is ~8% of the die: dense locally,
            // spread globally.
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            // lint: allow(no-as-cast) — f64→usize of a sqrt of a small count, always in range
            let clusters = ((num_sinks.max(1) as f64).sqrt().ceil() as usize).max(1);
            let spread = (side * 0.08).max(1.0);
            let centres: Vec<Point> = (0..clusters)
                .map(|_| {
                    Point::new(
                        rng.gen_range(spread..(side - spread).max(spread + 1.0)),
                        rng.gen_range(spread..(side - spread).max(spread + 1.0)),
                    )
                })
                .collect();
            for i in 0..num_sinks {
                let c = centres[i % clusters];
                pts.push(Point::new(
                    (c.x + rng.gen_range(-spread..spread)).clamp(0.0, side),
                    (c.y + rng.gen_range(-spread..spread)).clamp(0.0, side),
                ));
            }
        }
        ScaleStyle::Grid => {
            // Smallest square lattice with >= n cells; fill row-major and
            // jitter each sink within 30% of the pitch.
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            // lint: allow(no-as-cast) — f64→usize of a sqrt of a small count, always in range
            let cols = ((num_sinks.max(1) as f64).sqrt().ceil() as usize).max(1);
            #[allow(clippy::cast_precision_loss)]
            // lint: allow(no-as-cast) — usize→f64 for geometry sizing; exact below 2^53
            let pitch = side / cols as f64;
            let jitter = pitch * 0.3;
            for i in 0..num_sinks {
                #[allow(clippy::cast_precision_loss)]
                // lint: allow(no-as-cast) — usize→f64 for geometry sizing; exact below 2^53
                let (cx, cy) = (
                    ((i % cols) as f64 + 0.5) * pitch,
                    ((i / cols) as f64 + 0.5) * pitch,
                );
                pts.push(Point::new(
                    (cx + rng.gen_range(-jitter..jitter)).clamp(0.0, side),
                    (cy + rng.gen_range(-jitter..jitter)).clamp(0.0, side),
                ));
            }
        }
        ScaleStyle::Pathological => {
            // Worst case for grid-bucket indexes: the first half shares one
            // exact y (an entire row of occupied cells on one line), the
            // second half collapses into a cluster ~1e-6 of the die wide
            // (thousands of points in a single cell).
            let on_line = num_sinks / 2;
            let line_y = side / 2.0;
            for _ in 0..on_line {
                pts.push(Point::new(rng.gen_range(0.0..side), line_y));
            }
            // `die_side` clamps to >= 10, so `blob` is always positive.
            let blob = side * 1e-6;
            let centre = Point::new(side * 0.25, side * 0.75);
            for _ in on_line..num_sinks {
                pts.push(Point::new(
                    centre.x + rng.gen_range(-blob..blob),
                    centre.y + rng.gen_range(-blob..blob),
                ));
            }
        }
    }
    // lint: allow(no-panic) — generators draw from finite ranges, so coordinates are finite
    Net::with_source_first(pts).expect("generated points are finite")
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    #[test]
    fn sizes_and_source_position() {
        for style in ScaleStyle::ALL {
            let net = scaled_net(100, 1, style);
            assert_eq!(net.num_sinks(), 100, "{style:?}");
            assert_eq!(net.source(), 0);
            let side = die_side(100);
            assert_eq!(net.points()[0], Point::new(side / 2.0, side / 2.0));
            let bb = net.bounding_box();
            assert!(bb.hi.x <= side && bb.hi.y <= side, "{style:?}");
            assert!(bb.lo.x >= 0.0 && bb.lo.y >= 0.0, "{style:?}");
        }
    }

    #[test]
    fn deterministic_per_seed_and_style() {
        for style in ScaleStyle::ALL {
            assert_eq!(scaled_net(64, 9, style), scaled_net(64, 9, style));
            assert_ne!(scaled_net(64, 9, style), scaled_net(64, 10, style));
        }
        // Styles must not alias each other under the same seed.
        assert_ne!(
            scaled_net(64, 9, ScaleStyle::Uniform),
            scaled_net(64, 9, ScaleStyle::Clustered)
        );
        assert_ne!(
            scaled_net(64, 9, ScaleStyle::Uniform),
            scaled_net(64, 9, ScaleStyle::Grid)
        );
        assert_ne!(
            scaled_net(64, 9, ScaleStyle::Uniform),
            scaled_net(64, 9, ScaleStyle::Pathological)
        );
    }

    #[test]
    fn density_is_roughly_constant() {
        // Side grows as sqrt(n): quadrupling n doubles the side.
        assert!((die_side(400) / die_side(100) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn style_names_are_stable() {
        assert_eq!(ScaleStyle::Uniform.name(), "uniform");
        assert_eq!(ScaleStyle::Clustered.name(), "clustered");
        assert_eq!(ScaleStyle::Grid.name(), "grid");
        assert_eq!(ScaleStyle::Pathological.name(), "pathological");
    }

    #[test]
    fn pathological_layout_shape() {
        let net = scaled_net(1000, 7, ScaleStyle::Pathological);
        let side = die_side(1000);
        let pts = net.points();
        // First half (after the source) collinear on y = side/2.
        let on_line = pts[1..=500].iter().filter(|p| p.y == side / 2.0).count();
        assert_eq!(on_line, 500);
        // Second half confined to a blob of diameter ~2e-6 * side.
        let blob = side * 1e-6;
        for p in &pts[501..] {
            assert!((p.x - side * 0.25).abs() <= blob, "{p:?}");
            assert!((p.y - side * 0.75).abs() <= blob, "{p:?}");
        }
    }

    #[test]
    fn pathological_snapshot_is_pinned() {
        // Fixed-seed snapshot: any change to the generator (RNG stream,
        // layout constants, ordering) must show up here as a diff, because
        // bench records and golden tests key off these exact coordinates.
        let net = scaled_net(4, 42, ScaleStyle::Pathological);
        let rendered: Vec<String> = net
            .points()
            .iter()
            .map(|p| format!("({:?}, {:?})", p.x, p.y))
            .collect();
        assert_eq!(
            rendered,
            [
                "(10.0, 10.0)",
                "(16.886500435780448, 10.0)",
                "(15.617418478303438, 10.0)",
                "(5.000002818493857, 14.999981718362438)",
                "(4.999998125818847, 15.000000072886124)",
            ],
            "Pathological generator output drifted for (n=4, seed=42)"
        );
    }

    #[test]
    fn pathological_scales_to_a_million_sinks() {
        // The adversarial generator must stay O(n) like the benign ones:
        // a 1M-sink net generates in well under a second.
        let net = scaled_net(1_000_000, 5, ScaleStyle::Pathological);
        assert_eq!(net.num_sinks(), 1_000_000);
        let net = scaled_net(10_000, 5, ScaleStyle::Pathological);
        assert_eq!(net.num_sinks(), 10_000);
    }

    #[test]
    fn large_sizes_stay_linear_time() {
        // 50k sinks must generate near-instantly (O(n)); this is the upper
        // end of the supported range.
        let net = scaled_net(50_000, 2, ScaleStyle::Grid);
        assert_eq!(net.num_sinks(), 50_000);
    }

    #[test]
    fn tiny_nets_are_valid() {
        for style in ScaleStyle::ALL {
            let net = scaled_net(1, 3, style);
            assert_eq!(net.num_sinks(), 1);
        }
    }
}
