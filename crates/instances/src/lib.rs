//! Benchmark instances for the BMST reproduction (paper §7).
//!
//! The paper evaluates on four benchmark families:
//!
//! 1. **p1-p4** — hand-constructed adversarial configurations ("generated
//!    specially to test extreme results"). The paper describes each one's
//!    generative rule (Figure 13 shape, Figure 1 shape, a circle of diameter
//!    20); we rebuild them from those descriptions.
//! 2. **pr1, pr2** — sink placements of the MCNC Primary1/Primary2
//!    benchmarks. The original placements are not redistributable, so we
//!    substitute seeded uniform sink clouds with the same terminal counts
//!    and a die size chosen to match the published R scale (see DESIGN.md).
//! 3. **r1-r5** — Tsay's zero-skew benchmarks, substituted the same way. A
//!    source node is appended exactly as the paper appended one.
//! 4. **Random nets** — 50 seeded uniform cases per net size in
//!    {5, 8, 10, 12, 15}, the paper's own methodology.
//!
//! Every generator is deterministic (fixed or caller-provided seeds).
//!
//! # Examples
//!
//! ```
//! use bmst_instances::{random_net, Benchmark};
//!
//! let p1 = Benchmark::P1.build();
//! assert_eq!(p1.len(), 6); // matches the paper's Table 1 row
//!
//! let net = random_net(10, 42);
//! assert_eq!(net.num_sinks(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod scaled;
mod special;
mod stats;
mod structured;
mod synthetic;

pub use scaled::{scaled_net, ScaleStyle};
pub use special::{figure13_family, p1, p1_with_cluster, p2, p3, p4};
pub use stats::InstanceStats;
pub use structured::{clustered_net, ring_net, row_net};
pub use synthetic::{random_net, random_suite, uniform_cloud};

use bmst_geom::Net;

/// The named benchmarks of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Far tight cluster (Figure 13 shape), 6 points.
    P1,
    /// P1 plus an intermediate sink, 8 points.
    P2,
    /// The Figure 1 BPRIM-pathology layout, 17 points.
    P3,
    /// Sinks scattered around a circle of diameter 20, 31 points.
    P4,
    /// MCNC Primary1 substitute, 270 points.
    Pr1,
    /// MCNC Primary2 substitute, 604 points.
    Pr2,
    /// Tsay r1 substitute, 268 points.
    R1,
    /// Tsay r2 substitute, 599 points.
    R2,
    /// Tsay r3 substitute, 863 points.
    R3,
    /// Tsay r4 substitute, 1904 points.
    R4,
    /// Tsay r5 substitute, 3102 points.
    R5,
}

impl Benchmark {
    /// All benchmarks, in the paper's Table 1 order.
    pub const ALL: [Benchmark; 11] = [
        Benchmark::P1,
        Benchmark::P2,
        Benchmark::P3,
        Benchmark::P4,
        Benchmark::Pr1,
        Benchmark::Pr2,
        Benchmark::R1,
        Benchmark::R2,
        Benchmark::R3,
        Benchmark::R4,
        Benchmark::R5,
    ];

    /// The four small special benchmarks (suitable for the exact methods).
    pub const SPECIAL: [Benchmark; 4] =
        [Benchmark::P1, Benchmark::P2, Benchmark::P3, Benchmark::P4];

    /// The large benchmarks of the paper's Table 3.
    pub const LARGE: [Benchmark; 7] = [
        Benchmark::Pr1,
        Benchmark::Pr2,
        Benchmark::R1,
        Benchmark::R2,
        Benchmark::R3,
        Benchmark::R4,
        Benchmark::R5,
    ];

    /// The benchmark's name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::P1 => "p1",
            Benchmark::P2 => "p2",
            Benchmark::P3 => "p3",
            Benchmark::P4 => "p4",
            Benchmark::Pr1 => "pr1",
            Benchmark::Pr2 => "pr2",
            Benchmark::R1 => "r1",
            Benchmark::R2 => "r2",
            Benchmark::R3 => "r3",
            Benchmark::R4 => "r4",
            Benchmark::R5 => "r5",
        }
    }

    /// Total number of terminals (source included), matching Table 1's
    /// "# of pts." column.
    pub fn num_points(self) -> usize {
        match self {
            Benchmark::P1 => 6,
            Benchmark::P2 => 8,
            Benchmark::P3 => 17,
            Benchmark::P4 => 31,
            Benchmark::Pr1 => 270,
            Benchmark::Pr2 => 604,
            Benchmark::R1 => 268,
            Benchmark::R2 => 599,
            Benchmark::R3 => 863,
            Benchmark::R4 => 1904,
            Benchmark::R5 => 3102,
        }
    }

    /// Builds the benchmark net. Deterministic (fixed seeds for the
    /// synthetic substitutes).
    pub fn build(self) -> Net {
        match self {
            Benchmark::P1 => p1(),
            Benchmark::P2 => p2(),
            Benchmark::P3 => p3(),
            Benchmark::P4 => p4(),
            // Coordinate scales chosen so R lands near the paper's Table 1
            // values (542, 981, 58 700, 86 554, 85 509, 124 357, 138 318).
            Benchmark::Pr1 => uniform_cloud(269, 400.0, 0xBEEF_0001),
            Benchmark::Pr2 => uniform_cloud(603, 700.0, 0xBEEF_0002),
            Benchmark::R1 => uniform_cloud(267, 42_000.0, 0xBEEF_0101),
            Benchmark::R2 => uniform_cloud(598, 62_000.0, 0xBEEF_0102),
            Benchmark::R3 => uniform_cloud(862, 61_000.0, 0xBEEF_0103),
            Benchmark::R4 => uniform_cloud(1903, 89_000.0, 0xBEEF_0104),
            Benchmark::R5 => uniform_cloud(3101, 99_000.0, 0xBEEF_0105),
        }
    }

    /// Table 1 statistics for this benchmark.
    pub fn stats(self) -> InstanceStats {
        InstanceStats::of(self.name(), &self.build())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    #[test]
    fn point_counts_match_table1() {
        for b in Benchmark::SPECIAL {
            assert_eq!(b.build().len(), b.num_points(), "{}", b.name());
        }
        // The large substitutes are validated by count without building the
        // biggest ones repeatedly.
        assert_eq!(Benchmark::Pr1.build().len(), 270);
        assert_eq!(Benchmark::R1.build().len(), 268);
    }

    #[test]
    fn builds_are_deterministic() {
        let a = Benchmark::Pr1.build();
        let b = Benchmark::Pr1.build();
        assert_eq!(a, b);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Benchmark::ALL.len());
    }
}
