//! Seeded synthetic instance generators: uniform clouds (pr*/r*
//! substitutes) and the paper's random net suite.

use bmst_geom::{Net, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A uniform random sink cloud in the square `[0, side]^2` with an appended
/// source, mirroring how the paper appended a source to the r* and primary*
/// benchmarks ("we added one more node as the source ... because they did
/// not come with a source").
///
/// The source is drawn from the same distribution (uniform in the die), and
/// node 0 is the source as everywhere in this workspace.
///
/// # Panics
///
/// Panics if `side` is not positive and finite.
#[allow(clippy::expect_used)] // finite-coordinate invariant, justified inline
pub fn uniform_cloud(num_sinks: usize, side: f64, seed: u64) -> Net {
    assert!(
        side.is_finite() && side > 0.0,
        "die side must be positive, got {side}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pts = Vec::with_capacity(num_sinks + 1);
    // Source first (node 0).
    pts.push(Point::new(
        rng.gen_range(0.0..side),
        rng.gen_range(0.0..side),
    ));
    for _ in 0..num_sinks {
        pts.push(Point::new(
            rng.gen_range(0.0..side),
            rng.gen_range(0.0..side),
        ));
    }
    // lint: allow(no-panic) — generators draw from finite ranges, so coordinates are finite
    Net::with_source_first(pts).expect("generated points are finite")
}

/// One random test net with `num_sinks` sinks, as used for the paper's
/// benchmark set (4). Uniform in `[0, 100]^2`, source included in the draw.
pub fn random_net(num_sinks: usize, seed: u64) -> Net {
    uniform_cloud(num_sinks, 100.0, seed)
}

/// The paper's random suite: `count` seeded nets of `num_sinks` sinks
/// (the paper uses 50 cases per size in {5, 8, 10, 12, 15}).
///
/// Seeds are derived as `base_seed + index`, so suites are reproducible and
/// non-overlapping across sizes when `base_seed` differs.
pub fn random_suite(num_sinks: usize, count: usize, base_seed: u64) -> Vec<Net> {
    (0..count)
        .map(|i| random_net(num_sinks, base_seed + i as u64))
        .collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    #[test]
    fn cloud_has_requested_size_and_bounds() {
        let net = uniform_cloud(25, 50.0, 7);
        assert_eq!(net.len(), 26);
        assert_eq!(net.source(), 0);
        let bb = net.bounding_box();
        assert!(bb.lo.x >= 0.0 && bb.hi.x <= 50.0);
        assert!(bb.lo.y >= 0.0 && bb.hi.y <= 50.0);
    }

    #[test]
    fn same_seed_same_net() {
        assert_eq!(uniform_cloud(10, 100.0, 3), uniform_cloud(10, 100.0, 3));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(uniform_cloud(10, 100.0, 3), uniform_cloud(10, 100.0, 4));
    }

    #[test]
    fn suite_counts_and_determinism() {
        let suite = random_suite(8, 5, 1000);
        assert_eq!(suite.len(), 5);
        for net in &suite {
            assert_eq!(net.num_sinks(), 8);
        }
        assert_eq!(suite, random_suite(8, 5, 1000));
        assert_ne!(suite[0], suite[1]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_side_panics() {
        uniform_cloud(5, 0.0, 1);
    }

    #[test]
    fn zero_sinks_is_a_lonely_source() {
        let net = uniform_cloud(0, 10.0, 9);
        assert_eq!(net.len(), 1);
        assert_eq!(net.source_radius(), 0.0);
    }
}
