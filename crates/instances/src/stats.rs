//! Table 1 instance statistics.

use std::fmt;

use bmst_geom::Net;

/// The characteristics the paper reports per benchmark in Table 1:
/// point count, complete-graph edge count, `R` (farthest direct source-sink
/// distance) and `r` (nearest).
///
/// # Examples
///
/// ```
/// use bmst_instances::{Benchmark, InstanceStats};
///
/// let s = Benchmark::P1.stats();
/// assert_eq!(s.points, 6);
/// assert_eq!(s.edges, 15);
/// assert!(s.r_far > s.r_near);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceStats {
    /// Benchmark name.
    pub name: String,
    /// Number of terminals (source included).
    pub points: usize,
    /// Number of edges of the complete terminal graph.
    pub edges: usize,
    /// `R`: direct distance from the source to the farthest sink.
    pub r_far: f64,
    /// `r`: direct distance from the source to the nearest sink.
    pub r_near: f64,
}

impl InstanceStats {
    /// Computes the statistics of a net.
    pub fn of(name: &str, net: &Net) -> Self {
        InstanceStats {
            name: name.to_owned(),
            points: net.len(),
            edges: net.complete_edge_count(),
            r_far: net.source_radius(),
            r_near: net.source_nearest(),
        }
    }
}

impl fmt::Display for InstanceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<6} {:>8} {:>10} {:>12.1} {:>10.1}",
            self.name, self.points, self.edges, self.r_far, self.r_near
        )
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use bmst_geom::Point;

    #[test]
    fn stats_of_simple_net() {
        let net = Net::with_source_first(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(0.0, 7.0),
        ])
        .unwrap();
        let s = InstanceStats::of("toy", &net);
        assert_eq!(s.points, 3);
        assert_eq!(s.edges, 3);
        assert_eq!(s.r_far, 7.0);
        assert_eq!(s.r_near, 3.0);
        let line = s.to_string();
        assert!(line.contains("toy"));
        assert!(line.contains("7.0"));
    }
}
