//! The paper's hand-constructed adversarial benchmarks p1-p4.

use bmst_geom::{Net, Point};

/// p1: the Figure 13 configuration — a tight cluster of 5 sinks far from
/// the source.
///
/// The sinks sit on a small ring around `(20.2, 0)` so their direct source
/// distances span `[R - 0.4, R]` with `R ~ 20.4` and `r ~ 20.0` (Table 1).
/// At `eps = 0` no intra-cluster chaining is admissible and the BKT
/// degenerates to spokes, exhibiting the paper's
/// `cost(BKT) / cost(MST) ~ N` worst case; at `eps = inf` the MST chains
/// the cluster for cost barely above `R`.
pub fn p1() -> Net {
    p1_with_cluster(5)
}

/// The p1 family with a configurable cluster size (used by the Figure 13
/// pathology sweep, where `cost(BKT) / cost(MST)` grows linearly in the
/// number of sinks).
///
/// # Panics
///
/// Panics if `cluster == 0`.
#[allow(clippy::expect_used)] // finite-coordinate invariant, justified inline
pub fn p1_with_cluster(cluster: usize) -> Net {
    assert!(cluster > 0, "cluster must have at least one sink");
    let mut pts = vec![Point::new(0.0, 0.0)];
    // Sinks strung along the L1 circle band: sink i sits at
    // (r_i - y_i, y_i) with radius r_i rising from 20.0 to 20.4 and
    // vertical offset y_i = 0.75 * i, so direct distances span
    // [20.0, 20.4] while neighbouring sinks are ~1.4 apart — more than the
    // 0.4 slack that eps = 0 allows, so no intra-cluster merge is ever
    // feasible and the bounded tree degenerates to spokes.
    let denom = (cluster - 1).max(1) as f64;
    for i in 0..cluster {
        let r = 20.0 + 0.4 * i as f64 / denom;
        let y = 0.75 * i as f64;
        pts.push(Point::new(r - y, y));
    }
    // lint: allow(no-panic) — coordinates are finite literals/arithmetic on finite inputs
    Net::with_source_first(pts).expect("constructed points are finite")
}

/// A point on the L1 circle (diamond) of the given radius, parameterised by
/// `t` in `[0, 1)` walking the perimeter.
fn diamond_point(radius: f64, t: f64) -> (f64, f64) {
    let s = t.fract() * 4.0;
    // Branch on the quadrant instead of casting: s is in [0, 4).
    let leg = if s < 1.0 {
        0
    } else if s < 2.0 {
        1
    } else if s < 3.0 {
        2
    } else {
        3
    };
    let f = s.fract();
    match leg {
        0 => (radius * (1.0 - f), radius * f),  // (r,0) -> (0,r)
        1 => (-radius * f, radius * (1.0 - f)), // (0,r) -> (-r,0)
        2 => (radius * (f - 1.0), -radius * f), // (-r,0) -> (0,-r)
        _ => (radius * f, radius * (f - 1.0)),  // (0,-r) -> (r,0)
    }
}

/// p2: p1's far cluster (grown to 6 sinks) plus one intermediate sink
/// halfway between the source and the cluster, for 8 points total with
/// `r ~ 10` (Table 1).
///
/// The intermediate sink tempts tree-growing heuristics into routing the
/// cluster through it, consuming the path budget; BKRUS's cluster-first
/// merging avoids the trap.
#[allow(clippy::expect_used)] // finite-coordinate invariant, justified inline
pub fn p2() -> Net {
    let cluster = p1_with_cluster(6);
    let mut pts = vec![cluster.point(0), Point::new(10.0, 0.0)];
    pts.extend((1..cluster.len()).map(|i| cluster.point(i)));
    // lint: allow(no-panic) — coordinates are finite literals/arithmetic on finite inputs
    Net::with_source_first(pts).expect("constructed points are finite")
}

/// p3: the Figure 1 configuration — 17 points: the source, one near sink
/// (`r ~ 6`), and a 5x3 far cluster (`R ~ 16`) where BPRIM's per-node
/// budget collapses into direct source spokes while BKRUS chains the
/// cluster.
#[allow(clippy::expect_used)] // finite-coordinate invariant, justified inline
pub fn p3() -> Net {
    // 17 points: the source, a ring of 15 sinks around (9.1, 0) at L1
    // radius 3 (direct distances 6.1 .. 12.1, so r = 6.1), and one far sink
    // at (16, 0) defining R = 16. BPRIM's per-node budget (eps * dist) is
    // tiny for the near-ring sinks, forcing them onto direct spokes, while
    // BKRUS's global budget (eps * R) lets it chain the whole ring.
    let mut pts = vec![Point::new(0.0, 0.0)];
    for i in 0..15 {
        let t = (i as f64 + 0.5) / 15.0;
        let (dx, dy) = diamond_point(3.0, t);
        pts.push(Point::new(9.1 + dx, dy));
    }
    pts.push(Point::new(16.0, 0.0));
    // lint: allow(no-panic) — coordinates are finite literals/arithmetic on finite inputs
    Net::with_source_first(pts).expect("constructed points are finite")
}

/// p4: 30 sinks scattered around a circle of diameter 20 with the source at
/// the centre (31 points, `R = 10.4`, `r = 5.8`, Table 1).
///
/// "Scattered" uses a deterministic low-discrepancy jitter of the radius so
/// the instance is reproducible without a random number generator.
#[allow(clippy::expect_used)] // finite-coordinate invariant, justified inline
pub fn p4() -> Net {
    let mut pts = vec![Point::new(0.0, 0.0)];
    for i in 0..30 {
        let ang = std::f64::consts::TAU * i as f64 / 30.0;
        // Radius jitter in [5.8, 10.4] via the golden-ratio sequence, so R
        // and r land on the paper's Table 1 values (10.4 and 5.8).
        let frac = (i as f64 * 0.618_033_988_749_895).fract();
        // Ensure the extremes are actually hit: indices 0 and 1 are pinned.
        let r = match i {
            0 => 10.4,
            1 => 5.8,
            _ => 5.8 + 4.6 * frac,
        };
        // Scale so the *L1* distance stays near r regardless of angle.
        let (c, s) = (ang.cos(), ang.sin());
        let l1 = c.abs() + s.abs();
        pts.push(Point::new(r * c / l1, r * s / l1));
    }
    // lint: allow(no-panic) — coordinates are finite literals/arithmetic on finite inputs
    Net::with_source_first(pts).expect("constructed points are finite")
}

/// The idealised Figure 13 family: `n` sinks all at *exactly* the same
/// direct distance `R` from the source, spread along a short arc of the L1
/// circle.
///
/// With `eps = 0` the bound equals `R`, so no sink can afford any detour at
/// all: even the optimal bounded tree is the star of `n` spokes, costing
/// `~ n * R`, while the MST chains the arc for `~ R` — the paper's
/// `cost(BKT)/cost(MST) ~ N` worst case is inherent to the problem.
///
/// # Panics
///
/// Panics if `n == 0`.
#[allow(clippy::expect_used)] // finite-coordinate invariant, justified inline
pub fn figure13_family(n: usize) -> Net {
    assert!(n > 0, "family needs at least one sink");
    let radius = 20.4;
    let mut pts = vec![Point::new(0.0, 0.0)];
    for i in 0..n {
        // Spread over a tenth of the diamond perimeter near (radius, 0).
        let t = 0.95 + 0.1 * (i as f64 + 0.5) / n as f64;
        let (dx, dy) = diamond_point(radius, t);
        pts.push(Point::new(dx, dy));
    }
    // lint: allow(no-panic) — coordinates are finite literals/arithmetic on finite inputs
    Net::with_source_first(pts).expect("constructed points are finite")
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    #[test]
    fn p1_shape_matches_table1() {
        let net = p1();
        assert_eq!(net.len(), 6);
        let r_far = net.source_radius();
        let r_near = net.source_nearest();
        assert!((r_far - 20.4).abs() < 0.05, "R = {r_far}");
        assert!((r_near - 20.0).abs() < 0.05, "r = {r_near}");
        assert_eq!(net.complete_edge_count(), 15);
    }

    #[test]
    fn p2_has_midway_sink() {
        let net = p2();
        assert_eq!(net.len(), 8);
        assert!((net.source_nearest() - 10.0).abs() < 1e-9);
        assert!((net.source_radius() - 20.4).abs() < 0.05);
        assert_eq!(net.complete_edge_count(), 28);
    }

    #[test]
    fn p3_shape_matches_table1() {
        let net = p3();
        assert_eq!(net.len(), 17);
        assert!((net.source_nearest() - 6.1).abs() < 0.05);
        assert!((net.source_radius() - 16.0).abs() < 0.5);
        assert_eq!(net.complete_edge_count(), 136);
    }

    #[test]
    fn p4_ring_around_source() {
        let net = p4();
        assert_eq!(net.len(), 31);
        assert!(
            net.source_radius() <= 10.4 + 0.1,
            "R = {}",
            net.source_radius()
        );
        assert!(net.source_nearest() >= 5.0, "r = {}", net.source_nearest());
        assert_eq!(net.complete_edge_count(), 465);
        // Every sink really surrounds the source: all four quadrants hit.
        let quadrants: std::collections::HashSet<(bool, bool)> = net
            .sinks()
            .map(|i| {
                let p = net.point(i);
                (p.x >= 0.0, p.y >= 0.0)
            })
            .collect();
        assert_eq!(quadrants.len(), 4);
    }

    #[test]
    fn p1_family_scales() {
        for n in [1, 3, 10, 25] {
            let net = p1_with_cluster(n);
            assert_eq!(net.num_sinks(), n);
            assert!(net.source_radius() <= 20.4 + 1e-9);
        }
    }

    #[test]
    fn diamond_point_stays_on_l1_circle() {
        for i in 0..16 {
            let (dx, dy) = diamond_point(0.2, i as f64 / 16.0);
            assert!((dx.abs() + dy.abs() - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least one sink")]
    fn empty_cluster_panics() {
        p1_with_cluster(0);
    }

    #[test]
    fn figure13_family_equidistant() {
        for n in [1, 5, 17] {
            let net = figure13_family(n);
            assert_eq!(net.num_sinks(), n);
            for v in net.sinks() {
                assert!((net.dist(0, v) - 20.4).abs() < 1e-9, "sink {v}");
            }
        }
    }

    #[test]
    fn p4_extremes_match_table1() {
        let net = p4();
        assert!((net.source_radius() - 10.4).abs() < 1e-9);
        assert!((net.source_nearest() - 5.8).abs() < 1e-9);
    }
}
