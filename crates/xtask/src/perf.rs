//! `cargo xtask check-perf <BENCH_*.json>` — the scaling-curve regression
//! gate over the `scaling.*` records `bench_trajectory` emits.
//!
//! Wall-clock comparisons across machines are noise, so the *default*
//! gates are machine-independent curve properties:
//!
//! * coverage — every required algorithm (BKRUS, BPRIM, router) has ≥ 3
//!   distinct sizes spanning ≥ 2 orders of magnitude (`max/min >= 100`);
//! * monotonicity — time at the largest size exceeds time at the
//!   smallest (a sweep whose big case is *faster* measured nothing);
//! * exponent budgets — the fitted `scaling.<algo>.exponent_milli` lies
//!   inside the algorithm's plausible band (e.g. BKRUS must stay below
//!   x^3.5; dropping under x^0.5 means the clock under-resolved);
//! * parallel sanity — `scaling.router.<n>.speedup_milli` at every size
//!   large enough to amortize thread startup, plus the honest
//!   `router.speedup_milli`, stay above the floor (parallel routing may
//!   not beat serial on single-core CI boxes, but it must never be
//!   catastrophically slower).
//!
//! `--against <baseline.json>` additionally compares every overlapping
//! `scaling.*.micros` record and fails when the current run regresses
//! beyond `--tolerance-pct` (default 50%) — an opt-in same-machine check
//! (CI compares against the committed baseline from the same runner
//! class, where only catastrophic regressions are meaningful).

use std::collections::BTreeMap;
use std::process::ExitCode;

use bmst_obs::json::Json;

/// Algorithms that must have a full scaling ladder, with their exponent
/// budgets in milli (fitted log-log slope x1000).
const REQUIRED: &[(&str, u64, u64)] = &[
    // (algo, min exponent_milli, max exponent_milli)
    //
    // The maxima lock in the sparse-supply + forest fast-reject wins from
    // the dense-era ~2600 fits: clean-machine measurements are ~2000 for
    // BKRUS (component-potential gating of condition 3-b) and ~1200 for
    // BPRIM (grid nearest-neighbor candidates), so these budgets fail any
    // change that reverts to dense-path scaling while leaving headroom for
    // runner noise.
    ("bkrus", 500, 2400),
    ("bprim", 500, 1800),
    ("router", 500, 2500),
];

/// Minimum `max(n)/min(n)` ratio: two orders of magnitude.
const MIN_SPAN_RATIO: u64 = 100;

/// Minimum distinct sizes per algorithm.
const MIN_SIZES: usize = 3;

/// Floor for serial/parallel wall x1000: parallel routing must never be
/// worse than ~1.4x slower than serial, even on a single-core runner.
const SPEEDUP_FLOOR_MILLI: u64 = 700;

/// Per-size speedup records are only gated at sizes with enough total
/// work to amortize thread-pool startup; the smallest ladder rungs sit
/// just above `parallel_min_terminals` where spawn overhead legitimately
/// dominates (that regime is what the `_toy` record documents).
const SPEEDUP_MIN_N: u64 = 1000;

/// Default `--against` tolerance: current micros may exceed baseline by
/// at most this percentage.
const DEFAULT_TOLERANCE_PCT: u64 = 50;

/// Entry point for `cargo xtask check-perf <file> [--against <baseline>
/// [--tolerance-pct N]]`.
pub fn run(args: &[String]) -> ExitCode {
    let mut file = None;
    let mut against = None;
    let mut tolerance_pct = DEFAULT_TOLERANCE_PCT;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--against" => match it.next() {
                Some(p) => against = Some(p.clone()),
                None => {
                    eprintln!("xtask check-perf: --against needs a file argument");
                    return ExitCode::FAILURE;
                }
            },
            "--tolerance-pct" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => tolerance_pct = v,
                None => {
                    eprintln!("xtask check-perf: --tolerance-pct needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            other if file.is_none() => file = Some(other.to_owned()),
            other => {
                eprintln!("xtask check-perf: unexpected argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = file else {
        eprintln!("xtask check-perf: expected a BENCH_*.json file argument");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask check-perf: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline_text = match &against {
        None => None,
        Some(p) => match std::fs::read_to_string(p) {
            Ok(t) => Some(t),
            Err(e) => {
                eprintln!("xtask check-perf: cannot read baseline {p}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    match validate_perf(&text, baseline_text.as_deref(), tolerance_pct) {
        Ok(summary) => {
            println!("xtask check-perf: {path} ok ({summary})");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("xtask check-perf: {path}: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// All counters across every record of a bench document, flattened.
/// `scaling.*` keys embed algorithm and size, so flattening cannot alias.
fn flat_counters(text: &str) -> Result<BTreeMap<String, u64>, String> {
    let json = Json::parse(text).map_err(|e| e.to_string())?;
    let records = json
        .get("records")
        .and_then(Json::as_arr)
        .ok_or("missing `records` array")?;
    let mut out = BTreeMap::new();
    for rec in records {
        let Some(counters) = rec.get("counters").and_then(Json::as_obj) else {
            continue;
        };
        for (k, v) in counters {
            if let Some(v) = v.as_f64() {
                // lint: allow(no-as-cast) — counters are emitted as u64; f64 round-trip is exact below 2^53
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                out.insert(k.clone(), v as u64);
            }
        }
    }
    Ok(out)
}

/// The `(n, micros)` sweep for one algorithm, parsed from
/// `scaling.<algo>.<n>.micros` counters.
fn sweep_of(counters: &BTreeMap<String, u64>, algo: &str) -> Vec<(u64, u64)> {
    let prefix = format!("scaling.{algo}.");
    let mut points: Vec<(u64, u64)> = counters
        .iter()
        .filter_map(|(k, &micros)| {
            let n = k
                .strip_prefix(&prefix)?
                .strip_suffix(".micros")?
                .parse()
                .ok()?;
            Some((n, micros))
        })
        .collect();
    points.sort_unstable();
    points
}

/// Validates the scaling records; returns a human summary on success.
fn validate_perf(text: &str, baseline: Option<&str>, tolerance_pct: u64) -> Result<String, String> {
    let counters = flat_counters(text)?;
    let mut ladder_sizes = Vec::new();
    for &(algo, exp_min, exp_max) in REQUIRED {
        let sweep = sweep_of(&counters, algo);
        if sweep.len() < MIN_SIZES {
            return Err(format!(
                "{algo}: {} scaling size(s), need >= {MIN_SIZES} \
                 (was the bench run with --quick?)",
                sweep.len()
            ));
        }
        let (n_min, t_min) = sweep[0];
        let (n_max, t_max) = sweep[sweep.len() - 1];
        if n_min == 0 || n_max / n_min < MIN_SPAN_RATIO {
            return Err(format!(
                "{algo}: sizes {n_min}..{n_max} span less than {MIN_SPAN_RATIO}x \
                 (need >= 2 orders of magnitude)"
            ));
        }
        if t_max <= t_min {
            return Err(format!(
                "{algo}: time at n={n_max} ({t_max}us) does not exceed time at \
                 n={n_min} ({t_min}us) — the sweep measured nothing"
            ));
        }
        let exp_key = format!("scaling.{algo}.exponent_milli");
        let exponent = *counters
            .get(&exp_key)
            .ok_or_else(|| format!("{algo}: missing `{exp_key}` fit record"))?;
        if exponent < exp_min || exponent > exp_max {
            return Err(format!(
                "{algo}: exponent {exponent} milli outside budget [{exp_min}, {exp_max}] \
                 — scaling curve regressed (or the clock under-resolved)"
            ));
        }
        ladder_sizes.push(sweep.len());

        if algo == "router" {
            for (n, _) in &sweep {
                let key = format!("scaling.router.{n}.speedup_milli");
                let speedup = *counters
                    .get(&key)
                    .ok_or_else(|| format!("router: missing `{key}`"))?;
                if *n >= SPEEDUP_MIN_N && speedup < SPEEDUP_FLOOR_MILLI {
                    return Err(format!(
                        "router: speedup at n={n} is {speedup} milli, \
                         below floor {SPEEDUP_FLOOR_MILLI}"
                    ));
                }
            }
        }
    }
    // The honest netlist comparison (the fixed `router.speedup_milli`)
    // must be present and above the floor too.
    let honest = *counters
        .get("router.speedup_milli")
        .ok_or("missing honest `router.speedup_milli` (netlist-jobs4 record)")?;
    if honest < SPEEDUP_FLOOR_MILLI {
        return Err(format!(
            "honest router.speedup_milli {honest} below floor {SPEEDUP_FLOOR_MILLI}"
        ));
    }

    let mut compared = 0usize;
    if let Some(baseline) = baseline {
        let base = flat_counters(baseline)?;
        for (key, &base_us) in base.iter().filter(|(k, _)| k.ends_with(".micros")) {
            let Some(&cur_us) = counters.get(key) else {
                continue; // ladders may legitimately change between runs
            };
            let budget = base_us.saturating_mul(100 + tolerance_pct) / 100;
            if cur_us > budget {
                return Err(format!(
                    "{key}: {cur_us}us regressed beyond baseline {base_us}us \
                     + {tolerance_pct}% tolerance"
                ));
            }
            compared += 1;
        }
    }

    let ladders: Vec<String> = REQUIRED
        .iter()
        .zip(&ladder_sizes)
        .map(|(&(algo, _, _), &len)| format!("{algo}:{len}"))
        .collect();
    let mut summary = format!("ladders {}", ladders.join(" "));
    if baseline.is_some() {
        summary.push_str(&format!(", {compared} record(s) within tolerance"));
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    /// A minimal document with complete ladders for all required algos.
    fn good_doc() -> String {
        let mut records = String::new();
        for (algo, base) in [("bkrus", 100u64), ("bprim", 300), ("router", 50)] {
            for (i, n) in [50u64, 500, 5000].iter().enumerate() {
                let micros = base * 10u64.pow(u32::try_from(i).unwrap() + 1);
                let mut counters =
                    format!("\"scaling.n\":{n},\"scaling.{algo}.{n}.micros\":{micros}");
                if algo == "router" {
                    counters.push_str(&format!(",\"scaling.router.{n}.speedup_milli\":950"));
                }
                records.push_str(&format!(
                    "{{\"bench\":\"scale-{n}\",\"algorithm\":\"{algo}\",\"counters\":{{{counters}}}}},"
                ));
            }
            // Exponent of t = c * n^1 ladders above: 10x time per 10x n.
            records.push_str(&format!(
                "{{\"bench\":\"scaling-fit\",\"algorithm\":\"{algo}\",\
                 \"counters\":{{\"scaling.{algo}.exponent_milli\":1000}}}},"
            ));
        }
        records.push_str(
            "{\"bench\":\"scaled-netlist\",\"algorithm\":\"netlist-jobs4\",\
             \"counters\":{\"router.speedup_milli\":940}}",
        );
        format!("{{\"schema\":\"bmst-bench-v1\",\"table\":\"table2\",\"records\":[{records}]}}")
    }

    #[test]
    fn complete_ladders_pass() {
        let summary = validate_perf(&good_doc(), None, 50).unwrap();
        assert!(summary.contains("bkrus:3"), "{summary}");
        assert!(summary.contains("router:3"), "{summary}");
    }

    #[test]
    fn short_ladder_fails() {
        let doc = good_doc().replace(",\"scaling.bkrus.5000.micros\":100000", "");
        let err = validate_perf(&doc, None, 50).unwrap_err();
        assert!(err.contains("bkrus"), "{err}");
        assert!(err.contains("size"), "{err}");
    }

    #[test]
    fn narrow_span_fails() {
        // Shift bkrus's big size down to 10x the smallest.
        let doc = good_doc().replace("scaling.bkrus.5000", "scaling.bkrus.400");
        let err = validate_perf(&doc, None, 50).unwrap_err();
        assert!(err.contains("orders of magnitude"), "{err}");
    }

    #[test]
    fn non_monotone_sweep_fails() {
        let doc = good_doc().replace(
            "\"scaling.bprim.5000.micros\":300000",
            "\"scaling.bprim.5000.micros\":1",
        );
        let err = validate_perf(&doc, None, 50).unwrap_err();
        assert!(err.contains("measured nothing"), "{err}");
    }

    #[test]
    fn exponent_budget_enforced() {
        let doc = good_doc().replace(
            "\"scaling.bprim.exponent_milli\":1000",
            "\"scaling.bprim.exponent_milli\":9000",
        );
        let err = validate_perf(&doc, None, 50).unwrap_err();
        assert!(err.contains("exponent"), "{err}");
        let doc = good_doc().replace(
            "\"scaling.router.exponent_milli\":1000",
            "\"scaling.router.exponent_milli\":100",
        );
        assert!(validate_perf(&doc, None, 50).is_err());
    }

    #[test]
    fn slow_parallel_router_fails() {
        let doc = good_doc().replace(
            "\"scaling.router.5000.speedup_milli\":950",
            "\"scaling.router.5000.speedup_milli\":200",
        );
        let err = validate_perf(&doc, None, 50).unwrap_err();
        assert!(err.contains("speedup"), "{err}");
        // Below SPEEDUP_MIN_N, spawn overhead legitimately dominates:
        // a slow smallest rung is recorded but not gated.
        let doc = good_doc().replace(
            "\"scaling.router.50.speedup_milli\":950",
            "\"scaling.router.50.speedup_milli\":200",
        );
        assert!(validate_perf(&doc, None, 50).is_ok());
        let doc = good_doc().replace(
            "\"router.speedup_milli\":940",
            "\"router.speedup_milli\":100",
        );
        let err = validate_perf(&doc, None, 50).unwrap_err();
        assert!(err.contains("honest"), "{err}");
    }

    #[test]
    fn baseline_comparison_gates_regressions() {
        let base = good_doc();
        // Unchanged: passes with comparisons counted.
        let summary = validate_perf(&base, Some(&base), 50).unwrap();
        assert!(summary.contains("within tolerance"), "{summary}");
        // 10x regression on one record: fails at 50% tolerance.
        let slow = base.replace(
            "\"scaling.bkrus.500.micros\":10000",
            "\"scaling.bkrus.500.micros\":100000",
        );
        let err = validate_perf(&slow, Some(&base), 50).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
        // Same regression passes with a huge tolerance.
        assert!(validate_perf(&slow, Some(&base), 100_000).is_ok());
        // A baseline record absent from the current run is skipped.
        let missing = base.replace(",\"scaling.bkrus.500.micros\":10000", "");
        assert!(validate_perf(&missing, Some(&base), 50).is_err()); // ladder now short
    }

    #[test]
    fn sweep_parser_ignores_foreign_keys() {
        let counters: BTreeMap<String, u64> = [
            ("scaling.bkrus.50.micros".to_owned(), 7),
            ("scaling.bkrus.500.micros".to_owned(), 70),
            ("scaling.bkrus.exponent_milli".to_owned(), 1000),
            ("scaling.router.50.micros".to_owned(), 3),
            ("bkrus.edges_scanned".to_owned(), 12),
        ]
        .into();
        assert_eq!(sweep_of(&counters, "bkrus"), vec![(50, 7), (500, 70)]);
        assert_eq!(sweep_of(&counters, "router"), vec![(50, 3)]);
        assert!(sweep_of(&counters, "bprim").is_empty());
    }
}
