//! `cargo xtask check-registry` — consistency gate for the builder registry.
//!
//! Verifies, against the live [`bmst_steiner::full_registry`]:
//!
//! 1. every builder name and alias is unique across the whole registry;
//! 2. every name and alias is kebab-case (`[a-z0-9]+(-[a-z0-9]+)*`);
//! 3. every public construction entry point of the algorithm crates has a
//!    registered builder (the `EXPORT_TO_BUILDER` table below), so a new
//!    construction cannot be merged without registering it;
//! 4. `variant_of` back-references resolve to a registered canonical name.

use std::collections::BTreeSet;
use std::process::ExitCode;

/// Maps each public construction entry point to the registry name expected
/// to wrap it. Adding a construction to `bmst-core`/`bmst-steiner` without
/// extending the registry (and this table) fails the gate.
const EXPORT_TO_BUILDER: &[(&str, &str)] = &[
    ("bkrus", "bkrus"),
    ("bkrus_trace", "bkrus-trace"),
    ("bkh2", "bkh2"),
    ("bkex", "bkex"),
    ("gabow_bmst", "gabow"),
    ("bprim", "bprim"),
    ("brbc", "brbc"),
    ("prim_dijkstra", "prim-dijkstra"),
    ("bkrus_elmore", "elmore-bkrus"),
    ("mst_tree", "mst"),
    ("spt_tree", "spt"),
    ("bkst", "steiner"),
];

fn is_kebab_case(s: &str) -> bool {
    !s.is_empty()
        && s.split('-').all(|seg| {
            !seg.is_empty()
                && seg
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit())
        })
}

/// Runs the gate, printing one line per failure.
pub fn run(_args: &[String]) -> ExitCode {
    let registry = bmst_steiner::full_registry();
    let mut failures = Vec::new();
    let mut seen = BTreeSet::new();
    let mut canonical = BTreeSet::new();

    for builder in registry {
        let d = builder.descriptor();
        canonical.insert(d.name);
        for label in std::iter::once(d.name).chain(d.aliases.iter().copied()) {
            if !is_kebab_case(label) {
                failures.push(format!("`{label}` is not kebab-case"));
            }
            if !seen.insert(label) {
                failures.push(format!("`{label}` is registered more than once"));
            }
        }
    }

    for builder in registry {
        let d = builder.descriptor();
        if let Some(base) = d.variant_of {
            if !canonical.contains(base) {
                failures.push(format!(
                    "`{}` claims to be a variant of unregistered `{base}`",
                    d.name
                ));
            }
        }
    }

    for (export, expected) in EXPORT_TO_BUILDER {
        if !canonical.contains(expected) {
            failures.push(format!(
                "public construction `{export}` has no registered builder `{expected}`"
            ));
        }
    }

    if failures.is_empty() {
        println!(
            "check-registry: ok ({} builders, {} names+aliases, {} mapped exports)",
            registry.len(),
            seen.len(),
            EXPORT_TO_BUILDER.len()
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("check-registry: {f}");
        }
        eprintln!("check-registry: {} failure(s)", failures.len());
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic
    use super::*;

    #[test]
    fn kebab_case_accepts_and_rejects() {
        assert!(is_kebab_case("bkrus"));
        assert!(is_kebab_case("elmore-bkrus"));
        assert!(is_kebab_case("bmst-g"));
        assert!(!is_kebab_case("bmst_g"));
        assert!(!is_kebab_case("Bkrus"));
        assert!(!is_kebab_case(""));
        assert!(!is_kebab_case("-x"));
        assert!(!is_kebab_case("x-"));
    }

    #[test]
    fn live_registry_passes() {
        assert_eq!(run(&[]), ExitCode::SUCCESS);
    }
}
