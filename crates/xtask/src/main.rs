//! Workspace automation binary, invoked as `cargo xtask <command>`.
//!
//! * `lint` — the repo-specific static-analysis gate described in
//!   `DESIGN.md` §5e: the token-aware `bmst-analyze` engine enforcing
//!   rules that `clippy` cannot express (allow-marker conventions,
//!   per-crate rule scoping, determinism/error-taxonomy/obs-schema/
//!   concurrency invariants).
//! * `analyze` — the workspace-level semantic passes described in
//!   `DESIGN.md` §5f and §5j: item index, approximate call graph,
//!   panic-reachability, complexity-budget enforcement,
//!   cancellation-liveness, and serve blocking-discipline.
//! * `check-events` — the obs-schema round-trip on its own: every
//!   emission name must exist in `crates/obs/events.toml` and every
//!   registry entry must still be emitted somewhere.
//! * `check-trace` / `check-bench` — validators for the observability
//!   artifacts (`bmst route --trace` JSON-lines, `BENCH_*.json` bench
//!   trajectories), used as CI gates.
//! * `check-perf` — the scaling-curve regression gate over the
//!   `scaling.*` trajectory records: ladder coverage, fitted-exponent
//!   budgets, parallel-routing sanity, and (opt-in) baseline wall-clock
//!   comparison.
//! * `check-registry` — consistency gate for the construction builder
//!   registry (unique kebab-case names, every public construction
//!   registered).

mod analyze;
mod check;
mod lint;
mod perf;
mod registry;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint::run(&args[1..]),
        Some("analyze") => analyze::run(&args[1..]),
        Some("check-events") => lint::run_check_events(&args[1..]),
        Some("check-trace") => check::run_trace(&args[1..]),
        Some("check-bench") => check::run_bench(&args[1..]),
        Some("check-perf") => perf::run(&args[1..]),
        Some("check-registry") => registry::run(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`\n");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "Usage: cargo xtask <command>\n\
         \n\
         Commands:\n\
         \x20 lint                 run the token-aware static-analysis gate (bmst-analyze)\n\
         \x20 lint --list          describe every lint rule and its scope\n\
         \x20 analyze              run the semantic passes (panic-reach, complexity,\n\
         \x20                      cancel-liveness, blocking-discipline)\n\
         \x20 analyze --list       describe every semantic pass, scope, fixture count\n\
         \x20 analyze --graph dot  dump the approximate call graph (Graphviz)\n\
         \x20 check-events         diff live obs emissions against crates/obs/events.toml\n\
         \x20 check-trace <FILE>   validate a `bmst route --trace` JSON-lines file\n\
         \x20 check-bench <FILE>   validate a BENCH_*.json bench trajectory\n\
         \x20 check-perf <FILE>    gate the scaling-curve records (coverage, exponent\n\
         \x20                      budgets, parallel sanity; `--against <BASE>\n\
         \x20                      [--tolerance-pct N]` adds wall-clock comparison)\n\
         \x20 check-registry       verify the builder registry (unique kebab-case\n\
         \x20                      names, every construction registered)\n\
         \x20 help                 show this message"
    );
}
