//! Repo-specific source-level lints for the BMST workspace.
//!
//! `cargo xtask lint` walks `crates/*/src` and enforces rules that sit
//! above what `clippy` can express — per-crate scoping, an allow-marker
//! convention that forces a written justification, and a documentation
//! gate on the algorithm crates' public API:
//!
//! | rule         | scope                                   | forbids |
//! |--------------|-----------------------------------------|---------|
//! | `no-panic`   | all library crates                      | `.unwrap()`, `.expect(`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` in non-test code |
//! | `float-eq`   | library crates except `geom`            | `==`/`!=` against float literals or `f64::` constants (use `geom`'s tolerance helpers) |
//! | `doc-pub`    | `core`, `tree`, `graph`, `geom`, `obs`  | `pub` items without a doc comment |
//! | `no-as-cast` | `core`, `tree`, `graph`, `obs`          | `as usize` / `as f64` truncating casts |
//! | `no-print`   | all library crates incl. `cli`, `bench` | `println!` / `eprintln!` / `dbg!` in library sources (binaries — `src/bin/`, `main.rs` — and tests exempt; use `bmst-obs` or return strings) |
//!
//! A violating line may be kept by annotating it — same line or the line
//! directly above — with:
//!
//! ```text
//! // lint: allow(<rule>) — <reason>
//! ```
//!
//! The reason is mandatory: a marker without one is itself a violation.
//! `#[cfg(test)]` modules are exempt from every rule.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Library crates whose non-test code must be panic-free.
const PANIC_FREE_CRATES: &[&str] = &[
    "core",
    "tree",
    "graph",
    "geom",
    "steiner",
    "io",
    "instances",
    "router",
    "clock",
    "obs",
    "cli",
];

/// Crates whose raw float comparisons must go through `geom`'s tolerance
/// helpers (`approx_eq`, `le_tol`, `lt_tol`, ...). `geom` itself hosts
/// those helpers and is exempt.
const FLOAT_EQ_CRATES: &[&str] = &[
    "core",
    "tree",
    "graph",
    "steiner",
    "io",
    "instances",
    "router",
    "clock",
    "obs",
];

/// Crates whose whole `pub` surface must carry doc comments.
const DOC_CRATES: &[&str] = &["core", "tree", "graph", "geom", "obs"];

/// Algorithm crates where `as usize` / `as f64` casts need justification.
const CAST_CRATES: &[&str] = &["core", "tree", "graph", "obs"];

/// Crates whose library sources must not print to stdout/stderr: output
/// belongs to the caller (CLI report strings) or to `bmst-obs` recorders.
/// Binary sources (`src/bin/`, `main.rs`) are exempt — printing is their
/// job.
const PRINT_FREE_CRATES: &[&str] = &[
    "core",
    "tree",
    "graph",
    "geom",
    "steiner",
    "io",
    "instances",
    "router",
    "clock",
    "obs",
    "cli",
    "bench",
];

/// Every crate the lint walks: the union of the per-rule scopes above.
const ALL_CRATES: &[&str] = &[
    "core",
    "tree",
    "graph",
    "geom",
    "steiner",
    "io",
    "instances",
    "router",
    "clock",
    "obs",
    "cli",
    "bench",
];

/// One reported lint violation.
struct Violation {
    path: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

/// Entry point for `cargo xtask lint`.
pub fn run(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--list") {
        print_rules();
        return ExitCode::SUCCESS;
    }
    if let Some(unknown) = args.iter().find(|a| *a != "--list") {
        eprintln!("xtask lint: unknown argument `{unknown}` (supported: --list)");
        return ExitCode::FAILURE;
    }

    let root = workspace_root();
    let mut violations = Vec::new();
    let mut files_scanned = 0usize;

    for krate in ALL_CRATES {
        let src = root.join("crates").join(krate).join("src");
        for file in rust_files(&src) {
            files_scanned += 1;
            let Ok(text) = std::fs::read_to_string(&file) else {
                violations.push(Violation {
                    path: file.clone(),
                    line: 0,
                    rule: "io",
                    message: "file could not be read".into(),
                });
                continue;
            };
            let analysis = FileAnalysis::new(&text);
            if PANIC_FREE_CRATES.contains(krate) {
                check_no_panic(&file, &analysis, &mut violations);
            }
            if FLOAT_EQ_CRATES.contains(krate) {
                check_float_eq(&file, &analysis, &mut violations);
            }
            if DOC_CRATES.contains(krate) {
                check_doc_pub(&file, &analysis, &mut violations);
            }
            if CAST_CRATES.contains(krate) {
                check_as_cast(&file, &analysis, &mut violations);
            }
            if PRINT_FREE_CRATES.contains(krate) && !is_binary_source(&file) {
                check_no_print(&file, &analysis, &mut violations);
            }
            check_markers(&file, &analysis, &mut violations);
        }
    }

    violations.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    for v in &violations {
        let rel = v.path.strip_prefix(&root).unwrap_or(&v.path);
        eprintln!("{}:{}: [{}] {}", rel.display(), v.line, v.rule, v.message);
    }
    if violations.is_empty() {
        println!("xtask lint: {files_scanned} files clean");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "\nxtask lint: {} violation(s) in {files_scanned} files",
            violations.len()
        );
        ExitCode::FAILURE
    }
}

fn print_rules() {
    println!(
        "no-panic    {}\n            forbids .unwrap() / .expect( / panic! / unreachable! / \
         todo! / unimplemented! in non-test code\n\
         float-eq    {}\n            forbids ==/!= against float literals or f64:: constants; \
         use bmst-geom's tolerance helpers\n\
         doc-pub     {}\n            every `pub` item must carry a doc comment\n\
         no-as-cast  {}\n            forbids `as usize` / `as f64` casts; use From/TryFrom or \
         annotate\n\
         no-print    {}\n            forbids println!/eprintln!/dbg! in library sources \
         (src/bin/ and main.rs exempt)\n\
         \nAnnotate intentional sites with: // lint: allow(<rule>) — <reason>",
        PANIC_FREE_CRATES.join(", "),
        FLOAT_EQ_CRATES.join(", "),
        DOC_CRATES.join(", "),
        CAST_CRATES.join(", "),
        PRINT_FREE_CRATES.join(", "),
    );
}

/// Locate the workspace root: the directory holding the top-level
/// `Cargo.toml` with a `[workspace]` table, found by walking up from the
/// current directory (cargo runs xtask from the workspace by default).
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

/// Recursively collect `.rs` files under `dir`, sorted for stable output.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Per-file pre-analysis shared by all rules: raw lines, a "code view"
/// with comments and string/char literal contents blanked out, which lines
/// fall inside `#[cfg(test)]` modules, and which lines belong to attribute
/// invocations.
struct FileAnalysis {
    raw: Vec<String>,
    code: Vec<String>,
    in_test: Vec<bool>,
    in_attr: Vec<bool>,
}

impl FileAnalysis {
    fn new(text: &str) -> Self {
        let code_text = blank_comments_and_strings(text);
        let raw: Vec<String> = text.lines().map(str::to_owned).collect();
        let code: Vec<String> = code_text.lines().map(str::to_owned).collect();
        let in_test = mark_test_regions(&code);
        let in_attr = mark_attribute_lines(&code);
        FileAnalysis {
            raw,
            code,
            in_test,
            in_attr,
        }
    }

    /// True when `line` (0-based) carries — or is directly below — a
    /// `// lint: allow(<rule>) — <reason>` marker naming `rule`.
    fn has_marker(&self, line: usize, rule: &str) -> bool {
        let here = marker_of(&self.raw[line]);
        let above = line.checked_sub(1).and_then(|l| marker_of(&self.raw[l]));
        [here, above]
            .into_iter()
            .flatten()
            .any(|m| m.rule == rule && m.has_reason)
    }
}

/// A parsed `lint: allow(...)` marker.
struct Marker {
    rule: String,
    has_reason: bool,
}

/// Parse an allow marker out of a raw source line, if present.
fn marker_of(raw_line: &str) -> Option<Marker> {
    let comment_at = raw_line.find("//")?;
    let comment = &raw_line[comment_at..];
    let after = comment.split("lint: allow(").nth(1)?;
    let (rule, rest) = after.split_once(')')?;
    let rest = rest.trim_start();
    let has_reason = ["—", "--", "-"]
        .iter()
        .any(|sep| rest.strip_prefix(sep).is_some_and(|r| !r.trim().is_empty()));
    Some(Marker {
        rule: rule.trim().to_owned(),
        has_reason,
    })
}

/// Replace comment bodies and string/char literal contents with spaces,
/// preserving line structure, so rule matching never fires on prose.
fn blank_comments_and_strings(text: &str) -> String {
    #[derive(PartialEq)]
    enum State {
        Normal,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut out = String::with_capacity(text.len());
    let chars: Vec<char> = text.chars().collect();
    let mut state = State::Normal;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Normal => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                '"' => {
                    state = State::Str;
                    out.push('"');
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string: r"..." or r#"..."#.
                    let mut hashes = 0u32;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        state = State::RawStr(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                        continue;
                    }
                    out.push(c);
                }
                '\'' => {
                    // Distinguish lifetimes ('a) from char literals ('x').
                    let is_lifetime = next.is_some_and(|n| n.is_alphabetic() || n == '_')
                        && chars.get(i + 2) != Some(&'\'');
                    if is_lifetime {
                        out.push(c);
                    } else {
                        state = State::Char;
                        out.push('\'');
                    }
                }
                _ => out.push(c),
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Normal;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            State::BlockComment(depth) => {
                if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    out.push(' ');
                    i += 2;
                    continue;
                }
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.push(' ');
                    i += 2;
                    continue;
                }
            }
            State::Str => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        out.push(if next == Some('\n') { '\n' } else { ' ' });
                        i += 2;
                        continue;
                    }
                }
                '"' => {
                    state = State::Normal;
                    out.push('"');
                }
                '\n' => out.push('\n'),
                _ => out.push(' '),
            },
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && chars.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        state = State::Normal;
                        for _ in i..j {
                            out.push(' ');
                        }
                        i = j;
                        continue;
                    }
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
            }
            State::Char => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        out.push(' ');
                        i += 2;
                        continue;
                    }
                }
                '\'' => {
                    state = State::Normal;
                    out.push('\'');
                }
                '\n' => {
                    // Unterminated char (was a lifetime after all).
                    state = State::Normal;
                    out.push('\n');
                }
                _ => out.push(' '),
            },
        }
        i += 1;
    }
    out
}

/// Mark every line that falls inside a `#[cfg(test)]` module (attribute
/// line included) by tracking brace depth from the module opening.
fn mark_test_regions(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        let trimmed = code[i].trim();
        let is_test_attr =
            trimmed.starts_with("#[cfg(test)]") || trimmed.starts_with("#[cfg(all(test");
        if !is_test_attr {
            i += 1;
            continue;
        }
        // Skip to the opening brace of the annotated item, then to its
        // matching close, marking everything in between.
        let mut depth = 0i32;
        let mut opened = false;
        let mut j = i;
        while j < code.len() {
            in_test[j] = true;
            for ch in code[j].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    in_test
}

/// Mark lines belonging to attribute invocations (`#[...]`, possibly
/// spanning lines), so the doc-presence walk can hop over them.
fn mark_attribute_lines(code: &[String]) -> Vec<bool> {
    let mut in_attr = vec![false; code.len()];
    let mut depth = 0i32;
    for (idx, line) in code.iter().enumerate() {
        let trimmed = line.trim();
        if depth > 0 {
            in_attr[idx] = true;
            for ch in trimmed.chars() {
                match ch {
                    '[' => depth += 1,
                    ']' => depth -= 1,
                    _ => {}
                }
            }
            continue;
        }
        if trimmed.starts_with("#[") || trimmed.starts_with("#![") {
            in_attr[idx] = true;
            let mut d = 0i32;
            for ch in trimmed.chars() {
                match ch {
                    '[' => d += 1,
                    ']' => d -= 1,
                    _ => {}
                }
            }
            if d > 0 {
                depth = d;
            }
        }
    }
    in_attr
}

/// Patterns forbidden by `no-panic`, with the text reported for each.
const PANIC_PATTERNS: &[(&str, &str)] = &[
    (".unwrap()", ".unwrap()"),
    (".expect(", ".expect(..)"),
    ("panic!", "panic!"),
    ("unreachable!", "unreachable!"),
    ("todo!", "todo!"),
    ("unimplemented!", "unimplemented!"),
];

fn check_no_panic(path: &Path, fa: &FileAnalysis, out: &mut Vec<Violation>) {
    for (idx, code) in fa.code.iter().enumerate() {
        if fa.in_test[idx] {
            continue;
        }
        for (pattern, shown) in PANIC_PATTERNS {
            let Some(at) = code.find(pattern) else {
                continue;
            };
            // `panic!` must not match e.g. `core::panic::Location` or a
            // word ending in the pattern.
            if pattern.ends_with('!') {
                let before = code[..at].chars().next_back();
                if before.is_some_and(|c| c.is_alphanumeric() || c == '_' || c == ':') {
                    continue;
                }
                if !code[at + pattern.len()..]
                    .trim_start()
                    .starts_with(['(', '[', '{'])
                {
                    continue;
                }
            }
            if fa.has_marker(idx, "no-panic") {
                continue;
            }
            out.push(Violation {
                path: path.to_owned(),
                line: idx + 1,
                rule: "no-panic",
                message: format!(
                    "{shown} in non-test library code; propagate an error or annotate \
                     with `// lint: allow(no-panic) — <reason>`"
                ),
            });
            break; // one report per line keeps output readable
        }
    }
}

/// True if `token` looks like a float operand: a literal with a decimal
/// point or exponent, or an `f64::` associated constant.
fn is_float_token(token: &str) -> bool {
    if token.is_empty() || token.contains("..") {
        return false;
    }
    for konst in ["INFINITY", "NEG_INFINITY", "NAN", "EPSILON"] {
        if token.ends_with(konst) && (token.contains("f64::") || token.contains("f32::")) {
            return true;
        }
    }
    let body = token.strip_prefix('-').unwrap_or(token);
    let has_digit = body.chars().next().is_some_and(|c| c.is_ascii_digit());
    has_digit
        && (body.contains('.')
            || (body.contains(['e', 'E'])
                && body
                    .trim_end_matches(|c: char| c.is_ascii_digit() || c == '-')
                    .len()
                    < body.len()))
        && !body.ends_with("u64")
        && !body.ends_with("usize")
}

fn check_float_eq(path: &Path, fa: &FileAnalysis, out: &mut Vec<Violation>) {
    for (idx, code) in fa.code.iter().enumerate() {
        if fa.in_test[idx] {
            continue;
        }
        let bytes = code.as_bytes();
        let mut reported = false;
        for (pos, win) in bytes.windows(2).enumerate() {
            if reported {
                break;
            }
            let op = match win {
                b"==" => "==",
                b"!=" => "!=",
                _ => continue,
            };
            // Reject `<=`, `>=`, `===`-like neighborhoods and pattern arms.
            let prev = pos.checked_sub(1).map(|p| bytes[p] as char);
            let after = bytes.get(pos + 2).map(|&b| b as char);
            if matches!(prev, Some('<' | '>' | '=' | '!')) || after == Some('=') {
                continue;
            }
            let left_tok = code[..pos]
                .trim_end()
                .rsplit(|c: char| !(c.is_alphanumeric() || "_.:".contains(c)))
                .next()
                .unwrap_or("");
            let right_text = code[pos + 2..].trim_start();
            let right_tok = right_text
                .split(|c: char| !(c.is_alphanumeric() || "_.:".contains(c) || c == '-'))
                .next()
                .unwrap_or("");
            if (is_float_token(left_tok) || is_float_token(right_tok))
                && !fa.has_marker(idx, "float-eq")
            {
                out.push(Violation {
                    path: path.to_owned(),
                    line: idx + 1,
                    rule: "float-eq",
                    message: format!(
                        "raw float `{op}` comparison; use bmst-geom's tolerance helpers \
                         (approx_eq/le_tol) or annotate with \
                         `// lint: allow(float-eq) — <reason>`"
                    ),
                });
                reported = true;
            }
        }
    }
}

/// Item keywords that require a doc comment when `pub`.
const DOC_ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "type", "const", "static", "mod", "union", "unsafe",
];

fn check_doc_pub(path: &Path, fa: &FileAnalysis, out: &mut Vec<Violation>) {
    for (idx, code) in fa.code.iter().enumerate() {
        if fa.in_test[idx] || fa.in_attr[idx] {
            continue;
        }
        let trimmed = code.trim_start();
        let Some(rest) = trimmed.strip_prefix("pub ") else {
            continue;
        };
        // `pub(crate)`/`pub(super)` are not public API; `pub use` re-exports
        // inherit the source item's docs (matching rustc's missing_docs).
        let first = rest.split_whitespace().next().unwrap_or("");
        if first == "use" || trimmed.starts_with("pub(") {
            continue;
        }
        if !DOC_ITEM_KEYWORDS.contains(&first) {
            continue;
        }
        // Walk upward over attributes and blank lines to the nearest
        // preceding source line; it must be a doc comment.
        let mut j = idx;
        let mut documented = false;
        while j > 0 {
            j -= 1;
            let raw = fa.raw[j].trim();
            if fa.in_attr[j] {
                if raw.contains("#[doc") {
                    documented = true;
                    break;
                }
                continue;
            }
            if raw.is_empty() {
                continue;
            }
            documented = raw.starts_with("///") || raw.starts_with("/**") || raw.starts_with("*");
            break;
        }
        if !documented && !fa.has_marker(idx, "doc-pub") {
            out.push(Violation {
                path: path.to_owned(),
                line: idx + 1,
                rule: "doc-pub",
                message: format!(
                    "public item `{}` lacks a doc comment",
                    trimmed.split('{').next().unwrap_or(trimmed).trim()
                ),
            });
        }
    }
}

fn check_as_cast(path: &Path, fa: &FileAnalysis, out: &mut Vec<Violation>) {
    for (idx, code) in fa.code.iter().enumerate() {
        if fa.in_test[idx] {
            continue;
        }
        for target in ["as usize", "as f64"] {
            let mut search_from = 0usize;
            let mut hit = None;
            while let Some(rel) = code[search_from..].find(target) {
                let at = search_from + rel;
                let before = code[..at].chars().next_back();
                let after = code[at + target.len()..].chars().next();
                let word_boundary = !before.is_some_and(|c| c.is_alphanumeric() || c == '_')
                    && !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
                if word_boundary {
                    hit = Some(at);
                    break;
                }
                search_from = at + target.len();
            }
            if hit.is_some() && !fa.has_marker(idx, "no-as-cast") {
                out.push(Violation {
                    path: path.to_owned(),
                    line: idx + 1,
                    rule: "no-as-cast",
                    message: format!(
                        "`{target}` cast in algorithm crate; use From/TryFrom/f64::from \
                         or annotate with `// lint: allow(no-as-cast) — <reason>`"
                    ),
                });
                break;
            }
        }
    }
}

/// True for sources that build into binaries: anything under `src/bin/`
/// and crate-root `main.rs` files. These are the CLI/report surface where
/// printing is the point.
fn is_binary_source(path: &Path) -> bool {
    if path.file_name().is_some_and(|n| n == "main.rs") {
        return true;
    }
    let mut components = path.components().rev();
    let _file = components.next();
    // Any ancestor chain `src/bin/...` marks a cargo binary target.
    let mut prev = None;
    for c in components {
        let name = c.as_os_str();
        if name == "src" && prev.is_some_and(|p| p == "bin") {
            return true;
        }
        prev = Some(name.to_owned());
    }
    false
}

/// Patterns forbidden by `no-print`.
const PRINT_PATTERNS: &[&str] = &["println!", "eprintln!", "dbg!"];

fn check_no_print(path: &Path, fa: &FileAnalysis, out: &mut Vec<Violation>) {
    for (idx, code) in fa.code.iter().enumerate() {
        if fa.in_test[idx] {
            continue;
        }
        for pattern in PRINT_PATTERNS {
            let Some(at) = code.find(pattern) else {
                continue;
            };
            // `println!` must not match inside `eprintln!` (or any other
            // identifier tail), so require a word boundary on the left.
            let before = code[..at].chars().next_back();
            if before.is_some_and(|c| c.is_alphanumeric() || c == '_' || c == ':') {
                continue;
            }
            if fa.has_marker(idx, "no-print") {
                continue;
            }
            out.push(Violation {
                path: path.to_owned(),
                line: idx + 1,
                rule: "no-print",
                message: format!(
                    "{pattern} in library code; return the text to the caller, record it \
                     through bmst-obs, or annotate with `// lint: allow(no-print) — <reason>`"
                ),
            });
            break; // one report per line keeps output readable
        }
    }
}

/// Every marker must name a known rule and carry a reason; this keeps the
/// annotation inventory greppable and honest.
fn check_markers(path: &Path, fa: &FileAnalysis, out: &mut Vec<Violation>) {
    const KNOWN: &[&str] = &["no-panic", "float-eq", "doc-pub", "no-as-cast", "no-print"];
    for (idx, raw) in fa.raw.iter().enumerate() {
        let Some(marker) = marker_of(raw) else {
            continue;
        };
        if !KNOWN.contains(&marker.rule.as_str()) {
            out.push(Violation {
                path: path.to_owned(),
                line: idx + 1,
                rule: "marker",
                message: format!(
                    "allow marker names unknown rule `{}` (known: {})",
                    marker.rule,
                    KNOWN.join(", ")
                ),
            });
        } else if !marker.has_reason {
            let mut msg = String::new();
            let _ = write!(
                msg,
                "allow marker for `{}` is missing its reason: \
                 `// lint: allow({}) — <reason>`",
                marker.rule, marker.rule
            );
            out.push(Violation {
                path: path.to_owned(),
                line: idx + 1,
                rule: "marker",
                message: msg,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    fn analysis(src: &str) -> FileAnalysis {
        FileAnalysis::new(src)
    }

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let x = \"panic!(no)\"; // .unwrap() in comment\nlet y = 1;\n";
        let fa = analysis(src);
        assert!(!fa.code[0].contains("panic!"));
        assert!(!fa.code[0].contains(".unwrap()"));
        assert_eq!(fa.code[1], "let y = 1;");
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let src = "let s = r#\"x.unwrap()\"#;\nlet c = '\\'';\nlet lt: &'static str = \"\";\n";
        let fa = analysis(src);
        assert!(!fa.code[0].contains("unwrap"));
        assert!(fa.code[2].contains("'static"));
    }

    #[test]
    fn test_regions_are_marked() {
        let src =
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let fa = analysis(src);
        assert!(!fa.in_test[0]);
        assert!(fa.in_test[1] && fa.in_test[2] && fa.in_test[3] && fa.in_test[4]);
        assert!(!fa.in_test[5]);
    }

    #[test]
    fn no_panic_flags_and_marker_suppresses() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }\n";
        let fa = analysis(src);
        let mut v = Vec::new();
        check_no_panic(Path::new("f.rs"), &fa, &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-panic");

        let src = "// lint: allow(no-panic) — index is in range by construction\n\
                   fn f(x: Option<u8>) { x.unwrap(); }\n";
        let fa = analysis(src);
        let mut v = Vec::new();
        check_no_panic(Path::new("f.rs"), &fa, &mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn unwrap_or_is_not_flagged() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n";
        let fa = analysis(src);
        let mut v = Vec::new();
        check_no_panic(Path::new("f.rs"), &fa, &mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn float_eq_flags_literals_but_not_ranges_or_ints() {
        let cases = [
            ("if x == 0.0 {}", 1),
            ("if x != 1e-9 {}", 1),
            ("if x == f64::INFINITY {}", 1),
            ("if n == 0 {}", 0),
            ("for i in 0..n {}", 0),
            ("if a <= b {}", 0),
            ("let eq = x == y;", 0), // type unknown: left to clippy's float_cmp
        ];
        for (src, expect) in cases {
            let fa = analysis(&format!("fn f() {{ {src} }}\n"));
            let mut v = Vec::new();
            check_float_eq(Path::new("f.rs"), &fa, &mut v);
            assert_eq!(v.len(), expect, "case: {src}");
        }
    }

    #[test]
    fn doc_pub_requires_docs_over_attributes() {
        let src = "/// Documented.\n#[derive(Debug)]\npub struct A;\n\npub struct B;\n";
        let fa = analysis(src);
        let mut v = Vec::new();
        check_doc_pub(Path::new("f.rs"), &fa, &mut v);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains('B'));
    }

    #[test]
    fn pub_crate_and_pub_use_are_exempt() {
        let src = "pub(crate) fn a() {}\npub use other::Thing;\n";
        let fa = analysis(src);
        let mut v = Vec::new();
        check_doc_pub(Path::new("f.rs"), &fa, &mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn as_cast_flagged_only_on_word_boundary() {
        let src = "fn f(n: u32) -> usize { n as usize }\n";
        let fa = analysis(src);
        let mut v = Vec::new();
        check_as_cast(Path::new("f.rs"), &fa, &mut v);
        assert_eq!(v.len(), 1);

        let src = "fn f(n: u32) -> u64 { u64::from(n) }\n";
        let fa = analysis(src);
        let mut v = Vec::new();
        check_as_cast(Path::new("f.rs"), &fa, &mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn no_print_flags_and_marker_suppresses() {
        let src = "fn f() { println!(\"x\"); }\n";
        let fa = analysis(src);
        let mut v = Vec::new();
        check_no_print(Path::new("f.rs"), &fa, &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-print");

        let src = "// lint: allow(no-print) — progress line of a long-running helper\n\
                   fn f() { eprintln!(\"x\"); }\n";
        let fa = analysis(src);
        let mut v = Vec::new();
        check_no_print(Path::new("f.rs"), &fa, &mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn no_print_skips_tests_and_writeln() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { println!(\"ok\"); }\n}\n";
        let fa = analysis(src);
        let mut v = Vec::new();
        check_no_print(Path::new("f.rs"), &fa, &mut v);
        assert!(v.is_empty());

        let src = "fn f(w: &mut String) { writeln!(w, \"x\").ok(); }\n";
        let fa = analysis(src);
        let mut v = Vec::new();
        check_no_print(Path::new("f.rs"), &fa, &mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn binary_sources_are_recognised() {
        assert!(is_binary_source(Path::new("crates/cli/src/main.rs")));
        assert!(is_binary_source(Path::new(
            "crates/bench/src/bin/table2.rs"
        )));
        assert!(is_binary_source(Path::new("crates/bench/src/bin/x/y.rs")));
        assert!(!is_binary_source(Path::new("crates/cli/src/commands.rs")));
        assert!(!is_binary_source(Path::new("crates/obs/src/lib.rs")));
    }

    #[test]
    fn markers_must_have_reasons_and_known_rules() {
        let src = "// lint: allow(no-panic)\n// lint: allow(bogus) — because\n";
        let fa = analysis(src);
        let mut v = Vec::new();
        check_markers(Path::new("f.rs"), &fa, &mut v);
        assert_eq!(v.len(), 2);
    }
}
