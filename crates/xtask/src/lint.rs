//! Thin driver over the `bmst-analyze` engine.
//!
//! The rules themselves — lexer, token models, the nine rule
//! implementations, marker handling, and the `events.toml` diff — live in
//! `crates/analyze`; this module only parses CLI arguments, runs the
//! engine at the workspace root, and formats the report. See
//! `DESIGN.md` §5e for the rule table and the marker convention.

use std::process::ExitCode;

use bmst_analyze::{analyze_workspace, rule_table, workspace_root, Violation};

/// Entry point for `cargo xtask lint`.
pub fn run(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--list") {
        for info in rule_table() {
            println!("{:<15} {}", info.name, info.scope.join(", "));
            println!("{:<15} {}", "", info.description);
        }
        println!("\nAnnotate intentional sites with: // lint: allow(<rule>) — <reason>");
        return ExitCode::SUCCESS;
    }
    if let Some(unknown) = args.iter().find(|a| *a != "--list") {
        eprintln!("xtask lint: unknown argument `{unknown}` (supported: --list)");
        return ExitCode::FAILURE;
    }

    let root = workspace_root();
    let report = analyze_workspace(&root);
    print_violations(&report.violations, &root);
    if report.is_clean() {
        println!(
            "xtask lint: {} files clean ({} obs emissions checked)",
            report.files_scanned, report.emissions_seen
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "\nxtask lint: {} violation(s) in {} files",
            report.violations.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}

/// Entry point for `cargo xtask check-events`: only the obs-schema
/// round-trip, with a symmetric report (what the code emits vs. what the
/// registry declares). `lint` already includes this check; the separate
/// command gives CI and humans a focused view.
pub fn run_check_events(args: &[String]) -> ExitCode {
    if let Some(unknown) = args.first() {
        eprintln!("xtask check-events: unexpected argument `{unknown}`");
        return ExitCode::FAILURE;
    }
    let root = workspace_root();
    let mut errors: Vec<Violation> = Vec::new();
    let files = bmst_analyze::load_workspace(&root, &mut errors);
    let emissions = bmst_analyze::workspace_emissions(&files);
    let Some(schema) = bmst_analyze::load_events_schema(&root, &mut errors) else {
        print_violations(&errors, &root);
        return ExitCode::FAILURE;
    };
    let diff = bmst_analyze::schema::diff(&schema, &emissions);
    errors.extend(bmst_analyze::diff_violations(&root, &diff));
    print_violations(&errors, &root);
    if errors.is_empty() {
        let declared: usize = schema
            .sections
            .values()
            .map(std::collections::BTreeMap::len)
            .sum();
        println!(
            "xtask check-events: {} emission site(s) across {} file(s) round-trip against \
             {declared} registry entr(ies)",
            emissions.len(),
            files.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("\nxtask check-events: {} problem(s)", errors.len());
        ExitCode::FAILURE
    }
}

pub(crate) fn print_violations(violations: &[Violation], root: &std::path::Path) {
    for v in violations {
        let rel = v.path.strip_prefix(root).unwrap_or(&v.path);
        eprintln!("{}:{}: [{}] {}", rel.display(), v.line, v.rule, v.message);
    }
}
