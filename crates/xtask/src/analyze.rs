//! Thin driver over the `bmst-analyze` semantic engine.
//!
//! The passes — item index, call graph, panic-reachability, complexity
//! budgets, cancellation-liveness, blocking-discipline — live in
//! `crates/analyze`; this module only parses CLI arguments, runs the
//! engine at the workspace root, and formats the report. See
//! `DESIGN.md` §5f and §5j for the pass contracts and the
//! `// analyze:` marker convention.

use std::process::ExitCode;

use bmst_analyze::{analyze_semantic, callgraph_dot, semantic_pass_table, workspace_root};

use crate::lint::print_violations;

/// Entry point for `cargo xtask analyze`.
pub fn run(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("--list") => list(),
        Some("--graph") => match args.get(1).map(String::as_str) {
            Some("dot") => graph(),
            other => {
                eprintln!(
                    "xtask analyze: unsupported graph format `{}` (supported: dot)",
                    other.unwrap_or("")
                );
                ExitCode::FAILURE
            }
        },
        Some(unknown) => {
            eprintln!(
                "xtask analyze: unknown argument `{unknown}` (supported: --list, --graph dot)"
            );
            ExitCode::FAILURE
        }
        None => analyze(),
    }
}

/// Default mode: run the semantic passes and report.
fn analyze() -> ExitCode {
    let root = workspace_root();
    let report = analyze_semantic(&root);
    print_violations(&report.violations, &root);
    if report.is_clean() {
        println!(
            "xtask analyze: {} files clean ({} fns indexed, {} call edges)",
            report.files_scanned, report.fns_indexed, report.call_edges
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "\nxtask analyze: {} violation(s) across {} fns",
            report.violations.len(),
            report.fns_indexed
        );
        ExitCode::FAILURE
    }
}

/// `--list`: the pass table plus per-pass fixture counts, mirroring
/// `lint --list`. Fixtures live in `crates/analyze/tests/fixtures` and
/// are named `<pass>_*.rs` with `-` flattened to `_`.
fn list() -> ExitCode {
    let fixtures = workspace_root().join("crates/analyze/tests/fixtures");
    for info in semantic_pass_table() {
        let prefix = format!("{}_", info.name.replace('-', "_"));
        let count = std::fs::read_dir(&fixtures)
            .map(|entries| {
                entries
                    .flatten()
                    .filter(|e| {
                        e.file_name()
                            .to_str()
                            .is_some_and(|n| n.starts_with(&prefix) && n.ends_with(".rs"))
                    })
                    .count()
            })
            .unwrap_or(0);
        println!(
            "{:<15} {} ({} fixture(s))",
            info.name,
            info.scope.join(", "),
            count
        );
        println!("{:<15} {}", "", info.description);
    }
    println!(
        "\nWaive intentional sites with: // analyze: allow(<pass>) — <reason>\n\
         Declare loop budgets with:    // analyze: complexity(<1|log n|n|n log n|n^k>)"
    );
    ExitCode::SUCCESS
}

/// `--graph dot`: dump the approximate call graph for inspection.
fn graph() -> ExitCode {
    println!("{}", callgraph_dot(&workspace_root()));
    ExitCode::SUCCESS
}
