//! Validators for the machine-readable observability artifacts:
//!
//! * `cargo xtask check-trace <file.jsonl>` — a JSON-lines trace written by
//!   `bmst route --trace`: every line must parse, at least one span line
//!   must be present, and the final counters line must carry the
//!   (3-a)/(3-b) feasibility counts (`forest.cond3*`).
//! * `cargo xtask check-bench <BENCH_*.json>` — a bench trajectory written
//!   by the `bench_trajectory` binary: schema tag, table name, and a
//!   non-empty record array with the full per-run key set.
//!
//! Both exit non-zero with a line-anchored message on the first problem,
//! so CI can gate on them directly.

use std::process::ExitCode;

use bmst_obs::json::Json;

/// Keys every bench record must carry.
const RECORD_KEYS: &[&str] = &[
    "bench",
    "algorithm",
    "eps",
    "cost",
    "longest_path",
    "perf_ratio",
    "path_ratio",
    "wall_s",
    "counters",
];

/// Entry point for `cargo xtask check-trace <file>`.
pub fn run_trace(args: &[String]) -> ExitCode {
    let [path] = args else {
        eprintln!("xtask check-trace: expected exactly one trace file argument");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask check-trace: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate_trace(&text) {
        Ok(summary) => {
            println!("xtask check-trace: {path} ok ({summary})");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("xtask check-trace: {path}: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Entry point for `cargo xtask check-bench <file>`.
pub fn run_bench(args: &[String]) -> ExitCode {
    let [path] = args else {
        eprintln!("xtask check-bench: expected exactly one bench file argument");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask check-bench: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate_bench(&text) {
        Ok(summary) => {
            println!("xtask check-bench: {path} ok ({summary})");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("xtask check-bench: {path}: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Validates a JSON-lines trace; returns a human summary on success.
fn validate_trace(text: &str) -> Result<String, String> {
    let mut spans = 0usize;
    let mut events = 0usize;
    let mut cond3_keys = 0usize;
    let mut lines = 0usize;
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        lines += 1;
        let json = Json::parse(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        match json.get("t").and_then(Json::as_str) {
            Some("span") => spans += 1,
            Some("event") => events += 1,
            Some("counters") => {
                let obj = json
                    .get("counters")
                    .and_then(Json::as_obj)
                    .ok_or_else(|| format!("line {}: counters line without object", idx + 1))?;
                cond3_keys += obj
                    .iter()
                    .filter(|(k, _)| k.starts_with("forest.cond3"))
                    .count();
            }
            Some("histograms") => {}
            other => {
                return Err(format!("line {}: unknown record type {other:?}", idx + 1));
            }
        }
    }
    if lines == 0 {
        return Err("empty trace".into());
    }
    if spans == 0 {
        return Err("no span records — algorithm cores were not instrumented".into());
    }
    if cond3_keys == 0 {
        return Err(
            "no forest.cond3* counters — (3-a)/(3-b) feasibility counts are missing \
             (did the run use a finite eps?)"
                .into(),
        );
    }
    Ok(format!(
        "{lines} lines, {spans} spans, {events} events, {cond3_keys} cond3 counters"
    ))
}

/// Validates a bench trajectory document; returns a human summary.
fn validate_bench(text: &str) -> Result<String, String> {
    let json = Json::parse(text).map_err(|e| e.to_string())?;
    let schema = json
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing `schema` key")?;
    if schema != bmst_bench_schema() {
        return Err(format!(
            "schema `{schema}` != expected `{}`",
            bmst_bench_schema()
        ));
    }
    let table = json
        .get("table")
        .and_then(Json::as_str)
        .ok_or("missing `table` key")?;
    let records = json
        .get("records")
        .and_then(Json::as_arr)
        .ok_or("missing `records` array")?;
    if records.is_empty() {
        return Err("empty `records` array".into());
    }
    for (idx, rec) in records.iter().enumerate() {
        for key in RECORD_KEYS {
            if rec.get(key).is_none() {
                return Err(format!("record {idx}: missing `{key}`"));
            }
        }
        // `eps` is a number or the string "inf" (JSON has no infinity).
        let eps = rec.get("eps").unwrap_or(&Json::Null);
        let eps_ok = eps.as_f64().is_some() || eps.as_str() == Some("inf");
        if !eps_ok {
            return Err(format!("record {idx}: `eps` is neither number nor \"inf\""));
        }
        if rec.get("counters").and_then(Json::as_obj).is_none() {
            return Err(format!("record {idx}: `counters` is not an object"));
        }
    }
    Ok(format!("table {table}, {} records", records.len()))
}

/// The schema tag `bmst-bench` writes; duplicated here so xtask does not
/// depend on the bench crate (it only reads the artifact format).
fn bmst_bench_schema() -> &'static str {
    "bmst-bench-v1"
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    const GOOD_TRACE: &str = concat!(
        "{\"t\":\"span\",\"name\":\"bkrus\",\"dur_ns\":120}\n",
        "{\"t\":\"event\",\"name\":\"audit.violation\"}\n",
        "{\"t\":\"counters\",\"counters\":{\"forest.cond3a.accept\":4,\"bkrus.edges_scanned\":9}}\n",
        "{\"t\":\"histograms\",\"histograms\":{}}\n",
    );

    #[test]
    fn good_trace_passes() {
        let summary = validate_trace(GOOD_TRACE).unwrap();
        assert!(summary.contains("1 spans"), "{summary}");
    }

    #[test]
    fn trace_without_spans_or_cond3_fails() {
        let no_span = "{\"t\":\"counters\",\"counters\":{\"forest.cond3a.accept\":1}}\n";
        assert!(validate_trace(no_span).unwrap_err().contains("span"));
        let no_cond3 =
            "{\"t\":\"span\",\"name\":\"x\"}\n{\"t\":\"counters\",\"counters\":{\"a\":1}}\n";
        assert!(validate_trace(no_cond3).unwrap_err().contains("cond3"));
        assert!(validate_trace("").unwrap_err().contains("empty"));
        assert!(validate_trace("not json\n").unwrap_err().contains("line 1"));
    }

    #[test]
    fn good_bench_passes() {
        let doc = r#"{"schema":"bmst-bench-v1","table":"table2","records":[
            {"bench":"p1","algorithm":"bkrus","eps":"inf","cost":1.0,
             "longest_path":1.0,"perf_ratio":1.0,"path_ratio":1.0,
             "wall_s":0.1,"counters":{"bkrus.edges_scanned":3}}]}"#;
        let summary = validate_bench(doc).unwrap();
        assert!(summary.contains("table2"), "{summary}");
    }

    #[test]
    fn bad_bench_documents_fail() {
        assert!(validate_bench("{}").unwrap_err().contains("schema"));
        let wrong = r#"{"schema":"v0","table":"t","records":[]}"#;
        assert!(validate_bench(wrong).unwrap_err().contains("schema"));
        let empty = r#"{"schema":"bmst-bench-v1","table":"t","records":[]}"#;
        assert!(validate_bench(empty).unwrap_err().contains("empty"));
        let missing = r#"{"schema":"bmst-bench-v1","table":"t","records":[{"bench":"p1"}]}"#;
        assert!(validate_bench(missing).unwrap_err().contains("missing"));
    }
}
