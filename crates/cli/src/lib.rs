//! Implementation of the `bmst` command line tool.
//!
//! Kept as a library so every command is unit-testable; `main.rs` is a thin
//! wrapper. Argument parsing is hand-rolled (the workspace's dependency
//! policy allows no CLI crates), in the conventional
//! `command [positional] --flag value` shape.
//!
//! ```text
//! bmst route <net.txt> [--algorithm bkrus] [--eps 0.2] [--eps1 0.0] [--svg out.svg]
//! bmst gen  (--sinks N [--seed S] | --bench p1) [--out net.txt]
//! bmst stats <net.txt>
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;

pub use args::{Algorithm, CliError, Command, GenSource, RouteArgs};
pub use commands::run;

/// Entry point used by `main.rs`: parses `argv` (without the program name)
/// and runs the command, returning the text to print.
///
/// # Errors
///
/// [`CliError`] for bad usage, unreadable files, or infeasible instances.
pub fn run_cli(argv: &[String]) -> Result<String, CliError> {
    let cmd = args::parse(argv).map_err(CliError::into_usage)?;
    commands::run(cmd)
}

/// The usage string printed on `--help` or bad invocations.
pub const USAGE: &str = "\
bmst — bounded path length routing trees (Oh/Pyo/Pedram, ED&TC 1996)

USAGE:
  bmst route <net.txt> [OPTIONS]   construct a routing tree for a net file
  bmst gen [OPTIONS]               generate a net file
  bmst stats <net.txt>             print net characteristics (Table 1 style)
  bmst algorithms                  list every registered construction
  bmst netlist <nets.txt> [--algorithm A] [--jobs N] [--trace F] [--profile]
                                   route a whole netlist, print the report
  bmst serve [OPTIONS]             run the JSON-lines routing service until
                                   SIGTERM/ctrl-c, then drain and summarise

NETLIST OPTIONS:
  --algorithm <A>   any registered construction (see `bmst algorithms`)
  --jobs <N>        route nets on N worker threads (default: 1). The report
                    is assembled in input order, so output is byte-identical
                    for every N.
  --max-relaxations <N>
                    degradation-ladder budget: how many stepped eps
                    relaxations to try before the unbounded rung and the
                    SPT fallback (default: 2; 0 disables stepping)
  --failure-log <F> write per-net failure diagnostics (final error plus the
                    full relaxation attempt trail) as JSON lines to F
  --strict          exit with code 3 when any net fails or is routed
                    degraded (relaxed eps or SPT fallback)
  --sparse / --dense
                    force the edge-candidate supply: --sparse streams
                    candidates from the grid neighbor index, --dense builds
                    the full O(n^2) matrix (default: auto by net size)
  --profile         append the span-tree profile to the report (per-worker
                    spans are merged, so output is stable for every --jobs N)
  --profile-folded <F>
                    write collapsed-stack profile lines to F (feed to any
                    flamegraph tool)

ROUTE OPTIONS:
  --algorithm <A>   any name or alias from `bmst algorithms`, or zskew
                    (default: bkrus)
  --eps <E>         radius slack: longest path <= (1+E)*R   (default: 0.2)
  --eps1 <E1>       also enforce the lower bound E1*R (spanning only)
  --pd-c <C>        blend parameter for `pd` (Prim-Dijkstra)  (default: 0.5)
  --svg <FILE>      render the tree to an SVG file
  --edges           list the tree edges
  --audit           re-verify the tree with the invariant auditor (structure,
                    path tables, merge consistency, bound window)
  --trace <FILE>    write a JSON-lines observability trace: span timings,
                    structured events, then aggregated counters/histograms
  --profile         append the span-tree profile: per-path cumulative/self
                    wall time, call counts, and counters (plus allocation
                    columns when built with --features alloc-profile)
  --profile-folded <F>
                    write the profile as collapsed-stack lines to F
                    (flamegraph-compatible: `path;to;span micros`)
  --sparse / --dense
                    force the edge-candidate supply: --sparse streams
                    candidates from the grid neighbor index, --dense builds
                    the full O(n^2) matrix (default: auto by net size)

SERVE OPTIONS:
  --addr <A>        bind address (default: 127.0.0.1:7463; port 0 = free port)
  --workers <N>     routing worker threads (default: 4)
  --queue <N>       admission-queue capacity; requests beyond it are shed
                    with a typed `overloaded` response (default: 64)
  --drain-ms <MS>   graceful-shutdown drain deadline before in-flight work
                    is cancelled through its tokens (default: 2000)
  --cache <N>       LRU report-cache entries, bit-parity with cold routing
                    (default: 128; 0 disables)
  --budget-ms <MS>  default per-request deadline, queue wait included
                    (default: unbounded; requests may set their own)
  --fault-seed <S>  deterministic fault-injection seed (builds with
                    --features fault-inject only)

GEN OPTIONS:
  --sinks <N>       uniform random net with N sinks
  --seed <S>        RNG seed (default: 1)
  --side <L>        die side length (default: 100)
  --bench <NAME>    a named paper benchmark instead: p1 p2 p3 p4 pr1 pr2 r1..r5
  --out <FILE>      write to FILE instead of stdout
";

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn help_is_usage() {
        let out = run_cli(&argv("--help")).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn unknown_command_fails() {
        let err = run_cli(&argv("frobnicate")).unwrap_err();
        assert!(err.to_string().contains("unknown command"));
    }

    #[test]
    fn gen_and_route_round_trip() {
        let dir = std::env::temp_dir().join("bmst_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let net_path = dir.join("net.txt");
        let svg_path = dir.join("tree.svg");

        let out = run_cli(&argv(&format!(
            "gen --sinks 8 --seed 7 --out {}",
            net_path.display()
        )))
        .unwrap();
        assert!(out.contains("8 sinks"));

        let out = run_cli(&argv(&format!(
            "route {} --algorithm bkrus --eps 0.3 --edges --svg {}",
            net_path.display(),
            svg_path.display()
        )))
        .unwrap();
        assert!(out.contains("cost"), "{out}");
        assert!(out.contains("radius"));
        assert!(svg_path.exists());
    }

    #[test]
    fn stats_prints_radius() {
        let dir = std::env::temp_dir().join("bmst_cli_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let net_path = dir.join("net.txt");
        run_cli(&argv(&format!(
            "gen --bench p1 --out {}",
            net_path.display()
        )))
        .unwrap();
        let out = run_cli(&argv(&format!("stats {}", net_path.display()))).unwrap();
        assert!(out.contains("R ="));
        assert!(out.contains("points = 6"));
    }

    #[test]
    fn every_algorithm_routes() {
        let dir = std::env::temp_dir().join("bmst_cli_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let net_path = dir.join("net.txt");
        run_cli(&argv(&format!(
            "gen --sinks 6 --seed 3 --out {}",
            net_path.display()
        )))
        .unwrap();
        // Every registry entry (by canonical name) plus the clock construction.
        let names: Vec<String> = bmst_router::RouteAlgorithm::all()
            .map(|a| a.name().to_owned())
            .chain(std::iter::once("zskew".to_owned()))
            .collect();
        assert!(names.len() >= 9, "registry unexpectedly small: {names:?}");
        for alg in &names {
            // The Elmore construction's delay bound can be infeasible at a
            // tight eps; give it headroom.
            let eps = if alg == "elmore-bkrus" { 2.0 } else { 0.4 };
            let out = run_cli(&argv(&format!(
                "route {} --algorithm {alg} --eps {eps} --audit",
                net_path.display()
            )))
            .unwrap_or_else(|e| panic!("{alg}: {e}"));
            assert!(out.contains("cost"), "{alg}: {out}");
            assert!(out.contains("audit = ok"), "{alg}: {out}");
        }
    }

    #[test]
    fn algorithms_command_lists_registry() {
        let out = run_cli(&argv("algorithms")).unwrap();
        for name in ["bkrus", "gabow", "steiner", "zskew"] {
            assert!(out.contains(name), "{name} missing from:\n{out}");
        }
        assert!(out.contains("exact"), "{out}");
        assert!(out.contains("window"), "{out}");
    }

    #[test]
    fn lub_route_respects_window() {
        let dir = std::env::temp_dir().join("bmst_cli_test4");
        std::fs::create_dir_all(&dir).unwrap();
        let net_path = dir.join("net.txt");
        run_cli(&argv(&format!(
            "gen --sinks 5 --seed 9 --out {}",
            net_path.display()
        )))
        .unwrap();
        let out = run_cli(&argv(&format!(
            "route {} --eps 1.0 --eps1 0.2",
            net_path.display()
        )))
        .unwrap();
        assert!(out.contains("shortest path"));
    }

    #[test]
    fn netlist_command_routes() {
        let dir = std::env::temp_dir().join("bmst_cli_test5");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("nets.txt");
        std::fs::write(
            &path,
            "net clk critical
0 0
10 3
end
net d0 relaxed
1 1
7 8
end
",
        )
        .unwrap();
        let out = run_cli(&argv(&format!("netlist {}", path.display()))).unwrap();
        assert!(out.contains("clk"), "{out}");
        assert!(out.contains("total wirelength"));
        let out = run_cli(&argv(&format!(
            "netlist {} --algorithm steiner",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("worst slack"));
        assert!(run_cli(&argv(&format!(
            "netlist {} --algorithm magic",
            path.display()
        )))
        .is_err());
    }

    #[test]
    fn netlist_parallel_output_is_identical_to_serial() {
        let dir = std::env::temp_dir().join("bmst_cli_test7");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("nets.txt");
        let mut text = String::new();
        for (i, class) in ["critical", "normal", "relaxed"]
            .iter()
            .cycle()
            .take(9)
            .enumerate()
        {
            text.push_str(&format!(
                "net n{i} {class}\n0 0\n{} {}\n{} 2\nend\n",
                10 + i,
                3 * i,
                7 + i
            ));
        }
        std::fs::write(&path, text).unwrap();
        let serial = run_cli(&argv(&format!("netlist {}", path.display()))).unwrap();
        for jobs in [2, 4, 8] {
            let parallel =
                run_cli(&argv(&format!("netlist {} --jobs {jobs}", path.display()))).unwrap();
            assert_eq!(serial, parallel, "jobs={jobs} output diverged");
        }
    }

    #[test]
    fn bad_flag_reports() {
        let err = run_cli(&argv("gen --wat 3")).unwrap_err();
        assert!(err.to_string().contains("--wat"));
        // Usage errors exit with code 2, not the generic 1.
        assert_eq!(err.exit_code, 2);
    }

    #[test]
    fn malformed_netlist_line_reports_line_number() {
        let dir = std::env::temp_dir().join("bmst_cli_test8");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.txt");
        // Line 3 has a non-numeric coordinate token: a syntax error the
        // parser must pin to its line instead of panicking.
        std::fs::write(&path, "net clk critical\n0 0\n10 oops\nend\n").unwrap();
        let err = run_cli(&argv(&format!("netlist {}", path.display()))).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
        assert!(err.to_string().contains("oops"), "{err}");
        assert_eq!(err.exit_code, 1);
    }

    #[test]
    fn strict_mode_fails_on_unroutable_net_and_writes_failure_log() {
        let dir = std::env::temp_dir().join("bmst_cli_test9");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("nets.txt");
        let log = dir.join("fails.jsonl");
        // `nan` parses as f64, so the net survives the syntax pass and is
        // rejected by geometry validation — a per-net failure, not an abort.
        std::fs::write(
            &path,
            "net good normal\n0 0\n5 5\nend\nnet broken normal\nnan 1\n2 2\nend\n",
        )
        .unwrap();
        let args = format!(
            "netlist {} --strict --failure-log {}",
            path.display(),
            log.display()
        );
        let err = run_cli(&argv(&args)).unwrap_err();
        assert_eq!(err.exit_code, 3);
        // The strict error carries the full report: survivors and failures.
        assert!(err.to_string().contains("good"), "{err}");
        assert!(err.to_string().contains("broken"), "{err}");
        let logged = std::fs::read_to_string(&log).unwrap();
        assert!(logged.contains("\"broken\""), "{logged}");
        assert!(logged.contains("non-finite"), "{logged}");

        // Without --strict the same netlist routes to completion.
        let out = run_cli(&argv(&format!("netlist {}", path.display()))).unwrap();
        assert!(out.contains("routed 1 of 2 nets"), "{out}");
    }

    #[test]
    fn route_trace_emits_json_lines_and_profile_renders() {
        use bmst_obs::json::Json;

        let dir = std::env::temp_dir().join("bmst_cli_test6");
        std::fs::create_dir_all(&dir).unwrap();
        let net_path = dir.join("net.txt");
        let trace_path = dir.join("trace.jsonl");
        run_cli(&argv(&format!(
            "gen --sinks 7 --seed 11 --out {}",
            net_path.display()
        )))
        .unwrap();

        let out = run_cli(&argv(&format!(
            "route {} --algorithm bkh2 --eps 0.2 --trace {} --profile",
            net_path.display(),
            trace_path.display()
        )))
        .unwrap();
        assert!(out.contains("trace ->"), "{out}");
        assert!(out.contains("profile:"), "{out}");
        assert!(out.contains("bkrus.edges_scanned"), "{out}");

        let text = std::fs::read_to_string(&trace_path).unwrap();
        let mut counters_line = None;
        let mut saw_span = false;
        for line in text.lines() {
            let json = Json::parse(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
            match json.get("t").and_then(Json::as_str) {
                Some("span") => saw_span = true,
                Some("counters") => counters_line = Some(json),
                _ => {}
            }
        }
        assert!(saw_span, "trace must contain span lines");
        let counters = counters_line.expect("trace must end with a counters line");
        let counters = counters.get("counters").unwrap();
        let obj = counters.as_obj().unwrap();
        assert!(
            obj.iter().any(|(k, _)| k.starts_with("forest.cond3")),
            "counters must include (3-a)/(3-b) accept/reject counts"
        );
    }
}
