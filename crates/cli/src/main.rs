//! The `bmst` command line tool. See `bmst --help`.

use std::process::ExitCode;

/// With `--features alloc-profile`, the whole process runs under the
/// counting allocator, which is what turns on the allocation columns in
/// `--profile` output (spans report alloc/byte deltas per path).
#[cfg(feature = "alloc-profile")]
#[global_allocator]
static ALLOC: bmst_obs::alloc::CountingAlloc = bmst_obs::alloc::CountingAlloc;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match bmst_cli::run_cli(&argv) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bmst: {e}");
            // Typed exit codes: 2 = usage, 3 = --strict gate, 1 = the rest.
            ExitCode::from(e.exit_code.max(1))
        }
    }
}
