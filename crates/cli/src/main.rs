//! The `bmst` command line tool. See `bmst --help`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match bmst_cli::run_cli(&argv) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bmst: {e}");
            ExitCode::FAILURE
        }
    }
}
