//! Argument parsing for the `bmst` tool.

use std::error::Error;
use std::fmt;

use bmst_core::EdgeSupply;
use bmst_router::RouteAlgorithm;

/// Errors produced by the CLI (bad usage, I/O, infeasible instances).
///
/// Carries the process exit code alongside the message so `main` can
/// report a typed status: `1` for runtime errors (I/O, parse,
/// infeasible), `2` for usage errors, `3` for the `--strict` gate.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable description, printed to stderr.
    pub message: String,
    /// Process exit code (never 0).
    pub exit_code: u8,
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for CliError {}

impl CliError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        CliError::with_code(msg, 1)
    }

    pub(crate) fn with_code(msg: impl Into<String>, exit_code: u8) -> Self {
        CliError {
            message: msg.into(),
            exit_code,
        }
    }

    /// Reclassifies this error as a usage error (exit code 2). Applied to
    /// everything `parse` rejects, so bad flags are distinguishable from
    /// runtime failures in scripts.
    pub(crate) fn into_usage(mut self) -> Self {
        self.exit_code = 2;
        self
    }
}

/// The routing algorithm selected with `--algorithm`: either a registered
/// tree builder, or the zero-skew clock construction (which lives outside
/// the registry — it builds equal-delay trees, not bounded ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// A construction resolved from the builder registry
    /// (`bmst algorithms` lists them).
    Builder(RouteAlgorithm),
    /// Zero-skew clock tree (DME-style; ignores `--eps`).
    ZeroSkew,
}

impl Algorithm {
    /// The name the algorithm was registered (or hard-wired) under.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Builder(a) => a.name(),
            Algorithm::ZeroSkew => "zskew",
        }
    }

    fn from_name(s: &str) -> Result<Self, CliError> {
        match s {
            "zskew" | "zero-skew" | "dme" => Ok(Algorithm::ZeroSkew),
            other => RouteAlgorithm::from_name(other)
                .map(Algorithm::Builder)
                .ok_or_else(|| unknown_algorithm(other, true)),
        }
    }
}

/// Builds the unknown-algorithm error, listing every valid name straight
/// from the registry (plus `zskew` where the clock construction applies).
fn unknown_algorithm(name: &str, with_zskew: bool) -> CliError {
    let mut names: Vec<&str> = RouteAlgorithm::all().map(|a| a.name()).collect();
    if with_zskew {
        names.push("zskew");
    }
    CliError::new(format!(
        "unknown algorithm {name:?} (valid: {})",
        names.join(", ")
    ))
}

/// Resolves a netlist algorithm: registry builders only (no clock trees —
/// netlist routing needs path-length bounds).
fn netlist_algorithm(s: &str) -> Result<RouteAlgorithm, CliError> {
    RouteAlgorithm::from_name(s).ok_or_else(|| unknown_algorithm(s, false))
}

/// Parsed `route` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteArgs {
    /// Input net file.
    pub net: String,
    /// Selected algorithm.
    pub algorithm: Algorithm,
    /// Upper-bound slack `eps`.
    pub eps: f64,
    /// Optional lower-bound slack `eps1`.
    pub eps1: Option<f64>,
    /// Prim-Dijkstra blend parameter.
    pub pd_c: f64,
    /// Optional SVG output path.
    pub svg: Option<String>,
    /// List tree edges in the report.
    pub edges: bool,
    /// Re-verify the tree with the invariant auditor after construction.
    pub audit: bool,
    /// Write a JSON-lines observability trace to this path.
    pub trace: Option<String>,
    /// Append an instrumentation profile (span tree + counters) to the
    /// report.
    pub profile: bool,
    /// Write collapsed-stack (flamegraph-compatible) profile lines to
    /// this path.
    pub profile_folded: Option<String>,
    /// Edge-candidate supply override (`--dense` / `--sparse`; default
    /// auto-selects by net size, with bit-identical trees either way).
    pub edge_supply: EdgeSupply,
}

/// What `gen` should generate.
#[derive(Debug, Clone, PartialEq)]
pub enum GenSource {
    /// A uniform random net.
    Random {
        /// Number of sinks.
        sinks: usize,
        /// RNG seed.
        seed: u64,
        /// Die side length.
        side: f64,
    },
    /// A named paper benchmark.
    Bench(String),
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `bmst route ...`
    Route(RouteArgs),
    /// `bmst gen ...`
    Gen {
        /// What to generate.
        source: GenSource,
        /// Output path (`None` = stdout).
        out: Option<String>,
    },
    /// `bmst stats <net>`
    Stats {
        /// Input net file.
        net: String,
    },
    /// `bmst netlist <file>` — route a whole netlist.
    Netlist {
        /// Input netlist file (block format).
        file: String,
        /// The registered construction routing every net.
        algorithm: RouteAlgorithm,
        /// Worker threads (`1` = serial; output is identical either way).
        jobs: usize,
        /// Write a JSON-lines observability trace to this path.
        trace: Option<String>,
        /// Append an instrumentation profile to the report.
        profile: bool,
        /// Write collapsed-stack profile lines to this path.
        profile_folded: Option<String>,
        /// Cap on the router's eps-relaxation rungs (`None` = policy
        /// default; `0` disables stepping, the unbounded/SPT rungs remain).
        max_relaxations: Option<usize>,
        /// Write per-net failures as JSON lines to this path.
        failure_log: Option<String>,
        /// Exit with code 3 unless every net routed cleanly (no degraded,
        /// no failed nets).
        strict: bool,
        /// Edge-candidate supply override (`--dense` / `--sparse`).
        edge_supply: EdgeSupply,
    },
    /// `bmst algorithms` — list every registered construction.
    Algorithms,
    /// `bmst serve` — run the long-lived routing service (DESIGN §5i).
    Serve(ServeArgs),
    /// `bmst --help`
    Help,
}

/// Parsed `serve` arguments, mirroring `bmst_serve::ServeConfig`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Bind address (`host:port`; port `0` picks a free port).
    pub addr: String,
    /// Worker threads routing admitted requests.
    pub workers: usize,
    /// Bounded admission-queue capacity.
    pub queue: usize,
    /// Graceful-shutdown drain deadline in milliseconds.
    pub drain_ms: u64,
    /// LRU report-cache capacity in entries (`0` disables caching).
    pub cache: usize,
    /// Default per-request budget in milliseconds (`None` = unbounded).
    pub budget_ms: Option<u64>,
    /// Fault-injection seed (requires a `fault-inject` build).
    pub fault_seed: Option<u64>,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            addr: "127.0.0.1:7463".to_owned(),
            workers: 4,
            queue: 64,
            drain_ms: 2000,
            cache: 128,
            budget_ms: None,
            fault_seed: None,
        }
    }
}

/// A parsed `--flag value` pair (`None` for boolean flags).
type Flag = (String, Option<String>);

/// Flags that take no value. Shared by [`split_flags`] and the per-command
/// matchers so a new boolean flag only needs one entry here.
const BOOL_FLAGS: &[&str] = &[
    "edges", "audit", "help", "profile", "strict", "sparse", "dense",
];

/// Folds a `--sparse` / `--dense` flag into the supply knob, rejecting
/// contradictory combinations.
fn set_supply(current: EdgeSupply, wanted: EdgeSupply, cmd: &str) -> Result<EdgeSupply, CliError> {
    if current != EdgeSupply::Auto && current != wanted {
        return Err(CliError::new(format!(
            "{cmd}: --sparse and --dense are exclusive"
        )));
    }
    Ok(wanted)
}

/// Splits `argv` into positionals and `--flag value` pairs.
fn split_flags(args: &[String]) -> Result<(Vec<String>, Vec<Flag>), CliError> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            // Boolean flags take no value; everything else consumes one.
            let value = if BOOL_FLAGS.contains(&name) {
                None
            } else {
                Some(
                    it.next()
                        .ok_or_else(|| CliError::new(format!("--{name} needs a value")))?
                        .clone(),
                )
            };
            flags.push((name.to_owned(), value));
        } else {
            positional.push(a.clone());
        }
    }
    Ok((positional, flags))
}

fn parse_f64(name: &str, v: &str) -> Result<f64, CliError> {
    v.parse()
        .map_err(|_| CliError::new(format!("--{name}: {v:?} is not a number")))
}

/// Parses a non-negative integer flag value (`usize`/`u64` alike).
fn parse_count<T: std::str::FromStr>(name: &str, v: &str) -> Result<T, CliError> {
    v.parse()
        .map_err(|_| CliError::new(format!("--{name}: {v:?} is not a count")))
}

/// Parses a full invocation (program name already stripped).
pub(crate) fn parse(argv: &[String]) -> Result<Command, CliError> {
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "help" {
        return Ok(Command::Help);
    }
    let cmd = argv[0].as_str();
    let rest = &argv[1..];
    let (positional, flags) = split_flags(rest)?;

    match cmd {
        "route" => {
            let net = positional
                .first()
                .ok_or_else(|| CliError::new("route needs a net file"))?
                .clone();
            let mut args = RouteArgs {
                net,
                algorithm: Algorithm::Builder(RouteAlgorithm::bkrus()),
                eps: 0.2,
                eps1: None,
                pd_c: 0.5,
                svg: None,
                edges: false,
                audit: false,
                trace: None,
                profile: false,
                profile_folded: None,
                edge_supply: EdgeSupply::Auto,
            };
            for (name, value) in flags {
                let v = value.as_deref();
                match (name.as_str(), v) {
                    ("algorithm", Some(v)) => args.algorithm = Algorithm::from_name(v)?,
                    ("eps", Some(v)) => args.eps = parse_f64("eps", v)?,
                    ("eps1", Some(v)) => args.eps1 = Some(parse_f64("eps1", v)?),
                    ("pd-c", Some(v)) => args.pd_c = parse_f64("pd-c", v)?,
                    ("svg", Some(v)) => args.svg = Some(v.to_owned()),
                    ("trace", Some(v)) => args.trace = Some(v.to_owned()),
                    ("edges", _) => args.edges = true,
                    ("audit", _) => args.audit = true,
                    ("profile", _) => args.profile = true,
                    ("profile-folded", Some(v)) => args.profile_folded = Some(v.to_owned()),
                    ("sparse", _) => {
                        args.edge_supply =
                            set_supply(args.edge_supply, EdgeSupply::Sparse, "route")?;
                    }
                    ("dense", _) => {
                        args.edge_supply =
                            set_supply(args.edge_supply, EdgeSupply::Dense, "route")?;
                    }
                    (other, _) => {
                        return Err(CliError::new(format!("route: unknown flag --{other}")))
                    }
                }
            }
            Ok(Command::Route(args))
        }
        "gen" => {
            let mut sinks = None;
            let mut seed = 1u64;
            let mut side = 100.0;
            let mut bench = None;
            let mut out = None;
            for (name, value) in flags {
                let v = value.as_deref();
                match (name.as_str(), v) {
                    ("sinks", Some(v)) => {
                        sinks =
                            Some(v.parse().map_err(|_| {
                                CliError::new(format!("--sinks: {v:?} is not a count"))
                            })?)
                    }
                    ("seed", Some(v)) => {
                        seed = v
                            .parse()
                            .map_err(|_| CliError::new(format!("--seed: {v:?} is not a seed")))?
                    }
                    ("side", Some(v)) => side = parse_f64("side", v)?,
                    ("bench", Some(v)) => bench = Some(v.to_owned()),
                    ("out", Some(v)) => out = Some(v.to_owned()),
                    (other, _) => {
                        return Err(CliError::new(format!("gen: unknown flag --{other}")))
                    }
                }
            }
            let source = match (sinks, bench) {
                (Some(_), Some(_)) => {
                    return Err(CliError::new("gen: --sinks and --bench are exclusive"))
                }
                (Some(sinks), None) => GenSource::Random { sinks, seed, side },
                (None, Some(b)) => GenSource::Bench(b),
                (None, None) => return Err(CliError::new("gen: need --sinks N or --bench NAME")),
            };
            Ok(Command::Gen { source, out })
        }
        "stats" => {
            let net = positional
                .first()
                .ok_or_else(|| CliError::new("stats needs a net file"))?
                .clone();
            Ok(Command::Stats { net })
        }
        "netlist" => {
            let file = positional
                .first()
                .ok_or_else(|| CliError::new("netlist needs a netlist file"))?
                .clone();
            let mut algorithm = RouteAlgorithm::bkrus();
            let mut jobs = 1usize;
            let mut trace = None;
            let mut profile = false;
            let mut profile_folded = None;
            let mut max_relaxations = None;
            let mut failure_log = None;
            let mut strict = false;
            let mut edge_supply = EdgeSupply::Auto;
            for (name, value) in flags {
                match (name.as_str(), value.as_deref()) {
                    ("algorithm", Some(v)) => algorithm = netlist_algorithm(v)?,
                    ("jobs", Some(v)) => {
                        jobs = v.parse().map_err(|_| {
                            CliError::new(format!("--jobs: {v:?} is not a thread count"))
                        })?;
                        if jobs == 0 {
                            return Err(CliError::new("--jobs must be at least 1"));
                        }
                    }
                    ("trace", Some(v)) => trace = Some(v.to_owned()),
                    ("profile", _) => profile = true,
                    ("profile-folded", Some(v)) => profile_folded = Some(v.to_owned()),
                    ("max-relaxations", Some(v)) => {
                        max_relaxations = Some(v.parse().map_err(|_| {
                            CliError::new(format!("--max-relaxations: {v:?} is not a count"))
                        })?);
                    }
                    ("failure-log", Some(v)) => failure_log = Some(v.to_owned()),
                    ("strict", _) => strict = true,
                    ("sparse", _) => {
                        edge_supply = set_supply(edge_supply, EdgeSupply::Sparse, "netlist")?;
                    }
                    ("dense", _) => {
                        edge_supply = set_supply(edge_supply, EdgeSupply::Dense, "netlist")?;
                    }
                    (other, _) => {
                        return Err(CliError::new(format!("netlist: unknown flag --{other}")))
                    }
                }
            }
            Ok(Command::Netlist {
                file,
                algorithm,
                jobs,
                trace,
                profile,
                profile_folded,
                max_relaxations,
                failure_log,
                strict,
                edge_supply,
            })
        }
        "algorithms" => Ok(Command::Algorithms),
        "serve" => {
            if let Some(extra) = positional.first() {
                return Err(CliError::new(format!(
                    "serve takes no positional argument (got {extra:?})"
                )));
            }
            let mut args = ServeArgs::default();
            for (name, value) in flags {
                match (name.as_str(), value.as_deref()) {
                    ("addr", Some(v)) => args.addr = v.to_owned(),
                    ("workers", Some(v)) => {
                        args.workers = parse_count("workers", v)?;
                        if args.workers == 0 {
                            return Err(CliError::new("--workers must be at least 1"));
                        }
                    }
                    ("queue", Some(v)) => {
                        args.queue = parse_count("queue", v)?;
                        if args.queue == 0 {
                            return Err(CliError::new("--queue must be at least 1"));
                        }
                    }
                    ("drain-ms", Some(v)) => args.drain_ms = parse_count("drain-ms", v)?,
                    ("cache", Some(v)) => args.cache = parse_count("cache", v)?,
                    ("budget-ms", Some(v)) => {
                        args.budget_ms = Some(parse_count("budget-ms", v)?);
                    }
                    ("fault-seed", Some(v)) => {
                        args.fault_seed = Some(v.parse().map_err(|_| {
                            CliError::new(format!("--fault-seed: {v:?} is not a seed"))
                        })?);
                    }
                    (other, _) => {
                        return Err(CliError::new(format!("serve: unknown flag --{other}")))
                    }
                }
            }
            Ok(Command::Serve(args))
        }
        other => Err(CliError::new(format!(
            "unknown command {other:?} (try `bmst --help`)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parse_route_defaults() {
        let Command::Route(a) = parse(&argv("route net.txt")).unwrap() else {
            panic!()
        };
        assert_eq!(a.algorithm, Algorithm::Builder(RouteAlgorithm::bkrus()));
        assert_eq!(a.eps, 0.2);
        assert!(!a.edges);
        assert!(!a.audit);
    }

    #[test]
    fn parse_route_full() {
        let Command::Route(a) = parse(&argv(
            "route net.txt --algorithm steiner --eps 0.5 --eps1 0.1 --svg t.svg --edges --audit",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(a.algorithm, Algorithm::Builder(RouteAlgorithm::steiner()));
        assert_eq!(a.eps, 0.5);
        assert_eq!(a.eps1, Some(0.1));
        assert_eq!(a.svg.as_deref(), Some("t.svg"));
        assert!(a.edges);
        assert!(a.audit);
    }

    #[test]
    fn parse_edge_supply_flags() {
        let Command::Route(a) = parse(&argv("route net.txt --sparse")).unwrap() else {
            panic!()
        };
        assert_eq!(a.edge_supply, EdgeSupply::Sparse);
        let Command::Route(a) = parse(&argv("route net.txt --dense")).unwrap() else {
            panic!()
        };
        assert_eq!(a.edge_supply, EdgeSupply::Dense);
        let Command::Route(a) = parse(&argv("route net.txt")).unwrap() else {
            panic!()
        };
        assert_eq!(a.edge_supply, EdgeSupply::Auto);

        let Command::Netlist { edge_supply, .. } =
            parse(&argv("netlist nets.txt --sparse")).unwrap()
        else {
            panic!()
        };
        assert_eq!(edge_supply, EdgeSupply::Sparse);
        let Command::Netlist { edge_supply, .. } =
            parse(&argv("netlist nets.txt --dense")).unwrap()
        else {
            panic!()
        };
        assert_eq!(edge_supply, EdgeSupply::Dense);

        let err = parse(&argv("route net.txt --sparse --dense")).unwrap_err();
        assert!(err.to_string().contains("exclusive"), "{err}");
        let err = parse(&argv("netlist nets.txt --dense --sparse")).unwrap_err();
        assert!(err.to_string().contains("exclusive"), "{err}");
    }

    #[test]
    fn parse_gen_variants() {
        assert_eq!(
            parse(&argv("gen --sinks 5 --seed 2 --side 50")).unwrap(),
            Command::Gen {
                source: GenSource::Random {
                    sinks: 5,
                    seed: 2,
                    side: 50.0
                },
                out: None
            }
        );
        assert_eq!(
            parse(&argv("gen --bench p3 --out x.txt")).unwrap(),
            Command::Gen {
                source: GenSource::Bench("p3".into()),
                out: Some("x.txt".into())
            }
        );
        assert!(parse(&argv("gen")).is_err());
        assert!(parse(&argv("gen --sinks 5 --bench p1")).is_err());
    }

    #[test]
    fn missing_value_errors() {
        assert!(parse(&argv("route net.txt --eps")).is_err());
    }

    #[test]
    fn unknown_flag_at_end_of_argv_reports_missing_value() {
        // An unknown non-boolean flag as the last token must produce the
        // "needs a value" error, not a panic or silent acceptance.
        let err = split_flags(&argv("net.txt --bogus")).unwrap_err();
        assert!(err.message.contains("--bogus needs a value"), "got {err}");
    }

    #[test]
    fn bool_flags_consume_no_value() {
        let (positional, flags) =
            split_flags(&argv("net.txt --audit --eps 0.3 --profile")).unwrap();
        assert_eq!(positional, vec!["net.txt"]);
        assert_eq!(
            flags,
            vec![
                ("audit".to_owned(), None),
                ("eps".to_owned(), Some("0.3".to_owned())),
                ("profile".to_owned(), None),
            ]
        );
    }

    #[test]
    fn parse_route_trace_and_profile() {
        let Command::Route(a) = parse(&argv("route net.txt --trace out.jsonl --profile")).unwrap()
        else {
            panic!()
        };
        assert_eq!(a.trace.as_deref(), Some("out.jsonl"));
        assert!(a.profile);
    }

    #[test]
    fn parse_netlist_trace_and_profile() {
        let Command::Netlist {
            algorithm,
            jobs,
            trace,
            profile,
            ..
        } = parse(&argv(
            "netlist nets.txt --algorithm bkh2 --trace t.jsonl --profile",
        ))
        .unwrap()
        else {
            panic!()
        };
        assert_eq!(algorithm.name(), "bkh2");
        assert_eq!(jobs, 1);
        assert_eq!(trace.as_deref(), Some("t.jsonl"));
        assert!(profile);
    }

    #[test]
    fn parse_profile_folded_takes_a_path() {
        let Command::Route(a) = parse(&argv(
            "route net.txt --profile --profile-folded prof.folded",
        ))
        .unwrap() else {
            panic!()
        };
        assert!(a.profile);
        assert_eq!(a.profile_folded.as_deref(), Some("prof.folded"));
        // Works independently of --profile, and on netlist too.
        let Command::Netlist { profile_folded, .. } =
            parse(&argv("netlist nets.txt --profile-folded n.folded")).unwrap()
        else {
            panic!()
        };
        assert_eq!(profile_folded.as_deref(), Some("n.folded"));
        // A value is required.
        assert!(parse(&argv("route net.txt --profile-folded")).is_err());
    }

    #[test]
    fn parse_netlist_jobs() {
        let Command::Netlist { jobs, .. } = parse(&argv("netlist nets.txt --jobs 4")).unwrap()
        else {
            panic!()
        };
        assert_eq!(jobs, 4);
        assert!(parse(&argv("netlist nets.txt --jobs 0")).is_err());
        assert!(parse(&argv("netlist nets.txt --jobs many")).is_err());
        // Clock trees have no path bound: not a netlist algorithm.
        assert!(parse(&argv("netlist nets.txt --algorithm zskew")).is_err());
    }

    #[test]
    fn parse_netlist_robustness_flags() {
        let Command::Netlist {
            max_relaxations,
            failure_log,
            strict,
            ..
        } = parse(&argv(
            "netlist nets.txt --max-relaxations 3 --failure-log f.jsonl --strict",
        ))
        .unwrap()
        else {
            panic!()
        };
        assert_eq!(max_relaxations, Some(3));
        assert_eq!(failure_log.as_deref(), Some("f.jsonl"));
        assert!(strict);
        assert!(parse(&argv("netlist nets.txt --max-relaxations lots")).is_err());
        // Defaults: policy-default relaxations, no log, lenient.
        let Command::Netlist {
            max_relaxations,
            failure_log,
            strict,
            ..
        } = parse(&argv("netlist nets.txt")).unwrap()
        else {
            panic!()
        };
        assert_eq!(max_relaxations, None);
        assert!(failure_log.is_none());
        assert!(!strict);
    }

    #[test]
    fn parse_algorithms_command() {
        assert_eq!(parse(&argv("algorithms")).unwrap(), Command::Algorithms);
    }

    #[test]
    fn algorithm_aliases() {
        let gabow = Algorithm::from_name("bmst-g").unwrap();
        assert_eq!(gabow.name(), "gabow");
        let steiner = Algorithm::from_name("bkst").unwrap();
        assert_eq!(steiner.name(), "steiner");
        assert_eq!(Algorithm::from_name("dme").unwrap(), Algorithm::ZeroSkew);
        let err = Algorithm::from_name("magic").unwrap_err();
        // The error enumerates the registry so users see every valid name.
        assert!(err.message.contains("bkrus"), "{err}");
        assert!(err.message.contains("steiner"), "{err}");
        assert!(err.message.contains("zskew"), "{err}");
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn parse_serve_defaults_and_knobs() {
        assert_eq!(
            parse(&argv("serve")).unwrap(),
            Command::Serve(ServeArgs::default())
        );
        let Command::Serve(a) = parse(&argv(
            "serve --addr 127.0.0.1:0 --workers 2 --queue 8 --drain-ms 500 \
             --cache 0 --budget-ms 250 --fault-seed 7",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(a.addr, "127.0.0.1:0");
        assert_eq!(a.workers, 2);
        assert_eq!(a.queue, 8);
        assert_eq!(a.drain_ms, 500);
        assert_eq!(a.cache, 0);
        assert_eq!(a.budget_ms, Some(250));
        assert_eq!(a.fault_seed, Some(7));
    }

    #[test]
    fn parse_serve_rejects_bad_knobs() {
        assert!(parse(&argv("serve --workers 0")).is_err());
        assert!(parse(&argv("serve --queue 0")).is_err());
        assert!(parse(&argv("serve --workers many")).is_err());
        assert!(parse(&argv("serve --budget-ms -5")).is_err());
        assert!(parse(&argv("serve extra")).is_err());
        assert!(parse(&argv("serve --wat 3")).is_err());
    }
}
