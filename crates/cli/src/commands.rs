//! Command implementations.

use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

use bmst_obs::{JsonLinesRecorder, MultiRecorder, Recorder, SpanTreeRecorder};

use bmst_core::{
    audit_construction, lub_bkrus, mst_tree, spt_tree, BoundKind, BuilderDescriptor, CostClass,
    EdgeSupply, PathConstraint, ProblemContext,
};
use bmst_geom::{Net, Point};
use bmst_instances::Benchmark;
use bmst_io::{netfile, svg};
use bmst_tree::RoutingTree;

use bmst_clock::zero_skew_tree;
use bmst_router::{Netlist, RouteAlgorithm, RouterConfig};

use crate::args::{Algorithm, CliError, Command, GenSource, RouteArgs, ServeArgs};
use crate::USAGE;

/// Runs a parsed command, returning the text to print.
///
/// # Errors
///
/// [`CliError`] for I/O problems and infeasible instances.
pub fn run(cmd: Command) -> Result<String, CliError> {
    match cmd {
        Command::Help => Ok(USAGE.to_owned()),
        Command::Algorithms => Ok(algorithms()),
        Command::Serve(args) => serve(&args),
        Command::Stats { net } => stats(&net),
        Command::Gen { source, out } => gen(source, out),
        Command::Route(args) => {
            let trace = args.trace.clone();
            let profile = args.profile;
            let folded = args.profile_folded.clone();
            with_observability(trace.as_deref(), profile, folded.as_deref(), || route(args))
        }
        Command::Netlist {
            file,
            algorithm,
            jobs,
            trace,
            profile,
            profile_folded,
            max_relaxations,
            failure_log,
            strict,
            edge_supply,
        } => {
            // The strict gate runs after observability teardown so the
            // trace file is finished (counters line, flush) even when the
            // gate fails the invocation.
            let mut clean = true;
            let out =
                with_observability(trace.as_deref(), profile, profile_folded.as_deref(), || {
                    route_netlist(
                        &file,
                        algorithm,
                        jobs,
                        max_relaxations,
                        failure_log.as_deref(),
                        edge_supply,
                        &mut clean,
                    )
                })?;
            if strict && !clean {
                return Err(CliError::with_code(
                    format!("netlist has failed or degraded nets (--strict)\n{out}"),
                    3,
                ));
            }
            Ok(out)
        }
    }
}

/// Runs `f` with the observability layer configured per `--trace` /
/// `--profile` / `--profile-folded`: a [`JsonLinesRecorder`] streaming to
/// `trace`, an in-memory [`SpanTreeRecorder`] whose span-tree profile is
/// appended to the report (`--profile`) and/or written as collapsed-stack
/// flamegraph lines (`--profile-folded PATH`), fanned out as needed — or,
/// the common case, nothing, leaving instrumentation disabled.
fn with_observability(
    trace: Option<&str>,
    profile: bool,
    folded: Option<&str>,
    f: impl FnOnce() -> Result<String, CliError>,
) -> Result<String, CliError> {
    if trace.is_none() && !profile && folded.is_none() {
        return f();
    }
    let jsonl = trace
        .map(|p| {
            JsonLinesRecorder::create(Path::new(p))
                .map(Arc::new)
                .map_err(|e| CliError::new(format!("--trace {p}: {e}")))
        })
        .transpose()?;
    let tree = (profile || folded.is_some()).then(|| Arc::new(SpanTreeRecorder::new()));
    let mut sinks: Vec<Arc<dyn Recorder>> = Vec::new();
    if let Some(j) = &jsonl {
        sinks.push(j.clone());
    }
    if let Some(t) = &tree {
        sinks.push(t.clone());
    }
    let recorder: Arc<dyn Recorder> = if sinks.len() == 1 {
        sinks.remove(0)
    } else {
        Arc::new(MultiRecorder::new(sinks))
    };
    let guard = bmst_obs::scoped(recorder);
    let result = f();
    drop(guard);

    let mut out = result?;
    if let (Some(j), Some(p)) = (&jsonl, trace) {
        j.finish()
            .map_err(|e| CliError::new(format!("--trace {p}: {e}")))?;
        let _ = writeln!(out, "  trace -> {p}");
    }
    if let Some(t) = &tree {
        if profile {
            let _ = writeln!(out, "profile:");
            for line in t.render_text().lines() {
                let _ = writeln!(out, "  {line}");
            }
        }
        if let Some(p) = folded {
            std::fs::write(p, t.render_folded())
                .map_err(|e| CliError::new(format!("--profile-folded {p}: {e}")))?;
            let _ = writeln!(out, "  folded profile -> {p}");
        }
    }
    Ok(out)
}

fn route_netlist(
    path: &str,
    algorithm: RouteAlgorithm,
    jobs: usize,
    max_relaxations: Option<usize>,
    failure_log: Option<&str>,
    edge_supply: EdgeSupply,
    clean: &mut bool,
) -> Result<String, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| CliError::new(format!("{path}: {e}")))?;
    let netlist =
        Netlist::from_str_block(&text).map_err(|e| CliError::new(format!("{path}: {e}")))?;
    let mut config = RouterConfig {
        algorithm,
        edge_supply,
        ..RouterConfig::default()
    };
    if let Some(n) = max_relaxations {
        config.relaxation.max_relaxations = n;
    }
    // The parallel pass assembles results in input order, so the printed
    // report is byte-identical for every jobs value.
    let report = netlist.route_parallel(&config, jobs);
    *clean = report.is_clean();
    let mut out = format!("[{}]\n{report}\n", algorithm.name());
    if let Some(p) = failure_log {
        let mut log = String::new();
        for f in &report.failures {
            log.push_str(&f.to_json().to_string());
            log.push('\n');
        }
        std::fs::write(p, log).map_err(|e| CliError::new(format!("--failure-log {p}: {e}")))?;
        let _ = writeln!(
            out,
            "  failure log -> {p} ({} failures)",
            report.failures.len()
        );
    }
    Ok(out)
}

/// Short label for a descriptor's cost class.
fn cost_class_name(c: CostClass) -> &'static str {
    match c {
        CostClass::Baseline => "baseline",
        CostClass::Heuristic => "heuristic",
        CostClass::LocalSearch => "local-search",
        CostClass::Exact => "exact",
    }
}

/// Short label for a descriptor's bound kind.
fn bound_kind_name(b: BoundKind) -> &'static str {
    match b {
        BoundKind::Window => "window",
        BoundKind::PerNode => "per-node",
        BoundKind::Soft => "soft",
        BoundKind::None => "none",
        BoundKind::Delay => "delay",
    }
}

/// `bmst algorithms`: the registry rendered as a table, plus the zero-skew
/// clock construction that lives outside it.
fn algorithms() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:<10} {:<12} {:<9} summary",
        "name", "aliases", "class", "bound"
    );
    for alg in RouteAlgorithm::all() {
        let d = alg.descriptor();
        let _ = writeln!(
            out,
            "{:<14} {:<10} {:<12} {:<9} {}",
            d.name,
            d.aliases.join(","),
            cost_class_name(d.cost_class),
            bound_kind_name(d.bound),
            d.summary
        );
    }
    let _ = writeln!(
        out,
        "{:<14} {:<10} {:<12} {:<9} zero-skew clock tree (all sink paths equal)",
        "zskew", "dme", "heuristic", "skew"
    );
    out
}

/// `bmst serve`: bind, announce the port, and block until a termination
/// signal (or a `shutdown` request) drains the server. The summary text
/// is returned for `main` to print after shutdown; the listening line is
/// printed live because clients need the resolved port while the server
/// blocks in `run`.
fn serve(args: &ServeArgs) -> Result<String, CliError> {
    let server = bmst_serve::Server::bind(bmst_serve::ServeConfig {
        addr: args.addr.clone(),
        workers: args.workers,
        queue_capacity: args.queue,
        drain_ms: args.drain_ms,
        cache_entries: args.cache,
        default_budget_ms: args.budget_ms,
        fault_seed: args.fault_seed,
    })
    .map_err(|e| CliError::new(e.to_string()))?;
    bmst_serve::signal::install();
    // lint: allow(no-print) — live announcement of the resolved port; run() blocks until shutdown
    println!("listening on {}", server.local_addr());
    let _ = std::io::Write::flush(&mut std::io::stdout());
    let summary = server.run().map_err(|e| CliError::new(e.to_string()))?;
    Ok(format!(
        "shutdown complete\n\
         accepted = {}  completed = {}  shed = {}  malformed = {}\n\
         cache hits/misses = {}/{}  deadline exceeded = {}  internal = {}  cancelled at drain = {}\n",
        summary.accepted,
        summary.completed,
        summary.shed,
        summary.malformed,
        summary.cache_hits,
        summary.cache_misses,
        summary.deadline_exceeded,
        summary.internal_errors,
        summary.cancelled_stragglers,
    ))
}

fn load(path: &str) -> Result<Net, CliError> {
    netfile::read(path).map_err(|e| CliError::new(format!("{path}: {e}")))
}

fn stats(path: &str) -> Result<String, CliError> {
    let net = load(path)?;
    let mut out = String::new();
    let _ = writeln!(out, "{path}:");
    let _ = writeln!(
        out,
        "  points = {} (1 source + {} sinks)",
        net.len(),
        net.num_sinks()
    );
    let _ = writeln!(
        out,
        "  complete-graph edges = {}",
        net.complete_edge_count()
    );
    let _ = writeln!(out, "  R = {} (farthest sink)", net.source_radius());
    let _ = writeln!(out, "  r = {} (nearest sink)", net.source_nearest());
    let bb = net.bounding_box();
    let _ = writeln!(
        out,
        "  bounding box = {} .. {}, HPWL = {}",
        bb.lo,
        bb.hi,
        bb.half_perimeter()
    );
    let _ = writeln!(out, "  cost(MST) = {:.3}", mst_tree(&net).cost());
    let _ = writeln!(out, "  cost(SPT) = {:.3}", spt_tree(&net).cost());
    Ok(out)
}

fn gen(source: GenSource, out: Option<String>) -> Result<String, CliError> {
    let (net, label) = match source {
        GenSource::Random { sinks, seed, side } => {
            // Reuse the instances generator for exact reproducibility.
            let n = bmst_instances::uniform_cloud(sinks, side, seed);
            (
                n,
                format!("uniform net: {sinks} sinks, seed {seed}, side {side}"),
            )
        }
        GenSource::Bench(name) => {
            let b = Benchmark::ALL
                .iter()
                .find(|b| b.name() == name)
                .ok_or_else(|| CliError::new(format!("unknown benchmark {name:?}")))?;
            (b.build(), format!("paper benchmark {name}"))
        }
    };
    let text = netfile::to_string(&net);
    match out {
        Some(path) => {
            std::fs::write(&path, text).map_err(|e| CliError::new(format!("{path}: {e}")))?;
            Ok(format!("{label} -> {path} ({} sinks)\n", net.num_sinks()))
        }
        None => Ok(text),
    }
}

/// The outcome of routing: a tree over node coordinates (Steiner routing
/// materialises extra nodes).
struct Routed {
    tree: RoutingTree,
    points: Vec<Point>,
    terminals: usize,
    bound_note: String,
}

/// The human-readable guarantee line, derived from the descriptor's bound
/// kind and cost class rather than from the algorithm's name.
fn bound_note(d: &BuilderDescriptor, net: &Net, args: &RouteArgs) -> String {
    let prefix = if d.cost_class == CostClass::Exact {
        "optimal, "
    } else if d.steiner {
        "Steiner, "
    } else {
        ""
    };
    match d.bound {
        BoundKind::Window => format!("{prefix}longest path <= {}", net.path_bound(args.eps)),
        BoundKind::PerNode => format!("{prefix}per-node paths <= (1+{})*dist", args.eps),
        BoundKind::Soft => format!("soft blend c = {} (no hard bound)", args.pd_c),
        BoundKind::Delay => format!("Elmore delay <= (1+{}) * delay(SPT)", args.eps),
        BoundKind::None => d.summary.to_owned(),
    }
}

fn route(args: RouteArgs) -> Result<String, CliError> {
    let net = load(&args.net)?;
    let infeasible = |e: bmst_core::BmstError| CliError::new(format!("routing failed: {e}"));

    // `--eps1` selects the §6 lower/upper-bounded construction, which
    // post-validates the whole window; it is only defined for BKRUS.
    let lub_window = match (&args.algorithm, args.eps1) {
        (Algorithm::Builder(alg), Some(e1)) if alg.name() == "bkrus" => Some(e1),
        _ => None,
    };

    let routed = match args.algorithm {
        Algorithm::ZeroSkew => {
            let zst = zero_skew_tree(&net);
            Routed {
                tree: zst.tree,
                points: zst.points,
                terminals: zst.num_terminals,
                bound_note: "zero skew (all sink paths equal)".into(),
            }
        }
        Algorithm::Builder(alg) => {
            if let Some(e1) = lub_window {
                let tree = lub_bkrus(&net, e1, args.eps).map_err(infeasible)?;
                Routed {
                    tree,
                    points: net.points().to_vec(),
                    terminals: net.len(),
                    bound_note: format!(
                        "paths within [{} , {}]",
                        e1 * net.source_radius(),
                        net.path_bound(args.eps)
                    ),
                }
            } else {
                let cx = ProblemContext::new(&net, args.eps)
                    .map_err(infeasible)?
                    .with_pd_blend(args.pd_c)
                    .with_edge_supply(args.edge_supply);
                let d = alg.descriptor();
                let g = alg.builder().build_geometry(&cx).map_err(infeasible)?;
                Routed {
                    tree: g.tree,
                    points: g.points,
                    terminals: g.num_terminals,
                    bound_note: bound_note(d, &net, &args),
                }
            }
        }
    };

    let mut out = String::new();
    let _ = writeln!(out, "{} [{}]", args.net, args.algorithm.name());
    let _ = writeln!(out, "  {}", routed.bound_note);
    if args.audit {
        // Re-verify the finished tree against the net: structure, path
        // tables, merge consistency, and — where the algorithm gives a hard
        // guarantee — the path-length window. Steiner/clock trees add
        // non-terminal nodes and the soft heuristics promise no window:
        // for those, audit structure and tables only.
        let constraint = match args.algorithm {
            Algorithm::ZeroSkew => None,
            Algorithm::Builder(alg) => {
                let d = alg.descriptor();
                if d.steiner {
                    None
                } else {
                    match (d.bound, lub_window) {
                        (BoundKind::Window, Some(e1)) => Some(
                            PathConstraint::from_eps_window(&net, e1, args.eps)
                                .map_err(infeasible)?,
                        ),
                        (BoundKind::Window | BoundKind::PerNode, None) => {
                            Some(PathConstraint::from_eps(&net, args.eps).map_err(infeasible)?)
                        }
                        _ => None,
                    }
                }
            }
        };
        audit_construction(&net, &routed.tree, constraint.as_ref())
            .map_err(|v| CliError::new(format!("audit failed: {v}")))?;
        let _ = writeln!(out, "  audit = ok (structure, tables, merge, bounds)");
    }
    let _ = writeln!(out, "  cost = {:.4}", routed.tree.cost());
    let sinks = (0..routed.terminals).filter(|&v| v != routed.tree.root());
    let _ = writeln!(
        out,
        "  longest source-sink path (radius) = {:.4}",
        routed.tree.max_dist_from_root(sinks.clone())
    );
    let _ = writeln!(
        out,
        "  shortest path = {:.4}",
        routed.tree.min_dist_from_root(sinks)
    );
    let mst_cost = mst_tree(&net).cost();
    if mst_cost > 0.0 {
        let _ = writeln!(
            out,
            "  cost / cost(MST) = {:.4}",
            routed.tree.cost() / mst_cost
        );
    }
    let steiner_count = routed.tree.covered_count().saturating_sub(routed.terminals);
    if steiner_count > 0 {
        let _ = writeln!(out, "  steiner points = {steiner_count}");
    }
    if args.edges {
        let _ = writeln!(out, "  edges:");
        for e in routed.tree.edges() {
            let _ = writeln!(out, "    {} - {}  len {:.4}", e.u, e.v, e.weight);
        }
    }
    if let Some(path) = &args.svg {
        let opts = svg::SvgOptions {
            terminals: routed.terminals,
            ..Default::default()
        };
        svg::write_tree(path, &routed.points, &routed.tree, &opts)
            .map_err(|e| CliError::new(format!("{path}: {e}")))?;
        let _ = writeln!(out, "  svg -> {path}");
    }
    Ok(out)
}
