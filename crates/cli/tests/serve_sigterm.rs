//! Process-level graceful shutdown: a real `bmst serve` child, a real
//! SIGTERM. The in-process soak drives the same drain path through
//! `signal::trigger`; this test covers the one piece that cannot be
//! tested in-process — the installed handler catching an actual signal —
//! and pins the typed exit codes.

#![cfg(unix)]
#![allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn bmst() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bmst"))
}

/// Reads the `listening on 127.0.0.1:<port>` announcement line.
fn read_port(child: &mut Child) -> (u16, BufReader<std::process::ChildStdout>) {
    let stdout = child.stdout.take().unwrap();
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"));
    let port = addr.rsplit(':').next().unwrap().parse().unwrap();
    (port, reader)
}

fn wait_with_timeout(child: &mut Child, limit: Duration) -> std::process::ExitStatus {
    let deadline = Instant::now() + limit;
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            return status;
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            panic!("serve did not exit within {limit:?} of SIGTERM");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn sigterm_drains_and_exits_zero() {
    let mut child = bmst()
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let (port, mut reader) = read_port(&mut child);

    // Serve one request end-to-end before the signal.
    let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(
            b"{\"id\":1,\"op\":\"route\",\"netlist\":\"net a critical\\n0 0\\n10 0\\n9 5\\nend\\n\"}\n",
        )
        .unwrap();
    let mut conn_reader = BufReader::new(stream.try_clone().unwrap());
    let mut response = String::new();
    conn_reader.read_line(&mut response).unwrap();
    assert!(response.contains("\"ok\":true"), "{response}");

    // The real signal, delivered by the OS.
    let killed = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .unwrap();
    assert!(killed.success());

    let status = wait_with_timeout(&mut child, Duration::from_secs(30));
    assert!(status.success(), "expected clean exit, got {status:?}");

    let mut rest = String::new();
    reader.read_to_string(&mut rest).unwrap();
    assert!(rest.contains("shutdown complete"), "{rest}");
    assert!(rest.contains("accepted = 1"), "{rest}");
    assert!(rest.contains("completed = 1"), "{rest}");
}

#[test]
fn bind_failure_exits_one() {
    let output = bmst()
        .args(["serve", "--addr", "definitely-not-an-address"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1), "{output:?}");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("cannot bind"), "{stderr}");
}

#[test]
fn fault_seed_without_feature_is_rejected() {
    // The default CLI build carries no failpoints; asking for a seed must
    // fail fast with a config error, not silently serve faultless.
    if cfg!(feature = "fault-inject") {
        return;
    }
    let output = bmst()
        .args(["serve", "--addr", "127.0.0.1:0", "--fault-seed", "7"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1), "{output:?}");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("fault-inject"), "{stderr}");
}
