//! Property tests for the netlist format and the routing pass.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats

use bmst_geom::{Net, Point};
use bmst_router::{Criticality, NamedNet, Netlist, RouterConfig};
use proptest::prelude::*;

fn arb_named_net() -> impl Strategy<Value = NamedNet> {
    (
        "[a-z][a-z0-9_]{0,8}",
        proptest::collection::vec((0i32..200, 0i32..200), 1..=8),
        0usize..3,
    )
        .prop_map(|(name, coords, crit)| {
            let pts: Vec<Point> = coords
                .iter()
                .map(|&(x, y)| Point::new(x as f64 * 0.5, y as f64 * 0.25))
                .collect();
            let criticality = match crit {
                0 => Criticality::Critical,
                1 => Criticality::Normal,
                _ => Criticality::Relaxed,
            };
            NamedNet::new(
                name,
                Net::with_source_first(pts).expect("finite"),
                criticality,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Netlists round-trip through the block format exactly.
    #[test]
    fn block_format_round_trips(nets in proptest::collection::vec(arb_named_net(), 0..6)) {
        let nl = Netlist::new(nets);
        let text = nl.to_string_block();
        let back = Netlist::from_str_block(&text).expect("own output parses");
        prop_assert_eq!(nl, back);
    }

    /// Routing any netlist meets every per-net bound and sums wirelengths.
    #[test]
    fn routing_meets_bounds(nets in proptest::collection::vec(arb_named_net(), 1..5)) {
        let nl = Netlist::new(nets);
        let report = nl.route(&RouterConfig::default());
        prop_assert!(report.failures.is_empty(), "{:?}", report.failures);
        prop_assert_eq!(report.nets.len(), nl.len());
        let mut total = 0.0f64;
        for rn in &report.nets {
            prop_assert!(rn.radius <= rn.bound + 1e-9, "{}", rn.name);
            prop_assert!(rn.slack() >= -1e-9);
            total += rn.wirelength;
        }
        prop_assert!((total - report.total_wirelength).abs() < 1e-9);
    }

    /// Garbage lines never panic the parser.
    #[test]
    fn parser_never_panics(text in "[ -~\n]{0,200}") {
        let _ = Netlist::from_str_block(&text);
    }
}
