//! Routing reports.

use std::fmt;

use bmst_tree::RoutingTree;

use crate::Criticality;

/// One routed net.
#[derive(Debug, Clone)]
pub struct RoutedNet {
    /// The net's name.
    pub name: String,
    /// Its criticality tag.
    pub criticality: Criticality,
    /// The eps it was routed under.
    pub eps: f64,
    /// Total wirelength of its tree (Steiner wirelength for Steiner nets).
    pub wirelength: f64,
    /// Longest source-to-sink path length.
    pub radius: f64,
    /// The path-length bound it was routed under (`(1 + eps) * R`).
    pub bound: f64,
    /// The routing tree itself.
    pub tree: RoutingTree,
}

impl RoutedNet {
    /// Slack between the bound and the achieved radius (never negative for
    /// a correct router).
    #[inline]
    pub fn slack(&self) -> f64 {
        self.bound - self.radius
    }
}

/// The aggregate result of routing a netlist.
#[derive(Debug, Clone)]
pub struct RouteReport {
    /// Per-net results, in netlist order.
    pub nets: Vec<RoutedNet>,
    /// Sum of all net wirelengths — the paper's power/area proxy.
    pub total_wirelength: f64,
}

impl RouteReport {
    /// The smallest slack across all nets (`inf` for an empty report).
    /// Negative slack would mean a bound violation.
    pub fn worst_slack(&self) -> f64 {
        self.nets
            .iter()
            .map(RoutedNet::slack)
            .fold(f64::INFINITY, f64::min)
    }

    /// The net with the smallest slack, if any.
    pub fn most_critical(&self) -> Option<&RoutedNet> {
        self.nets
            .iter()
            .min_by(|a, b| a.slack().total_cmp(&b.slack()))
    }

    /// Serialises the full report — totals plus every routed net with its
    /// tree edges — as JSON. Used by the determinism tests and benchmarks
    /// to compare serial and parallel routing outputs structurally.
    pub fn to_json(&self) -> bmst_obs::json::Json {
        use bmst_obs::json::Json;
        Json::Obj(vec![
            (
                "total_wirelength".to_owned(),
                Json::Num(self.total_wirelength),
            ),
            ("worst_slack".to_owned(), json_num(self.worst_slack())),
            (
                "nets".to_owned(),
                Json::Arr(self.nets.iter().map(RoutedNet::to_json).collect()),
            ),
        ])
    }
}

/// Non-finite numbers have no JSON representation; encode them as the
/// string `"inf"` (matching the benchmark schema's eps encoding).
fn json_num(v: f64) -> bmst_obs::json::Json {
    use bmst_obs::json::Json;
    if v.is_finite() {
        Json::Num(v)
    } else {
        Json::Str("inf".to_owned())
    }
}

impl RoutedNet {
    /// Serialises this net's routing result, including the tree edge list,
    /// as JSON.
    pub fn to_json(&self) -> bmst_obs::json::Json {
        use bmst_obs::json::Json;
        Json::Obj(vec![
            ("name".to_owned(), Json::Str(self.name.clone())),
            (
                "criticality".to_owned(),
                Json::Str(self.criticality.name().to_owned()),
            ),
            ("eps".to_owned(), json_num(self.eps)),
            ("wirelength".to_owned(), Json::Num(self.wirelength)),
            ("radius".to_owned(), Json::Num(self.radius)),
            ("bound".to_owned(), json_num(self.bound)),
            ("slack".to_owned(), json_num(self.slack())),
            (
                "edges".to_owned(),
                Json::Arr(
                    self.tree
                        .edges()
                        .iter()
                        .map(|e| {
                            Json::Arr(vec![
                                Json::from_u64(u64::try_from(e.u).unwrap_or(u64::MAX)),
                                Json::from_u64(u64::try_from(e.v).unwrap_or(u64::MAX)),
                                Json::Num(e.weight),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl fmt::Display for RouteReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:>9} {:>6} {:>10} {:>10} {:>10} {:>10}",
            "net", "class", "eps", "wirelen", "radius", "bound", "slack"
        )?;
        for n in &self.nets {
            writeln!(
                f,
                "{:<12} {:>9} {:>6} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
                n.name,
                n.criticality.name(),
                if n.eps.is_infinite() {
                    "inf".into()
                } else {
                    format!("{:.2}", n.eps)
                },
                n.wirelength,
                n.radius,
                n.bound,
                n.slack()
            )?;
        }
        writeln!(f, "total wirelength: {:.2}", self.total_wirelength)?;
        write!(f, "worst slack: {:.2}", self.worst_slack())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use bmst_graph::Edge;

    fn routed(name: &str, radius: f64, bound: f64) -> RoutedNet {
        RoutedNet {
            name: name.into(),
            criticality: Criticality::Normal,
            eps: 0.5,
            wirelength: 10.0,
            radius,
            bound,
            tree: RoutingTree::from_edges(2, 0, vec![Edge::new(0, 1, 10.0)]).unwrap(),
        }
    }

    #[test]
    fn slack_and_worst() {
        let report = RouteReport {
            nets: vec![routed("a", 8.0, 12.0), routed("b", 11.0, 12.0)],
            total_wirelength: 20.0,
        };
        assert_eq!(report.worst_slack(), 1.0);
        assert_eq!(report.most_critical().unwrap().name, "b");
    }

    #[test]
    fn display_lists_every_net() {
        let report = RouteReport {
            nets: vec![routed("clk", 8.0, 12.0)],
            total_wirelength: 10.0,
        };
        let text = report.to_string();
        assert!(text.contains("clk"));
        assert!(text.contains("total wirelength: 10.00"));
        assert!(text.contains("worst slack: 4.00"));
    }

    #[test]
    fn empty_report() {
        let report = RouteReport {
            nets: vec![],
            total_wirelength: 0.0,
        };
        assert!(report.most_critical().is_none());
        assert_eq!(report.worst_slack(), f64::INFINITY);
    }
}
