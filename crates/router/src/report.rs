//! Routing reports.

use std::fmt;

use bmst_core::BmstError;
use bmst_tree::RoutingTree;

use crate::Criticality;

/// How a net fared under the fault-isolated routing pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetStatus {
    /// Routed at its requested eps on the first attempt.
    Ok,
    /// Routed, but only after the degradation ladder relaxed the
    /// constraint or fell back to the shortest path tree.
    Degraded,
    /// Not routed; details live in the report's failure log.
    Failed,
}

impl NetStatus {
    /// The status name as printed in reports (`ok`/`degraded`/`failed`).
    pub fn name(self) -> &'static str {
        match self {
            NetStatus::Ok => "ok",
            NetStatus::Degraded => "degraded",
            NetStatus::Failed => "failed",
        }
    }
}

impl fmt::Display for NetStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One failed rung of the degradation ladder: the eps that was attempted
/// and the error that rejected it.
#[derive(Debug, Clone, PartialEq)]
pub struct RelaxationStep {
    /// The eps this attempt was routed under.
    pub eps: f64,
    /// The builder error that failed the attempt, rendered as text.
    pub error: String,
}

/// A net the routing pass could not route, with its full attempt trail.
#[derive(Debug, Clone)]
pub struct RouteFailure {
    /// The net's position in [`crate::Netlist::nets`]; `None` for nets
    /// rejected at parse time (they never reached the nets vector).
    pub index: Option<usize>,
    /// The net's name.
    pub name: String,
    /// Its criticality tag.
    pub criticality: Criticality,
    /// The error that exhausted the ladder (the last rung's error).
    pub error: BmstError,
    /// Every failed attempt, in ladder order.
    pub attempts: Vec<RelaxationStep>,
}

/// One routed net.
#[derive(Debug, Clone)]
pub struct RoutedNet {
    /// The net's name.
    pub name: String,
    /// Its criticality tag.
    pub criticality: Criticality,
    /// The eps it was actually routed under (differs from
    /// [`RoutedNet::requested_eps`] when the degradation ladder relaxed it).
    pub eps: f64,
    /// The eps its criticality class requested.
    pub requested_eps: f64,
    /// Total wirelength of its tree (Steiner wirelength for Steiner nets).
    pub wirelength: f64,
    /// Longest source-to-sink path length.
    pub radius: f64,
    /// The path-length bound it was routed under (`(1 + eps) * R`).
    pub bound: f64,
    /// Failed ladder rungs that preceded this result (empty on a
    /// first-attempt success).
    pub relaxations: Vec<RelaxationStep>,
    /// Whether the result is the always-feasible shortest-path-tree
    /// fallback rather than the configured algorithm's tree.
    pub fallback_spt: bool,
    /// The routing tree itself.
    pub tree: RoutingTree,
}

impl RoutedNet {
    /// Slack between the bound and the achieved radius (never negative for
    /// a correct router).
    #[inline]
    pub fn slack(&self) -> f64 {
        self.bound - self.radius
    }

    /// [`NetStatus::Ok`] for a first-attempt success, [`NetStatus::Degraded`]
    /// when the ladder had to relax the constraint or fall back to the SPT.
    pub fn status(&self) -> NetStatus {
        if self.fallback_spt || !self.relaxations.is_empty() {
            NetStatus::Degraded
        } else {
            NetStatus::Ok
        }
    }
}

/// The aggregate result of routing a netlist.
///
/// A failed net no longer poisons the batch: survivors land in
/// [`RouteReport::nets`], failures (with their full attempt trails) in
/// [`RouteReport::failures`].
#[derive(Debug, Clone)]
pub struct RouteReport {
    /// Per-net results for the nets that routed, in netlist order.
    pub nets: Vec<RoutedNet>,
    /// The failure log: nets that could not be routed, parse-rejected nets
    /// first (in file order), then build failures in netlist order.
    pub failures: Vec<RouteFailure>,
    /// Sum of all routed net wirelengths — the paper's power/area proxy.
    pub total_wirelength: f64,
}

impl RouteReport {
    /// The smallest slack across all nets (`inf` for an empty report).
    /// Negative slack would mean a bound violation.
    pub fn worst_slack(&self) -> f64 {
        self.nets
            .iter()
            .map(RoutedNet::slack)
            .fold(f64::INFINITY, f64::min)
    }

    /// The net with the smallest slack, if any.
    pub fn most_critical(&self) -> Option<&RoutedNet> {
        self.nets
            .iter()
            .min_by(|a, b| a.slack().total_cmp(&b.slack()))
    }

    /// `true` when every net routed at its requested eps: no failures and
    /// no degraded results.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty() && self.degraded_count() == 0
    }

    /// How many survivors the degradation ladder had to relax.
    pub fn degraded_count(&self) -> usize {
        self.nets
            .iter()
            .filter(|n| n.status() == NetStatus::Degraded)
            .count()
    }

    /// Serialises the full report — totals plus every routed net with its
    /// tree edges, plus the failure log — as JSON. Used by the determinism
    /// tests and benchmarks to compare serial and parallel routing outputs
    /// structurally.
    pub fn to_json(&self) -> bmst_obs::json::Json {
        use bmst_obs::json::Json;
        Json::Obj(vec![
            (
                "total_wirelength".to_owned(),
                Json::Num(self.total_wirelength),
            ),
            ("worst_slack".to_owned(), json_num(self.worst_slack())),
            (
                "nets".to_owned(),
                Json::Arr(self.nets.iter().map(RoutedNet::to_json).collect()),
            ),
            (
                "failures".to_owned(),
                Json::Arr(self.failures.iter().map(RouteFailure::to_json).collect()),
            ),
        ])
    }
}

impl RouteFailure {
    /// Serialises the failure — net identity, final error, attempt trail —
    /// as JSON.
    pub fn to_json(&self) -> bmst_obs::json::Json {
        use bmst_obs::json::Json;
        Json::Obj(vec![
            (
                "index".to_owned(),
                match self.index {
                    Some(i) => Json::from_u64(u64::try_from(i).unwrap_or(u64::MAX)),
                    None => Json::Null,
                },
            ),
            ("name".to_owned(), Json::Str(self.name.clone())),
            (
                "criticality".to_owned(),
                Json::Str(self.criticality.name().to_owned()),
            ),
            ("error".to_owned(), Json::Str(self.error.to_string())),
            ("attempts".to_owned(), json_attempts(&self.attempts)),
        ])
    }
}

/// Serialises an attempt trail as `[{eps, error}, ...]`.
fn json_attempts(attempts: &[RelaxationStep]) -> bmst_obs::json::Json {
    use bmst_obs::json::Json;
    Json::Arr(
        attempts
            .iter()
            .map(|a| {
                Json::Obj(vec![
                    ("eps".to_owned(), json_num(a.eps)),
                    ("error".to_owned(), Json::Str(a.error.clone())),
                ])
            })
            .collect(),
    )
}

/// Non-finite numbers have no JSON representation; encode them as the
/// string `"inf"` (matching the benchmark schema's eps encoding).
fn json_num(v: f64) -> bmst_obs::json::Json {
    use bmst_obs::json::Json;
    if v.is_finite() {
        Json::Num(v)
    } else {
        Json::Str("inf".to_owned())
    }
}

impl RoutedNet {
    /// Serialises this net's routing result, including the tree edge list,
    /// as JSON.
    pub fn to_json(&self) -> bmst_obs::json::Json {
        use bmst_obs::json::Json;
        Json::Obj(vec![
            ("name".to_owned(), Json::Str(self.name.clone())),
            (
                "criticality".to_owned(),
                Json::Str(self.criticality.name().to_owned()),
            ),
            (
                "status".to_owned(),
                Json::Str(self.status().name().to_owned()),
            ),
            ("eps".to_owned(), json_num(self.eps)),
            ("requested_eps".to_owned(), json_num(self.requested_eps)),
            ("fallback_spt".to_owned(), Json::Bool(self.fallback_spt)),
            ("relaxations".to_owned(), json_attempts(&self.relaxations)),
            ("wirelength".to_owned(), Json::Num(self.wirelength)),
            ("radius".to_owned(), Json::Num(self.radius)),
            ("bound".to_owned(), json_num(self.bound)),
            ("slack".to_owned(), json_num(self.slack())),
            (
                "edges".to_owned(),
                Json::Arr(
                    self.tree
                        .edges()
                        .iter()
                        .map(|e| {
                            Json::Arr(vec![
                                Json::from_u64(u64::try_from(e.u).unwrap_or(u64::MAX)),
                                Json::from_u64(u64::try_from(e.v).unwrap_or(u64::MAX)),
                                Json::Num(e.weight),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Formats an eps for the report table (`inf` for unbounded).
fn fmt_eps(eps: f64) -> String {
    if eps.is_infinite() {
        "inf".into()
    } else {
        format!("{eps:.2}")
    }
}

impl fmt::Display for RouteReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:>9} {:>9} {:>6} {:>10} {:>10} {:>10} {:>10}",
            "net", "class", "status", "eps", "wirelen", "radius", "bound", "slack"
        )?;
        for n in &self.nets {
            writeln!(
                f,
                "{:<12} {:>9} {:>9} {:>6} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
                n.name,
                n.criticality.name(),
                n.status().name(),
                fmt_eps(n.eps),
                n.wirelength,
                n.radius,
                n.bound,
                n.slack()
            )?;
        }
        for fail in &self.failures {
            writeln!(
                f,
                "{:<12} {:>9} {:>9} {}",
                fail.name,
                fail.criticality.name(),
                NetStatus::Failed.name(),
                fail.error
            )?;
            for step in &fail.attempts {
                writeln!(f, "    attempt eps={}: {}", fmt_eps(step.eps), step.error)?;
            }
        }
        writeln!(f, "total wirelength: {:.2}", self.total_wirelength)?;
        if !self.failures.is_empty() || self.degraded_count() > 0 {
            writeln!(
                f,
                "routed {} of {} nets ({} degraded, {} failed)",
                self.nets.len(),
                self.nets.len() + self.failures.len(),
                self.degraded_count(),
                self.failures.len()
            )?;
        }
        write!(f, "worst slack: {:.2}", self.worst_slack())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use bmst_graph::Edge;

    fn routed(name: &str, radius: f64, bound: f64) -> RoutedNet {
        RoutedNet {
            name: name.into(),
            criticality: Criticality::Normal,
            eps: 0.5,
            requested_eps: 0.5,
            wirelength: 10.0,
            radius,
            bound,
            relaxations: Vec::new(),
            fallback_spt: false,
            tree: RoutingTree::from_edges(2, 0, vec![Edge::new(0, 1, 10.0)]).unwrap(),
        }
    }

    #[test]
    fn slack_and_worst() {
        let report = RouteReport {
            nets: vec![routed("a", 8.0, 12.0), routed("b", 11.0, 12.0)],
            failures: vec![],
            total_wirelength: 20.0,
        };
        assert_eq!(report.worst_slack(), 1.0);
        assert_eq!(report.most_critical().unwrap().name, "b");
        assert!(report.is_clean());
    }

    #[test]
    fn display_lists_every_net() {
        let report = RouteReport {
            nets: vec![routed("clk", 8.0, 12.0)],
            failures: vec![],
            total_wirelength: 10.0,
        };
        let text = report.to_string();
        assert!(text.contains("clk"));
        assert!(text.contains("ok"));
        assert!(text.contains("total wirelength: 10.00"));
        assert!(text.contains("worst slack: 4.00"));
        assert!(!text.contains("routed 1 of"));
    }

    #[test]
    fn empty_report() {
        let report = RouteReport {
            nets: vec![],
            failures: vec![],
            total_wirelength: 0.0,
        };
        assert!(report.most_critical().is_none());
        assert_eq!(report.worst_slack(), f64::INFINITY);
        assert!(report.is_clean());
    }

    #[test]
    fn degraded_and_failed_statuses_surface() {
        let mut relaxed = routed("bus0", 8.0, 12.0);
        relaxed.requested_eps = 0.1;
        relaxed.relaxations.push(RelaxationStep {
            eps: 0.1,
            error: "no feasible tree".into(),
        });
        assert_eq!(relaxed.status(), NetStatus::Degraded);
        let report = RouteReport {
            nets: vec![routed("clk", 8.0, 12.0), relaxed],
            failures: vec![RouteFailure {
                index: Some(2),
                name: "bad".into(),
                criticality: Criticality::Critical,
                error: BmstError::internal("boom"),
                attempts: vec![RelaxationStep {
                    eps: 0.1,
                    error: "internal invariant violation: boom".into(),
                }],
            }],
            total_wirelength: 20.0,
        };
        assert!(!report.is_clean());
        assert_eq!(report.degraded_count(), 1);
        let text = report.to_string();
        assert!(text.contains("degraded"), "{text}");
        assert!(text.contains("failed"), "{text}");
        assert!(text.contains("boom"), "{text}");
        assert!(
            text.contains("routed 2 of 3 nets (1 degraded, 1 failed)"),
            "{text}"
        );
        let json = report.to_json().to_string();
        assert!(json.contains("\"failures\""), "{json}");
        assert!(json.contains("\"relaxations\""), "{json}");
    }

    #[test]
    fn spt_fallback_is_degraded() {
        let mut n = routed("x", 8.0, 12.0);
        n.fallback_spt = true;
        assert_eq!(n.status(), NetStatus::Degraded);
        assert_eq!(NetStatus::Failed.to_string(), "failed");
    }
}
