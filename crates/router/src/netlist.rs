//! Netlists: named nets with routing criticality.

use std::error::Error;
use std::fmt;

use bmst_geom::{GeomError, Net, Point};

/// How aggressively a net's source-sink paths must be bounded.
///
/// The mapping to `eps` lives in [`crate::RouterConfig`]; the tags
/// themselves are design intent ("this is a clock", "this is a scan
/// chain").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Criticality {
    /// Timing-critical: tight path bound (small eps).
    Critical,
    /// Ordinary signal net: moderate bound.
    #[default]
    Normal,
    /// Non-critical (e.g. scan, reset): wirelength is all that matters.
    Relaxed,
}

impl Criticality {
    fn from_name(s: &str) -> Option<Self> {
        match s {
            "critical" => Some(Criticality::Critical),
            "normal" => Some(Criticality::Normal),
            "relaxed" => Some(Criticality::Relaxed),
            _ => None,
        }
    }

    /// The tag's name as written in netlist files.
    pub fn name(self) -> &'static str {
        match self {
            Criticality::Critical => "critical",
            Criticality::Normal => "normal",
            Criticality::Relaxed => "relaxed",
        }
    }
}

impl fmt::Display for Criticality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A net with a name and a criticality tag.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedNet {
    /// The net's name (unique within a netlist by convention, not enforced).
    pub name: String,
    /// The geometry: source + sinks.
    pub net: Net,
    /// Routing intent.
    pub criticality: Criticality,
}

impl NamedNet {
    /// Bundles a net with its name and criticality.
    pub fn new(name: impl Into<String>, net: Net, criticality: Criticality) -> Self {
        NamedNet {
            name: name.into(),
            net,
            criticality,
        }
    }
}

/// A collection of nets to route.
///
/// Serialises to a simple block format (one `net <name> <criticality>`
/// header, one `x y` terminal per line — source first — and `end`):
///
/// ```text
/// net clk critical
/// 0 0
/// 10 3
/// end
/// net data0 relaxed
/// 1 1
/// 7 8
/// end
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Netlist {
    /// The nets, in file/route order.
    pub nets: Vec<NamedNet>,
    /// Nets whose *geometry* was rejected at parse time (NaN/inf
    /// coordinates, empty blocks). Kept out of [`Netlist::nets`] so one
    /// bad net does not abort the file; the router reports each as a
    /// failed net. Syntax errors (unknown keywords, non-numeric tokens)
    /// still fail the whole parse with a line number.
    pub rejected: Vec<RejectedNet>,
}

/// A net block that parsed syntactically but failed geometry validation.
#[derive(Debug, Clone, PartialEq)]
pub struct RejectedNet {
    /// The net's name.
    pub name: String,
    /// Its criticality tag.
    pub criticality: Criticality,
    /// 1-based line number of the net's `net` header.
    pub line: usize,
    /// Why the geometry was rejected.
    pub error: GeomError,
}

/// Errors produced when parsing a netlist file.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseNetlistError {
    /// A malformed line (wrong token count, bad number, ...).
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// A `net` block was not terminated by `end`.
    UnterminatedNet {
        /// The net's name.
        name: String,
    },
}

impl fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNetlistError::BadLine { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            ParseNetlistError::UnterminatedNet { name } => {
                write!(f, "net {name:?} missing `end`")
            }
        }
    }
}

impl Error for ParseNetlistError {}

impl Netlist {
    /// Creates a netlist from nets.
    pub fn new(nets: Vec<NamedNet>) -> Self {
        Netlist {
            nets,
            rejected: Vec::new(),
        }
    }

    /// Number of nets.
    #[inline]
    pub fn len(&self) -> usize {
        self.nets.len()
    }

    /// Returns `true` when the netlist holds no nets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nets.is_empty()
    }

    /// Total number of terminals across all nets.
    pub fn terminal_count(&self) -> usize {
        self.nets.iter().map(|n| n.net.len()).sum()
    }

    /// Parses the block format described on [`Netlist`].
    ///
    /// Degenerate *geometry* (NaN/inf coordinates — `nan` parses as a
    /// valid `f64` — or an empty block) does not abort the parse: the
    /// offending net lands in [`Netlist::rejected`] with its header line
    /// and the router reports it failed, while every other net routes.
    ///
    /// # Errors
    ///
    /// [`ParseNetlistError`] on *syntax* errors: unknown keywords or
    /// criticalities, non-numeric coordinate tokens, missing `end`.
    pub fn from_str_block(text: &str) -> Result<Self, ParseNetlistError> {
        let mut nets = Vec::new();
        let mut rejected = Vec::new();
        let mut current: Option<(String, Criticality, Vec<Point>, usize)> = None;

        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let tokens: Vec<&str> = content.split_whitespace().collect();
            match (&mut current, tokens.as_slice()) {
                (None, ["net", name, crit]) => {
                    let Some(c) = Criticality::from_name(crit) else {
                        return Err(ParseNetlistError::BadLine {
                            line,
                            reason: format!("unknown criticality {crit:?}"),
                        });
                    };
                    current = Some((name.to_string(), c, Vec::new(), line));
                }
                (None, _) => {
                    return Err(ParseNetlistError::BadLine {
                        line,
                        reason: format!("expected `net <name> <criticality>`, got {content:?}"),
                    });
                }
                (Some((name, crit, pts, header_line)), ["end"]) => {
                    match Net::with_source_first(std::mem::take(pts)) {
                        Ok(net) => nets.push(NamedNet::new(std::mem::take(name), net, *crit)),
                        Err(e) => rejected.push(RejectedNet {
                            name: std::mem::take(name),
                            criticality: *crit,
                            line: *header_line,
                            error: e,
                        }),
                    }
                    current = None;
                }
                (Some((_, _, pts, _)), [xs, ys]) => {
                    let parse = |t: &str| -> Result<f64, ParseNetlistError> {
                        t.parse().map_err(|_| ParseNetlistError::BadLine {
                            line,
                            reason: format!("{t:?} is not a number"),
                        })
                    };
                    pts.push(Point::new(parse(xs)?, parse(ys)?));
                }
                (Some(_), _) => {
                    return Err(ParseNetlistError::BadLine {
                        line,
                        reason: format!("expected `x y` or `end`, got {content:?}"),
                    });
                }
            }
        }
        if let Some((name, ..)) = current {
            return Err(ParseNetlistError::UnterminatedNet { name });
        }
        Ok(Netlist { nets, rejected })
    }

    /// Serialises to the block format (round-trips with
    /// [`Netlist::from_str_block`]).
    // analyze: allow(complexity) — nets × terminals is the rendered output size; serialisation is linear in the text it produces
    pub fn to_string_block(&self) -> String {
        let mut out = String::new();
        for n in &self.nets {
            out.push_str(&format!("net {} {}\n", n.name, n.criticality));
            let s = n.net.source();
            let order = std::iter::once(s).chain((0..n.net.len()).filter(move |&i| i != s));
            for i in order {
                let p = n.net.point(i);
                out.push_str(&format!("{:?} {:?}\n", p.x, p.y));
            }
            out.push_str("end\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    const SAMPLE: &str = "\
# two nets
net clk critical
0 0
10 3
9 -4
end

net data0 relaxed
1 1
7 8
end
";

    #[test]
    fn parses_blocks() {
        let nl = Netlist::from_str_block(SAMPLE).unwrap();
        assert_eq!(nl.len(), 2);
        assert_eq!(nl.nets[0].name, "clk");
        assert_eq!(nl.nets[0].criticality, Criticality::Critical);
        assert_eq!(nl.nets[0].net.num_sinks(), 2);
        assert_eq!(nl.nets[1].criticality, Criticality::Relaxed);
        assert_eq!(nl.terminal_count(), 5);
    }

    #[test]
    fn round_trips() {
        let nl = Netlist::from_str_block(SAMPLE).unwrap();
        let back = Netlist::from_str_block(&nl.to_string_block()).unwrap();
        assert_eq!(nl, back);
    }

    #[test]
    fn bad_criticality_rejected() {
        let err = Netlist::from_str_block("net x urgent\n0 0\nend\n").unwrap_err();
        assert!(matches!(err, ParseNetlistError::BadLine { line: 1, .. }));
    }

    #[test]
    fn unterminated_net_rejected() {
        let err = Netlist::from_str_block("net x normal\n0 0\n").unwrap_err();
        assert_eq!(err, ParseNetlistError::UnterminatedNet { name: "x".into() });
    }

    #[test]
    fn stray_coordinates_rejected() {
        let err = Netlist::from_str_block("0 0\n").unwrap_err();
        assert!(matches!(err, ParseNetlistError::BadLine { line: 1, .. }));
    }

    #[test]
    fn empty_net_block_lands_in_rejected() {
        let nl = Netlist::from_str_block("net x normal\nend\n").unwrap();
        assert!(nl.nets.is_empty());
        assert_eq!(nl.rejected.len(), 1);
        assert_eq!(nl.rejected[0].name, "x");
        assert_eq!(nl.rejected[0].line, 1);
        assert_eq!(nl.rejected[0].error, GeomError::EmptyNet);
    }

    #[test]
    fn nan_coordinates_land_in_rejected_without_aborting() {
        // `nan` parses as a valid f64, so the bad net is only caught by
        // Net's geometry validation; the good nets still parse.
        let text = "\
net good critical
0 0
5 5
end
net broken normal
nan 3
1 1
end
net tail relaxed
2 2
9 9
end
";
        let nl = Netlist::from_str_block(text).unwrap();
        assert_eq!(nl.nets.len(), 2);
        assert_eq!(nl.nets[0].name, "good");
        assert_eq!(nl.nets[1].name, "tail");
        assert_eq!(nl.rejected.len(), 1);
        assert_eq!(nl.rejected[0].name, "broken");
        assert_eq!(nl.rejected[0].line, 5);
        assert!(matches!(
            nl.rejected[0].error,
            GeomError::NonFinitePoint { .. }
        ));
    }

    #[test]
    fn empty_text_is_empty_netlist() {
        let nl = Netlist::from_str_block("# nothing\n").unwrap();
        assert!(nl.is_empty());
    }

    #[test]
    fn criticality_names_round_trip() {
        for c in [
            Criticality::Critical,
            Criticality::Normal,
            Criticality::Relaxed,
        ] {
            assert_eq!(Criticality::from_name(c.name()), Some(c));
        }
        assert_eq!(Criticality::default(), Criticality::Normal);
    }
}
