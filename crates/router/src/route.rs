//! The routing pass itself: per-net fault isolation plus the degradation
//! ladder.
//!
//! Every net is routed through [`bmst_core::TreeBuilder::try_build`], so a
//! panicking construction surfaces as [`BmstError::Internal`] on that net
//! alone. On a recoverable failure the ladder retries with a stepped
//! eps-relaxation schedule ([`RelaxationPolicy`]) and finally falls back
//! to the always-feasible shortest path tree; every rung is recorded in
//! the report and as a `router.relax` observability event.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

use bmst_core::{
    BmstError, BuilderDescriptor, CancelToken, EdgeSupply, ProblemContext, TreeBuilder,
};
use bmst_obs::Field;

use crate::{Criticality, NamedNet, Netlist, RelaxationStep, RouteFailure, RouteReport, RoutedNet};

/// Which construction routes each net: a handle to a registered
/// [`TreeBuilder`] from `bmst_steiner::full_registry`.
///
/// Resolve one by registry name with [`RouteAlgorithm::from_name`], or
/// enumerate them all with [`RouteAlgorithm::all`]. Equality, ordering and
/// formatting all go through the stable descriptor name.
#[derive(Clone, Copy)]
pub struct RouteAlgorithm {
    builder: &'static dyn TreeBuilder,
}

// Compile-time Send/Sync assertions: `route_parallel` hands these types to
// worker threads, so losing either bound (e.g. by adding an `Rc` field)
// must be a compile error here, not a distant trait-solver error at the
// spawn site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<RouteAlgorithm>();
    assert_send_sync::<RouterConfig>();
    assert_send_sync::<RelaxationPolicy>();
};

impl RouteAlgorithm {
    /// Resolves a registry name or alias (`bkrus`, `steiner`, `pd`, ...).
    pub fn from_name(name: &str) -> Option<Self> {
        bmst_steiner::find_builder(name).map(|builder| RouteAlgorithm { builder })
    }

    /// Every registered construction, in registry order.
    pub fn all() -> impl Iterator<Item = Self> {
        bmst_steiner::full_registry()
            .iter()
            .map(|&builder| RouteAlgorithm { builder })
    }

    /// The builder's stable registry name.
    pub fn name(&self) -> &'static str {
        self.builder.descriptor().name
    }

    /// The builder's descriptor (cost class, bound kind, capability flags).
    pub fn descriptor(&self) -> &'static BuilderDescriptor {
        self.builder.descriptor()
    }

    /// The underlying builder.
    pub fn builder(&self) -> &'static dyn TreeBuilder {
        self.builder
    }

    /// Resolves a name that is known to be registered (the named
    /// constructors below); panics only if the registry loses the entry,
    /// which `cargo xtask check-registry` guards against.
    #[allow(clippy::expect_used)] // registry invariant, justified inline
    fn known(name: &'static str) -> Self {
        // lint: allow(no-panic) — resolving a name the registry is built with
        Self::from_name(name).expect("builtin algorithm is registered")
    }

    /// BKRUS: the fast default (`O(V^3)` per net).
    pub fn bkrus() -> Self {
        Self::known("bkrus")
    }

    /// BKRUS + BKH2 exchange post-processing: a few percent cheaper, much
    /// slower — the paper recommends it below ~300 terminals per net.
    pub fn bkh2() -> Self {
        Self::known("bkh2")
    }

    /// Bounded Steiner trees on the Hanan grid: cheapest, rectilinear only.
    pub fn steiner() -> Self {
        Self::known("steiner")
    }
}

impl Default for RouteAlgorithm {
    fn default() -> Self {
        Self::bkrus()
    }
}

impl PartialEq for RouteAlgorithm {
    fn eq(&self, other: &Self) -> bool {
        self.name() == other.name()
    }
}

impl Eq for RouteAlgorithm {}

impl fmt::Debug for RouteAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RouteAlgorithm").field(&self.name()).finish()
    }
}

impl fmt::Display for RouteAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The degradation ladder's eps-relaxation schedule.
///
/// On a recoverable failure at eps `e`, the router retries at
/// `max(e * factor, hint)` — where `hint` is the tightest feasible eps the
/// failed attempt reported, when it could — up to `max_relaxations` times,
/// then (when `include_unbounded`) once more fully unconstrained, and
/// finally (when `spt_fallback`) swaps the construction for the shortest
/// path tree, which satisfies any upper bound. The default schedule is the
/// ISSUE's `eps -> 2eps -> inf` with the SPT last rung.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelaxationPolicy {
    /// How many stepped eps-relaxations to attempt after the first failure.
    pub max_relaxations: usize,
    /// Multiplier applied to eps at each step.
    pub factor: f64,
    /// Whether to try a fully unconstrained (`eps = inf`) rung after the
    /// stepped relaxations.
    pub include_unbounded: bool,
    /// Whether the shortest path tree serves as the always-feasible last
    /// rung.
    pub spt_fallback: bool,
}

impl Default for RelaxationPolicy {
    fn default() -> Self {
        RelaxationPolicy {
            max_relaxations: 2,
            factor: 2.0,
            include_unbounded: true,
            spt_fallback: true,
        }
    }
}

impl RelaxationPolicy {
    /// Disables the ladder entirely: the first failure is final. Useful
    /// when a degraded result is worse than no result (conformance tests,
    /// strict timing signoff).
    pub fn none() -> Self {
        RelaxationPolicy {
            max_relaxations: 0,
            factor: 2.0,
            include_unbounded: false,
            spt_fallback: false,
        }
    }

    /// The eps floor a relaxation steps up from when the requested eps is
    /// zero (multiplying zero would never relax anything).
    const MIN_STEP: f64 = 0.1;

    /// The eps to try after a failure at `eps`, folding in the failed
    /// attempt's tightest-feasible hint; `None` when stepping from an
    /// already-unbounded eps (nothing left to relax).
    fn next_eps(&self, eps: f64, hint: Option<f64>) -> Option<f64> {
        if eps.is_infinite() {
            return None;
        }
        let stepped = if eps <= 0.0 {
            Self::MIN_STEP
        } else {
            eps * self.factor
        };
        Some(match hint {
            Some(h) if h > stepped => h,
            _ => stepped,
        })
    }
}

/// Per-criticality eps assignment and algorithm selection.
///
/// The defaults encode the paper's trade-off curve: critical nets get a
/// tight 10% slack, normal nets 50%, relaxed nets are pure MSTs.
///
/// Not `Copy`: the embedded [`CancelToken`] is a shared handle (cloning
/// the config clones the handle, so every clone answers to the same
/// deadline or shutdown signal).
#[derive(Debug, Clone, PartialEq)]
pub struct RouterConfig {
    /// `eps` for [`Criticality::Critical`] nets.
    pub eps_critical: f64,
    /// `eps` for [`Criticality::Normal`] nets.
    pub eps_normal: f64,
    /// `eps` for [`Criticality::Relaxed`] nets
    /// (`f64::INFINITY` = unbounded MST).
    pub eps_relaxed: f64,
    /// The construction to use.
    pub algorithm: RouteAlgorithm,
    /// The degradation ladder's relaxation schedule.
    pub relaxation: RelaxationPolicy,
    /// Minimum total terminal count before [`Netlist::route_parallel`]
    /// spawns worker threads; netlists with less total work than this
    /// route serially (thread setup would dominate). `0` never bypasses.
    pub parallel_min_terminals: usize,
    /// Edge-candidate supply handed to every per-net [`ProblemContext`]
    /// (dense matrix vs. lazy neighbor-index stream; trees are
    /// bit-identical either way).
    pub edge_supply: EdgeSupply,
    /// Cancellation/deadline token polled at every relaxation-ladder rung
    /// and inside the BKRUS/BPRIM construction loops. The default
    /// never-token makes every poll free; request owners arm one with
    /// [`CancelToken::with_budget`] and keep a clone to fire on shutdown.
    pub cancel: CancelToken,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            eps_critical: 0.1,
            eps_normal: 0.5,
            eps_relaxed: f64::INFINITY,
            algorithm: RouteAlgorithm::bkrus(),
            relaxation: RelaxationPolicy::default(),
            parallel_min_terminals: 64,
            edge_supply: EdgeSupply::Auto,
            cancel: CancelToken::never(),
        }
    }
}

impl RouterConfig {
    /// The eps this configuration assigns to a criticality class.
    pub fn eps_for(&self, c: Criticality) -> f64 {
        match c {
            Criticality::Critical => self.eps_critical,
            Criticality::Normal => self.eps_normal,
            Criticality::Relaxed => self.eps_relaxed,
        }
    }
}

/// Renders an eps for observability events (`"inf"` for unbounded, since
/// non-finite numbers have no JSON representation).
fn eps_field(eps: f64) -> Field {
    if eps.is_finite() {
        Field::from(eps)
    } else {
        Field::from("inf")
    }
}

/// One rung: builds the net's [`ProblemContext`] at `eps` and runs
/// `builder` through its fault-isolated [`TreeBuilder::try_build`] path.
fn attempt(
    n: &NamedNet,
    builder: &'static dyn TreeBuilder,
    eps: f64,
    supply: EdgeSupply,
    cancel: &CancelToken,
    emit_diagnostics: bool,
) -> Result<bmst_tree::RoutingTree, BmstError> {
    let cx = ProblemContext::new(&n.net, eps)?
        .with_edge_supply(supply)
        .with_cancel(cancel.clone());
    if emit_diagnostics && bmst_obs::enabled() {
        for diag in cx.diagnostics() {
            bmst_obs::event(
                "router.input_diagnostic",
                &[
                    ("net", Field::from(n.name.as_str())),
                    ("detail", Field::from(diag.to_string())),
                ],
            );
        }
    }
    builder.try_build(&cx)
}

/// Routes one named net under `config`, walking the degradation ladder on
/// recoverable failures. `Err` carries the final error plus the full
/// attempt trail for the report's failure log.
fn route_named(
    n: &NamedNet,
    config: &RouterConfig,
) -> Result<RoutedNet, (BmstError, Vec<RelaxationStep>)> {
    let requested_eps = config.eps_for(n.criticality);
    let policy = &config.relaxation;
    let mut attempts: Vec<RelaxationStep> = Vec::new();
    let mut eps = requested_eps;
    let mut fallback_spt = false;

    let tree = loop {
        // Rung boundary: a dead deadline ends the ladder here, recorded as
        // the final step of the attempt trail so failure logs show which
        // rung the budget expired at.
        if let Err(err) = config.cancel.check() {
            attempts.push(RelaxationStep {
                eps,
                error: err.to_string(),
            });
            if bmst_obs::enabled() {
                bmst_obs::counter("router.deadline_exceeded", 1);
            }
            return Err((err, attempts));
        }
        match attempt(
            n,
            config.algorithm.builder,
            eps,
            config.edge_supply,
            &config.cancel,
            attempts.is_empty(),
        ) {
            Ok(tree) => break tree,
            Err(err) => {
                attempts.push(RelaxationStep {
                    eps,
                    error: err.to_string(),
                });
                if !err.is_recoverable() || !policy.spt_fallback && !err.eps_relaxation_helps() {
                    return Err((err, attempts));
                }
                let next = if err.eps_relaxation_helps() {
                    if attempts.len() <= policy.max_relaxations {
                        policy.next_eps(eps, err.min_feasible_eps())
                    } else if policy.include_unbounded && eps.is_finite() {
                        Some(f64::INFINITY)
                    } else {
                        None
                    }
                } else {
                    // e.g. UnsupportedMetric: a larger eps changes nothing,
                    // only the SPT fallback below can help.
                    None
                };
                match next {
                    Some(next_eps) => {
                        if bmst_obs::enabled() {
                            bmst_obs::event(
                                "router.relax",
                                &[
                                    ("net", Field::from(n.name.as_str())),
                                    ("from_eps", eps_field(eps)),
                                    ("to_eps", eps_field(next_eps)),
                                    ("error", Field::from(err.to_string())),
                                ],
                            );
                        }
                        eps = next_eps;
                    }
                    None if policy.spt_fallback => {
                        // Last rung: the source star satisfies any upper
                        // bound, so route it under the *requested* eps.
                        eps = requested_eps;
                        fallback_spt = true;
                        if bmst_obs::enabled() {
                            bmst_obs::event(
                                "router.spt_fallback",
                                &[
                                    ("net", Field::from(n.name.as_str())),
                                    ("eps", eps_field(eps)),
                                    ("error", Field::from(err.to_string())),
                                ],
                            );
                        }
                        match attempt(
                            n,
                            spt_builder(),
                            eps,
                            config.edge_supply,
                            &config.cancel,
                            false,
                        ) {
                            Ok(tree) => break tree,
                            Err(spt_err) => {
                                attempts.push(RelaxationStep {
                                    eps,
                                    error: spt_err.to_string(),
                                });
                                return Err((spt_err, attempts));
                            }
                        }
                    }
                    None => return Err((err, attempts)),
                }
            }
        }
    };

    let wirelength = tree.cost();
    // For Steiner trees the radius of interest is over terminals only;
    // terminal ids coincide with net node ids in both cases.
    let radius = tree.max_dist_from_root(n.net.sinks());
    Ok(RoutedNet {
        name: n.name.clone(),
        criticality: n.criticality,
        eps,
        requested_eps,
        wirelength,
        radius,
        bound: n.net.path_bound(eps),
        relaxations: attempts,
        fallback_spt,
        tree,
    })
}

/// The registry's SPT builder (the ladder's always-feasible last rung).
#[allow(clippy::expect_used)] // registry invariant, justified inline
fn spt_builder() -> &'static dyn TreeBuilder {
    // lint: allow(no-panic) — resolving a name the registry is built with
    bmst_steiner::find_builder("spt").expect("spt baseline is registered")
}

/// One net's outcome, before report assembly.
type NetResult = Result<RoutedNet, (BmstError, Vec<RelaxationStep>)>;

impl Netlist {
    /// The failure-log entries for nets rejected at parse time, in file
    /// order. Their [`RouteFailure::error`] is a typed
    /// [`BmstError::DegenerateInput`] carrying the header line.
    fn parse_failures(&self) -> Vec<RouteFailure> {
        self.rejected
            .iter()
            .map(|r| {
                if bmst_obs::enabled() {
                    bmst_obs::event(
                        "router.net_rejected",
                        &[
                            ("net", Field::from(r.name.as_str())),
                            ("line", Field::from(r.line)),
                            ("error", Field::from(r.error.to_string())),
                        ],
                    );
                }
                RouteFailure {
                    index: None,
                    name: r.name.clone(),
                    criticality: r.criticality,
                    error: BmstError::DegenerateInput {
                        detail: format!("line {}: {}", r.line, r.error),
                    },
                    attempts: Vec::new(),
                }
            })
            .collect()
    }

    /// Assembles the aggregate report from per-net outcomes in input
    /// order. Shared by the serial and parallel passes so the two produce
    /// byte-identical reports.
    fn assemble(&self, results: Vec<(usize, NetResult)>) -> RouteReport {
        let mut nets = Vec::with_capacity(results.len());
        let mut failures = self.parse_failures();
        let mut total_wirelength = 0.0;
        for (i, res) in results {
            match res {
                Ok(routed) => {
                    // Summed in input order: bit-identical for any job count.
                    total_wirelength += routed.wirelength;
                    nets.push(routed);
                }
                Err((error, attempts)) => {
                    if bmst_obs::enabled() {
                        bmst_obs::event(
                            "router.net_failed",
                            &[
                                ("net", Field::from(self.nets[i].name.as_str())),
                                ("error", Field::from(error.to_string())),
                                ("attempts", Field::from(attempts.len())),
                            ],
                        );
                    }
                    failures.push(RouteFailure {
                        index: Some(i),
                        name: self.nets[i].name.clone(),
                        criticality: self.nets[i].criticality,
                        error,
                        attempts,
                    });
                }
            }
        }
        RouteReport {
            nets,
            failures,
            total_wirelength,
        }
    }

    /// Routes every net under `config`, returning the aggregate report.
    ///
    /// Nets are routed independently (classical global routing by nets)
    /// and **fault-isolated**: a net that cannot route — degenerate
    /// geometry, an infeasible window the degradation ladder could not
    /// relax away, even a panicking construction — lands in the report's
    /// failure log while every other net routes normally. The report
    /// records, per net, the wirelength, the longest source-sink path, the
    /// bound it was routed under, its status, and any relaxation trail.
    pub fn route(&self, config: &RouterConfig) -> RouteReport {
        let mut results = Vec::with_capacity(self.nets.len());
        for (i, n) in self.nets.iter().enumerate() {
            let _obs_span = bmst_obs::span("router.net");
            results.push((i, route_named(n, config)));
        }
        self.assemble(results)
    }

    /// Like [`Netlist::route`], but distributes nets over `jobs` worker
    /// threads (a shared atomic work queue over `std::thread::scope`).
    ///
    /// The report is **byte-identical** to the serial one: workers drain
    /// the whole queue regardless of failures, and results (successes and
    /// failures alike) are assembled in input order, so per-net values,
    /// the failure log, and the order-dependent floating-point sum of
    /// `total_wirelength` cannot differ. Workers tag their per-net
    /// observability spans `router.net.w<worker>`.
    ///
    /// `jobs` is clamped to `[1, nets]`; `jobs <= 1` delegates to the
    /// serial pass, as do netlists whose total terminal count falls below
    /// [`RouterConfig::parallel_min_terminals`] (thread setup would cost
    /// more than it buys — the bypass is recorded as a
    /// `router.parallel_bypassed` event).
    #[allow(clippy::expect_used)] // worker panics are propagated, justified inline
    pub fn route_parallel(&self, config: &RouterConfig, jobs: usize) -> RouteReport {
        let n = self.nets.len();
        let jobs = jobs.min(n).max(1);
        if jobs <= 1 {
            return self.route(config);
        }
        let terminals: usize = self.nets.iter().map(|n| n.net.len()).sum();
        if terminals < config.parallel_min_terminals {
            if bmst_obs::enabled() {
                bmst_obs::event(
                    "router.parallel_bypassed",
                    &[
                        ("terminals", Field::from(terminals)),
                        ("threshold", Field::from(config.parallel_min_terminals)),
                        ("nets", Field::from(n)),
                        ("jobs", Field::from(jobs)),
                    ],
                );
            }
            return self.route(config);
        }

        let next = AtomicUsize::new(0);
        let batches: Vec<Vec<(usize, NetResult)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..jobs)
                .map(|worker| {
                    let next = &next;
                    let nets = &self.nets;
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= nets.len() {
                                break;
                            }
                            let _obs_span = bmst_obs::enabled()
                                .then(|| bmst_obs::span_dyn(&format!("router.net.w{worker}")));
                            out.push((i, route_named(&nets[i], config)));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    // lint: allow(no-panic) — re-raise worker panics instead of hiding them
                    h.join().expect("routing worker panicked")
                })
                .collect()
        });

        // Workers drain the whole queue, so every index appears exactly
        // once across the batches; sort back into input order.
        let mut results: Vec<(usize, NetResult)> = batches.into_iter().flatten().collect();
        results.sort_by_key(|(i, _)| *i);
        self.assemble(results)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use crate::NamedNet;
    use bmst_geom::{Net, Point};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_netlist(seed: u64, nets: usize) -> Netlist {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for i in 0..nets {
            let n = rng.gen_range(3..9);
            let pts = (0..n)
                .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
                .collect();
            let crit = match i % 3 {
                0 => Criticality::Critical,
                1 => Criticality::Normal,
                _ => Criticality::Relaxed,
            };
            out.push(NamedNet::new(
                format!("n{i}"),
                Net::with_source_first(pts).unwrap(),
                crit,
            ));
        }
        Netlist::new(out)
    }

    #[test]
    fn routes_all_nets_within_bounds() {
        let nl = random_netlist(1, 9);
        for algorithm in [
            RouteAlgorithm::bkrus(),
            RouteAlgorithm::bkh2(),
            RouteAlgorithm::steiner(),
        ] {
            let cfg = RouterConfig {
                algorithm,
                ..RouterConfig::default()
            };
            let report = nl.route(&cfg);
            assert!(report.is_clean());
            assert_eq!(report.nets.len(), 9);
            for rn in &report.nets {
                assert!(
                    rn.radius <= rn.bound + 1e-9,
                    "{}: radius {} > bound {}",
                    rn.name,
                    rn.radius,
                    rn.bound
                );
            }
            assert!(report.worst_slack() >= -1e-9);
        }
    }

    #[test]
    fn criticality_maps_to_eps() {
        let cfg = RouterConfig::default();
        assert_eq!(cfg.eps_for(Criticality::Critical), 0.1);
        assert_eq!(cfg.eps_for(Criticality::Normal), 0.5);
        assert!(cfg.eps_for(Criticality::Relaxed).is_infinite());
    }

    #[test]
    fn steiner_pass_is_cheapest() {
        let nl = random_netlist(2, 6);
        let spanning = nl.route(&RouterConfig {
            algorithm: RouteAlgorithm::bkrus(),
            ..Default::default()
        });
        let steiner = nl.route(&RouterConfig {
            algorithm: RouteAlgorithm::steiner(),
            ..Default::default()
        });
        assert!(spanning.is_clean() && steiner.is_clean());
        assert!(steiner.total_wirelength <= spanning.total_wirelength + 1e-9);
    }

    #[test]
    fn tighter_config_costs_more() {
        let nl = random_netlist(3, 8);
        let tight = RouterConfig {
            eps_critical: 0.0,
            eps_normal: 0.1,
            eps_relaxed: 0.2,
            ..RouterConfig::default()
        };
        let loose = RouterConfig {
            eps_critical: 1.0,
            eps_normal: 2.0,
            eps_relaxed: f64::INFINITY,
            ..RouterConfig::default()
        };
        let a = nl.route(&tight).total_wirelength;
        let b = nl.route(&loose).total_wirelength;
        assert!(b <= a + 1e-9, "loose {b} > tight {a}");
    }

    #[test]
    fn empty_netlist_routes_trivially() {
        let report = Netlist::default().route(&RouterConfig::default());
        assert_eq!(report.nets.len(), 0);
        assert_eq!(report.total_wirelength, 0.0);
        assert_eq!(report.worst_slack(), f64::INFINITY);
    }

    #[test]
    fn algorithm_resolution_and_identity() {
        assert_eq!(
            RouteAlgorithm::from_name("bkst"),
            Some(RouteAlgorithm::steiner())
        );
        assert!(RouteAlgorithm::from_name("nope").is_none());
        assert_eq!(RouteAlgorithm::default().name(), "bkrus");
        assert_eq!(RouteAlgorithm::steiner().to_string(), "steiner");
        assert!(RouteAlgorithm::all().count() >= 8);
    }

    #[test]
    fn every_registered_algorithm_routes_a_netlist() {
        // elmore-bkrus can be infeasible for tight eps under the default
        // driver model, so give every class a generous window.
        let nl = random_netlist(4, 3);
        for algorithm in RouteAlgorithm::all() {
            let cfg = RouterConfig {
                eps_critical: 1.0,
                eps_normal: 1.5,
                eps_relaxed: f64::INFINITY,
                algorithm,
                ..RouterConfig::default()
            };
            let report = nl.route(&cfg);
            assert!(
                report.failures.is_empty(),
                "{}: {:?}",
                algorithm.name(),
                report.failures
            );
        }
    }

    /// The default config with the serial-bypass threshold disabled, so
    /// small test netlists still exercise the worker pool.
    fn parallel_config() -> RouterConfig {
        RouterConfig {
            parallel_min_terminals: 0,
            ..RouterConfig::default()
        }
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let nl = random_netlist(5, 17);
        let cfg = parallel_config();
        let serial = nl.route(&cfg);
        for jobs in [1, 2, 4, 8, 32] {
            let par = nl.route_parallel(&cfg, jobs);
            assert_eq!(
                par.total_wirelength.to_bits(),
                serial.total_wirelength.to_bits(),
                "jobs={jobs}"
            );
            assert_eq!(par.nets.len(), serial.nets.len());
            assert!(par.failures.is_empty());
            for (a, b) in par.nets.iter().zip(&serial.nets) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.wirelength.to_bits(), b.wirelength.to_bits());
                assert_eq!(a.radius.to_bits(), b.radius.to_bits());
                assert_eq!(a.tree.edges(), b.tree.edges());
            }
        }
    }

    #[test]
    fn parallel_empty_and_oversubscribed() {
        let empty = Netlist::default().route_parallel(&parallel_config(), 8);
        assert_eq!(empty.nets.len(), 0);
        let nl = random_netlist(6, 2);
        let report = nl.route_parallel(&parallel_config(), 64);
        assert_eq!(report.nets.len(), 2);
    }

    #[test]
    fn parallel_bypasses_to_serial_below_terminal_threshold() {
        use std::sync::Arc;
        let nl = random_netlist(7, 3);
        let terminals: usize = nl.nets.iter().map(|n| n.net.len()).sum();
        let cfg = RouterConfig {
            parallel_min_terminals: terminals + 1,
            ..RouterConfig::default()
        };
        let recorder = Arc::new(bmst_obs::SummaryRecorder::new());
        let par = {
            let _guard = bmst_obs::scoped(recorder.clone());
            nl.route_parallel(&cfg, 4)
        };
        assert_eq!(recorder.event_count("router.parallel_bypassed"), 1);
        // The bypass is an optimisation, never a behaviour change.
        let serial = nl.route(&cfg);
        assert_eq!(
            par.total_wirelength.to_bits(),
            serial.total_wirelength.to_bits()
        );
        // At or above the threshold the pool runs and nothing is emitted.
        let recorder = Arc::new(bmst_obs::SummaryRecorder::new());
        {
            let _guard = bmst_obs::scoped(recorder.clone());
            let eager = RouterConfig {
                parallel_min_terminals: terminals,
                ..cfg
            };
            nl.route_parallel(&eager, 4);
        }
        assert_eq!(recorder.event_count("router.parallel_bypassed"), 0);
    }

    /// A net whose MST detours so far that eps = 0.1 is infeasible for the
    /// `mst` algorithm: sink B attaches through A (16 against dist 14).
    fn detour_net(name: &str) -> NamedNet {
        NamedNet::new(
            name,
            Net::with_source_first(vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(9.0, 5.0),
            ])
            .unwrap(),
            Criticality::Critical,
        )
    }

    fn easy_net(name: &str, offset: f64) -> NamedNet {
        NamedNet::new(
            name,
            Net::with_source_first(vec![
                Point::new(offset, 0.0),
                Point::new(offset + 3.0, 1.0),
                Point::new(offset + 5.0, -1.0),
            ])
            .unwrap(),
            Criticality::Normal,
        )
    }

    fn mst_config(relaxation: RelaxationPolicy) -> RouterConfig {
        RouterConfig {
            algorithm: RouteAlgorithm::from_name("mst").unwrap(),
            relaxation,
            ..parallel_config()
        }
    }

    #[test]
    fn infeasible_net_3_of_5_is_isolated_not_fatal() {
        // Satellite regression: net 3 (index 2) cannot route at its
        // requested eps; with the ladder disabled it must land in the
        // failure log while the other four route — serial and parallel.
        let nl = Netlist::new(vec![
            easy_net("n0", 0.0),
            easy_net("n1", 20.0),
            detour_net("bad"),
            easy_net("n3", 40.0),
            easy_net("n4", 60.0),
        ]);
        let cfg = mst_config(RelaxationPolicy::none());
        let serial = nl.route(&cfg);
        assert_eq!(serial.nets.len(), 4);
        assert_eq!(serial.failures.len(), 1);
        let fail = &serial.failures[0];
        assert_eq!(fail.index, Some(2));
        assert_eq!(fail.name, "bad");
        assert!(matches!(fail.error, BmstError::Infeasible { .. }));
        assert_eq!(fail.attempts.len(), 1);
        for jobs in [2, 4, 8] {
            let par = nl.route_parallel(&cfg, jobs);
            assert_eq!(par.nets.len(), 4, "jobs={jobs}");
            assert_eq!(par.failures.len(), 1, "jobs={jobs}");
            assert_eq!(par.failures[0].index, Some(2));
            assert_eq!(
                par.total_wirelength.to_bits(),
                serial.total_wirelength.to_bits()
            );
            for (a, b) in par.nets.iter().zip(&serial.nets) {
                assert_eq!(a.tree.edges(), b.tree.edges());
            }
        }
    }

    #[test]
    fn ladder_recovers_infeasible_net_as_degraded() {
        let nl = Netlist::new(vec![detour_net("bad")]);
        let report = nl.route(&mst_config(RelaxationPolicy::default()));
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        let net = &report.nets[0];
        assert_eq!(net.status(), crate::NetStatus::Degraded);
        assert!(
            !net.fallback_spt,
            "ladder should succeed before the SPT rung"
        );
        assert_eq!(net.requested_eps, 0.1);
        // One failed rung at 0.1, success at max(0.2, hint 16/14-1 = 0.142…).
        assert_eq!(net.relaxations.len(), 1);
        assert_eq!(net.relaxations[0].eps, 0.1);
        assert!(net.eps > 0.1 && net.eps <= 0.2, "{}", net.eps);
        assert!(net.slack() >= -1e-9);
    }

    #[test]
    fn deadline_mid_ladder_ends_trail_at_expired_rung() {
        // Deterministic expiry: rung one's checks all pass — its boundary
        // check plus one `check_window` poll per sink (two here) — and the
        // next check, rung two's boundary, fires. The ladder must stop at
        // rung two — recording the deadline as the trail's final step —
        // instead of walking the remaining rungs against a dead deadline.
        let nl = Netlist::new(vec![detour_net("bad")]);
        let cfg = RouterConfig {
            cancel: CancelToken::expire_after_checks(3),
            ..mst_config(RelaxationPolicy::default())
        };
        let report = nl.route(&cfg);
        assert!(report.nets.is_empty());
        assert_eq!(report.failures.len(), 1);
        let fail = &report.failures[0];
        assert!(
            matches!(fail.error, BmstError::DeadlineExceeded { .. }),
            "{:?}",
            fail.error
        );
        // Rung 1 ran and failed recoverably; rung 2 expired at its boundary.
        assert_eq!(fail.attempts.len(), 2);
        assert!(
            fail.attempts[0].error.contains("no feasible tree"),
            "{}",
            fail.attempts[0].error
        );
        assert!(fail.attempts[1].eps > 0.1, "{}", fail.attempts[1].eps);
        assert!(
            fail.attempts[1].error.contains("cancelled"),
            "{}",
            fail.attempts[1].error
        );
    }

    #[test]
    fn cancelled_token_fails_nets_without_routing() {
        let nl = Netlist::new(vec![easy_net("a", 0.0), easy_net("b", 20.0)]);
        let cfg = RouterConfig {
            cancel: CancelToken::manual(),
            ..RouterConfig::default()
        };
        cfg.cancel.cancel();
        let report = nl.route(&cfg);
        assert!(report.nets.is_empty());
        assert_eq!(report.failures.len(), 2);
        for f in &report.failures {
            assert!(
                matches!(f.error, BmstError::DeadlineExceeded { .. }),
                "{:?}",
                f.error
            );
            assert_eq!(f.attempts.len(), 1);
        }
    }

    #[test]
    fn ladder_hint_jumps_past_factor_when_tighter() {
        // With factor 1.0 the schedule alone would retry 0.1 forever; the
        // min_feasible_eps hint (16/14 - 1 ≈ 0.1429) must pull it feasible.
        let policy = RelaxationPolicy {
            max_relaxations: 1,
            factor: 1.0,
            include_unbounded: false,
            spt_fallback: false,
        };
        let nl = Netlist::new(vec![detour_net("bad")]);
        let report = nl.route(&mst_config(policy));
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert!((report.nets[0].eps - (16.0 / 14.0 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn spt_fallback_is_last_rung() {
        // steiner/bkst is rectilinear-only; an L2 net fails with
        // UnsupportedMetric, which eps cannot fix — only the SPT rung can.
        let net = Net::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(3.0, 4.0),
                Point::new(6.0, 0.0),
            ],
            0,
            bmst_geom::Metric::L2,
        )
        .unwrap();
        let nl = Netlist::new(vec![NamedNet::new("l2", net, Criticality::Normal)]);
        let cfg = RouterConfig {
            algorithm: RouteAlgorithm::steiner(),
            ..RouterConfig::default()
        };
        let report = nl.route(&cfg);
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        let routed = &report.nets[0];
        assert!(routed.fallback_spt);
        assert_eq!(routed.status(), crate::NetStatus::Degraded);
        assert_eq!(routed.relaxations.len(), 1);
        // Without the fallback the same net is a typed failure.
        let strict = nl.route(&RouterConfig {
            relaxation: RelaxationPolicy::none(),
            ..cfg
        });
        assert_eq!(strict.failures.len(), 1);
        assert!(matches!(
            strict.failures[0].error,
            BmstError::UnsupportedMetric { .. }
        ));
    }

    #[test]
    fn relaxation_policy_next_eps_edges() {
        let p = RelaxationPolicy::default();
        assert_eq!(p.next_eps(0.1, None), Some(0.2));
        assert_eq!(p.next_eps(0.0, None), Some(RelaxationPolicy::MIN_STEP));
        assert_eq!(p.next_eps(0.1, Some(0.5)), Some(0.5));
        assert_eq!(p.next_eps(f64::INFINITY, None), None);
    }
}
