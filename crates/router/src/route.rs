//! The routing pass itself.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use bmst_core::{BmstError, BuilderDescriptor, ProblemContext, TreeBuilder};

use crate::{Criticality, NamedNet, Netlist, RouteReport, RoutedNet};

/// Which construction routes each net: a handle to a registered
/// [`TreeBuilder`] from `bmst_steiner::full_registry`.
///
/// Resolve one by registry name with [`RouteAlgorithm::from_name`], or
/// enumerate them all with [`RouteAlgorithm::all`]. Equality, ordering and
/// formatting all go through the stable descriptor name.
#[derive(Clone, Copy)]
pub struct RouteAlgorithm {
    builder: &'static dyn TreeBuilder,
}

impl RouteAlgorithm {
    /// Resolves a registry name or alias (`bkrus`, `steiner`, `pd`, ...).
    pub fn from_name(name: &str) -> Option<Self> {
        bmst_steiner::find_builder(name).map(|builder| RouteAlgorithm { builder })
    }

    /// Every registered construction, in registry order.
    pub fn all() -> impl Iterator<Item = Self> {
        bmst_steiner::full_registry()
            .iter()
            .map(|&builder| RouteAlgorithm { builder })
    }

    /// The builder's stable registry name.
    pub fn name(&self) -> &'static str {
        self.builder.descriptor().name
    }

    /// The builder's descriptor (cost class, bound kind, capability flags).
    pub fn descriptor(&self) -> &'static BuilderDescriptor {
        self.builder.descriptor()
    }

    /// The underlying builder.
    pub fn builder(&self) -> &'static dyn TreeBuilder {
        self.builder
    }

    /// Resolves a name that is known to be registered (the named
    /// constructors below); panics only if the registry loses the entry,
    /// which `cargo xtask check-registry` guards against.
    #[allow(clippy::expect_used)] // registry invariant, justified inline
    fn known(name: &'static str) -> Self {
        // lint: allow(no-panic) — resolving a name the registry is built with
        Self::from_name(name).expect("builtin algorithm is registered")
    }

    /// BKRUS: the fast default (`O(V^3)` per net).
    pub fn bkrus() -> Self {
        Self::known("bkrus")
    }

    /// BKRUS + BKH2 exchange post-processing: a few percent cheaper, much
    /// slower — the paper recommends it below ~300 terminals per net.
    pub fn bkh2() -> Self {
        Self::known("bkh2")
    }

    /// Bounded Steiner trees on the Hanan grid: cheapest, rectilinear only.
    pub fn steiner() -> Self {
        Self::known("steiner")
    }
}

impl Default for RouteAlgorithm {
    fn default() -> Self {
        Self::bkrus()
    }
}

impl PartialEq for RouteAlgorithm {
    fn eq(&self, other: &Self) -> bool {
        self.name() == other.name()
    }
}

impl Eq for RouteAlgorithm {}

impl fmt::Debug for RouteAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RouteAlgorithm").field(&self.name()).finish()
    }
}

impl fmt::Display for RouteAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-criticality eps assignment and algorithm selection.
///
/// The defaults encode the paper's trade-off curve: critical nets get a
/// tight 10% slack, normal nets 50%, relaxed nets are pure MSTs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterConfig {
    /// `eps` for [`Criticality::Critical`] nets.
    pub eps_critical: f64,
    /// `eps` for [`Criticality::Normal`] nets.
    pub eps_normal: f64,
    /// `eps` for [`Criticality::Relaxed`] nets
    /// (`f64::INFINITY` = unbounded MST).
    pub eps_relaxed: f64,
    /// The construction to use.
    pub algorithm: RouteAlgorithm,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            eps_critical: 0.1,
            eps_normal: 0.5,
            eps_relaxed: f64::INFINITY,
            algorithm: RouteAlgorithm::bkrus(),
        }
    }
}

impl RouterConfig {
    /// The eps this configuration assigns to a criticality class.
    pub fn eps_for(&self, c: Criticality) -> f64 {
        match c {
            Criticality::Critical => self.eps_critical,
            Criticality::Normal => self.eps_normal,
            Criticality::Relaxed => self.eps_relaxed,
        }
    }
}

/// Routes one named net under `config`: builds its [`ProblemContext`] and
/// runs the configured builder against it.
fn route_named(n: &NamedNet, config: &RouterConfig) -> Result<RoutedNet, BmstError> {
    let eps = config.eps_for(n.criticality);
    let bound = n.net.path_bound(eps);
    let cx = ProblemContext::new(&n.net, eps)?;
    let tree = config.algorithm.builder.build(&cx)?;
    let wirelength = tree.cost();
    // For Steiner trees the radius of interest is over terminals only;
    // terminal ids coincide with net node ids in both cases.
    let radius = tree.max_dist_from_root(n.net.sinks());
    Ok(RoutedNet {
        name: n.name.clone(),
        criticality: n.criticality,
        eps,
        wirelength,
        radius,
        bound,
        tree,
    })
}

impl Netlist {
    /// Routes every net under `config`, returning the aggregate report.
    ///
    /// Nets are routed independently (classical global routing by nets);
    /// the report records, per net, the wirelength, the longest source-sink
    /// path, the bound it was routed under, and the slack between them.
    ///
    /// # Errors
    ///
    /// The first net that fails to route aborts the pass with that net's
    /// [`BmstError`] (upper-bound-only routing cannot fail; the error paths
    /// exist for exotic configurations).
    pub fn route(&self, config: &RouterConfig) -> Result<RouteReport, BmstError> {
        let mut nets = Vec::with_capacity(self.nets.len());
        let mut total_wirelength = 0.0;
        for n in &self.nets {
            let _obs_span = bmst_obs::span("router.net");
            let routed = route_named(n, config)?;
            total_wirelength += routed.wirelength;
            nets.push(routed);
        }
        Ok(RouteReport {
            nets,
            total_wirelength,
        })
    }

    /// Like [`Netlist::route`], but distributes nets over `jobs` worker
    /// threads (a shared atomic work queue over `std::thread::scope`).
    ///
    /// The report is **bit-identical** to the serial one: results are
    /// assembled in input order, so per-net values and the order-dependent
    /// floating-point sum of `total_wirelength` cannot differ. Workers tag
    /// their per-net observability spans `router.net.w<worker>`.
    ///
    /// `jobs` is clamped to `[1, nets]`; `jobs <= 1` delegates to the
    /// serial pass.
    ///
    /// # Errors
    ///
    /// The same error the serial pass would report: the failure of the
    /// first net (in input order) that cannot route. Workers stop pulling
    /// new nets once any net has failed.
    #[allow(clippy::expect_used)] // worker panics are propagated, justified inline
    pub fn route_parallel(
        &self,
        config: &RouterConfig,
        jobs: usize,
    ) -> Result<RouteReport, BmstError> {
        let n = self.nets.len();
        let jobs = jobs.min(n).max(1);
        if jobs <= 1 {
            return self.route(config);
        }

        let next = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        let batches: Vec<Vec<(usize, Result<RoutedNet, BmstError>)>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..jobs)
                    .map(|worker| {
                        let (next, failed) = (&next, &failed);
                        let nets = &self.nets;
                        scope.spawn(move || {
                            let mut out = Vec::new();
                            loop {
                                if failed.load(Ordering::Relaxed) {
                                    break;
                                }
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= nets.len() {
                                    break;
                                }
                                let _obs_span = bmst_obs::enabled()
                                    .then(|| bmst_obs::span_dyn(&format!("router.net.w{worker}")));
                                let res = route_named(&nets[i], config);
                                if res.is_err() {
                                    failed.store(true, Ordering::Relaxed);
                                }
                                out.push((i, res));
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        // lint: allow(no-panic) — re-raise worker panics instead of hiding them
                        h.join().expect("routing worker panicked")
                    })
                    .collect()
            });

        // Indices pulled from the queue form a contiguous prefix, so after
        // scattering the batches every unfilled slot lies *after* every
        // filled one; routing leftovers serially (only reachable when no
        // earlier net failed) keeps error order identical to `route`.
        let mut slots: Vec<Option<Result<RoutedNet, BmstError>>> = Vec::new();
        slots.resize_with(n, || None);
        for batch in batches {
            for (i, res) in batch {
                slots[i] = Some(res);
            }
        }
        let mut nets = Vec::with_capacity(n);
        let mut total_wirelength = 0.0;
        for (i, slot) in slots.into_iter().enumerate() {
            let routed = match slot {
                Some(res) => res?,
                None => route_named(&self.nets[i], config)?,
            };
            // Summed in input order: bit-identical to the serial pass.
            total_wirelength += routed.wirelength;
            nets.push(routed);
        }
        Ok(RouteReport {
            nets,
            total_wirelength,
        })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use crate::NamedNet;
    use bmst_geom::{Net, Point};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_netlist(seed: u64, nets: usize) -> Netlist {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for i in 0..nets {
            let n = rng.gen_range(3..9);
            let pts = (0..n)
                .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
                .collect();
            let crit = match i % 3 {
                0 => Criticality::Critical,
                1 => Criticality::Normal,
                _ => Criticality::Relaxed,
            };
            out.push(NamedNet::new(
                format!("n{i}"),
                Net::with_source_first(pts).unwrap(),
                crit,
            ));
        }
        Netlist::new(out)
    }

    #[test]
    fn routes_all_nets_within_bounds() {
        let nl = random_netlist(1, 9);
        for algorithm in [
            RouteAlgorithm::bkrus(),
            RouteAlgorithm::bkh2(),
            RouteAlgorithm::steiner(),
        ] {
            let cfg = RouterConfig {
                algorithm,
                ..RouterConfig::default()
            };
            let report = nl.route(&cfg).unwrap();
            assert_eq!(report.nets.len(), 9);
            for rn in &report.nets {
                assert!(
                    rn.radius <= rn.bound + 1e-9,
                    "{}: radius {} > bound {}",
                    rn.name,
                    rn.radius,
                    rn.bound
                );
            }
            assert!(report.worst_slack() >= -1e-9);
        }
    }

    #[test]
    fn criticality_maps_to_eps() {
        let cfg = RouterConfig::default();
        assert_eq!(cfg.eps_for(Criticality::Critical), 0.1);
        assert_eq!(cfg.eps_for(Criticality::Normal), 0.5);
        assert!(cfg.eps_for(Criticality::Relaxed).is_infinite());
    }

    #[test]
    fn steiner_pass_is_cheapest() {
        let nl = random_netlist(2, 6);
        let spanning = nl
            .route(&RouterConfig {
                algorithm: RouteAlgorithm::bkrus(),
                ..Default::default()
            })
            .unwrap();
        let steiner = nl
            .route(&RouterConfig {
                algorithm: RouteAlgorithm::steiner(),
                ..Default::default()
            })
            .unwrap();
        assert!(steiner.total_wirelength <= spanning.total_wirelength + 1e-9);
    }

    #[test]
    fn tighter_config_costs_more() {
        let nl = random_netlist(3, 8);
        let tight = RouterConfig {
            eps_critical: 0.0,
            eps_normal: 0.1,
            eps_relaxed: 0.2,
            algorithm: RouteAlgorithm::bkrus(),
        };
        let loose = RouterConfig {
            eps_critical: 1.0,
            eps_normal: 2.0,
            eps_relaxed: f64::INFINITY,
            algorithm: RouteAlgorithm::bkrus(),
        };
        let a = nl.route(&tight).unwrap().total_wirelength;
        let b = nl.route(&loose).unwrap().total_wirelength;
        assert!(b <= a + 1e-9, "loose {b} > tight {a}");
    }

    #[test]
    fn empty_netlist_routes_trivially() {
        let report = Netlist::default().route(&RouterConfig::default()).unwrap();
        assert_eq!(report.nets.len(), 0);
        assert_eq!(report.total_wirelength, 0.0);
        assert_eq!(report.worst_slack(), f64::INFINITY);
    }

    #[test]
    fn algorithm_resolution_and_identity() {
        assert_eq!(
            RouteAlgorithm::from_name("bkst"),
            Some(RouteAlgorithm::steiner())
        );
        assert!(RouteAlgorithm::from_name("nope").is_none());
        assert_eq!(RouteAlgorithm::default().name(), "bkrus");
        assert_eq!(RouteAlgorithm::steiner().to_string(), "steiner");
        assert!(RouteAlgorithm::all().count() >= 8);
    }

    #[test]
    fn every_registered_algorithm_routes_a_netlist() {
        // elmore-bkrus can be infeasible for tight eps under the default
        // driver model, so give every class a generous window.
        let nl = random_netlist(4, 3);
        for algorithm in RouteAlgorithm::all() {
            let cfg = RouterConfig {
                eps_critical: 1.0,
                eps_normal: 1.5,
                eps_relaxed: f64::INFINITY,
                algorithm,
            };
            let report = nl.route(&cfg);
            assert!(report.is_ok(), "{}: {report:?}", algorithm.name());
        }
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let nl = random_netlist(5, 17);
        let cfg = RouterConfig::default();
        let serial = nl.route(&cfg).unwrap();
        for jobs in [1, 2, 4, 8, 32] {
            let par = nl.route_parallel(&cfg, jobs).unwrap();
            assert_eq!(
                par.total_wirelength.to_bits(),
                serial.total_wirelength.to_bits(),
                "jobs={jobs}"
            );
            assert_eq!(par.nets.len(), serial.nets.len());
            for (a, b) in par.nets.iter().zip(&serial.nets) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.wirelength.to_bits(), b.wirelength.to_bits());
                assert_eq!(a.radius.to_bits(), b.radius.to_bits());
                assert_eq!(a.tree.edges(), b.tree.edges());
            }
        }
    }

    #[test]
    fn parallel_empty_and_oversubscribed() {
        let empty = Netlist::default()
            .route_parallel(&RouterConfig::default(), 8)
            .unwrap();
        assert_eq!(empty.nets.len(), 0);
        let nl = random_netlist(6, 2);
        let report = nl.route_parallel(&RouterConfig::default(), 64).unwrap();
        assert_eq!(report.nets.len(), 2);
    }
}
