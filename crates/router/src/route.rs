//! The routing pass itself.

use bmst_core::{bkh2, bkrus, BmstError};
use bmst_geom::Net;
use bmst_steiner::bkst;
use bmst_tree::RoutingTree;

use crate::{Criticality, Netlist, RouteReport, RoutedNet};

/// Which construction routes each net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouteAlgorithm {
    /// BKRUS: the fast default (`O(V^3)` per net).
    #[default]
    Bkrus,
    /// BKRUS + BKH2 exchange post-processing: a few percent cheaper, much
    /// slower — the paper recommends it below ~300 terminals per net.
    Bkh2,
    /// Bounded Steiner trees on the Hanan grid: cheapest, rectilinear only.
    Steiner,
}

/// Per-criticality eps assignment and algorithm selection.
///
/// The defaults encode the paper's trade-off curve: critical nets get a
/// tight 10% slack, normal nets 50%, relaxed nets are pure MSTs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterConfig {
    /// `eps` for [`Criticality::Critical`] nets.
    pub eps_critical: f64,
    /// `eps` for [`Criticality::Normal`] nets.
    pub eps_normal: f64,
    /// `eps` for [`Criticality::Relaxed`] nets
    /// (`f64::INFINITY` = unbounded MST).
    pub eps_relaxed: f64,
    /// The construction to use.
    pub algorithm: RouteAlgorithm,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            eps_critical: 0.1,
            eps_normal: 0.5,
            eps_relaxed: f64::INFINITY,
            algorithm: RouteAlgorithm::Bkrus,
        }
    }
}

impl RouterConfig {
    /// The eps this configuration assigns to a criticality class.
    pub fn eps_for(&self, c: Criticality) -> f64 {
        match c {
            Criticality::Critical => self.eps_critical,
            Criticality::Normal => self.eps_normal,
            Criticality::Relaxed => self.eps_relaxed,
        }
    }
}

fn route_one(
    net: &Net,
    eps: f64,
    algorithm: RouteAlgorithm,
) -> Result<(RoutingTree, f64), BmstError> {
    Ok(match algorithm {
        RouteAlgorithm::Bkrus => {
            let t = bkrus(net, eps)?;
            let cost = t.cost();
            (t, cost)
        }
        RouteAlgorithm::Bkh2 => {
            let t = bkh2(net, eps)?;
            let cost = t.cost();
            (t, cost)
        }
        RouteAlgorithm::Steiner => {
            let st = bkst(net, eps)?;
            let cost = st.wirelength();
            (st.tree, cost)
        }
    })
}

impl Netlist {
    /// Routes every net under `config`, returning the aggregate report.
    ///
    /// Nets are routed independently (classical global routing by nets);
    /// the report records, per net, the wirelength, the longest source-sink
    /// path, the bound it was routed under, and the slack between them.
    ///
    /// # Errors
    ///
    /// The first net that fails to route aborts the pass with that net's
    /// [`BmstError`] (upper-bound-only routing cannot fail; the error paths
    /// exist for exotic configurations).
    pub fn route(&self, config: &RouterConfig) -> Result<RouteReport, BmstError> {
        let mut nets = Vec::with_capacity(self.nets.len());
        let mut total_wirelength = 0.0;
        for n in &self.nets {
            let eps = config.eps_for(n.criticality);
            let bound = n.net.path_bound(eps);
            let (tree, wirelength) = route_one(&n.net, eps, config.algorithm)?;
            // For Steiner trees the radius of interest is over terminals
            // only; terminal ids coincide with net node ids in both cases.
            let radius = tree.max_dist_from_root(n.net.sinks());
            total_wirelength += wirelength;
            nets.push(RoutedNet {
                name: n.name.clone(),
                criticality: n.criticality,
                eps,
                wirelength,
                radius,
                bound,
                tree,
            });
        }
        Ok(RouteReport {
            nets,
            total_wirelength,
        })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;
    use crate::NamedNet;
    use bmst_geom::Point;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_netlist(seed: u64, nets: usize) -> Netlist {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for i in 0..nets {
            let n = rng.gen_range(3..9);
            let pts = (0..n)
                .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
                .collect();
            let crit = match i % 3 {
                0 => Criticality::Critical,
                1 => Criticality::Normal,
                _ => Criticality::Relaxed,
            };
            out.push(NamedNet::new(
                format!("n{i}"),
                Net::with_source_first(pts).unwrap(),
                crit,
            ));
        }
        Netlist::new(out)
    }

    #[test]
    fn routes_all_nets_within_bounds() {
        let nl = random_netlist(1, 9);
        for algorithm in [
            RouteAlgorithm::Bkrus,
            RouteAlgorithm::Bkh2,
            RouteAlgorithm::Steiner,
        ] {
            let cfg = RouterConfig {
                algorithm,
                ..RouterConfig::default()
            };
            let report = nl.route(&cfg).unwrap();
            assert_eq!(report.nets.len(), 9);
            for rn in &report.nets {
                assert!(
                    rn.radius <= rn.bound + 1e-9,
                    "{}: radius {} > bound {}",
                    rn.name,
                    rn.radius,
                    rn.bound
                );
            }
            assert!(report.worst_slack() >= -1e-9);
        }
    }

    #[test]
    fn criticality_maps_to_eps() {
        let cfg = RouterConfig::default();
        assert_eq!(cfg.eps_for(Criticality::Critical), 0.1);
        assert_eq!(cfg.eps_for(Criticality::Normal), 0.5);
        assert!(cfg.eps_for(Criticality::Relaxed).is_infinite());
    }

    #[test]
    fn steiner_pass_is_cheapest() {
        let nl = random_netlist(2, 6);
        let spanning = nl
            .route(&RouterConfig {
                algorithm: RouteAlgorithm::Bkrus,
                ..Default::default()
            })
            .unwrap();
        let steiner = nl
            .route(&RouterConfig {
                algorithm: RouteAlgorithm::Steiner,
                ..Default::default()
            })
            .unwrap();
        assert!(steiner.total_wirelength <= spanning.total_wirelength + 1e-9);
    }

    #[test]
    fn tighter_config_costs_more() {
        let nl = random_netlist(3, 8);
        let tight = RouterConfig {
            eps_critical: 0.0,
            eps_normal: 0.1,
            eps_relaxed: 0.2,
            algorithm: RouteAlgorithm::Bkrus,
        };
        let loose = RouterConfig {
            eps_critical: 1.0,
            eps_normal: 2.0,
            eps_relaxed: f64::INFINITY,
            algorithm: RouteAlgorithm::Bkrus,
        };
        let a = nl.route(&tight).unwrap().total_wirelength;
        let b = nl.route(&loose).unwrap().total_wirelength;
        assert!(b <= a + 1e-9, "loose {b} > tight {a}");
    }

    #[test]
    fn empty_netlist_routes_trivially() {
        let report = Netlist::default().route(&RouterConfig::default()).unwrap();
        assert_eq!(report.nets.len(), 0);
        assert_eq!(report.total_wirelength, 0.0);
        assert_eq!(report.worst_slack(), f64::INFINITY);
    }
}
