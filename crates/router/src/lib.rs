//! A multi-net global routing pass built on the bounded path length
//! constructions.
//!
//! The paper's introduction frames BMST as a *global routing* primitive:
//! critical path delay is a function of the longest interconnection path,
//! power of the total interconnection length. This crate is the pass a
//! router would actually run: a [`Netlist`] of signal nets, each tagged
//! with a [`Criticality`], is routed net by net — critical nets with a
//! tight `eps`, relaxed nets at the MST end — and the result is a
//! [`RouteReport`] with wirelength, per-net radii and slack against the
//! bound.
//!
//! # Examples
//!
//! ```
//! use bmst_geom::{Net, Point};
//! use bmst_router::{Criticality, NamedNet, Netlist, RouteAlgorithm, RouterConfig};
//!
//! let clk = Net::with_source_first(vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(10.0, 3.0),
//!     Point::new(9.0, -4.0),
//! ])?;
//! let data = Net::with_source_first(vec![
//!     Point::new(1.0, 1.0),
//!     Point::new(7.0, 8.0),
//! ])?;
//! let netlist = Netlist::new(vec![
//!     NamedNet::new("clk", clk, Criticality::Critical),
//!     NamedNet::new("data0", data, Criticality::Relaxed),
//! ]);
//!
//! let report = netlist.route(&RouterConfig::default());
//! assert_eq!(report.nets.len(), 2);
//! // Every net routed at its requested eps: no failures, none degraded.
//! assert!(report.is_clean());
//! assert!(report.total_wirelength > 0.0);
//! // Every routed net meets its bound: slack is never negative.
//! assert!(report.worst_slack() >= -1e-9);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The pass is *fault-isolated*: a net that cannot route (degenerate
//! geometry, an infeasible window, even a panicking construction) lands in
//! [`RouteReport::failures`] with a typed [`bmst_core::BmstError`] while
//! every other net routes normally, and recoverable failures walk a
//! configurable eps-relaxation ladder ([`RelaxationPolicy`]) before giving
//! up — results routed under a relaxed bound are marked
//! [`NetStatus::Degraded`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod netlist;
mod report;
mod route;

pub use netlist::{Criticality, NamedNet, Netlist, ParseNetlistError, RejectedNet};
pub use report::{NetStatus, RelaxationStep, RouteFailure, RouteReport, RoutedNet};
pub use route::{RelaxationPolicy, RouteAlgorithm, RouterConfig};
