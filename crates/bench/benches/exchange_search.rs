//! Criterion bench: the negative-sum-exchange post-processors (BKH2 and
//! depth-limited BKEX) on mid-size nets.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bmst_core::{bkex_from, bkh2_from, bkrus, BkexConfig, PathConstraint};
use bmst_instances::uniform_cloud;

fn bench_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("exchange_search");
    group.sample_size(20);
    for &n in &[10usize, 16, 24] {
        let net = uniform_cloud(n, 100.0, 0xE8 + n as u64);
        let eps = 0.2;
        let constraint = PathConstraint::from_eps(&net, eps).expect("valid eps");
        let start = bkrus(&net, eps).expect("spans");

        group.bench_with_input(BenchmarkId::new("bkh2", n), &n, |b, _| {
            b.iter(|| bkh2_from(black_box(&net), constraint, start.clone()))
        });
        group.bench_with_input(BenchmarkId::new("bkex_depth3", n), &n, |b, _| {
            b.iter(|| {
                bkex_from(
                    black_box(&net),
                    constraint,
                    start.clone(),
                    BkexConfig::with_depth(3),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exchange);
criterion_main!(benches);
