//! Criterion bench: the MST baselines (dense Prim vs edge-list Kruskal) and
//! the SPT star, which every table normalises against.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bmst_core::{mst_tree, spt_tree};
use bmst_graph::{complete_edges, kruskal_mst, prim_mst};
use bmst_instances::uniform_cloud;

fn bench_baselines(c: &mut Criterion) {
    let net = uniform_cloud(200, 100.0, 0xBA5E);
    let d = net.distance_matrix();

    c.bench_function("prim_dense_200", |b| b.iter(|| prim_mst(black_box(&d), 0)));
    c.bench_function("kruskal_complete_200", |b| {
        b.iter(|| {
            let edges = complete_edges(black_box(&d));
            kruskal_mst(d.len(), &edges).expect("complete graph connected")
        })
    });
    c.bench_function("mst_tree_200", |b| b.iter(|| mst_tree(black_box(&net))));
    c.bench_function("spt_tree_200", |b| b.iter(|| spt_tree(black_box(&net))));
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
