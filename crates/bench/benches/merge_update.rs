//! Criterion bench: the paper's `Merge` routine (path matrix + radius
//! update), the `O(V^2)` inner loop that dominates BKRUS.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bmst_core::forest::KruskalForest;

/// Builds a forest with two chained components of `half` nodes each,
/// ready to be merged by one final edge.
fn two_chains(half: usize) -> KruskalForest {
    let n = 2 * half;
    let mut f = KruskalForest::new(n, 0);
    for i in 1..half {
        f.merge(i - 1, i, 1.0);
    }
    for i in (half + 1)..n {
        f.merge(i - 1, i, 1.0);
    }
    f
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_update");
    for &half in &[32usize, 128, 512] {
        group.bench_with_input(
            BenchmarkId::new("final_merge", 2 * half),
            &half,
            |b, &half| {
                b.iter_batched(
                    || two_chains(half),
                    |mut f| {
                        f.merge(black_box(half - 1), black_box(half), 1.0);
                        f
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
