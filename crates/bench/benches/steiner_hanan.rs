//! Criterion bench: Hanan grid construction and the BKST Steiner builder.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bmst_instances::uniform_cloud;
use bmst_steiner::{bkst, HananGrid};

fn bench_steiner(c: &mut Criterion) {
    let mut group = c.benchmark_group("steiner_hanan");
    group.sample_size(20);
    for &n in &[10usize, 20, 40] {
        let net = uniform_cloud(n, 100.0, 0x57E1 + n as u64);
        group.bench_with_input(BenchmarkId::new("hanan_grid", n), &net, |b, net| {
            b.iter(|| HananGrid::new(black_box(net.points())))
        });
        group.bench_with_input(BenchmarkId::new("bkst_eps_0.2", n), &net, |b, net| {
            b.iter(|| bkst(black_box(net), 0.2).expect("spans"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_steiner);
criterion_main!(benches);
