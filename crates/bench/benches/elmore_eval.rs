//! Criterion bench: Elmore delay evaluation and the Elmore-bounded BKRUS.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bmst_core::{bkrus_elmore, mst_tree};
use bmst_instances::uniform_cloud;
use bmst_tree::{elmore, ElmoreDelays, ElmoreParams};

fn bench_elmore(c: &mut Criterion) {
    let mut group = c.benchmark_group("elmore");
    group.sample_size(30);
    for &n in &[50usize, 200] {
        let net = uniform_cloud(n, 100.0, 0xE1 + n as u64);
        let tree = mst_tree(&net);
        let params = ElmoreParams::uniform_loads(net.len(), net.source(), 0.2, 0.2, 10.0, 1.0, 4.0);
        group.bench_with_input(BenchmarkId::new("delays_from_source", n), &n, |b, _| {
            b.iter(|| ElmoreDelays::from_source(black_box(&tree), &params))
        });
        group.bench_with_input(BenchmarkId::new("all_radii", n), &n, |b, _| {
            b.iter(|| elmore::elmore_radii(black_box(&tree), &params))
        });
    }
    let net = uniform_cloud(12, 100.0, 0xE2);
    let params = ElmoreParams::uniform_loads(net.len(), net.source(), 0.2, 0.2, 10.0, 1.0, 4.0);
    group.bench_function("bkrus_elmore_12", |b| {
        b.iter(|| bkrus_elmore(black_box(&net), 0.5, &params).expect("routes"))
    });
    group.finish();
}

criterion_group!(benches, bench_elmore);
criterion_main!(benches);
