//! Criterion bench: BKRUS construction time as the net grows.
//!
//! BKRUS is `O(V^3)` (dominated by the `Merge` routine); this bench tracks
//! the constant and confirms the cubic trend on uniform nets.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bmst_core::bkrus;
use bmst_instances::uniform_cloud;

fn bench_bkrus(c: &mut Criterion) {
    let mut group = c.benchmark_group("bkrus_scaling");
    for &n in &[25usize, 50, 100] {
        let net = uniform_cloud(n, 100.0, 0xC0FFEE + n as u64);
        group.bench_with_input(BenchmarkId::new("eps_0.2", n), &net, |b, net| {
            b.iter(|| bkrus(black_box(net), 0.2).expect("spans"))
        });
        group.bench_with_input(BenchmarkId::new("eps_inf", n), &net, |b, net| {
            b.iter(|| bkrus(black_box(net), f64::INFINITY).expect("spans"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bkrus);
criterion_main!(benches);
