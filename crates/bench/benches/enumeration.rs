//! Criterion bench: cost-ordered spanning tree enumeration (Gabow's
//! primitive) and the exact BMST search built on it.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bmst_core::{gabow_bmst_with, GabowConfig, PathConstraint};
use bmst_graph::{complete_edges, SpanningTreeEnumerator};
use bmst_instances::uniform_cloud;

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumeration");
    group.sample_size(20);
    for &n in &[5usize, 6, 7] {
        let net = uniform_cloud(n - 1, 100.0, 0xE4E + n as u64);
        let edges = complete_edges(&net.distance_matrix());
        group.bench_with_input(BenchmarkId::new("all_trees", n), &n, |b, &n| {
            b.iter(|| SpanningTreeEnumerator::new(n, black_box(edges.clone())).count())
        });
    }
    for &sinks in &[8usize, 12] {
        let net = uniform_cloud(sinks, 100.0, 0xE4F + sinks as u64);
        let c10 = PathConstraint::from_eps(&net, 0.1).expect("valid eps");
        group.bench_with_input(
            BenchmarkId::new("bmst_g_eps_0.1", sinks + 1),
            &net,
            |b, net| {
                b.iter(|| {
                    gabow_bmst_with(black_box(net), c10, GabowConfig::default())
                        .expect("optimum exists")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);
