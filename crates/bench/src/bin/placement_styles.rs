//! Robustness study beyond the paper: the bounded constructions across
//! *placement styles* — uniform clouds (the paper's setting), clustered
//! register banks, standard-cell rows, and pad rings.
//!
//! For each style the harness reports the average cost-over-MST of BKRUS,
//! BKH2 and BKST at eps = 0.2, plus the MST's unconstrained path ratio
//! (how badly the style needs bounding in the first place).
//!
//! Run: `cargo run --release -p bmst-bench --bin placement_styles`

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use bmst_core::{bkh2, bkrus, mst_tree, spt_tree};
use bmst_geom::Net;
use bmst_instances::{clustered_net, random_net, ring_net, row_net};
use bmst_steiner::bkst;

fn suite(style: &str, seed_base: u64) -> Vec<Net> {
    (0..8)
        .map(|i| {
            let seed = seed_base + i;
            match style {
                "uniform" => random_net(20, seed),
                "clustered" => clustered_net(4, 5, 100.0, seed),
                "rows" => row_net(6, 20, 100.0, seed),
                "ring" => ring_net(20, 50.0, 0.15, seed),
                other => unreachable!("unknown style {other}"),
            }
        })
        .collect()
}

fn main() {
    let eps = 0.2;
    println!("Placement-style robustness (8 nets per style, 20 sinks, eps = {eps})");
    println!(
        "{:>10} {:>12} {:>10} {:>10} {:>10}",
        "style", "MST path/R", "BKRUS", "BKH2", "BKST"
    );
    for style in ["uniform", "clustered", "rows", "ring"] {
        let nets = suite(style, 0xF00D);
        let mut mst_path = 0.0;
        let mut bk = 0.0;
        let mut h2 = 0.0;
        let mut st = 0.0;
        for net in &nets {
            let mst = mst_tree(net);
            let spt_radius = spt_tree(net).source_radius();
            mst_path += mst.source_radius() / spt_radius;
            bk += bkrus(net, eps).expect("spans").cost() / mst.cost();
            h2 += bkh2(net, eps).expect("spans").cost() / mst.cost();
            st += bkst(net, eps).expect("spans").wirelength() / mst.cost();
        }
        let n = nets.len() as f64;
        println!(
            "{style:>10} {:>12.2} {:>10.3} {:>10.3} {:>10.3}",
            mst_path / n,
            bk / n,
            h2 / n,
            st / n
        );
    }
    println!();
    println!("Ring placements have the worst unconstrained MST paths (the p4");
    println!("phenomenon); clustered and row styles chain cheaply. The bounded");
    println!("constructions hold their cost premium across all four styles.");
}
