//! Regenerates the paper's **Figure 10**: ratio curves over the eps sweep
//! on random nets — `cost(BKRUS)/cost(MST)`, `cost(BKEX)/cost(MST)`,
//! `cost(BKRUS)/cost(BKEX)` and `cost(BKH2)/cost(BKEX)` (the last two show
//! how close the heuristics get to the exact optimum).
//!
//! Run: `cargo run --release -p bmst-bench --bin fig10_ratio`
//! `--full` uses 50 cases per point instead of 10.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use bmst_bench::{fmt_eps, has_flag, suite_seed, TABLE4_EPS};
use bmst_core::{bkh2, bkrus, gabow_bmst, mst_tree};
use bmst_instances::random_suite;

fn main() {
    let cases = if has_flag("--full") { 50 } else { 10 };
    let size = 10; // sinks per net
    let suite = random_suite(size, cases, suite_seed(size));

    println!("Figure 10: ratio curves on {cases} random nets of {size} sinks");
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>12}",
        "eps", "BKRUS/MST", "BKEX/MST", "BKRUS/BKEX", "BKH2/BKEX"
    );
    for eps in TABLE4_EPS {
        let mut bk_mst = 0.0;
        let mut ex_mst = 0.0;
        let mut bk_ex = 0.0;
        let mut h2_ex = 0.0;
        for net in &suite {
            let mst = mst_tree(net).cost();
            let bk = bkrus(net, eps).expect("bkrus spans").cost();
            let h2 = bkh2(net, eps).expect("bkh2 spans").cost();
            // The Gabow optimum stands in for BKEX's limit (the paper uses
            // them interchangeably in this figure; both are exact).
            let ex = gabow_bmst(net, eps).expect("exact spans").cost();
            bk_mst += bk / mst;
            ex_mst += ex / mst;
            bk_ex += bk / ex;
            h2_ex += h2 / ex;
        }
        let n = suite.len() as f64;
        println!(
            "{:>5} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
            fmt_eps(eps),
            bk_mst / n,
            ex_mst / n,
            bk_ex / n,
            h2_ex / n
        );
    }
    println!();
    println!("BKRUS/BKEX and BKH2/BKEX stay close to 1.0: the heuristics track the optimum.");
}
