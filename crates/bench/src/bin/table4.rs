//! Regenerates the paper's **Table 4**: the ratio of routing cost over MST
//! for BPRIM, BRBC, BKRUS, BKH2, BMST_G and BKST on random nets of
//! 5/8/10/12/15 sinks (ave/max, plus min for BKST).
//!
//! Run: `cargo run --release -p bmst-bench --bin table4`
//!
//! The default uses 10 cases per (size, eps) cell; `--full` uses the
//! paper's 50 (substantially slower, dominated by the exact BMST_G runs).

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use bmst_bench::{
    fmt_eps, has_flag, suite_seed, Aggregate, RANDOM_CASES, RANDOM_NET_SIZES, TABLE4_EPS,
};
use bmst_core::{bkh2, bkrus, bprim, brbc, gabow_bmst_with, mst_tree, GabowConfig, PathConstraint};
use bmst_instances::random_suite;
use bmst_steiner::bkst;

fn main() {
    let cases = if has_flag("--full") { RANDOM_CASES } else { 10 };
    println!("Table 4: routing cost over MST on random nets ({cases} cases per cell)");
    println!(
        "{:>4} {:>4} | {:>7} {:>7} | {:>7} | {:>7} {:>7} | {:>7} {:>7} | {:>7} {:>7} | {:>7} {:>7} {:>7}",
        "net", "eps", "BP.ave", "BP.max", "BR.max", "BK.ave", "BK.max", "H2.ave", "H2.max",
        "G.ave", "G.max", "ST.min", "ST.ave", "ST.max"
    );

    for size in RANDOM_NET_SIZES {
        let suite = random_suite(size, cases, suite_seed(size));
        for eps in TABLE4_EPS {
            let mut bp = Vec::new();
            let mut br = Vec::new();
            let mut bk = Vec::new();
            let mut h2 = Vec::new();
            let mut g = Vec::new();
            let mut g_skipped = 0usize;
            let mut st = Vec::new();
            for net in &suite {
                let mst = mst_tree(net).cost();
                bp.push(bprim(net, eps).expect("bprim spans").cost() / mst);
                br.push(brbc(net, eps).expect("brbc spans").cost() / mst);
                bk.push(bkrus(net, eps).expect("bkrus spans").cost() / mst);
                h2.push(bkh2(net, eps).expect("bkh2 spans").cost() / mst);
                let c = PathConstraint::from_eps(net, eps).expect("valid eps");
                // The exact method can exceed its tree budget on adversarial
                // 15-sink draws (the paper's Gabow column fails with memory
                // overflow in the same regime); those cases are excluded
                // from the BMST_G aggregate only.
                match gabow_bmst_with(
                    net,
                    c,
                    GabowConfig {
                        max_trees: 500_000,
                        ..GabowConfig::default()
                    },
                ) {
                    Ok(exact) => g.push(exact.tree.cost() / mst),
                    Err(_) => g_skipped += 1,
                }
                st.push(bkst(net, eps).expect("bkst spans").wirelength() / mst);
            }
            if g.is_empty() {
                g.push(f64::NAN);
            }
            if g_skipped > 0 {
                eprintln!("note: size {size} eps {eps}: {g_skipped} BMST_G case(s) over budget");
            }
            let (bp, br, bk, h2, g, st) = (
                Aggregate::of(&bp),
                Aggregate::of(&br),
                Aggregate::of(&bk),
                Aggregate::of(&h2),
                Aggregate::of(&g),
                Aggregate::of(&st),
            );
            println!(
                "{:>4} {:>4} | {:>7.3} {:>7.3} | {:>7.3} | {:>7.3} {:>7.3} | {:>7.3} {:>7.3} | {:>7.3} {:>7.3} | {:>7.3} {:>7.3} {:>7.3}",
                size,
                fmt_eps(eps),
                bp.ave,
                bp.max,
                br.max,
                bk.ave,
                bk.max,
                h2.ave,
                h2.max,
                g.ave,
                g.max,
                st.min,
                st.ave,
                st.max
            );
        }
        println!();
    }
    println!("BP=BPRIM BR=BRBC (max only, as in the paper) BK=BKRUS H2=BKH2 G=BMST_G ST=BKST");
}
