//! Ablation: hard bounds (BKRUS) versus soft blending (AHHK, the paper's
//! reference \[9\]). For matched *average* radii, how do the costs compare,
//! and how often does the soft blend bust a radius budget it was tuned for?
//!
//! Run: `cargo run --release -p bmst-bench --bin ablation_bound_vs_blend`

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use bmst_bench::suite_seed;
use bmst_core::{bkrus, mst_tree, prim_dijkstra};
use bmst_instances::random_suite;

fn main() {
    let suite = random_suite(12, 20, suite_seed(12));
    println!("Ablation: BKRUS hard bound vs AHHK Prim-Dijkstra soft blend");
    println!("({} random nets of 12 sinks)", suite.len());
    println!();
    println!(
        "{:>18} {:>10} {:>10} {:>14}",
        "construction", "cost/MST", "radius/R", "busts 1.2R"
    );

    for (name, f) in [
        (
            "BKRUS eps=0.2",
            Box::new(|n: &bmst_geom::Net| bkrus(n, 0.2).unwrap())
                as Box<dyn Fn(&bmst_geom::Net) -> bmst_tree::RoutingTree>,
        ),
        (
            "AHHK c=0.15",
            Box::new(|n: &bmst_geom::Net| prim_dijkstra(n, 0.15).unwrap()),
        ),
        (
            "AHHK c=0.30",
            Box::new(|n: &bmst_geom::Net| prim_dijkstra(n, 0.30).unwrap()),
        ),
        (
            "AHHK c=0.50",
            Box::new(|n: &bmst_geom::Net| prim_dijkstra(n, 0.50).unwrap()),
        ),
    ] {
        let mut cost = 0.0;
        let mut radius = 0.0;
        let mut busts = 0;
        for net in &suite {
            let t = f(net);
            cost += t.cost() / mst_tree(net).cost();
            let rel = t.source_radius() / net.source_radius();
            radius += rel;
            if rel > 1.2 + 1e-9 {
                busts += 1;
            }
        }
        let n = suite.len() as f64;
        println!(
            "{name:>18} {:>10.3} {:>10.3} {:>11}/{}",
            cost / n,
            radius / n,
            busts,
            suite.len()
        );
    }
    println!();
    println!("AHHK can match BKRUS's average radius at similar cost, but offers no");
    println!("guarantee: the 'busts' column counts nets whose radius exceeded the");
    println!("1.2R budget BKRUS is contractually held to (always 0 for BKRUS).");
}
