//! Regenerates the paper's §5 **BKEX depth study**: the fraction of random
//! instances on which the depth-limited negative-sum-exchange search
//! reaches the true optimum. The paper ran 2,750 benchmarks of 5-15 sinks
//! and found 96.945% / 97.309% / 99.709% optimal at depths 2 / 3 / 4, with
//! depth 6 solving everything.
//!
//! Run: `cargo run --release -p bmst-bench --bin bkex_depth`
//! Default: 10 cases per (size, eps); `--full` uses 50 (the paper's scale,
//! 2,750 total runs — slow).

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use bmst_bench::{has_flag, suite_seed, RANDOM_NET_SIZES};
use bmst_core::{bkex, gabow_bmst_with, BkexConfig, GabowConfig, PathConstraint};
use bmst_instances::random_suite;

const EPS: [f64; 11] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

fn main() {
    let full = has_flag("--full");
    let cases = if full { 50 } else { 10 };
    // Depth 5-6 searches on 15-sink nets are the paper's multi-hour tail;
    // the default stops at the headline depth 4 (99.7% in the paper).
    let depths: Vec<usize> = if full {
        vec![2, 3, 4, 5, 6]
    } else {
        vec![2, 3, 4]
    };
    let mut optimal = vec![0usize; depths.len()];
    let mut skipped = 0usize;
    let mut total = 0usize;

    for size in RANDOM_NET_SIZES {
        let suite = random_suite(size, cases, suite_seed(size));
        for net in suite.iter() {
            // The paper evaluates every case at every eps in [0, 1]:
            // 5 sizes x 50 cases x 11 eps = its 2,750 instances.
            for &eps in EPS.iter() {
                let c = PathConstraint::from_eps(net, eps).expect("valid eps");
                let opt = match gabow_bmst_with(
                    net,
                    c,
                    GabowConfig {
                        max_trees: 200_000,
                        ..GabowConfig::default()
                    },
                ) {
                    Ok(o) => o.tree.cost(),
                    Err(_) => {
                        // The reference optimum is out of budget; skip the
                        // instance rather than guess.
                        skipped += 1;
                        continue;
                    }
                };
                total += 1;
                // Depths are monotone in practice: once a depth reaches the
                // optimum we credit every deeper one — so (like the paper's
                // incremental study) the expensive deep searches only run
                // on the shrinking set of still-unsolved cases.
                let mut solved = false;
                for (d, &depth) in depths.iter().enumerate() {
                    if !solved {
                        let ex = bkex(net, eps, BkexConfig::with_depth(depth))
                            .expect("bkex spans")
                            .cost();
                        solved = (ex - opt).abs() < 1e-9;
                    }
                    if solved {
                        optimal[d] += 1;
                    }
                }
            }
        }
        println!("# finished size {size} ({total} instances so far)");
    }

    println!(
        "BKEX depth study ({total} instances: {} sizes x {cases} cases x {} eps, {skipped} skipped)",
        RANDOM_NET_SIZES.len(),
        EPS.len()
    );
    println!("{:>6} {:>10} {:>10}", "depth", "optimal", "%");
    for (d, &depth) in depths.iter().enumerate() {
        println!(
            "{depth:>6} {:>10} {:>9.3}%",
            optimal[d],
            100.0 * optimal[d] as f64 / total as f64
        );
    }
    println!();
    println!("paper: 96.945% at depth 2, 97.309% at 3, 99.709% at 4, 100% by depth 6");
}
