//! Regenerates the paper's **Figure 1**: BPRIM's pathology on the p3
//! configuration versus BKRUS at `eps = 0.25` (the paper shows BPRIM at
//! cost 131.30 vs BKT at 38.57, with the unbounded cases on either end).
//!
//! Run: `cargo run --release -p bmst-bench --bin fig1_pathology`

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use bmst_core::{bkrus, bprim, mst_tree, spt_tree};
use bmst_instances::Benchmark;

fn main() {
    let net = Benchmark::P3.build();
    let eps = 0.25;

    println!("Figure 1: BPRIM vs BKRUS on the p3 configuration (eps = {eps})");
    println!(
        "R = {:.2}, bound = {:.2}",
        net.source_radius(),
        1.25 * net.source_radius()
    );
    println!();

    let spt = spt_tree(&net);
    println!(
        "SPT        (eps = 0.0 reference): cost = {:8.2}",
        spt.cost()
    );

    let pb = bprim(&net, eps).expect("bprim spans");
    println!("BPRIM      (eps = {eps}): cost = {:8.2}", pb.cost());
    let direct_spokes = net
        .sinks()
        .filter(|&v| pb.parent(v) == Some(net.source()))
        .count();
    println!("           direct source spokes: {direct_spokes}");

    let bk = bkrus(&net, eps).expect("bkrus spans");
    println!("BKRUS      (eps = {eps}): cost = {:8.2}", bk.cost());
    let bk_spokes = net
        .sinks()
        .filter(|&v| bk.parent(v) == Some(net.source()))
        .count();
    println!("           direct source spokes: {bk_spokes}");

    let mst = mst_tree(&net);
    println!("MST        (eps = inf):  cost = {:8.2}", mst.cost());
    println!();
    println!(
        "BPRIM pays {:.1}% more wirelength than BKRUS under the same bound.",
        (pb.cost() / bk.cost() - 1.0) * 100.0
    );
    println!();
    println!("BKRUS tree edges:");
    for e in bk.edges() {
        println!("  {} - {}  (len {:.2})", e.u, e.v, e.weight);
    }
}
