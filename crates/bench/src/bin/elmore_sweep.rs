//! Exercises the paper's §3.2 **Elmore-delay extension** of BKRUS: for a
//! sweep of eps values the harness reports the worst source-sink Elmore
//! delay (which must respect `(1 + eps) * R_elmore`) and the wirelength,
//! demonstrating the same delay/cost trade-off under the RC model.
//!
//! Run: `cargo run --release -p bmst-bench --bin elmore_sweep`

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use bmst_bench::{fmt_eps, suite_seed};
use bmst_core::{bkrus_elmore, elmore_spt_radius, mst_tree};
use bmst_instances::random_suite;
use bmst_tree::{ElmoreDelays, ElmoreParams};

fn main() {
    let size = 10;
    let suite = random_suite(size, 5, suite_seed(size));
    // A wire-dominated operating point (strong driver, resistive wires), so
    // topology actually moves the delay: 0.5 ohm/um, 0.2 fF/um wires, a
    // 2 ohm / 1 fF driver, 5 fF sink loads.
    let mk_params =
        |n: usize, source: usize| ElmoreParams::uniform_loads(n, source, 0.5, 0.2, 2.0, 1.0, 5.0);

    println!(
        "Elmore-delay BKRUS sweep ({} random nets of {size} sinks)",
        suite.len()
    );
    println!(
        "{:>5} {:>16} {:>10} {:>12} {:>8}",
        "eps", "worst delay/R", "bound/R", "cost/MST", "ok"
    );
    for eps in [0.1, 0.2, 0.5, 1.0, 2.0, f64::INFINITY] {
        let mut worst_rel = 0.0_f64;
        let mut cost_ratio = 0.0;
        let mut all_ok = true;
        let mut solved = 0usize;
        for net in &suite {
            let params = mk_params(net.len(), net.source());
            let r = elmore_spt_radius(net, &params);
            let bound = if eps.is_infinite() {
                f64::INFINITY
            } else {
                (1.0 + eps) * r
            };
            // Under the Elmore model the Kruskal scan can genuinely dead-end
            // for very tight bounds (Lemma 3.1's monotonicity does not carry
            // over); such instances are reported, not hidden.
            let Ok(t) = bkrus_elmore(net, eps, &params) else {
                continue;
            };
            solved += 1;
            let worst = ElmoreDelays::from_source(&t, &params).max_delay_over(net.sinks());
            all_ok &= worst <= bound + 1e-6;
            worst_rel = worst_rel.max(worst / r);
            cost_ratio += t.cost() / mst_tree(net).cost();
        }
        if solved == 0 {
            println!(
                "{:>5} {:>16} {:>10} {:>12} {:>8}",
                fmt_eps(eps),
                "-",
                "-",
                "-",
                "-"
            );
            continue;
        }
        println!(
            "{:>5} {:>16.3} {:>10} {:>12.3} {:>8}  ({solved}/{} solved)",
            fmt_eps(eps),
            worst_rel,
            if eps.is_infinite() {
                "inf".to_owned()
            } else {
                format!("{:.3}", 1.0 + eps)
            },
            cost_ratio / solved as f64,
            all_ok,
            suite.len()
        );
    }
    println!();
    println!("As under the geometric model, loosening the delay bound drives the cost");
    println!("ratio towards 1.0 while the worst Elmore delay approaches the MST's.");
}
