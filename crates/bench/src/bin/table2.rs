//! Regenerates the paper's **Table 2**: BMST_G, BKEX, BKRUS, BKH2 and BPRIM
//! on the special benchmarks p1-p4 across the epsilon sweep, reporting the
//! path ratio (longest path / longest path of SPT), the performance ratio
//! (cost / cost(MST)) and CPU seconds.
//!
//! Run: `cargo run --release -p bmst-bench --bin table2`
//! Add `--skip-exact` to omit the exponential exact methods.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use bmst_bench::{fmt_eps, has_flag, timed, TABLE_EPS};
use bmst_core::{
    bkex, bkh2, bkrus, bprim, gabow_bmst_with, mst_tree, spt_tree, BkexConfig, GabowConfig,
    PathConstraint, TreeReport,
};
use bmst_geom::Net;
use bmst_instances::Benchmark;

fn row(report: Option<(TreeReport, f64)>) -> String {
    match report {
        Some((r, cpu)) => {
            format!("{:>6.2} {:>6.3} {:>8.2}", r.path_ratio, r.perf_ratio, cpu)
        }
        None => format!("{:>6} {:>6} {:>8}", "-", "-", "-"),
    }
}

fn run_all(net: &Net, eps: f64, skip_exact: bool) -> [Option<(TreeReport, f64)>; 5] {
    let mst_cost = mst_tree(net).cost();
    let spt_radius = spt_tree(net).source_radius();
    let rep = |t: &bmst_tree::RoutingTree| TreeReport::with_baselines(net, t, mst_cost, spt_radius);
    // The exact methods are exponential; on the 31-point p4 we shrink their
    // budgets (the paper's own p4 rows ran for up to 565 CPU seconds, with
    // '-' entries where Gabow overflowed memory).
    let big = net.len() > 20;
    let gabow_budget = if big { 100_000 } else { 500_000 };
    let bkex_cfg = if big {
        BkexConfig::with_depth(3)
    } else {
        BkexConfig::default()
    };

    let gabow = if skip_exact {
        None
    } else {
        let c = PathConstraint::from_eps(net, eps).expect("valid eps");
        let (out, cpu) = timed(|| {
            gabow_bmst_with(
                net,
                c,
                GabowConfig {
                    max_trees: gabow_budget,
                    ..GabowConfig::default()
                },
            )
        });
        out.ok().map(|o| (rep(&o.tree), cpu))
    };
    let bkex_r = if skip_exact {
        None
    } else {
        let (out, cpu) = timed(|| bkex(net, eps, bkex_cfg));
        out.ok().map(|t| (rep(&t), cpu))
    };
    let (bk, bk_cpu) = timed(|| bkrus(net, eps));
    let bkrus_r = bk.ok().map(|t| (rep(&t), bk_cpu));
    let (h2, h2_cpu) = timed(|| bkh2(net, eps));
    let bkh2_r = h2.ok().map(|t| (rep(&t), h2_cpu));
    let (pb, pb_cpu) = timed(|| bprim(net, eps));
    let bprim_r = pb.ok().map(|t| (rep(&t), pb_cpu));

    [gabow, bkex_r, bkrus_r, bkh2_r, bprim_r]
}

fn main() {
    let skip_exact = has_flag("--skip-exact");
    println!("Table 2: BMST_G, BKEX, BKRUS, BKH2 and BPRIM on special benchmarks");
    println!("(path = longest path(T)/longest path(SPT), perf = cost(T)/cost(MST))");
    println!();
    println!(
        "{:<6} {:>4} | {:^22} | {:^22} | {:^22} | {:^22} | {:^22}",
        "bench", "eps", "BMST_G", "BKEX", "BKRUS", "BKH2", "BPRIM"
    );
    println!(
        "{:<6} {:>4} | {:>6} {:>6} {:>8} | {:>6} {:>6} {:>8} | {:>6} {:>6} {:>8} | {:>6} {:>6} {:>8} | {:>6} {:>6} {:>8}",
        "", "", "path", "perf", "cpu", "path", "perf", "cpu", "path", "perf", "cpu",
        "path", "perf", "cpu", "path", "perf", "cpu"
    );
    for b in Benchmark::SPECIAL {
        let net = b.build();
        for eps in TABLE_EPS {
            // The exact methods are exponential; the paper itself reports
            // p4's BMST_G rows up to 565 CPU seconds. Skip the exact runs on
            // p4's tightest bounds unless the user asked for everything.
            let heavy = b.num_points() > 20 && eps < 0.3 && eps > 0.0;
            let results = run_all(&net, eps, skip_exact || heavy);
            let cols: Vec<String> = results.into_iter().map(row).collect();
            println!(
                "{:<6} {:>4} | {} | {} | {} | {} | {}",
                b.name(),
                fmt_eps(eps),
                cols[0],
                cols[1],
                cols[2],
                cols[3],
                cols[4]
            );
        }
        println!();
    }
    println!("-: skipped/failed (exact method over budget; the paper's '-' is memory overflow)");
}
