//! Regenerates the paper's **Figure 5**: an instance where greedy BKRUS is
//! *not* optimal — it commits to the cheapest sink-sink edge, and reaching
//! the optimum requires undoing it, which is exactly what the
//! negative-sum-exchange post-processing (BKEX) does.
//!
//! Run: `cargo run --release -p bmst-bench --bin fig5_nonopt`

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use bmst_core::{bkex, bkrus, gabow_bmst, BkexConfig};
use bmst_geom::{Net, Point};

fn main() {
    // Figure 5's structure: the greedy scan commits to a cheap sink-sink
    // edge that the optimal bounded tree rejects. (Same phenomenon as the
    // paper's 19.9-vs-19.5 example, on a concrete reproducible instance.)
    let net = Net::with_source_first(vec![
        Point::new(6.3, 6.6), // S
        Point::new(1.3, 1.2), // a
        Point::new(5.7, 1.8), // b
        Point::new(0.4, 2.8), // c
    ])
    .expect("valid net");
    let eps = 0.2;

    println!("Figure 5: BKRUS non-optimality and BKEX recovery (eps = {eps})");
    println!("bound = {:.2}", net.path_bound(eps));
    println!();

    let heur = bkrus(&net, eps).expect("bkrus spans");
    println!("BKRUS  cost = {:.3}", heur.cost());
    for e in heur.edges() {
        println!("   edge {} - {} (len {:.3})", e.u, e.v, e.weight);
    }

    let ex = bkex(&net, eps, BkexConfig::default()).expect("bkex spans");
    println!("BKEX   cost = {:.3}", ex.cost());
    for e in ex.edges() {
        println!("   edge {} - {} (len {:.3})", e.u, e.v, e.weight);
    }

    let opt = gabow_bmst(&net, eps).expect("exact spans");
    println!("BMST_G cost = {:.3} (optimal)", opt.cost());
    println!();
    if ex.cost() < heur.cost() - 1e-9 {
        println!(
            "BKEX improved BKRUS by {:.2}% and matches the optimum: {}",
            (1.0 - ex.cost() / heur.cost()) * 100.0,
            (ex.cost() - opt.cost()).abs() < 1e-9
        );
    } else {
        println!("BKRUS was already optimal on this instance.");
    }
}
