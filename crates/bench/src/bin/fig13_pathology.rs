//! Regenerates the paper's **Figure 13**: the p1 family, where even the
//! *optimal* bounded tree can cost nearly `N * cost(MST)` — with a tight
//! bound every sink in the far cluster needs its own direct spoke.
//!
//! Run: `cargo run --release -p bmst-bench --bin fig13_pathology`

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use bmst_core::{bkrus, mst_tree};
use bmst_instances::figure13_family;

fn main() {
    println!("Figure 13: cost(BKT at eps=0) / cost(MST) grows linearly in the cluster size");
    println!(
        "{:>4} {:>10} {:>10} {:>10} {:>8}",
        "N", "BKT@0", "MST", "ratio", "~N?"
    );
    for n in [2usize, 4, 6, 8, 12, 16, 20, 25, 30] {
        let net = figure13_family(n);
        let bkt = bkrus(&net, 0.0).expect("bkrus spans").cost();
        let mst = mst_tree(&net).cost();
        let ratio = bkt / mst;
        println!(
            "{n:>4} {bkt:>10.2} {mst:>10.2} {ratio:>10.2} {:>8.2}",
            ratio / n as f64
        );
    }
    println!();
    println!("The ratio column climbs with N while ratio/N stays roughly constant:");
    println!("the pathology is inherent to the problem (the optimum needs N spokes),");
    println!("not a weakness of the heuristic. At eps = inf the same family costs");
    println!("cost(MST) exactly:");
    let net = figure13_family(20);
    let unbounded = bkrus(&net, f64::INFINITY).expect("bkrus spans").cost();
    println!(
        "  N = 20, eps = inf: cost = {:.2} = MST {:.2}",
        unbounded,
        mst_tree(&net).cost()
    );
}
