//! Emits the machine-readable bench trajectory: `BENCH_table2.json` with one
//! record per `(benchmark, algorithm, eps)` — path/perf ratios, wall-clock,
//! and an instrumentation counter snapshot for each construction — plus a
//! serial-vs-parallel netlist routing comparison.
//!
//! The construction set is discovered from the builder registry rather than
//! hard-coded: every eps-driven builder (`Window` / `PerNode` bound) is
//! swept, with the exponential exact methods gated to small nets.
//!
//! Run: `cargo run --release -p bmst-bench --bin bench_trajectory [--out DIR] [--quick]`
//!
//! * `--out DIR`   directory for the `BENCH_*.json` files (default `.`)
//! * `--quick`     CI mode: p1-p3 only, exact methods only below 15 points

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use std::path::PathBuf;
use std::sync::Arc;

use bmst_bench::emit::{write_bench_file, BenchRecord};
use bmst_bench::{fit_scaling_exponent, has_flag, timed, TABLE_EPS};
use bmst_core::{
    builders, mst_tree, spt_tree, BoundKind, CostClass, EdgeSupply, GabowConfig, ProblemContext,
    TreeBuilder, TreeReport,
};
use bmst_geom::Net;
use bmst_instances::{scaled_net, Benchmark, ScaleStyle};
use bmst_obs::SummaryRecorder;
use bmst_router::{Criticality, NamedNet, Netlist, RouterConfig};
use bmst_tree::RoutingTree;

/// Runs one construction under a fresh [`SummaryRecorder`], producing a
/// record with the counter snapshot of exactly that run.
fn measure(
    bench: &str,
    algorithm: &str,
    eps: f64,
    net: &Net,
    mst_cost: f64,
    spt_radius: f64,
    construct: impl FnOnce() -> Option<RoutingTree>,
) -> Option<BenchRecord> {
    let recorder = Arc::new(SummaryRecorder::new());
    let (tree, wall_s) = {
        let _guard = bmst_obs::scoped(recorder.clone());
        timed(construct)
    };
    let tree = tree?;
    let report = TreeReport::with_baselines(net, &tree, mst_cost, spt_radius);
    let mut record = BenchRecord {
        bench: bench.to_owned(),
        algorithm: algorithm.to_owned(),
        eps,
        cost: report.cost,
        longest_path: report.longest_path,
        perf_ratio: report.perf_ratio,
        path_ratio: report.path_ratio,
        wall_s,
        counters: Default::default(),
    };
    record.set_counters(&recorder.snapshot());
    Some(record)
}

fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

/// Sweeps every eps-driven registry builder over the special benchmarks.
fn sweep_registry(quick: bool, records: &mut Vec<BenchRecord>) {
    let exact_limit = if quick { 15 } else { 21 };
    // The registry's Gabow entry enumerates up to 2M trees; cap it to keep
    // the sweep's worst case bounded (the paper's nets stay far below this).
    let gabow_capped = builders::Gabow {
        config: GabowConfig {
            max_trees: 100_000,
            ..GabowConfig::default()
        },
    };

    for b in Benchmark::SPECIAL {
        if quick && b.num_points() > 20 {
            continue; // p4 (31 points) is too slow for a CI smoke run
        }
        let net = b.build();
        let mst_cost = mst_tree(&net).cost();
        let spt_radius = spt_tree(&net).source_radius();
        let small = net.len() < exact_limit;
        for eps in TABLE_EPS {
            for &builder in bmst_steiner::full_registry() {
                let d = builder.descriptor();
                if d.variant_of.is_some() {
                    continue; // the trace variant duplicates its base
                }
                if !matches!(d.bound, BoundKind::Window | BoundKind::PerNode) {
                    continue; // only eps-driven bounds make a sweep
                }
                if d.cost_class == CostClass::Exact && !small {
                    // The exact methods are exponential; keep them to the
                    // nets the paper itself ran them on.
                    continue;
                }
                let builder: &dyn TreeBuilder = if d.name == "gabow" {
                    &gabow_capped
                } else {
                    builder
                };
                records.extend(measure(
                    b.name(),
                    d.name,
                    eps,
                    &net,
                    mst_cost,
                    spt_radius,
                    || {
                        let cx = ProblemContext::new(&net, eps).ok()?;
                        builder.build(&cx).ok()
                    },
                ));
            }
        }
    }
}

/// The synthetic all-feasible netlist shared by the serial/parallel
/// comparison and the robustness-overhead measurement.
fn synthetic_netlist(num_nets: usize) -> Netlist {
    let classes = [
        Criticality::Critical,
        Criticality::Normal,
        Criticality::Relaxed,
    ];
    let nets: Vec<NamedNet> = (0..num_nets)
        .map(|i| {
            let net = bmst_instances::uniform_cloud(6 + (i % 10), 200.0, 0xBE57 + i as u64);
            NamedNet::new(format!("n{i}"), net, classes[i % classes.len()])
        })
        .collect();
    Netlist::new(nets)
}

/// Routes the same toy netlist serially and with 4 workers, asserts the
/// outputs are structurally identical, and records both timings. The nets
/// here are 6-15 sinks — far below `parallel_min_terminals` — so the
/// observed "speedup" is dominated by thread-pool overhead; the records
/// carry a `-toy` suffix (and the counter a `_toy` suffix) to say so.
/// They are kept for trajectory continuity; `netlist_comparison` below
/// holds the honest measurement.
fn netlist_comparison_toy(quick: bool, records: &mut Vec<BenchRecord>) {
    let num_nets = if quick { 8 } else { 24 };
    let netlist = synthetic_netlist(num_nets);
    // Threshold off: the jobs-4 record must measure the worker pool, not
    // the small-netlist serial bypass.
    let config = RouterConfig {
        parallel_min_terminals: 0,
        ..RouterConfig::default()
    };
    let bench_name = format!("netlist{num_nets}");

    let (serial, serial_s) = timed(|| netlist.route(&config));
    assert!(serial.is_clean(), "synthetic netlist must route cleanly");
    let jobs = 4;
    let (parallel, parallel_s) = timed(|| netlist.route_parallel(&config, jobs));
    assert_eq!(
        serial.to_json().to_string(),
        parallel.to_json().to_string(),
        "parallel routing must be byte-identical to serial"
    );

    let max_radius = serial.nets.iter().map(|n| n.radius).fold(0.0_f64, f64::max);
    let record = |algorithm: &str, wall_s: f64, jobs: u64, speedup_milli: u64| BenchRecord {
        bench: bench_name.clone(),
        algorithm: algorithm.to_owned(),
        eps: config.eps_normal,
        cost: serial.total_wirelength,
        longest_path: max_radius,
        perf_ratio: 1.0,
        path_ratio: 1.0,
        wall_s,
        counters: [
            ("router.jobs".to_owned(), jobs),
            ("router.nets".to_owned(), num_nets as u64),
            ("router.speedup_milli_toy".to_owned(), speedup_milli),
        ]
        .into(),
    };
    let speedup_milli = if parallel_s > 0.0 {
        (serial_s / parallel_s * 1000.0) as u64
    } else {
        0
    };
    records.push(record("netlist-serial-toy", serial_s, 1, 1000));
    records.push(record(
        "netlist-jobs4-toy",
        parallel_s,
        jobs as u64,
        speedup_milli,
    ));
}

/// A netlist of `count` scaled `sinks`-sink nets — big enough that the
/// default `parallel_min_terminals` threshold admits the worker pool, so
/// parallel timings measure real work, not pool overhead.
fn scaled_netlist(count: usize, sinks: usize) -> Netlist {
    let classes = [
        Criticality::Critical,
        Criticality::Normal,
        Criticality::Relaxed,
    ];
    let nets: Vec<NamedNet> = (0..count)
        .map(|i| {
            let net = scaled_net(sinks, 0x5CA7E + i as u64, ScaleStyle::ALL[i % 3]);
            NamedNet::new(format!("s{i}"), net, classes[i % classes.len()])
        })
        .collect();
    Netlist::new(nets)
}

/// The honest serial-vs-4-jobs comparison (the fix for the misleading
/// `router.speedup_milli` record): a netlist whose terminal count clears
/// the *default* `parallel_min_terminals` threshold by an order of
/// magnitude, routed under the default config. Outputs are asserted
/// byte-identical; `router.speedup_milli` is serial/parallel wall x1000,
/// so > 1000 means parallel routing actually won.
fn netlist_comparison(quick: bool, records: &mut Vec<BenchRecord>) {
    // Per-net work must dwarf thread-pool startup for the comparison to
    // measure routing rather than spawning: 120-sink nets take ~ms each.
    let (num_nets, sinks) = if quick { (8, 150) } else { (24, 150) };
    let netlist = scaled_netlist(num_nets, sinks);
    let config = RouterConfig::default();
    let total_terminals: usize = netlist.nets.iter().map(|n| n.net.len()).sum();
    assert!(
        total_terminals >= 10 * config.parallel_min_terminals,
        "honest comparison must dwarf the parallel threshold"
    );
    let bench_name = format!("scaled-netlist{num_nets}");

    let (serial, serial_s) = timed(|| netlist.route(&config));
    assert!(serial.is_clean(), "scaled netlist must route cleanly");
    let jobs = 4;
    let (parallel, parallel_s) = timed(|| netlist.route_parallel(&config, jobs));
    assert_eq!(
        serial.to_json().to_string(),
        parallel.to_json().to_string(),
        "parallel routing must be byte-identical to serial"
    );

    let max_radius = serial.nets.iter().map(|n| n.radius).fold(0.0_f64, f64::max);
    let speedup_milli = if parallel_s > 0.0 {
        (serial_s / parallel_s * 1000.0) as u64
    } else {
        0
    };
    let record = |algorithm: &str, wall_s: f64, jobs: u64, speedup_milli: u64| BenchRecord {
        bench: bench_name.clone(),
        algorithm: algorithm.to_owned(),
        eps: config.eps_normal,
        cost: serial.total_wirelength,
        longest_path: max_radius,
        perf_ratio: 1.0,
        path_ratio: 1.0,
        wall_s,
        counters: [
            ("router.jobs".to_owned(), jobs),
            ("router.nets".to_owned(), num_nets as u64),
            ("router.terminals".to_owned(), total_terminals as u64),
            ("router.speedup_milli".to_owned(), speedup_milli),
        ]
        .into(),
    };
    records.push(record("netlist-serial", serial_s, 1, 1000));
    records.push(record(
        "netlist-jobs4",
        parallel_s,
        jobs as u64,
        speedup_milli,
    ));
}

/// Representative bound for the scaling sweep: loose enough that every
/// builder succeeds on uniform clouds, tight enough that the bound-check
/// machinery stays on the measured path.
const SCALING_EPS: f64 = 0.5;

/// Times one construction on a scaled net and returns integer microseconds
/// (the unit of the `scaling.*` trajectory records).
fn time_scaled_build(builder: &dyn TreeBuilder, net: &Net, supply: EdgeSupply) -> u64 {
    let (tree, wall_s) = timed(|| {
        let cx = ProblemContext::new(net, SCALING_EPS)
            .expect("scaled nets are valid")
            .with_edge_supply(supply);
        builder
            .build(&cx)
            .expect("scaled uniform nets are feasible at eps 0.5")
    });
    assert!(tree.cost() > 0.0, "scaling build produced an empty tree");
    (wall_s * 1e6) as u64
}

/// One scaling record: `scaling.<algo>.<n>.micros` plus the size itself
/// under `scaling.n`, so `cargo xtask check-perf` can rebuild the curve
/// without parsing key strings for anything but the algorithm.
fn scaling_record(algo: &str, n: usize, micros: u64, extra: &[(String, u64)]) -> BenchRecord {
    let mut counters: std::collections::BTreeMap<String, u64> = [
        ("scaling.n".to_owned(), n as u64),
        (format!("scaling.{algo}.{n}.micros"), micros),
    ]
    .into();
    counters.extend(extra.iter().cloned());
    BenchRecord {
        bench: format!("scale-{n}"),
        algorithm: algo.to_owned(),
        eps: SCALING_EPS,
        cost: 0.0,
        longest_path: 0.0,
        perf_ratio: 1.0,
        path_ratio: 1.0,
        wall_s: micros as f64 / 1e6,
        counters,
    }
}

/// Fits the scaling exponent of a sweep and appends the
/// `scaling.<algo>.exponent_milli` record (exponent x1000; ~2000 reads as
/// quadratic). Skipped (with a stderr note) for degenerate sweeps.
fn scaling_fit_record(algo: &str, points: &[(usize, u64)], records: &mut Vec<BenchRecord>) {
    let float_points: Vec<(f64, f64)> = points
        .iter()
        .map(|&(n, us)| (n as f64, us as f64))
        .collect();
    let Some(exponent) = fit_scaling_exponent(&float_points) else {
        eprintln!("scaling fit skipped for {algo}: degenerate sweep {points:?}");
        return;
    };
    records.push(BenchRecord {
        bench: "scaling-fit".to_owned(),
        algorithm: algo.to_owned(),
        eps: SCALING_EPS,
        cost: 0.0,
        longest_path: 0.0,
        perf_ratio: 1.0,
        path_ratio: 1.0,
        wall_s: 0.0,
        counters: [(
            format!("scaling.{algo}.exponent_milli"),
            (exponent.max(0.0) * 1000.0) as u64,
        )]
        .into(),
    });
}

/// The n-sweep behind the scaling-curve regression gate: times BKRUS and
/// BPRIM on uniform scaled nets across two orders of magnitude of sink
/// count, and the router (serial and 4-jobs) on scaled netlists across two
/// orders of magnitude of total terminals. Ladders are per-algorithm —
/// BPRIM's near-cubic growth gets smaller sizes than BKRUS — and the quick
/// (CI smoke) ladders are two sizes, enough to exercise the record schema
/// without the multi-second builds.
fn scaling_sweep(quick: bool, records: &mut Vec<BenchRecord>) {
    let bkrus_ns: &[usize] = if quick { &[50, 200] } else { &[50, 500, 5000] };
    // BPRIM's sparse path carries no dense matrix, so its gated (Auto)
    // ladder reaches past the dense-era ceiling.
    let bprim_ns: &[usize] = if quick {
        &[20, 100]
    } else {
        &[20, 200, 2000, 8000]
    };
    // Router sizes are total terminals: netlists of 50-sink nets.
    let router_ns: &[usize] = if quick {
        &[102, 510]
    } else {
        &[102, 1020, 10200]
    };

    for (algo, builder, ns) in [
        ("bkrus", &builders::Bkrus as &dyn TreeBuilder, bkrus_ns),
        ("bprim", &builders::Bprim, bprim_ns),
    ] {
        let mut points = Vec::new();
        for &n in ns {
            let net = scaled_net(n, 0x5CA1E + n as u64, ScaleStyle::Uniform);
            let micros = time_scaled_build(builder, &net, EdgeSupply::Auto);
            records.push(scaling_record(algo, n, micros, &[]));
            points.push((n, micros));
        }
        scaling_fit_record(algo, &points, records);
    }

    // Forced-supply comparison ladders. Keys embed the supply name
    // (`scaling.<algo>.sparse.<n>.micros`), which `check-perf`'s parser
    // skips (the size slot does not parse as an integer), so these inform
    // without widening the gated ladders. Dense ladders stop at the sizes
    // the O(n^2) matrix comfortably affords.
    for (algo, builder) in [
        ("bkrus", &builders::Bkrus as &dyn TreeBuilder),
        ("bprim", &builders::Bprim),
    ] {
        for (supply, ns) in [
            (
                EdgeSupply::Sparse,
                if quick {
                    &[50usize, 200][..]
                } else {
                    &[50, 500, 5000][..]
                },
            ),
            (
                EdgeSupply::Dense,
                if quick {
                    &[50usize, 200][..]
                } else {
                    &[50, 500, 2000][..]
                },
            ),
        ] {
            let tagged = format!("{algo}.{}", supply.name());
            let mut points = Vec::new();
            for &n in ns {
                let net = scaled_net(n, 0x5CA1E + n as u64, ScaleStyle::Uniform);
                let micros = time_scaled_build(builder, &net, supply);
                records.push(scaling_record(&tagged, n, micros, &[]));
                points.push((n, micros));
            }
            scaling_fit_record(&tagged, &points, records);
        }
    }

    let config = RouterConfig::default();
    let jobs = 4;
    let mut points = Vec::new();
    for &n in router_ns {
        // 51 terminals per net (50 sinks + source).
        let netlist = scaled_netlist(n / 51, 50);
        let (serial, serial_s) = timed(|| netlist.route(&config));
        assert!(serial.is_clean(), "scaled netlist must route cleanly");
        let (_, parallel_s) = timed(|| netlist.route_parallel(&config, jobs));
        let micros = (serial_s * 1e6) as u64;
        let speedup_milli = if parallel_s > 0.0 {
            (serial_s / parallel_s * 1000.0) as u64
        } else {
            0
        };
        records.push(scaling_record(
            "router",
            n,
            micros,
            &[(format!("scaling.router.{n}.speedup_milli"), speedup_milli)],
        ));
        points.push((n, micros));
    }
    scaling_fit_record("router", &points, records);
}

/// Measures what the robustness layer costs when nothing goes wrong: the
/// guarded `route` pass (input validation, `catch_unwind`, window
/// post-check, ladder bookkeeping, report assembly) against a raw loop
/// calling the same builder directly on the same all-feasible netlist.
/// The `router.overhead_milli` counter is guarded/raw wall-clock x1000,
/// so the <2% happy-path budget reads as `<= 1020` in BENCH_table2.json.
fn robustness_overhead(quick: bool, records: &mut Vec<BenchRecord>) {
    let num_nets = if quick { 8 } else { 24 };
    let netlist = synthetic_netlist(num_nets);
    let config = RouterConfig::default();
    let builder = config.algorithm.builder();

    // Best-of-N on both paths to squeeze out scheduler noise; the two
    // loops interleave so frequency scaling hits them evenly.
    let rounds = if quick { 3 } else { 7 };
    let mut raw_s = f64::INFINITY;
    let mut guarded_s = f64::INFINITY;
    let mut guarded_cost = 0.0;
    for _ in 0..rounds {
        let (raw_cost, t) = timed(|| {
            let mut cost = 0.0;
            for n in &netlist.nets {
                let cx = ProblemContext::new(&n.net, config.eps_for(n.criticality))
                    .expect("synthetic nets are valid");
                cost += builder
                    .build(&cx)
                    .expect("synthetic nets are feasible")
                    .cost();
            }
            cost
        });
        raw_s = raw_s.min(t);
        let (report, t) = timed(|| netlist.route(&config));
        assert!(
            report.is_clean(),
            "overhead bench must stay on the happy path"
        );
        assert!((report.total_wirelength - raw_cost).abs() < 1e-6);
        guarded_cost = report.total_wirelength;
        guarded_s = guarded_s.min(t);
    }

    let overhead_milli = if raw_s > 0.0 {
        (guarded_s / raw_s * 1000.0) as u64
    } else {
        0
    };
    records.push(BenchRecord {
        bench: format!("netlist{num_nets}"),
        algorithm: "netlist-guarded".to_owned(),
        eps: config.eps_normal,
        cost: guarded_cost,
        longest_path: 0.0,
        perf_ratio: 1.0,
        path_ratio: 1.0,
        wall_s: guarded_s,
        counters: [
            ("router.nets".to_owned(), num_nets as u64),
            ("router.overhead_milli".to_owned(), overhead_milli),
        ]
        .into(),
    });
}

/// Times the serving layer end to end: an in-process `bmst-serve` server
/// answers pipelined route requests over a real TCP loopback connection,
/// once with the report cache bypassed (`serve.roundtrip.micros`: parse,
/// admission, routing, render, write) and once against a warm LRU entry
/// (`serve.cache_hit.micros`: everything but the routing). Both loops are
/// guarded — every response must be `ok` with the expected `cached` flag,
/// so a protocol or cache regression fails the bench instead of skewing
/// the numbers.
fn serve_roundtrip(quick: bool, records: &mut Vec<BenchRecord>) {
    use std::io::{BufRead, BufReader, Write};

    let server = match bmst_serve::Server::bind(bmst_serve::ServeConfig {
        workers: 2,
        cache_entries: 16,
        ..bmst_serve::ServeConfig::default()
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve bench skipped: cannot bind loopback: {e}");
            return;
        }
    };
    let addr = server.local_addr();
    let run = std::thread::spawn(move || server.run());

    let mut stream = std::net::TcpStream::connect(addr).expect("connect to in-process server");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(60)))
        .expect("socket timeout");
    // One write per request and no Nagle buffering: the bench measures
    // the serving layer, not the kernel's delayed-ACK timer.
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone socket"));
    let mut roundtrip = |line: &str, want_cached: &str| {
        let mut framed = line.as_bytes().to_vec();
        framed.push(b'\n');
        stream.write_all(&framed).expect("write request");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read response");
        assert!(response.contains("\"ok\":true"), "{response}");
        assert!(response.contains(want_cached), "{response}");
    };

    let netlist = "net a critical\\n0 0\\n10 0\\n9 5\\n3 7\\nend\\n";
    let uncached =
        format!("{{\"id\":1,\"op\":\"route\",\"netlist\":\"{netlist}\",\"cache\":false}}");
    let cached = format!("{{\"id\":2,\"op\":\"route\",\"netlist\":\"{netlist}\"}}");
    let rounds: u32 = if quick { 20 } else { 100 };

    // Warm both paths: first JIT-ish costs (lazy statics, allocator), then
    // the LRU entry the cached loop will hit.
    roundtrip(&uncached, "\"cached\":false");
    roundtrip(&cached, "\"cached\":false");

    let ((), uncached_s) = timed(|| {
        for _ in 0..rounds {
            roundtrip(&uncached, "\"cached\":false");
        }
    });
    let ((), cached_s) = timed(|| {
        for _ in 0..rounds {
            roundtrip(&cached, "\"cached\":true");
        }
    });

    roundtrip("{\"id\":9,\"op\":\"shutdown\"}", "\"ok\":true");
    drop(stream);
    drop(reader);
    run.join()
        .expect("server thread")
        .expect("clean server shutdown");

    let per_round = |total_s: f64| (total_s / f64::from(rounds) * 1e6) as u64;
    let record = |algorithm: &str, wall_s: f64, counter: &str| BenchRecord {
        bench: "serve-loopback".to_owned(),
        algorithm: algorithm.to_owned(),
        eps: 0.0,
        cost: 0.0,
        longest_path: 0.0,
        perf_ratio: 1.0,
        path_ratio: 1.0,
        wall_s,
        counters: [
            (counter.to_owned(), per_round(wall_s)),
            ("serve.rounds".to_owned(), u64::from(rounds)),
        ]
        .into(),
    };
    records.push(record(
        "serve-roundtrip",
        uncached_s,
        "serve.roundtrip.micros",
    ));
    records.push(record(
        "serve-cache-hit",
        cached_s,
        "serve.cache_hit.micros",
    ));
}

/// Times a full `bmst-analyze` workspace pass so the cost of the
/// analysis gate stays visible in the trajectory: `lint.millis` is the
/// wall-clock of `cargo xtask lint`'s engine (sans process spawn), and
/// `lint.violations` must read zero on a healthy tree.
fn lint_gate(records: &mut Vec<BenchRecord>) {
    let mut root = bmst_analyze::workspace_root();
    if !root.join("crates").is_dir() {
        // Running from outside the checkout: fall back to the location
        // this binary was compiled from.
        root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(PathBuf::from)
            .unwrap_or(root);
    }
    if !root.join("crates").is_dir() {
        eprintln!("lint gate skipped: workspace root not found");
        return;
    }
    let (report, wall_s) = timed(|| bmst_analyze::analyze_workspace(&root));
    records.push(BenchRecord {
        bench: "workspace".to_owned(),
        algorithm: "lint".to_owned(),
        eps: 0.0,
        cost: 0.0,
        longest_path: 0.0,
        perf_ratio: 1.0,
        path_ratio: 1.0,
        wall_s,
        counters: [
            ("lint.millis".to_owned(), (wall_s * 1000.0) as u64),
            ("lint.files".to_owned(), report.files_scanned as u64),
            ("lint.emissions".to_owned(), report.emissions_seen as u64),
            ("lint.violations".to_owned(), report.violations.len() as u64),
        ]
        .into(),
    });

    // The semantic passes (call graph, panic-reach, complexity) cost
    // more than the token rules; track their wall-clock separately so a
    // regression in graph construction shows up in the trajectory.
    let (sem, sem_wall_s) = timed(|| bmst_analyze::analyze_semantic(&root));
    records.push(BenchRecord {
        bench: "workspace".to_owned(),
        algorithm: "analyze-semantic".to_owned(),
        eps: 0.0,
        cost: 0.0,
        longest_path: 0.0,
        perf_ratio: 1.0,
        path_ratio: 1.0,
        wall_s: sem_wall_s,
        counters: [
            (
                "analyze.semantic.millis".to_owned(),
                (sem_wall_s * 1000.0) as u64,
            ),
            ("analyze.semantic.fns".to_owned(), sem.fns_indexed as u64),
            ("analyze.semantic.edges".to_owned(), sem.call_edges as u64),
            (
                "analyze.semantic.violations".to_owned(),
                sem.violations.len() as u64,
            ),
        ]
        .into(),
    });

    // The cancel-liveness and blocking-discipline passes ride on the same
    // index + call graph; time each candidate sweep on its own so a
    // regression in loop classification or guard-scope tracking is
    // attributable.
    let mut io_errors = Vec::new();
    let files = bmst_analyze::load_workspace(&root, &mut io_errors);
    let index = bmst_analyze::items::ItemIndex::build(&files);
    let graph = bmst_analyze::callgraph::CallGraph::build(&index);
    let (cancel_findings, cancel_wall_s) =
        timed(|| bmst_analyze::cancel::candidates(&index, &graph).len());
    let (blocking_findings, blocking_wall_s) =
        timed(|| bmst_analyze::blocking::candidates(&files).len());
    records.push(BenchRecord {
        bench: "workspace".to_owned(),
        algorithm: "analyze-liveness".to_owned(),
        eps: 0.0,
        cost: 0.0,
        longest_path: 0.0,
        perf_ratio: 1.0,
        path_ratio: 1.0,
        wall_s: cancel_wall_s + blocking_wall_s,
        counters: [
            (
                "analyze.cancel.millis".to_owned(),
                (cancel_wall_s * 1000.0) as u64,
            ),
            (
                "analyze.cancel.candidates".to_owned(),
                cancel_findings as u64,
            ),
            (
                "analyze.blocking.millis".to_owned(),
                (blocking_wall_s * 1000.0) as u64,
            ),
            (
                "analyze.blocking.candidates".to_owned(),
                blocking_findings as u64,
            ),
        ]
        .into(),
    });
}

fn main() {
    let quick = has_flag("--quick");
    let out_dir = PathBuf::from(arg_value("--out").unwrap_or_else(|| ".".to_owned()));
    let mut records = Vec::new();

    sweep_registry(quick, &mut records);
    netlist_comparison_toy(quick, &mut records);
    netlist_comparison(quick, &mut records);
    scaling_sweep(quick, &mut records);
    robustness_overhead(quick, &mut records);
    serve_roundtrip(quick, &mut records);
    lint_gate(&mut records);

    match write_bench_file(&out_dir, "table2", &records) {
        Ok(path) => println!("{} records -> {}", records.len(), path.display()),
        Err(e) => {
            eprintln!("failed to write bench file: {e}");
            std::process::exit(1);
        }
    }
}
