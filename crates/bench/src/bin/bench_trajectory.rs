//! Emits the machine-readable bench trajectory: `BENCH_table2.json` with one
//! record per `(benchmark, algorithm, eps)` — path/perf ratios, wall-clock,
//! and an instrumentation counter snapshot for each construction.
//!
//! Run: `cargo run --release -p bmst-bench --bin bench_trajectory [--out DIR] [--quick]`
//!
//! * `--out DIR`   directory for the `BENCH_*.json` files (default `.`)
//! * `--quick`     CI mode: p1-p3 only, exact methods only below 15 points

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use std::path::PathBuf;
use std::sync::Arc;

use bmst_bench::emit::{write_bench_file, BenchRecord};
use bmst_bench::{has_flag, timed, TABLE_EPS};
use bmst_core::{
    bkex, bkh2, bkrus, bprim, gabow_bmst_with, mst_tree, spt_tree, BkexConfig, GabowConfig,
    PathConstraint, TreeReport,
};
use bmst_geom::Net;
use bmst_instances::Benchmark;
use bmst_obs::SummaryRecorder;
use bmst_tree::RoutingTree;

/// Runs one construction under a fresh [`SummaryRecorder`], producing a
/// record with the counter snapshot of exactly that run.
fn measure(
    bench: &str,
    algorithm: &str,
    eps: f64,
    net: &Net,
    mst_cost: f64,
    spt_radius: f64,
    construct: impl FnOnce() -> Option<RoutingTree>,
) -> Option<BenchRecord> {
    let recorder = Arc::new(SummaryRecorder::new());
    let (tree, wall_s) = {
        let _guard = bmst_obs::scoped(recorder.clone());
        timed(construct)
    };
    let tree = tree?;
    let report = TreeReport::with_baselines(net, &tree, mst_cost, spt_radius);
    let mut record = BenchRecord {
        bench: bench.to_owned(),
        algorithm: algorithm.to_owned(),
        eps,
        cost: report.cost,
        longest_path: report.longest_path,
        perf_ratio: report.perf_ratio,
        path_ratio: report.path_ratio,
        wall_s,
        counters: Default::default(),
    };
    record.set_counters(&recorder.snapshot());
    Some(record)
}

fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

fn main() {
    let quick = has_flag("--quick");
    let out_dir = PathBuf::from(arg_value("--out").unwrap_or_else(|| ".".to_owned()));
    let mut records = Vec::new();
    let exact_limit = if quick { 15 } else { 21 };

    for b in Benchmark::SPECIAL {
        if quick && b.num_points() > 20 {
            continue; // p4 (31 points) is too slow for a CI smoke run
        }
        let net = b.build();
        let mst_cost = mst_tree(&net).cost();
        let spt_radius = spt_tree(&net).source_radius();
        let small = net.len() < exact_limit;
        for eps in TABLE_EPS {
            let m = |alg: &str, f: &mut dyn FnMut() -> Option<RoutingTree>| {
                measure(b.name(), alg, eps, &net, mst_cost, spt_radius, f)
            };
            records.extend(m("bkrus", &mut || bkrus(&net, eps).ok()));
            records.extend(m("bkh2", &mut || bkh2(&net, eps).ok()));
            records.extend(m("bprim", &mut || bprim(&net, eps).ok()));
            if small {
                // The exact methods are exponential; keep them to the nets
                // the paper itself ran them on.
                records.extend(m("bkex", &mut || {
                    bkex(&net, eps, BkexConfig::default()).ok()
                }));
                records.extend(m("gabow", &mut || {
                    let c = PathConstraint::from_eps(&net, eps).expect("valid eps");
                    gabow_bmst_with(
                        &net,
                        c,
                        GabowConfig {
                            max_trees: 100_000,
                            ..GabowConfig::default()
                        },
                    )
                    .ok()
                    .map(|o| o.tree)
                }));
            }
        }
    }

    match write_bench_file(&out_dir, "table2", &records) {
        Ok(path) => println!("{} records -> {}", records.len(), path.display()),
        Err(e) => {
            eprintln!("failed to write bench file: {e}");
            std::process::exit(1);
        }
    }
}
