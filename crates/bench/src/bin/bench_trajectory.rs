//! Emits the machine-readable bench trajectory: `BENCH_table2.json` with one
//! record per `(benchmark, algorithm, eps)` — path/perf ratios, wall-clock,
//! and an instrumentation counter snapshot for each construction — plus a
//! serial-vs-parallel netlist routing comparison.
//!
//! The construction set is discovered from the builder registry rather than
//! hard-coded: every eps-driven builder (`Window` / `PerNode` bound) is
//! swept, with the exponential exact methods gated to small nets.
//!
//! Run: `cargo run --release -p bmst-bench --bin bench_trajectory [--out DIR] [--quick]`
//!
//! * `--out DIR`   directory for the `BENCH_*.json` files (default `.`)
//! * `--quick`     CI mode: p1-p3 only, exact methods only below 15 points

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use std::path::PathBuf;
use std::sync::Arc;

use bmst_bench::emit::{write_bench_file, BenchRecord};
use bmst_bench::{has_flag, timed, TABLE_EPS};
use bmst_core::{
    builders, mst_tree, spt_tree, BoundKind, CostClass, GabowConfig, ProblemContext, TreeBuilder,
    TreeReport,
};
use bmst_geom::Net;
use bmst_instances::Benchmark;
use bmst_obs::SummaryRecorder;
use bmst_router::{Criticality, NamedNet, Netlist, RouterConfig};
use bmst_tree::RoutingTree;

/// Runs one construction under a fresh [`SummaryRecorder`], producing a
/// record with the counter snapshot of exactly that run.
fn measure(
    bench: &str,
    algorithm: &str,
    eps: f64,
    net: &Net,
    mst_cost: f64,
    spt_radius: f64,
    construct: impl FnOnce() -> Option<RoutingTree>,
) -> Option<BenchRecord> {
    let recorder = Arc::new(SummaryRecorder::new());
    let (tree, wall_s) = {
        let _guard = bmst_obs::scoped(recorder.clone());
        timed(construct)
    };
    let tree = tree?;
    let report = TreeReport::with_baselines(net, &tree, mst_cost, spt_radius);
    let mut record = BenchRecord {
        bench: bench.to_owned(),
        algorithm: algorithm.to_owned(),
        eps,
        cost: report.cost,
        longest_path: report.longest_path,
        perf_ratio: report.perf_ratio,
        path_ratio: report.path_ratio,
        wall_s,
        counters: Default::default(),
    };
    record.set_counters(&recorder.snapshot());
    Some(record)
}

fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

/// Sweeps every eps-driven registry builder over the special benchmarks.
fn sweep_registry(quick: bool, records: &mut Vec<BenchRecord>) {
    let exact_limit = if quick { 15 } else { 21 };
    // The registry's Gabow entry enumerates up to 2M trees; cap it to keep
    // the sweep's worst case bounded (the paper's nets stay far below this).
    let gabow_capped = builders::Gabow {
        config: GabowConfig {
            max_trees: 100_000,
            ..GabowConfig::default()
        },
    };

    for b in Benchmark::SPECIAL {
        if quick && b.num_points() > 20 {
            continue; // p4 (31 points) is too slow for a CI smoke run
        }
        let net = b.build();
        let mst_cost = mst_tree(&net).cost();
        let spt_radius = spt_tree(&net).source_radius();
        let small = net.len() < exact_limit;
        for eps in TABLE_EPS {
            for &builder in bmst_steiner::full_registry() {
                let d = builder.descriptor();
                if d.variant_of.is_some() {
                    continue; // the trace variant duplicates its base
                }
                if !matches!(d.bound, BoundKind::Window | BoundKind::PerNode) {
                    continue; // only eps-driven bounds make a sweep
                }
                if d.cost_class == CostClass::Exact && !small {
                    // The exact methods are exponential; keep them to the
                    // nets the paper itself ran them on.
                    continue;
                }
                let builder: &dyn TreeBuilder = if d.name == "gabow" {
                    &gabow_capped
                } else {
                    builder
                };
                records.extend(measure(
                    b.name(),
                    d.name,
                    eps,
                    &net,
                    mst_cost,
                    spt_radius,
                    || {
                        let cx = ProblemContext::new(&net, eps).ok()?;
                        builder.build(&cx).ok()
                    },
                ));
            }
        }
    }
}

/// The synthetic all-feasible netlist shared by the serial/parallel
/// comparison and the robustness-overhead measurement.
fn synthetic_netlist(num_nets: usize) -> Netlist {
    let classes = [
        Criticality::Critical,
        Criticality::Normal,
        Criticality::Relaxed,
    ];
    let nets: Vec<NamedNet> = (0..num_nets)
        .map(|i| {
            let net = bmst_instances::uniform_cloud(6 + (i % 10), 200.0, 0xBE57 + i as u64);
            NamedNet::new(format!("n{i}"), net, classes[i % classes.len()])
        })
        .collect();
    Netlist::new(nets)
}

/// Routes the same synthetic netlist serially and with 4 workers, asserts
/// the outputs are structurally identical, and records both timings. The
/// jobs-4 record carries the observed speedup (x1000) as a counter —
/// honest numbers for whatever machine ran the bench.
fn netlist_comparison(quick: bool, records: &mut Vec<BenchRecord>) {
    let num_nets = if quick { 8 } else { 24 };
    let netlist = synthetic_netlist(num_nets);
    // Threshold off: the jobs-4 record must measure the worker pool, not
    // the small-netlist serial bypass.
    let config = RouterConfig {
        parallel_min_terminals: 0,
        ..RouterConfig::default()
    };
    let bench_name = format!("netlist{num_nets}");

    let (serial, serial_s) = timed(|| netlist.route(&config));
    assert!(serial.is_clean(), "synthetic netlist must route cleanly");
    let jobs = 4;
    let (parallel, parallel_s) = timed(|| netlist.route_parallel(&config, jobs));
    assert_eq!(
        serial.to_json().to_string(),
        parallel.to_json().to_string(),
        "parallel routing must be byte-identical to serial"
    );

    let max_radius = serial.nets.iter().map(|n| n.radius).fold(0.0_f64, f64::max);
    let record = |algorithm: &str, wall_s: f64, jobs: u64, speedup_milli: u64| BenchRecord {
        bench: bench_name.clone(),
        algorithm: algorithm.to_owned(),
        eps: config.eps_normal,
        cost: serial.total_wirelength,
        longest_path: max_radius,
        perf_ratio: 1.0,
        path_ratio: 1.0,
        wall_s,
        counters: [
            ("router.jobs".to_owned(), jobs),
            ("router.nets".to_owned(), num_nets as u64),
            ("router.speedup_milli".to_owned(), speedup_milli),
        ]
        .into(),
    };
    let speedup_milli = if parallel_s > 0.0 {
        (serial_s / parallel_s * 1000.0) as u64
    } else {
        0
    };
    records.push(record("netlist-serial", serial_s, 1, 1000));
    records.push(record(
        "netlist-jobs4",
        parallel_s,
        jobs as u64,
        speedup_milli,
    ));
}

/// Measures what the robustness layer costs when nothing goes wrong: the
/// guarded `route` pass (input validation, `catch_unwind`, window
/// post-check, ladder bookkeeping, report assembly) against a raw loop
/// calling the same builder directly on the same all-feasible netlist.
/// The `router.overhead_milli` counter is guarded/raw wall-clock x1000,
/// so the <2% happy-path budget reads as `<= 1020` in BENCH_table2.json.
fn robustness_overhead(quick: bool, records: &mut Vec<BenchRecord>) {
    let num_nets = if quick { 8 } else { 24 };
    let netlist = synthetic_netlist(num_nets);
    let config = RouterConfig::default();
    let builder = config.algorithm.builder();

    // Best-of-N on both paths to squeeze out scheduler noise; the two
    // loops interleave so frequency scaling hits them evenly.
    let rounds = if quick { 3 } else { 7 };
    let mut raw_s = f64::INFINITY;
    let mut guarded_s = f64::INFINITY;
    let mut guarded_cost = 0.0;
    for _ in 0..rounds {
        let (raw_cost, t) = timed(|| {
            let mut cost = 0.0;
            for n in &netlist.nets {
                let cx = ProblemContext::new(&n.net, config.eps_for(n.criticality))
                    .expect("synthetic nets are valid");
                cost += builder
                    .build(&cx)
                    .expect("synthetic nets are feasible")
                    .cost();
            }
            cost
        });
        raw_s = raw_s.min(t);
        let (report, t) = timed(|| netlist.route(&config));
        assert!(
            report.is_clean(),
            "overhead bench must stay on the happy path"
        );
        assert!((report.total_wirelength - raw_cost).abs() < 1e-6);
        guarded_cost = report.total_wirelength;
        guarded_s = guarded_s.min(t);
    }

    let overhead_milli = if raw_s > 0.0 {
        (guarded_s / raw_s * 1000.0) as u64
    } else {
        0
    };
    records.push(BenchRecord {
        bench: format!("netlist{num_nets}"),
        algorithm: "netlist-guarded".to_owned(),
        eps: config.eps_normal,
        cost: guarded_cost,
        longest_path: 0.0,
        perf_ratio: 1.0,
        path_ratio: 1.0,
        wall_s: guarded_s,
        counters: [
            ("router.nets".to_owned(), num_nets as u64),
            ("router.overhead_milli".to_owned(), overhead_milli),
        ]
        .into(),
    });
}

/// Times a full `bmst-analyze` workspace pass so the cost of the
/// analysis gate stays visible in the trajectory: `lint.millis` is the
/// wall-clock of `cargo xtask lint`'s engine (sans process spawn), and
/// `lint.violations` must read zero on a healthy tree.
fn lint_gate(records: &mut Vec<BenchRecord>) {
    let mut root = bmst_analyze::workspace_root();
    if !root.join("crates").is_dir() {
        // Running from outside the checkout: fall back to the location
        // this binary was compiled from.
        root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(PathBuf::from)
            .unwrap_or(root);
    }
    if !root.join("crates").is_dir() {
        eprintln!("lint gate skipped: workspace root not found");
        return;
    }
    let (report, wall_s) = timed(|| bmst_analyze::analyze_workspace(&root));
    records.push(BenchRecord {
        bench: "workspace".to_owned(),
        algorithm: "lint".to_owned(),
        eps: 0.0,
        cost: 0.0,
        longest_path: 0.0,
        perf_ratio: 1.0,
        path_ratio: 1.0,
        wall_s,
        counters: [
            ("lint.millis".to_owned(), (wall_s * 1000.0) as u64),
            ("lint.files".to_owned(), report.files_scanned as u64),
            ("lint.emissions".to_owned(), report.emissions_seen as u64),
            ("lint.violations".to_owned(), report.violations.len() as u64),
        ]
        .into(),
    });

    // The semantic passes (call graph, panic-reach, complexity) cost
    // more than the token rules; track their wall-clock separately so a
    // regression in graph construction shows up in the trajectory.
    let (sem, sem_wall_s) = timed(|| bmst_analyze::analyze_semantic(&root));
    records.push(BenchRecord {
        bench: "workspace".to_owned(),
        algorithm: "analyze-semantic".to_owned(),
        eps: 0.0,
        cost: 0.0,
        longest_path: 0.0,
        perf_ratio: 1.0,
        path_ratio: 1.0,
        wall_s: sem_wall_s,
        counters: [
            (
                "analyze.semantic.millis".to_owned(),
                (sem_wall_s * 1000.0) as u64,
            ),
            ("analyze.semantic.fns".to_owned(), sem.fns_indexed as u64),
            ("analyze.semantic.edges".to_owned(), sem.call_edges as u64),
            (
                "analyze.semantic.violations".to_owned(),
                sem.violations.len() as u64,
            ),
        ]
        .into(),
    });
}

fn main() {
    let quick = has_flag("--quick");
    let out_dir = PathBuf::from(arg_value("--out").unwrap_or_else(|| ".".to_owned()));
    let mut records = Vec::new();

    sweep_registry(quick, &mut records);
    netlist_comparison(quick, &mut records);
    robustness_overhead(quick, &mut records);
    lint_gate(&mut records);

    match write_bench_file(&out_dir, "table2", &records) {
        Ok(path) => println!("{} records -> {}", records.len(), path.display()),
        Err(e) => {
            eprintln!("failed to write bench file: {e}");
            std::process::exit(1);
        }
    }
}
