//! Regenerates the paper's **Figure 9**: the smooth trade-off BKRUS offers
//! between the longest path length and the total wirelength as `eps`
//! sweeps from 0 to infinity.
//!
//! Prints one series per benchmark: for each eps, the path ratio
//! (longest path / R) and the perf ratio (cost / cost(MST)).
//!
//! Run: `cargo run --release -p bmst-bench --bin fig9_tradeoff`

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use bmst_bench::fmt_eps;
use bmst_core::{bkrus, mst_tree, spt_tree, TreeReport};
use bmst_instances::Benchmark;

const SWEEP: [f64; 10] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.75, 1.0, 1.5, f64::INFINITY];

fn main() {
    println!("Figure 9: BKRUS trade-off curve (per benchmark: eps, path ratio, perf ratio)");
    for b in Benchmark::SPECIAL {
        let net = b.build();
        let mst_cost = mst_tree(&net).cost();
        let spt_radius = spt_tree(&net).source_radius();
        println!();
        println!("{}:", b.name());
        println!("{:>5} {:>10} {:>10}", "eps", "path", "perf");
        for eps in SWEEP {
            let t = bkrus(&net, eps).expect("bkrus spans");
            let rep = TreeReport::with_baselines(&net, &t, mst_cost, spt_radius);
            println!(
                "{:>5} {:>10.3} {:>10.3}",
                fmt_eps(eps),
                rep.path_ratio,
                rep.perf_ratio
            );
        }
    }
    println!();
    println!("Reading the curve: as eps grows the path ratio rises towards the MST's");
    println!("radius while the perf ratio falls towards 1.0 — a smooth, monotone trade.");
}
