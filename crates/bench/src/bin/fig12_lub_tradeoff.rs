//! Regenerates the paper's **Figure 12**: the trade-off between clock skew
//! and routing cost for the lower/upper bounded construction. Each
//! `(eps1, eps2)` window yields a point: `s` = longest/shortest path (skew
//! ratio) and `r` = cost/cost(MST).
//!
//! Run: `cargo run --release -p bmst-bench --bin fig12_lub_tradeoff`

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use bmst_clock::zero_skew_tree;
use bmst_core::{lub_bkrus, mst_tree};
use bmst_instances::figure13_family;

fn main() {
    // The equidistant Figure 13 family admits the whole skew sweep down to
    // an exact zero-skew tree (every sink at distance exactly R).
    let net = figure13_family(8);
    let mst = mst_tree(&net).cost();

    println!("Figure 12: skew-vs-cost trade-off of LUB-BKRUS (8 equidistant sinks)");
    println!("{:>4} {:>4} | {:>8} {:>8}", "e1", "e2", "s", "r");
    // Sweep windows from very loose to zero-skew.
    let pairs: Vec<(f64, f64)> = vec![
        (0.0, 2.0),
        (0.0, 1.0),
        (0.0, 0.3),
        (0.0, 0.0),
        (0.1, 1.5),
        (0.3, 1.0),
        (0.5, 0.5),
        (0.7, 0.3),
        (0.9, 0.1),
        (1.0, 0.0),
    ];
    for (e1, e2) in pairs {
        match lub_bkrus(&net, e1, e2) {
            Ok(t) => {
                let longest = t.max_dist_from_root(net.sinks());
                let shortest = t.min_dist_from_root(net.sinks());
                let s = longest / shortest;
                println!("{e1:>4.1} {e2:>4.1} | {s:>8.2} {:>8.2}", t.cost() / mst);
            }
            Err(_) => println!("{e1:>4.1} {e2:>4.1} | {:>8} {:>8}", "-", "-"),
        }
    }
    println!();
    println!("s -> 1.0 (zero skew) costs progressively more wirelength relative to");
    println!("the MST; the paper reports ~3.9x MST for an exact zero-skew tree.");
    println!();
    // The paper's section 6 point, quantified: a Steiner-branching zero-skew
    // construction (DME-style) undercuts the spanning tree's node branching,
    // and the LUB-BKRUS cost is a reliable *upper bound* estimate for it.
    let zst = zero_skew_tree(&net);
    println!(
        "zero-skew Steiner reference (DME-style): skew = {:.2}, r = {:.2}",
        zst.skew(),
        zst.wirelength() / mst
    );
}
