//! Regenerates the paper's **Figure 11**: the routing-cost ordering chart.
//! Averaged over random nets at a fixed eps, the constructions order as
//!
//! `BKST <= MST <= BMST_G = BKEX <= BKH2 <= BKRUS <= SPT <= MaxST`
//!
//! (the MST ignores the bound, which is why the bounded optimum sits above
//! it; the Steiner construction undercuts even the MST).
//!
//! Run: `cargo run --release -p bmst-bench --bin fig11_cost_chart`

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use bmst_bench::{has_flag, suite_seed};
use bmst_core::{
    bkex, bkh2, bkrus, gabow_bmst, maximal_spanning_tree, mst_tree, spt_tree, BkexConfig,
};
use bmst_instances::random_suite;
use bmst_steiner::bkst;

fn main() {
    let cases = if has_flag("--full") { 50 } else { 10 };
    let size = 10;
    let eps = 0.2;
    let suite = random_suite(size, cases, suite_seed(size));

    let mut totals: Vec<(&str, f64)> = vec![
        ("BKST", 0.0),
        ("MST", 0.0),
        ("BMST_G", 0.0),
        ("BKEX", 0.0),
        ("BKH2", 0.0),
        ("BKRUS", 0.0),
        ("SPT", 0.0),
        ("MaxST", 0.0),
    ];
    for net in &suite {
        let mst = mst_tree(net).cost();
        let add = |totals: &mut Vec<(&str, f64)>, name: &str, v: f64| {
            totals
                .iter_mut()
                .find(|(n, _)| *n == name)
                .expect("known name")
                .1 += v / mst;
        };
        add(
            &mut totals,
            "BKST",
            bkst(net, eps).expect("spans").wirelength(),
        );
        add(&mut totals, "MST", mst);
        add(
            &mut totals,
            "BMST_G",
            gabow_bmst(net, eps).expect("spans").cost(),
        );
        add(
            &mut totals,
            "BKEX",
            bkex(net, eps, BkexConfig::default()).expect("spans").cost(),
        );
        add(&mut totals, "BKH2", bkh2(net, eps).expect("spans").cost());
        add(&mut totals, "BKRUS", bkrus(net, eps).expect("spans").cost());
        add(&mut totals, "SPT", spt_tree(net).cost());
        add(&mut totals, "MaxST", maximal_spanning_tree(net).cost());
    }

    println!("Figure 11: routing cost chart ({cases} random nets, {size} sinks, eps = {eps})");
    println!("average cost relative to MST, cheapest first:");
    println!();
    let n = suite.len() as f64;
    let mut rows: Vec<(&str, f64)> = totals.into_iter().map(|(k, v)| (k, v / n)).collect();
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    let max = rows.last().expect("non-empty").1;
    for (name, v) in rows {
        let bar = "#".repeat(((v / max) * 50.0).round() as usize);
        println!("{name:>7} {v:>7.3} {bar}");
    }
    println!();
    println!("lower cost <--- BKST, MST, BMST_G/BKEX, BKH2, BKRUS, SPT, MaxST ---> higher");
}
