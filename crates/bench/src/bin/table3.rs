//! Regenerates the paper's **Table 3**: BKRUS and BKH2 on the large
//! benchmarks (pr1, pr2, r1-r5), reporting performance ratio, CPU seconds,
//! path ratio and the BKH2-over-BKRUS cost reduction.
//!
//! Run: `cargo run --release -p bmst-bench --bin table3`
//!
//! By default the harness runs BKRUS on pr1, pr2, r1, r2, r3 and BKH2 on
//! the sub-300-terminal nets (the paper's own recommendation for BKH2) at a
//! condensed epsilon sweep. `--full` enables all seven benchmarks, the full
//! sweep, and BKH2 everywhere (slow: the paper capped BKH2 at ~12 CPU
//! hours).

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use bmst_bench::{fmt_eps, has_flag, timed, TABLE_EPS};
use bmst_core::{bkh2_from, bkrus, mst_tree, spt_tree, PathConstraint, TreeReport};
use bmst_instances::Benchmark;

fn main() {
    let full = has_flag("--full");
    let benches: Vec<Benchmark> = if full {
        Benchmark::LARGE.to_vec()
    } else {
        vec![
            Benchmark::Pr1,
            Benchmark::Pr2,
            Benchmark::R1,
            Benchmark::R2,
            Benchmark::R3,
        ]
    };
    let eps_sweep: Vec<f64> = if full {
        TABLE_EPS.to_vec()
    } else {
        vec![f64::INFINITY, 0.5, 0.2, 0.0]
    };

    println!("Table 3: BKRUS and BKH2 results for large benchmarks");
    println!(
        "{:<6} {:>4} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>10} | {:>6}",
        "bench", "eps", "bk.perf", "bk.path", "bk.cpu", "h2.perf", "h2.path", "h2.cpu", "red%"
    );

    for b in &benches {
        let net = b.build();
        let mst_cost = mst_tree(&net).cost();
        let spt_radius = spt_tree(&net).source_radius();
        // The paper recommends BKH2 for nets under ~300 terminals; its
        // eps = 0 rows are the pathological ones (the paper reports up to
        // 2 027 CPU seconds on pr1 alone), so they too are gated behind
        // --full.
        let run_h2_base = full || net.len() < 300;
        for &eps in &eps_sweep {
            let run_h2 = run_h2_base && (full || eps >= 0.1);
            let (bk, bk_cpu) = timed(|| bkrus(&net, eps).expect("upper-only BKRUS spans"));
            let bk_rep = TreeReport::with_baselines(&net, &bk, mst_cost, spt_radius);

            if run_h2 {
                let c = PathConstraint::from_eps(&net, eps).expect("valid eps");
                let bk_clone = bk.clone();
                let (h2, h2_cpu) = timed(|| bkh2_from(&net, c, bk_clone));
                let h2_rep = TreeReport::with_baselines(&net, &h2, mst_cost, spt_radius);
                let red = (1.0 - h2_rep.perf_ratio / bk_rep.perf_ratio) * 100.0;
                println!(
                    "{:<6} {:>4} | {:>8.3} {:>8.3} {:>8.2} | {:>8.3} {:>8.3} {:>10.2} | {:>6.2}",
                    b.name(),
                    fmt_eps(eps),
                    bk_rep.perf_ratio,
                    bk_rep.path_ratio,
                    bk_cpu,
                    h2_rep.perf_ratio,
                    h2_rep.path_ratio,
                    h2_cpu,
                    red
                );
            } else {
                println!(
                    "{:<6} {:>4} | {:>8.3} {:>8.3} {:>8.2} | {:>8} {:>8} {:>10} | {:>6}",
                    b.name(),
                    fmt_eps(eps),
                    bk_rep.perf_ratio,
                    bk_rep.path_ratio,
                    bk_cpu,
                    "-",
                    "-",
                    "-",
                    "-"
                );
            }
        }
        println!();
    }
    println!("perf = cost/cost(MST), path = longest path/longest path(SPT)");
    println!("red% = (1 - BKH2/BKRUS) * 100; '-' = BKH2 skipped (net >= 300 terminals)");
}
