//! Regenerates the paper's **Figure 4**: a step-by-step BKRUS walk-through
//! on a 5-terminal instance with a tight bound, showing which edges are
//! accepted, rejected as cycles, or rejected for violating the path bound.
//!
//! Run: `cargo run --release -p bmst-bench --bin fig4_trace`

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use bmst_core::{bkrus_trace, EdgeDecision};
use bmst_geom::{Net, Point};

fn main() {
    // The Figure 4 layout: source at the origin, a far sink a defining
    // R = 8, and a cluster (b, c, d) between them; the bound 12 corresponds
    // to eps = 0.5.
    let net = Net::with_source_first(vec![
        Point::new(0.0, 0.0), // S
        Point::new(8.0, 0.0), // a (farthest, R = 8)
        Point::new(5.0, 0.0), // b
        Point::new(6.0, 1.0), // c
        Point::new(7.0, 1.0), // d
    ])
    .expect("valid net");
    let names = ["S", "a", "b", "c", "d"];
    let eps = 0.5;

    for eps in [eps, 0.0] {
        println!(
            "Figure 4: BKRUS trace (eps = {eps}, R = {}, bound = {})",
            net.source_radius(),
            net.path_bound(eps)
        );
        println!();

        let (tree, trace) = bkrus_trace(&net, eps).expect("bkrus spans");
        for ev in &trace {
            let what = match ev.decision {
                EdgeDecision::Accepted => "ACCEPT",
                EdgeDecision::RejectedCycle => "reject (cycle)",
                EdgeDecision::RejectedBound => "reject (bound)",
            };
            println!(
                "  edge ({}, {})  len {:5.2}  -> {}",
                names[ev.edge.u], names[ev.edge.v], ev.edge.weight, what
            );
        }
        println!();
        println!("final tree cost = {:.2}", tree.cost());
        for v in net.sinks() {
            println!(
                "  path(S, {}) = {:.2}  (direct {:.2})",
                names[v],
                tree.dist_from_root(v),
                net.dist(net.source(), v)
            );
        }
        println!();
    }
    println!("At the tight bound the cluster cannot chain fully: bound rejections");
    println!("appear and the source buys a second, more direct attachment.");
}
