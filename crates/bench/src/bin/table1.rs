//! Regenerates the paper's **Table 1**: characteristics of the benchmarks
//! (# points, # complete-graph edges, R, r).
//!
//! Run: `cargo run --release -p bmst-bench --bin table1`

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use bmst_instances::Benchmark;

fn main() {
    println!("Table 1: Characteristics of Benchmarks");
    println!(
        "{:<6} {:>8} {:>10} {:>12} {:>10}",
        "bench", "# pts", "# edges", "R", "r"
    );
    for b in Benchmark::ALL {
        println!("{}", b.stats());
    }
    println!();
    println!("R: length of the shortest path from source to the farthest sink");
    println!("r: length of the shortest path from source to the nearest sink");
    println!();
    println!(
        "note: pr*/r* are seeded synthetic substitutes for the MCNC/Tsay sink\n\
         placements (same terminal counts, die scaled to the published R);\n\
         see DESIGN.md section 3."
    );
}
