//! Ablation for the paper's Lemmas 4.1-4.3: how much does the edge
//! preprocessing shrink the exact enumeration? For each instance we report
//! the kept/forced edge counts and the number of spanning trees BMST_G
//! examines with and without the lemmas.
//!
//! Run: `cargo run --release -p bmst-bench --bin ablation_gabow_pruning`

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use bmst_bench::fmt_eps;
use bmst_core::{gabow_bmst_with, preprocess_edges, GabowConfig, PathConstraint};
use bmst_instances::random_suite;

fn main() {
    let suite = random_suite(10, 6, 0xAB1A);
    println!("Ablation: Gabow enumeration with vs without Lemma 4.1-4.3 pruning");
    println!(
        "{:>4} {:>5} | {:>6} {:>6} {:>6} | {:>12} {:>12} {:>8}",
        "net", "eps", "edges", "kept", "forced", "trees(prune)", "trees(raw)", "speedup"
    );

    let budget = 300_000;
    for (i, net) in suite.iter().enumerate() {
        for eps in [0.1, 0.3] {
            let c = PathConstraint::from_eps(net, eps).expect("valid eps");
            let (kept, forced) = preprocess_edges(net, c);

            let with = gabow_bmst_with(
                net,
                c,
                GabowConfig {
                    max_trees: budget,
                    use_pruning: true,
                },
            );
            let without = gabow_bmst_with(
                net,
                c,
                GabowConfig {
                    max_trees: budget,
                    use_pruning: false,
                },
            );
            let fmt = |r: &Result<bmst_core::GabowOutcome, bmst_core::BmstError>| match r {
                Ok(o) => o.trees_examined.to_string(),
                Err(_) => format!(">{budget}"),
            };
            let speedup = match (&with, &without) {
                (Ok(a), Ok(b)) => {
                    format!("{:.2}x", b.trees_examined as f64 / a.trees_examined as f64)
                }
                _ => "-".to_owned(),
            };
            // Costs must agree whenever both finish: the lemmas are
            // optimality-preserving.
            if let (Ok(a), Ok(b)) = (&with, &without) {
                assert!(
                    (a.tree.cost() - b.tree.cost()).abs() < 1e-9,
                    "pruning changed the optimum!"
                );
            }
            println!(
                "{:>4} {:>5} | {:>6} {:>6} {:>6} | {:>12} {:>12} {:>8}",
                i,
                fmt_eps(eps),
                net.complete_edge_count(),
                kept.len(),
                forced.len(),
                fmt(&with),
                fmt(&without),
                speedup
            );
        }
    }
    println!();
    println!("The lemmas never change the optimum (asserted); they only cut the");
    println!("number of trees the enumeration wades through before finding it.");
}
