//! Regenerates the paper's **Table 5**: lower and upper bounded BKRUS.
//! For every `(eps1, eps2)` pair it reports
//! `s` = longest path / shortest path (the skew ratio; `s = 1.0` is an
//! exact zero-skew tree) and `r` = cost / cost(MST); `-` marks infeasible
//! configurations.
//!
//! Run: `cargo run --release -p bmst-bench --bin table5`
//! `--full` adds the large pr*/r* benchmarks.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)] // demo/bench harness: fail fast, exact parameter matches

use bmst_bench::has_flag;
use bmst_core::{lub_bkrus, mst_tree};
use bmst_instances::Benchmark;

const EPS1: [f64; 6] = [0.0, 0.1, 0.3, 0.5, 0.7, 1.0];
const EPS2: [f64; 7] = [0.0, 0.1, 0.3, 0.5, 1.0, 1.5, 2.0];

fn main() {
    let benches: Vec<Benchmark> = if has_flag("--full") {
        Benchmark::ALL.to_vec()
    } else {
        Benchmark::SPECIAL.to_vec()
    };

    println!("Table 5: lower/upper bounded BKRUS (s = longest/shortest path, r = cost/MST)");
    print!("{:>4} {:>4} |", "e1", "e2");
    for b in &benches {
        print!(" {:>6}.s {:>6}.r |", b.name(), b.name());
    }
    println!();

    for e1 in EPS1 {
        for e2 in EPS2 {
            print!("{e1:>4.1} {e2:>4.1} |");
            for b in &benches {
                let net = b.build();
                match lub_bkrus(&net, e1, e2) {
                    Ok(t) => {
                        let longest = t.max_dist_from_root(net.sinks());
                        let shortest = t.min_dist_from_root(net.sinks());
                        let s = if shortest > 0.0 {
                            longest / shortest
                        } else {
                            f64::NAN
                        };
                        let r = t.cost() / mst_tree(&net).cost();
                        print!(" {s:>8.1} {r:>8.1} |");
                    }
                    Err(_) => {
                        print!(" {:>8} {:>8} |", "-", "-");
                    }
                }
            }
            println!();
        }
    }
    println!();
    println!("zero clock skew: s = 1.0; '-': infeasible configuration");
}
