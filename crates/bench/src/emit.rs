//! Machine-readable bench output: `BENCH_<table>.json` files.
//!
//! Each file is one JSON object:
//!
//! ```text
//! {
//!   "schema": "bmst-bench-v1",
//!   "table": "table2",
//!   "records": [
//!     {
//!       "bench": "p1", "algorithm": "bkrus", "eps": 0.5,
//!       "cost": 123.4, "longest_path": 88.1,
//!       "perf_ratio": 1.02, "path_ratio": 1.31,
//!       "wall_s": 0.0012,
//!       "counters": { "bkrus.edges_scanned": 15, ... }
//!     }, ...
//!   ]
//! }
//! ```
//!
//! `eps` is a number, except the unbounded row which is the string `"inf"`
//! (JSON has no infinity literal). `counters` is the counter part of a
//! [`CounterSnapshot`] taken around the timed run.

use std::collections::BTreeMap;
use std::path::Path;

use bmst_obs::json::Json;
use bmst_obs::CounterSnapshot;

/// Schema tag written to (and expected from) every bench file.
pub const BENCH_SCHEMA: &str = "bmst-bench-v1";

/// One `(bench, algorithm, eps)` measurement.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Benchmark name (`p1`, `r3`, ...).
    pub bench: String,
    /// Algorithm name (`bkrus`, `bkh2`, `bprim`, `bkex`, `gabow`).
    pub algorithm: String,
    /// Epsilon of the run (`f64::INFINITY` for the unbounded row).
    pub eps: f64,
    /// Tree cost.
    pub cost: f64,
    /// Longest source-sink path.
    pub longest_path: f64,
    /// `cost / cost(MST)`.
    pub perf_ratio: f64,
    /// `longest_path / R`.
    pub path_ratio: f64,
    /// Wall-clock seconds of the construction.
    pub wall_s: f64,
    /// Instrumentation counters captured during the run.
    pub counters: BTreeMap<String, u64>,
}

impl BenchRecord {
    /// Renders the record as a JSON object.
    pub fn to_json(&self) -> Json {
        let eps = if self.eps.is_infinite() {
            Json::Str("inf".to_owned())
        } else {
            Json::Num(self.eps)
        };
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Json::from_u64(*v)))
            .collect();
        Json::Obj(vec![
            ("bench".to_owned(), Json::Str(self.bench.clone())),
            ("algorithm".to_owned(), Json::Str(self.algorithm.clone())),
            ("eps".to_owned(), eps),
            ("cost".to_owned(), Json::Num(self.cost)),
            ("longest_path".to_owned(), Json::Num(self.longest_path)),
            ("perf_ratio".to_owned(), Json::Num(self.perf_ratio)),
            ("path_ratio".to_owned(), Json::Num(self.path_ratio)),
            ("wall_s".to_owned(), Json::Num(self.wall_s)),
            ("counters".to_owned(), Json::Obj(counters)),
        ])
    }

    /// Copies the counters out of an instrumentation snapshot.
    pub fn set_counters(&mut self, snapshot: &CounterSnapshot) {
        self.counters = snapshot.counters.clone();
    }
}

/// Assembles the full bench document for `table`.
pub fn bench_document(table: &str, records: &[BenchRecord]) -> Json {
    Json::Obj(vec![
        ("schema".to_owned(), Json::Str(BENCH_SCHEMA.to_owned())),
        ("table".to_owned(), Json::Str(table.to_owned())),
        (
            "records".to_owned(),
            Json::Arr(records.iter().map(BenchRecord::to_json).collect()),
        ),
    ])
}

/// Writes `BENCH_<table>.json` into `dir`, returning the file path.
///
/// # Errors
///
/// Propagates the underlying file-write error.
pub fn write_bench_file(
    dir: &Path,
    table: &str,
    records: &[BenchRecord],
) -> std::io::Result<std::path::PathBuf> {
    let path = dir.join(format!("BENCH_{table}.json"));
    std::fs::write(&path, format!("{}\n", bench_document(table, records)))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)] // tests may panic and compare exact floats
    use super::*;

    fn record(eps: f64) -> BenchRecord {
        BenchRecord {
            bench: "p1".to_owned(),
            algorithm: "bkrus".to_owned(),
            eps,
            cost: 10.0,
            longest_path: 8.0,
            perf_ratio: 1.25,
            path_ratio: 1.0,
            wall_s: 0.001,
            counters: [("bkrus.edges_scanned".to_owned(), 15u64)].into(),
        }
    }

    #[test]
    fn document_round_trips() {
        let doc = bench_document("table2", &[record(0.5), record(f64::INFINITY)]);
        let parsed = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some(BENCH_SCHEMA)
        );
        assert_eq!(parsed.get("table").and_then(Json::as_str), Some("table2"));
        let records = parsed.get("records").and_then(Json::as_arr).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].get("eps").and_then(Json::as_f64), Some(0.5));
        // The unbounded row encodes eps as the string "inf".
        assert_eq!(records[1].get("eps").and_then(Json::as_str), Some("inf"));
        assert_eq!(
            records[0]
                .get("counters")
                .and_then(|c| c.get("bkrus.edges_scanned"))
                .and_then(Json::as_f64),
            Some(15.0)
        );
    }

    #[test]
    fn write_bench_file_creates_named_file() {
        let dir = std::env::temp_dir().join("bmst_bench_emit_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = write_bench_file(&dir, "test", &[record(0.0)]).unwrap();
        assert!(path.ends_with("BENCH_test.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        Json::parse(&text).unwrap();
    }
}
